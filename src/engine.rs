//! The engine registry: every join-sampling engine in the workspace,
//! constructible behind one factory.
//!
//! [`Engine`] names the seven engines the paper's evaluation compares
//! (§6.1) — plus the [`Engine::Sharded`] partition-parallel wrapper that
//! scales any of them across worker threads — and [`Engine::build`]
//! constructs any of them as a `Box<dyn JoinSampler + Send>`, so
//! multi-engine tests, benches and examples are written once against the
//! trait instead of once per engine:
//!
//! ```
//! use rsjoin::engine::{Engine, EngineOpts};
//! use rsjoin::prelude::*;
//!
//! let mut qb = QueryBuilder::new();
//! qb.relation("R", &["X", "Y"]);
//! qb.relation("S", &["Y", "Z"]);
//! let query = qb.build().unwrap();
//!
//! let mut stream = TupleStream::new();
//! stream.push(0, vec![1, 2]);
//! stream.push(1, vec![2, 3]);
//!
//! for engine in Engine::ALL {
//!     if !engine.supports(&query) {
//!         continue;
//!     }
//!     let mut s = engine.build(&query, 10, 7, &EngineOpts::default()).unwrap();
//!     s.process_stream(&stream);
//!     assert_eq!(s.samples_named().len(), 1, "{engine}");
//! }
//! ```

use rsj_baselines::{NaiveRebuild, SJoin, SJoinOpt, SymmetricSampler};
use rsj_core::{
    CyclicReservoirJoin, FkReservoirJoin, JoinSampler, ReservoirJoin, ShardedSampler,
    SupervisorPolicy,
};
use rsj_index::IndexOptions;
use rsj_queries::Workload;
use rsj_query::{FkSchema, JoinTree, Plan, Query};

/// Per-build options shared by all engines.
///
/// `k` and `seed` are positional in [`Engine::build`] because every engine
/// needs them; everything here is engine-specific and optional.
#[derive(Clone, Debug, Default)]
pub struct EngineOpts {
    /// Primary-key metadata for the `_opt` engines' foreign-key
    /// combination rewrite. `None` means no keys are declared, making the
    /// rewrite the identity — `RSJoin_opt` and `SJoin_opt` then behave
    /// like their plain counterparts.
    pub fks: Option<FkSchema>,
    /// Dynamic-index tuning for the `RSJoin` family (grouping on/off).
    pub index: IndexOptions,
    /// Explicit execution plan (join-tree orientation, sampling root,
    /// partition attribute) — the explicit-rooting override. `None` lets
    /// each engine start from the canonical plan and adapt at runtime via
    /// `JoinSampler::replan`.
    ///
    /// Honoured by `Engine::Reservoir` (the plan's query is the indexed
    /// query) and by `Engine::Sharded` (partition attribute; the plan also
    /// flows to a `Reservoir` inner engine). Engines that index a
    /// *rewritten* query (`RSJoin_opt`, the cyclic GHD driver) or have no
    /// plan choice (the baselines) reject an explicit plan with
    /// [`EngineError::Build`] rather than silently ignoring it.
    pub plan: Option<Plan>,
    /// Supervisor tuning for `Engine::Sharded` (restart budget, snapshot
    /// cadence, replay cap — see [`SupervisorPolicy`]). `None` uses the
    /// defaults; ignored by unsharded engines.
    pub supervision: Option<SupervisorPolicy>,
}

/// Why an engine could not be constructed for a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The engine does not support this query shape (e.g. `SJoin` on a
    /// cyclic query, `SymmetricHashJoin` on more than two relations).
    Unsupported(String),
    /// Construction failed for an engine-specific reason.
    Build(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Unsupported(m) => write!(f, "unsupported query shape: {m}"),
            EngineError::Build(m) => write!(f, "engine construction failed: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The seven join-sampling engines of the paper's evaluation, plus the
/// sharded partition-parallel wrapper around any of them.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// `RSJoin` (Algorithm 6): the paper's near-linear engine for acyclic
    /// joins — dynamic index with power-of-two-rounded counts feeding a
    /// skip-based predicate reservoir.
    Reservoir,
    /// `RSJoin_opt` (§4.4): `RSJoin` over the foreign-key combination
    /// rewrite; dimension joins resolve in the streaming combiner.
    FkReservoir,
    /// The GHD driver of §5: bag sub-joins materialized by worst-case
    /// optimal delta enumeration feed an acyclic `RSJoin` over the
    /// bag-level query. Handles cyclic (and any) queries.
    Cyclic,
    /// Rebuild-and-redraw strawman (§1): recompute the full join and
    /// redraw after every insert. Ground truth for tests.
    Naive,
    /// `SJoin` (Zhao et al., SIGMOD'20): exact-count index, `O(N)` worst
    /// case per update — the state of the art the paper beats.
    SJoin,
    /// `SJoin_opt`: `SJoin` behind the foreign-key combination rewrite.
    SJoinOpt,
    /// Symmetric hash join + classic reservoir: the streaming two-table
    /// baseline.
    Symmetric,
    /// The partition-parallel execution layer (`rsj-core::shard`): the
    /// stream is hash-partitioned on the most-shared join attribute across
    /// `shards` worker threads, each running an independent `inner` engine;
    /// the per-shard reservoirs merge into one uniform sample by weighted
    /// reservoir union. Supports whatever `inner` supports.
    Sharded {
        /// The engine to run inside every shard (any of the seven).
        inner: Box<Engine>,
        /// Number of worker shards `S >= 1`.
        shards: usize,
    },
}

impl Engine {
    /// Every *base* engine, in the order the paper's tables list them
    /// (the sharded wrapper is parameterized, so it is not enumerable
    /// here — wrap any entry via [`Engine::sharded`]).
    pub const ALL: [Engine; 7] = [
        Engine::Reservoir,
        Engine::FkReservoir,
        Engine::Cyclic,
        Engine::Naive,
        Engine::SJoin,
        Engine::SJoinOpt,
        Engine::Symmetric,
    ];

    /// Wraps `inner` in the partition-parallel sharded executor.
    pub fn sharded(inner: Engine, shards: usize) -> Engine {
        Engine::Sharded {
            inner: Box::new(inner),
            shards,
        }
    }

    /// The engine's display name, matching the paper's figures. The
    /// sharded wrapper reports `"Sharded"` regardless of its inner engine;
    /// the [`Display`](std::fmt::Display) form spells out both.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Reservoir => "RSJoin",
            Engine::FkReservoir => "RSJoin_opt",
            Engine::Cyclic => "RSJoin_cyclic",
            Engine::Naive => "NaiveRebuild",
            Engine::SJoin => "SJoin",
            Engine::SJoinOpt => "SJoin_opt",
            Engine::Symmetric => "SymmetricHashJoin",
            Engine::Sharded { .. } => "Sharded",
        }
    }

    /// Whether the engine this descriptor builds accepts
    /// `StreamOp::Delete` — the static side of the update-model contract
    /// (ARCHITECTURE.md, "Update model"). Matches
    /// `JoinSampler::supports_deletes` on the built sampler.
    ///
    /// Every engine family is fully dynamic: `RSJoin` repairs by
    /// eviction-and-backfill, `SJoin` and `SymmetricHashJoin` recalibrate
    /// against their exact live counts, `NaiveRebuild` rebuilds, the
    /// `_opt` rewrites run their foreign-key combiner as a signed delta
    /// pipeline (retractions withdraw combined tuples and re-park rewound
    /// facts), and the cyclic GHD driver forwards each bag's dead delta
    /// into its inner acyclic driver's delete path. `Sharded` mirrors its
    /// inner engine, so the whole matrix reduces to this one method — the
    /// doc table in ARCHITECTURE.md is checked against it by test.
    pub fn supports_deletes(&self) -> bool {
        match self {
            Engine::Sharded { inner, .. } => inner.supports_deletes(),
            _ => true,
        }
    }

    /// Whether this engine can run the query at all: the `RSJoin`/`SJoin`
    /// families need an acyclic query, the symmetric hash join needs
    /// exactly two relations, `Cyclic`/`Naive` take anything, and the
    /// sharded wrapper takes whatever its inner engine takes.
    pub fn supports(&self, query: &Query) -> bool {
        match self {
            Engine::Cyclic | Engine::Naive => true,
            Engine::Symmetric => query.num_relations() == 2,
            Engine::Reservoir | Engine::FkReservoir | Engine::SJoin | Engine::SJoinOpt => {
                JoinTree::build(query).is_some()
            }
            Engine::Sharded { inner, .. } => inner.supports(query),
        }
    }

    /// Constructs the engine for `query`, maintaining `k` uniform samples,
    /// seeded with `seed`.
    pub fn build(
        &self,
        query: &Query,
        k: usize,
        seed: u64,
        opts: &EngineOpts,
    ) -> Result<Box<dyn JoinSampler + Send>, EngineError> {
        if !self.supports(query) {
            return Err(EngineError::Unsupported(format!(
                "{} cannot run {}-relation {} query",
                self.name(),
                query.num_relations(),
                if JoinTree::build(query).is_some() {
                    "acyclic"
                } else {
                    "cyclic"
                }
            )));
        }
        let fks = || {
            opts.fks
                .clone()
                .unwrap_or_else(|| FkSchema::none(query.num_relations()))
        };
        // Engines with no plan choice (or whose indexed query is a rewrite
        // of `query`) cannot honour an explicit plan; failing loudly beats
        // silently running a different orientation than the caller asked
        // for.
        let reject_plan = || -> Result<(), EngineError> {
            match &opts.plan {
                Some(_) => Err(EngineError::Build(format!(
                    "{} cannot honour an explicit plan (no plan choice, or it \
                     indexes a rewritten query); leave EngineOpts::plan unset",
                    self.name()
                ))),
                None => Ok(()),
            }
        };
        match self {
            Engine::Reservoir => match &opts.plan {
                Some(plan) => {
                    if plan.tree.len() != query.num_relations() {
                        return Err(EngineError::Build(format!(
                            "plan tree spans {} relations but the query has {}",
                            plan.tree.len(),
                            query.num_relations()
                        )));
                    }
                    ReservoirJoin::with_plan(query.clone(), k, seed, opts.index, plan.clone())
                        .map(|e| Box::new(e) as Box<dyn JoinSampler + Send>)
                        .map_err(|e| EngineError::Build(e.to_string()))
                }
                None => ReservoirJoin::with_options(query.clone(), k, seed, opts.index)
                    .map(|e| Box::new(e) as Box<dyn JoinSampler + Send>)
                    .map_err(|e| EngineError::Build(e.to_string())),
            },
            Engine::FkReservoir => {
                reject_plan()?;
                FkReservoirJoin::with_options(query, &fks(), k, seed, opts.index)
                    .map(|e| Box::new(e) as Box<dyn JoinSampler + Send>)
                    .map_err(|e| EngineError::Build(e.to_string()))
            }
            Engine::Cyclic => {
                reject_plan()?;
                CyclicReservoirJoin::with_options(query.clone(), k, seed, opts.index)
                    .map(|e| Box::new(e) as Box<dyn JoinSampler + Send>)
                    .map_err(|e| EngineError::Build(e.to_string()))
            }
            Engine::Naive => {
                reject_plan()?;
                Ok(Box::new(NaiveRebuild::new(query.clone(), k, seed)))
            }
            Engine::SJoin => {
                reject_plan()?;
                SJoin::new(query.clone(), k, seed)
                    .map(|e| Box::new(e) as Box<dyn JoinSampler + Send>)
                    .map_err(EngineError::Build)
            }
            Engine::SJoinOpt => {
                reject_plan()?;
                SJoinOpt::new(query, &fks(), k, seed)
                    .map(|e| Box::new(e) as Box<dyn JoinSampler + Send>)
                    .map_err(EngineError::Build)
            }
            Engine::Symmetric => {
                reject_plan()?;
                SymmetricSampler::new(query.clone(), k, seed)
                    .map(|e| Box::new(e) as Box<dyn JoinSampler + Send>)
                    .map_err(EngineError::Build)
            }
            Engine::Sharded { inner, shards } => {
                if matches!(**inner, Engine::Sharded { .. }) {
                    return Err(EngineError::Unsupported(
                        "nested sharding is not supported".to_string(),
                    ));
                }
                if opts.plan.is_some() && !matches!(**inner, Engine::Reservoir) {
                    // The partition attribute applies to any inner engine,
                    // but the plan's tree only to the plain RSJoin; keep
                    // the contract simple and reject mixed cases.
                    return Err(EngineError::Build(
                        "explicit plans under Engine::Sharded require an \
                         Engine::Reservoir inner engine"
                            .to_string(),
                    ));
                }
                let partition_attr = opts.plan.as_ref().map(|p| p.partition_attr);
                let policy = opts.supervision.unwrap_or_default();
                let inner_engine = (**inner).clone();
                let build_query = query.clone();
                let build_opts = opts.clone();
                ShardedSampler::with_policy(
                    query,
                    k,
                    seed,
                    *shards,
                    partition_attr,
                    policy,
                    move |shard_seed| {
                        inner_engine
                            .build(&build_query, k, shard_seed, &build_opts)
                            .map_err(|e| e.to_string())
                    },
                )
                .map(|e| Box::new(e) as Box<dyn JoinSampler + Send>)
                .map_err(|e| EngineError::Build(e.to_string()))
            }
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Sharded { inner, shards } => write!(f, "Sharded<{inner}x{shards}>"),
            _ => f.write_str(self.name()),
        }
    }
}

/// The per-workload engine options: the workload's FK metadata with
/// default index tuning.
pub fn workload_opts(w: &Workload) -> EngineOpts {
    EngineOpts {
        fks: Some(w.fks.clone()),
        ..EngineOpts::default()
    }
}

/// Builds `engine` for a packaged [`Workload`] and streams its preload
/// then its input stream through the trait — the one driver loop tests
/// and examples share (`rsj-bench` layers its timing cap on top of the
/// same primitives).
pub fn run_workload(
    w: &Workload,
    engine: &Engine,
    k: usize,
    seed: u64,
) -> Result<Box<dyn JoinSampler + Send>, EngineError> {
    let mut s = engine.build(&w.query, k, seed, &workload_opts(w))?;
    // Native columnar ingest: both phases ship as struct-of-arrays batches
    // with bulk-hashed keys. Engines without a columnar override shred the
    // batch back tuple-at-a-time, so every engine sees the same arrival
    // order (and the RSJoin family the same bytes) as the row path.
    s.process_columnar(&rsj_storage::ColumnarBatch::from_rows(&w.preload));
    s.process_columnar(&rsj_storage::ColumnarBatch::from(&w.stream));
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_storage::TupleStream;

    fn two_table() -> Query {
        let mut qb = rsj_query::QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        qb.build().unwrap()
    }

    fn triangle() -> Query {
        let mut qb = rsj_query::QueryBuilder::new();
        qb.relation("R1", &["X", "Y"]);
        qb.relation("R2", &["Y", "Z"]);
        qb.relation("R3", &["Z", "X"]);
        qb.build().unwrap()
    }

    #[test]
    fn all_engines_build_on_two_table() {
        for engine in Engine::ALL {
            let s = engine
                .build(&two_table(), 10, 1, &EngineOpts::default())
                .unwrap_or_else(|e| panic!("{engine}: {e}"));
            assert_eq!(s.k(), 10, "{engine}");
        }
    }

    #[test]
    fn cyclic_queries_reject_acyclic_only_engines() {
        let q = triangle();
        for engine in [Engine::Reservoir, Engine::FkReservoir, Engine::SJoin] {
            assert!(!engine.supports(&q));
            assert!(matches!(
                engine.build(&q, 10, 1, &EngineOpts::default()),
                Err(EngineError::Unsupported(_))
            ));
        }
        assert!(Engine::Cyclic.supports(&q));
        assert!(Engine::Naive.supports(&q));
        assert!(!Engine::Symmetric.supports(&q), "3 relations");
    }

    #[test]
    fn sharded_engine_builds_and_matches_unsharded_results() {
        let q = two_table();
        let mut stream = TupleStream::new();
        let mut rng = rsj_common::rng::RsjRng::seed_from_u64(77);
        for _ in 0..200 {
            stream.push(rng.index(2), vec![rng.below_u64(6), rng.below_u64(6)]);
        }
        let collect = |engine: &Engine| {
            let mut s = engine
                .build(&q, 1 << 20, 3, &EngineOpts::default())
                .unwrap();
            s.process_stream(&stream);
            s.samples_named()
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
        };
        let truth = collect(&Engine::Reservoir);
        assert!(!truth.is_empty());
        for shards in [1, 4] {
            let sharded = Engine::sharded(Engine::Reservoir, shards);
            assert_eq!(sharded.name(), "Sharded");
            assert_eq!(format!("{sharded}"), format!("Sharded<RSJoinx{shards}>"));
            assert_eq!(collect(&sharded), truth, "{sharded}");
        }
    }

    #[test]
    fn sharded_supports_mirrors_inner() {
        let tri = triangle();
        assert!(!Engine::sharded(Engine::Reservoir, 2).supports(&tri));
        assert!(Engine::sharded(Engine::Cyclic, 2).supports(&tri));
        assert!(!Engine::sharded(Engine::Symmetric, 2).supports(&tri));
        assert!(Engine::sharded(Engine::Symmetric, 2).supports(&two_table()));
    }

    #[test]
    fn sharded_rejects_degenerate_configurations() {
        let q = two_table();
        assert!(matches!(
            Engine::sharded(Engine::Reservoir, 0).build(&q, 10, 1, &EngineOpts::default()),
            Err(EngineError::Build(_))
        ));
        let nested = Engine::sharded(Engine::sharded(Engine::Reservoir, 2), 2);
        assert!(matches!(
            nested.build(&q, 10, 1, &EngineOpts::default()),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn engine_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            Engine::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), Engine::ALL.len());
    }

    #[test]
    fn index_options_reach_every_rsjoin_family_engine() {
        // Regression: the factory must route `opts.index` into the inner
        // acyclic driver of *all* RSJoin-family engines, not just the
        // plain one. Grouping on/off never changes results, so with
        // k >= |Q(R)| both configurations collect the identical set.
        let q = two_table();
        let mut stream = TupleStream::new();
        let mut rng = rsj_common::rng::RsjRng::seed_from_u64(5);
        for _ in 0..120 {
            stream.push(rng.index(2), vec![rng.below_u64(4), rng.below_u64(4)]);
        }
        for engine in [Engine::Reservoir, Engine::FkReservoir, Engine::Cyclic] {
            let run = |grouping: bool| {
                let opts = EngineOpts {
                    index: IndexOptions { grouping },
                    ..EngineOpts::default()
                };
                let mut s = engine.build(&q, 1 << 20, 1, &opts).unwrap();
                s.process_stream(&stream);
                s.samples_named()
                    .into_iter()
                    .collect::<std::collections::BTreeSet<_>>()
            };
            let with = run(true);
            assert!(!with.is_empty(), "{engine}");
            assert_eq!(with, run(false), "{engine}");
        }
    }
}
