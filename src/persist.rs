//! The durability layer: a write-ahead log plus periodic checkpoints
//! around any snapshot-capable [`JoinSampler`].
//!
//! [`Persistent`] wraps an engine and gives its turnstile stream crash
//! recovery with **byte-identical** semantics: every op is appended to a
//! segmented, checksummed WAL (`rsj_storage::wal::Wal`) *before* it is
//! applied to the engine, and on a checkpoint the engine's complete
//! dynamic state (`JoinSampler::snapshot_state`) is written atomically
//! next to the log, which is then truncated. Recovery restores the last
//! checkpoint and replays the log suffix — the recovered engine is
//! byte-for-byte the engine that would have resulted from an
//! uninterrupted run of the same flushed prefix, including its future
//! random choices.
//!
//! ```text
//!   op ──▶ wal.append ──▶ engine.process_op
//!                │
//!                └─ every N ops: checkpoint = snapshot_state @ lsn
//!                               wal.truncate_at_checkpoint()
//! ```
//!
//! The recovery invariant the crash tests pin (tests/recovery.rs): after a
//! kill at any op boundary, `Persistent::open` with the same engine
//! builder restores exactly the flushed prefix — finishing the stream then
//! yields the same sample digest as a run that never crashed. See
//! ARCHITECTURE.md, "Durability".

use rsj_core::{JoinSampler, RebuildFn, SamplerService, SamplerStats};
use rsj_storage::wal::{Checkpoint, Sleeper, Wal, WalError, WalFs, WalOptions};
use rsj_storage::StreamOp;
use std::path::{Path, PathBuf};

/// File name of the checkpoint inside the durability directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.rsjc";

/// Engine tag [`PersistentService`] writes into its checkpoints, so a
/// service checkpoint can never be restored into a single-engine wrapper
/// (or vice versa) silently.
pub const SERVICE_ENGINE: &str = "SamplerService";

/// When the wrapper takes a checkpoint on its own.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Checkpoint after every `n` logged ops (and truncate the log).
    EveryOps(u64),
    /// Only when [`Persistent::checkpoint`] is called explicitly.
    Manual,
}

/// Whether the durability guarantee currently holds.
///
/// The wrapper degrades instead of failing when the log runs out of space:
/// reads keep working, ops keep flowing to the engine, and the lost logging
/// is reported here until a successful checkpoint re-establishes a durable
/// baseline (the checkpoint captures the engine state *including* the
/// unlogged ops, so recovery coverage is restored in full).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DurabilityHealth {
    /// Every applied op is covered by the log or a checkpoint.
    Durable,
    /// Logging is lost: ops since `since_lsn` are applied to the engine but
    /// not recoverable until the next successful checkpoint.
    Degraded {
        /// Ops applied without log coverage so far.
        lost_ops: u64,
        /// First LSN whose durability is no longer guaranteed.
        since_lsn: u64,
    },
}

/// Why a durable operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// The wrapped engine has no snapshot capability
    /// (`JoinSampler::supports_snapshot` is `false`).
    Unsupported(&'static str),
    /// WAL or checkpoint I/O / integrity failure.
    Wal(WalError),
    /// The engine rejected restored state or a replayed op.
    Engine(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Unsupported(engine) => {
                write!(f, "engine {engine} does not support state snapshots")
            }
            PersistError::Wal(e) => write!(f, "wal failure: {e}"),
            PersistError::Engine(m) => write!(f, "engine failure: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<WalError> for PersistError {
    fn from(e: WalError) -> PersistError {
        PersistError::Wal(e)
    }
}

/// A [`JoinSampler`] with crash recovery: WAL-logged ops, periodic atomic
/// checkpoints, byte-identical restore (see the [module docs](self)).
///
/// The wrapper owns a durability directory holding the log segments and
/// the checkpoint file. Ops flow through [`process_op`](Persistent::process_op);
/// reads pass through to the engine.
pub struct Persistent<S: JoinSampler> {
    inner: S,
    wal: Wal,
    checkpoint_path: PathBuf,
    policy: CheckpointPolicy,
    ops_since_checkpoint: u64,
    /// First LSN with lost logging, set when the log hit out-of-space.
    lost_since: Option<u64>,
    /// Ops applied without log coverage while degraded.
    lost_ops: u64,
    /// Checkpoint attempts that failed (the previous checkpoint stayed
    /// valid each time — the write is atomic).
    checkpoint_failures: u64,
}

impl<S: JoinSampler> Persistent<S> {
    /// Wraps `inner` with durability rooted at `dir`, recovering any state
    /// already there: if a checkpoint exists it is restored into `inner`
    /// (which must be freshly built with the construction parameters of
    /// the original run), then the log suffix is replayed; a log without a
    /// checkpoint is replayed from the beginning.
    ///
    /// Fails with [`PersistError::Unsupported`] when the engine cannot
    /// snapshot, with [`PersistError::Wal`] on unrecoverable log damage
    /// (a torn tail on the final segment is fine — it is truncated), and
    /// with [`PersistError::Engine`] when the checkpoint belongs to a
    /// different engine or the state bytes do not fit.
    pub fn open(
        inner: S,
        dir: impl AsRef<Path>,
        policy: CheckpointPolicy,
    ) -> Result<Persistent<S>, PersistError> {
        Persistent::open_with(
            inner,
            dir,
            policy,
            WalOptions::default(),
            Box::new(rsj_storage::wal::RealFs::new()),
            Box::new(rsj_storage::wal::SystemSleeper),
        )
    }

    /// [`open`](Persistent::open) with explicit WAL tuning, filesystem
    /// shim, and backoff clock — the constructor the fault-injection
    /// harness uses to drive I/O errors through the whole durability
    /// stack.
    pub fn open_with(
        inner: S,
        dir: impl AsRef<Path>,
        policy: CheckpointPolicy,
        opts: WalOptions,
        fs: Box<dyn WalFs>,
        sleeper: Box<dyn Sleeper>,
    ) -> Result<Persistent<S>, PersistError> {
        let mut inner = inner;
        if !inner.supports_snapshot() {
            return Err(PersistError::Unsupported(inner.name()));
        }
        let dir = dir.as_ref();
        let mut wal = Wal::open_with(dir.join("wal"), opts, fs, sleeper)?;
        let checkpoint_path = dir.join(CHECKPOINT_FILE);
        let mut from_lsn = 0;
        if checkpoint_path.exists() {
            let cp = Checkpoint::read_from(&checkpoint_path)?;
            if cp.engine != inner.name() {
                return Err(PersistError::Engine(format!(
                    "checkpoint was written by engine {} but {} is being restored",
                    cp.engine,
                    inner.name()
                )));
            }
            inner
                .restore_state(&cp.state)
                .map_err(|e| PersistError::Engine(format!("checkpoint state rejected: {e}")))?;
            from_lsn = cp.lsn;
        }
        for op in &wal.replay_from(from_lsn)? {
            inner
                .process_op(op)
                .map_err(|e| PersistError::Engine(e.to_string()))?;
        }
        Ok(Persistent {
            inner,
            wal,
            checkpoint_path,
            policy,
            ops_since_checkpoint: 0,
            lost_since: None,
            lost_ops: 0,
            checkpoint_failures: 0,
        })
    }

    /// Logs one op, applies it to the engine, and checkpoints when the
    /// policy says so. The append is buffered — call
    /// [`flush`](Persistent::flush) (or [`sync`](Persistent::sync)) to
    /// make it crash-durable; the recovery invariant covers the flushed
    /// prefix.
    ///
    /// **Out of space degrades instead of failing.** When the append hits
    /// `ENOSPC` the op is still applied to the engine, the wrapper enters
    /// degraded mode (see [`health`](Persistent::health)), and this call
    /// returns the out-of-space error exactly once so the caller learns
    /// about the lost durability. Subsequent ops skip the log silently,
    /// are counted as lost, and keep serving reads; a later successful
    /// checkpoint heals the wrapper (its snapshot covers the unlogged
    /// ops). Any other WAL error is returned without applying the op.
    pub fn process_op(&mut self, op: &StreamOp) -> Result<(), PersistError> {
        let mut just_degraded: Option<WalError> = None;
        if self.lost_since.is_some() {
            self.lost_ops += 1;
        } else {
            match self.wal.append(op) {
                Ok(_) => {}
                Err(e) if e.is_out_of_space() => {
                    self.lost_since = Some(self.wal.flushed_lsn());
                    self.lost_ops = 1;
                    just_degraded = Some(e);
                }
                Err(e) => return Err(e.into()),
            }
        }
        self.inner
            .process_op(op)
            .map_err(|e| PersistError::Engine(e.to_string()))?;
        self.ops_since_checkpoint += 1;
        if let CheckpointPolicy::EveryOps(n) = self.policy {
            if self.ops_since_checkpoint >= n {
                // Policy-driven checkpoints are non-fatal: a failure counts
                // and re-arms the policy (checkpoint() does both), the
                // previous checkpoint stays valid, and the op itself
                // already succeeded.
                let _ = self.checkpoint();
            }
        }
        match just_degraded {
            Some(e) => Err(PersistError::Wal(e)),
            None => Ok(()),
        }
    }

    /// Convenience insert mirroring [`JoinSampler::process`].
    pub fn process(&mut self, rel: usize, tuple: &[rsj_common::Value]) -> Result<(), PersistError> {
        self.process_op(&StreamOp::insert(rel, tuple.to_vec()))
    }

    /// Takes a checkpoint now: snapshots the engine at the current LSN,
    /// writes it atomically (tmp + rename), then truncates the log so it
    /// holds only ops after the checkpoint.
    ///
    /// A failed attempt never damages recoverability: the write is atomic,
    /// so the previous checkpoint (and the log) stay valid, the failure is
    /// counted ([`checkpoint_failures`](Persistent::checkpoint_failures)),
    /// and the policy window is re-armed so a later attempt retries. A
    /// successful checkpoint also heals a degraded wrapper — its snapshot
    /// includes any ops that were applied without log coverage.
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        let state = self
            .inner
            .snapshot_state()
            .ok_or(PersistError::Unsupported(self.inner.name()))?;
        let cp = Checkpoint {
            engine: self.inner.name().to_string(),
            lsn: self.wal.next_lsn(),
            state,
        };
        let attempt = (|| -> Result<(), PersistError> {
            self.wal
                .write_atomic(&self.checkpoint_path, &cp.to_bytes())?;
            self.wal.truncate_at_checkpoint()?;
            Ok(())
        })();
        // Either way the policy window restarts: on success because the
        // checkpoint is the new baseline, on failure so one bad attempt
        // does not turn into an attempt per op.
        self.ops_since_checkpoint = 0;
        match attempt {
            Ok(()) => {
                self.lost_since = None;
                self.lost_ops = 0;
                Ok(())
            }
            Err(e) => {
                self.checkpoint_failures += 1;
                Err(e)
            }
        }
    }

    /// Pushes buffered log appends to the OS (what the crash tests call
    /// before a simulated kill).
    pub fn flush(&mut self) -> Result<(), PersistError> {
        self.wal.flush()?;
        Ok(())
    }

    /// Flushes and `fdatasync`s the active log segment.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.wal.sync()?;
        Ok(())
    }

    /// LSN the next op will get — equals the total number of ops ever
    /// logged through this directory.
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// Ops logged since the last checkpoint (the policy counter).
    pub fn ops_since_checkpoint(&self) -> u64 {
        self.ops_since_checkpoint
    }

    /// Whether every applied op is currently recoverable (see
    /// [`DurabilityHealth`]).
    pub fn health(&self) -> DurabilityHealth {
        match self.lost_since {
            None => DurabilityHealth::Durable,
            Some(since_lsn) => DurabilityHealth::Degraded {
                lost_ops: self.lost_ops,
                since_lsn,
            },
        }
    }

    /// Transient I/O errors absorbed by the WAL's retry/backoff so far.
    pub fn retries(&self) -> u64 {
        self.wal.retries()
    }

    /// Checkpoint attempts that failed non-fatally (the previous
    /// checkpoint stayed valid each time).
    pub fn checkpoint_failures(&self) -> u64 {
        self.checkpoint_failures
    }

    /// The engine's stats with the durability counters filled in:
    /// `retries` accumulates the WAL's absorbed transient errors onto
    /// whatever the engine reports, and `degraded` is `1` while logging is
    /// lost (see [`health`](Persistent::health)).
    pub fn stats(&self) -> SamplerStats {
        let mut s = self.inner.stats();
        s.retries = Some(s.retries.unwrap_or(0) + self.wal.retries());
        s.degraded = Some(s.degraded.unwrap_or(0) + u64::from(self.lost_since.is_some()));
        s
    }

    /// The wrapped engine, for reads (`samples`, `stats`, ...).
    pub fn engine(&self) -> &S {
        &self.inner
    }

    /// The wrapped engine, mutably — for maintenance calls like
    /// [`JoinSampler::replan`] that do not consume stream ops. Feeding the
    /// engine tuples through this reference bypasses the log and forfeits
    /// recovery; use [`process_op`](Persistent::process_op).
    pub fn engine_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the engine, dropping durability (the log is flushed by
    /// `Wal`'s drop).
    pub fn into_engine(self) -> S {
        self.inner
    }
}

/// Durability for the resident [`SamplerService`]: the same
/// append-then-apply WAL discipline as [`Persistent`], wrapped around the
/// whole service — one log covers every registered query, because they
/// all consume the one retained stream.
///
/// What is durable when:
///
/// * **Ops** are covered from the moment
///   [`process_op`](PersistentService::process_op) returns (flushed
///   prefix, as for [`Persistent`]). Every op is validated
///   ([`SamplerService::validate_op`]) *before* it is logged, so nothing
///   reaches the WAL that recovery replay would reject.
/// * **Registrations** are part of checkpoints, not the log: a
///   [`checkpoint`](PersistentService::checkpoint) captures the full
///   service (store, shared indexes, member cores, boxed engine states).
///   A query registered after the last checkpoint is absent after
///   recovery — re-registering it backfills from the recovered history
///   and lands byte-identical, so the loss is recoverable; checkpoint
///   after registration churn to avoid it entirely.
///
/// This wrapper is the strict path: a WAL error fails the op without
/// applying it. The out-of-space degradation machinery (serve
/// non-durably, heal at the next checkpoint) lives in [`Persistent`].
pub struct PersistentService {
    inner: SamplerService,
    wal: Wal,
    checkpoint_path: PathBuf,
    policy: CheckpointPolicy,
    ops_since_checkpoint: u64,
}

impl PersistentService {
    /// Wraps `inner` (freshly built over the original run's universe)
    /// with durability rooted at `dir`, recovering any state already
    /// there: an existing checkpoint is restored into `inner` — boxed
    /// members are rebuilt through `rebuild(engine_name, k)`, see
    /// [`SamplerService::restore_from_snapshot`] — and the log suffix is
    /// replayed through the service.
    pub fn open(
        inner: SamplerService,
        dir: impl AsRef<Path>,
        policy: CheckpointPolicy,
        rebuild: &mut RebuildFn,
    ) -> Result<PersistentService, PersistError> {
        Self::open_with(
            inner,
            dir,
            policy,
            rebuild,
            WalOptions::default(),
            Box::new(rsj_storage::wal::RealFs::new()),
            Box::new(rsj_storage::wal::SystemSleeper),
        )
    }

    /// [`open`](PersistentService::open) with explicit WAL tuning,
    /// filesystem shim, and backoff clock (the fault-injection entry
    /// point, as for [`Persistent::open_with`]).
    pub fn open_with(
        inner: SamplerService,
        dir: impl AsRef<Path>,
        policy: CheckpointPolicy,
        rebuild: &mut RebuildFn,
        opts: WalOptions,
        fs: Box<dyn WalFs>,
        sleeper: Box<dyn Sleeper>,
    ) -> Result<PersistentService, PersistError> {
        let mut inner = inner;
        let dir = dir.as_ref();
        let mut wal = Wal::open_with(dir.join("wal"), opts, fs, sleeper)?;
        let checkpoint_path = dir.join(CHECKPOINT_FILE);
        let mut from_lsn = 0;
        if checkpoint_path.exists() {
            let cp = Checkpoint::read_from(&checkpoint_path)?;
            if cp.engine != SERVICE_ENGINE {
                return Err(PersistError::Engine(format!(
                    "checkpoint was written by engine {} but a service is being restored",
                    cp.engine
                )));
            }
            let mut dec = rsj_common::codec::Decoder::new(&cp.state);
            inner
                .restore_from_snapshot(&mut dec, rebuild)
                .and_then(|()| dec.finish())
                .map_err(|e| PersistError::Engine(format!("checkpoint state rejected: {e}")))?;
            from_lsn = cp.lsn;
        }
        for op in &wal.replay_from(from_lsn)? {
            inner
                .process_op(op)
                .map_err(|e| PersistError::Engine(e.to_string()))?;
        }
        Ok(PersistentService {
            inner,
            wal,
            checkpoint_path,
            policy,
            ops_since_checkpoint: 0,
        })
    }

    /// Validates, logs, and applies one op, checkpointing when the policy
    /// says so. Validation failures and WAL errors fail the call without
    /// applying anything.
    pub fn process_op(&mut self, op: &StreamOp) -> Result<u64, PersistError> {
        self.inner
            .validate_op(op)
            .map_err(|e| PersistError::Engine(e.to_string()))?;
        self.wal.append(op)?;
        let lsn = self
            .inner
            .process_op(op)
            .map_err(|e| PersistError::Engine(e.to_string()))?;
        self.ops_since_checkpoint += 1;
        if let CheckpointPolicy::EveryOps(n) = self.policy {
            if self.ops_since_checkpoint >= n {
                // Non-fatal, as for Persistent: the previous checkpoint
                // stays valid and the window re-arms.
                let _ = self.checkpoint();
            }
        }
        Ok(lsn)
    }

    /// Takes a checkpoint of the whole service now (atomic write, then
    /// log truncation). Fails without damaging recoverability when a
    /// registered boxed engine cannot snapshot or on I/O errors — the
    /// previous checkpoint and the log stay valid.
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        let mut enc = rsj_common::codec::Encoder::new();
        self.inner
            .snapshot_to(&mut enc)
            .map_err(|e| PersistError::Engine(e.to_string()))?;
        let cp = Checkpoint {
            engine: SERVICE_ENGINE.to_string(),
            lsn: self.wal.next_lsn(),
            state: enc.into_bytes(),
        };
        self.ops_since_checkpoint = 0;
        self.wal
            .write_atomic(&self.checkpoint_path, &cp.to_bytes())?;
        self.wal.truncate_at_checkpoint()?;
        Ok(())
    }

    /// Pushes buffered log appends to the OS.
    pub fn flush(&mut self) -> Result<(), PersistError> {
        self.wal.flush()?;
        Ok(())
    }

    /// Flushes and `fdatasync`s the active log segment.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.wal.sync()?;
        Ok(())
    }

    /// LSN the next op will get.
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// Ops logged since the last checkpoint.
    pub fn ops_since_checkpoint(&self) -> u64 {
        self.ops_since_checkpoint
    }

    /// The wrapped service, for reads and registration
    /// ([`SamplerService::register`] backfills from the retained history;
    /// checkpoint afterwards to make the registration durable).
    pub fn service(&self) -> &SamplerService {
        &self.inner
    }

    /// The wrapped service, mutably — registration and deregistration go
    /// through here. Feeding stream ops through this reference bypasses
    /// the log and forfeits recovery; use
    /// [`process_op`](PersistentService::process_op).
    pub fn service_mut(&mut self) -> &mut SamplerService {
        &mut self.inner
    }

    /// Unwraps the service, dropping durability.
    pub fn into_service(self) -> SamplerService {
        self.inner
    }
}
