//! The durability layer: a write-ahead log plus periodic checkpoints
//! around any snapshot-capable [`JoinSampler`].
//!
//! [`Persistent`] wraps an engine and gives its turnstile stream crash
//! recovery with **byte-identical** semantics: every op is appended to a
//! segmented, checksummed WAL (`rsj_storage::wal::Wal`) *before* it is
//! applied to the engine, and on a checkpoint the engine's complete
//! dynamic state (`JoinSampler::snapshot_state`) is written atomically
//! next to the log, which is then truncated. Recovery restores the last
//! checkpoint and replays the log suffix — the recovered engine is
//! byte-for-byte the engine that would have resulted from an
//! uninterrupted run of the same flushed prefix, including its future
//! random choices.
//!
//! ```text
//!   op ──▶ wal.append ──▶ engine.process_op
//!                │
//!                └─ every N ops: checkpoint = snapshot_state @ lsn
//!                               wal.truncate_at_checkpoint()
//! ```
//!
//! The recovery invariant the crash tests pin (tests/recovery.rs): after a
//! kill at any op boundary, `Persistent::open` with the same engine
//! builder restores exactly the flushed prefix — finishing the stream then
//! yields the same sample digest as a run that never crashed. See
//! ARCHITECTURE.md, "Durability".

use rsj_core::JoinSampler;
use rsj_storage::wal::{Checkpoint, Wal, WalError};
use rsj_storage::StreamOp;
use std::path::{Path, PathBuf};

/// File name of the checkpoint inside the durability directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.rsjc";

/// When the wrapper takes a checkpoint on its own.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Checkpoint after every `n` logged ops (and truncate the log).
    EveryOps(u64),
    /// Only when [`Persistent::checkpoint`] is called explicitly.
    Manual,
}

/// Why a durable operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// The wrapped engine has no snapshot capability
    /// (`JoinSampler::supports_snapshot` is `false`).
    Unsupported(&'static str),
    /// WAL or checkpoint I/O / integrity failure.
    Wal(WalError),
    /// The engine rejected restored state or a replayed op.
    Engine(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Unsupported(engine) => {
                write!(f, "engine {engine} does not support state snapshots")
            }
            PersistError::Wal(e) => write!(f, "wal failure: {e}"),
            PersistError::Engine(m) => write!(f, "engine failure: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<WalError> for PersistError {
    fn from(e: WalError) -> PersistError {
        PersistError::Wal(e)
    }
}

/// A [`JoinSampler`] with crash recovery: WAL-logged ops, periodic atomic
/// checkpoints, byte-identical restore (see the [module docs](self)).
///
/// The wrapper owns a durability directory holding the log segments and
/// the checkpoint file. Ops flow through [`process_op`](Persistent::process_op);
/// reads pass through to the engine.
pub struct Persistent<S: JoinSampler> {
    inner: S,
    wal: Wal,
    checkpoint_path: PathBuf,
    policy: CheckpointPolicy,
    ops_since_checkpoint: u64,
}

impl<S: JoinSampler> Persistent<S> {
    /// Wraps `inner` with durability rooted at `dir`, recovering any state
    /// already there: if a checkpoint exists it is restored into `inner`
    /// (which must be freshly built with the construction parameters of
    /// the original run), then the log suffix is replayed; a log without a
    /// checkpoint is replayed from the beginning.
    ///
    /// Fails with [`PersistError::Unsupported`] when the engine cannot
    /// snapshot, with [`PersistError::Wal`] on unrecoverable log damage
    /// (a torn tail on the final segment is fine — it is truncated), and
    /// with [`PersistError::Engine`] when the checkpoint belongs to a
    /// different engine or the state bytes do not fit.
    pub fn open(
        inner: S,
        dir: impl AsRef<Path>,
        policy: CheckpointPolicy,
    ) -> Result<Persistent<S>, PersistError> {
        let mut inner = inner;
        if !inner.supports_snapshot() {
            return Err(PersistError::Unsupported(inner.name()));
        }
        let dir = dir.as_ref();
        let mut wal = Wal::open(dir.join("wal"))?;
        let checkpoint_path = dir.join(CHECKPOINT_FILE);
        let mut from_lsn = 0;
        if checkpoint_path.exists() {
            let cp = Checkpoint::read_from(&checkpoint_path)?;
            if cp.engine != inner.name() {
                return Err(PersistError::Engine(format!(
                    "checkpoint was written by engine {} but {} is being restored",
                    cp.engine,
                    inner.name()
                )));
            }
            inner
                .restore_state(&cp.state)
                .map_err(|e| PersistError::Engine(format!("checkpoint state rejected: {e}")))?;
            from_lsn = cp.lsn;
        }
        for op in &wal.replay_from(from_lsn)? {
            inner
                .process_op(op)
                .map_err(|e| PersistError::Engine(e.to_string()))?;
        }
        Ok(Persistent {
            inner,
            wal,
            checkpoint_path,
            policy,
            ops_since_checkpoint: 0,
        })
    }

    /// Logs one op, applies it to the engine, and checkpoints when the
    /// policy says so. The append is buffered — call
    /// [`flush`](Persistent::flush) (or [`sync`](Persistent::sync)) to
    /// make it crash-durable; the recovery invariant covers the flushed
    /// prefix.
    pub fn process_op(&mut self, op: &StreamOp) -> Result<(), PersistError> {
        self.wal.append(op)?;
        self.inner
            .process_op(op)
            .map_err(|e| PersistError::Engine(e.to_string()))?;
        self.ops_since_checkpoint += 1;
        if let CheckpointPolicy::EveryOps(n) = self.policy {
            if self.ops_since_checkpoint >= n {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Convenience insert mirroring [`JoinSampler::process`].
    pub fn process(&mut self, rel: usize, tuple: &[rsj_common::Value]) -> Result<(), PersistError> {
        self.process_op(&StreamOp::insert(rel, tuple.to_vec()))
    }

    /// Takes a checkpoint now: snapshots the engine at the current LSN,
    /// writes it atomically (tmp + rename), then truncates the log so it
    /// holds only ops after the checkpoint.
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        let state = self
            .inner
            .snapshot_state()
            .ok_or(PersistError::Unsupported(self.inner.name()))?;
        let cp = Checkpoint {
            engine: self.inner.name().to_string(),
            lsn: self.wal.next_lsn(),
            state,
        };
        cp.write_to(&self.checkpoint_path)?;
        self.wal.truncate_at_checkpoint()?;
        self.ops_since_checkpoint = 0;
        Ok(())
    }

    /// Pushes buffered log appends to the OS (what the crash tests call
    /// before a simulated kill).
    pub fn flush(&mut self) -> Result<(), PersistError> {
        self.wal.flush()?;
        Ok(())
    }

    /// Flushes and `fdatasync`s the active log segment.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.wal.sync()?;
        Ok(())
    }

    /// LSN the next op will get — equals the total number of ops ever
    /// logged through this directory.
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// Ops logged since the last checkpoint (the policy counter).
    pub fn ops_since_checkpoint(&self) -> u64 {
        self.ops_since_checkpoint
    }

    /// The wrapped engine, for reads (`samples`, `stats`, ...).
    pub fn engine(&self) -> &S {
        &self.inner
    }

    /// The wrapped engine, mutably — for maintenance calls like
    /// [`JoinSampler::replan`] that do not consume stream ops. Feeding the
    /// engine tuples through this reference bypasses the log and forfeits
    /// recovery; use [`process_op`](Persistent::process_op).
    pub fn engine_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the engine, dropping durability (the log is flushed by
    /// `Wal`'s drop).
    pub fn into_engine(self) -> S {
        self.inner
    }
}
