#![warn(missing_docs)]

//! # rsjoin — Reservoir Sampling over Joins
//!
//! A Rust implementation of *"Reservoir Sampling over Joins"* (Dai, Hu, Yi
//! — SIGMOD 2024): maintain `k` uniform samples **without replacement** of
//! the result of a join query while the input tuples stream in, in
//! near-linear total time `O(N log N + k log N log(N/k))` — even when the
//! join result itself is polynomially larger than the input.
//!
//! ## Quick start
//!
//! ```
//! use rsjoin::prelude::*;
//!
//! // SELECT * FROM R, S WHERE R.y = S.y  — natural join on attribute "y".
//! let mut qb = QueryBuilder::new();
//! qb.relation("R", &["x", "y"]);
//! qb.relation("S", &["y", "z"]);
//! let query = qb.build().unwrap();
//!
//! // Maintain 100 uniform samples of the join while tuples stream in.
//! let mut rj = ReservoirJoin::new(query, 100, /*seed*/ 7).unwrap();
//! rj.process(0, &[1, 2]); // R(x=1, y=2)
//! rj.process(1, &[2, 3]); // S(y=2, z=3)
//! assert_eq!(rj.samples(), &[vec![1, 2, 3]]); // (x, y, z)
//! ```
//!
//! ## What's inside
//!
//! | Component | Crate | Paper section |
//! |---|---|---|
//! | Reservoir sampling with a predicate | [`stream`] | §3 (Algs. 1, 4, 5) |
//! | Dynamic index for acyclic joins | [`index`] | §4 (Algs. 7–9) |
//! | Grouping & foreign-key optimizations | [`index`], [`core`] | §4.4 (Algs. 10–11) |
//! | `ReservoirJoin` driver | [`core`] | §3.4 (Alg. 6) |
//! | Cyclic joins via GHDs + generic join | [`core`], [`query`] | §5 |
//! | SJoin / symmetric / naive baselines | [`baselines`] | §6 |
//! | `JoinSampler` executor trait + [`engine::Engine`] factory | [`core`], [`engine`] | §6.1 (the engines compared) |
//! | Sharded parallel executor (`Engine::Sharded`) | [`core`], [`engine`] | beyond the paper |
//! | Cost-based planner + adaptive re-rooting (`replan`) | [`query`], [`storage`], [`core`] | beyond the paper |
//! | Durability: op-stream WAL + checkpoint/restore ([`persist`]) | [`storage`], facade | beyond the paper |
//! | Resident `SamplerService`: many queries, shared indexes, epoch readers | [`common`], [`storage`], [`core`], facade | beyond the paper |
//! | Workload generators & benchmark queries | [`datagen`], [`queries`] | §6.1, §6.3 |
//!
//! Every figure and table of the paper's evaluation has a regenerating
//! harness in `crates/bench` (see EXPERIMENTS.md); ARCHITECTURE.md maps
//! the crates and the executor/shard layers.

pub use rsj_baselines as baselines;
pub use rsj_common as common;
pub use rsj_core as core;
pub use rsj_datagen as datagen;
pub use rsj_index as index;
pub use rsj_queries as queries;
pub use rsj_query as query;
pub use rsj_storage as storage;
pub use rsj_stream as stream;

pub mod engine;
pub mod persist;

/// Compiles every `rust` code block in the README as a doctest, so the
/// quickstart can never drift from the actual API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::engine::{Engine, EngineError, EngineOpts};
    pub use crate::persist::{
        CheckpointPolicy, DurabilityHealth, PersistError, Persistent, PersistentService,
    };
    pub use rsj_baselines::{NaiveRebuild, SJoin, SJoinOpt, SymmetricHashJoin, SymmetricSampler};
    pub use rsj_common::rng::RsjRng;
    pub use rsj_common::EpochCell;
    pub use rsj_common::{Key, TupleId, Value};
    pub use rsj_core::{
        CyclicReservoirJoin, DeleteUnsupported, DynamicSampleIndex, FkReservoirJoin, JoinSampler,
        QueryHandle, QueryOpts, ReplanPolicy, ReservoirJoin, SampleReader, SampleSnapshot,
        SamplerService, SamplerStats, ServiceError, ServiceOpts, ShardError, ShardFault,
        ShardHealth, ShardPlan, ShardedSampler, SupervisorPolicy, INJECTED_FAULT,
    };
    pub use rsj_index::{DynamicIndex, FullSampler, IndexOptions};
    pub use rsj_query::{FkSchema, Ghd, JoinTree, Plan, PlanCost, Planner, Query, QueryBuilder};
    pub use rsj_storage::wal::{Checkpoint, RetryPolicy, Wal, WalError, WalFs, WalOptions};
    pub use rsj_storage::{
        ColumnarBatch, Database, InputTuple, OpStream, RelationColumns, StreamOp, TableStatistics,
        TupleStream,
    };
    pub use rsj_stream::{Batch, ClassicReservoir, FnBatch, Reservoir, SliceBatch};
}
