//! Concurrent ingestion pipeline: a producer thread streams tuples while
//! the sampling engine consumes them, and readers take consistent sample
//! snapshots at any time.
//!
//! Run with: `cargo run --example concurrent_ingest`
//!
//! This is the deployment shape the paper's streaming model implies: the
//! reservoir driver is single-writer (its state is one linear stream
//! fold), so ingestion runs on one thread behind a channel, and readers
//! get snapshots through a lock that is held only long enough to clone
//! `k` sample tuples.

use rsjoin::prelude::*;
use std::sync::mpsc;
use std::sync::{Arc, RwLock};
use std::thread;
use std::time::Duration;

fn main() {
    let mut qb = QueryBuilder::new();
    qb.relation("clicks", &["user", "page"]);
    qb.relation("purchases", &["user", "item"]);
    let query = qb.build().unwrap();

    let (tx, rx) = mpsc::sync_channel::<InputTuple>(1024);
    let snapshots: Arc<RwLock<Vec<Vec<Value>>>> = Arc::new(RwLock::new(Vec::new()));

    // Producer: a click/purchase stream with skewed users.
    let producer = thread::spawn(move || {
        let mut rng = RsjRng::seed_from_u64(1);
        for i in 0..200_000u64 {
            let user = rng.below_u64(1 + i / 100); // user base grows over time
            let t = if i % 10 == 0 {
                InputTuple::new(1, vec![user, rng.below_u64(500)]) // purchase
            } else {
                InputTuple::new(0, vec![user, rng.below_u64(10_000)]) // click
            };
            if tx.send(t).is_err() {
                return;
            }
        }
    });

    // Consumer: folds the stream into the reservoir, publishing snapshots.
    let consumer = {
        let snapshots = Arc::clone(&snapshots);
        thread::spawn(move || {
            let mut rj = ReservoirJoin::new(query, 50, 7).expect("acyclic");
            let mut since_publish = 0u32;
            for t in rx.iter() {
                rj.process(t.relation, &t.values);
                since_publish += 1;
                if since_publish == 10_000 {
                    *snapshots.write().unwrap() = rj.samples().to_vec();
                    since_publish = 0;
                }
            }
            *snapshots.write().unwrap() = rj.samples().to_vec();
            (rj.inserts(), rj.reservoir_stops())
        })
    };

    // Reader: polls snapshots while ingestion is running.
    for tick in 1..=5 {
        thread::sleep(Duration::from_millis(150));
        let snap = snapshots.read().unwrap().clone();
        println!(
            "tick {tick}: snapshot holds {} samples of clicks ⋈ purchases",
            snap.len()
        );
    }

    producer.join().unwrap();
    let (n, stops) = consumer.join().unwrap();
    let final_snap = snapshots.read().unwrap().clone();
    println!(
        "\ningested N = {n} tuples; reservoir stopped {stops} times; \
         final snapshot = {} samples",
        final_snap.len()
    );
    for s in final_snap.iter().take(5) {
        println!("  user={} page={} item={}", s[0], s[1], s[2]);
    }
    assert_eq!(final_snap.len(), 50);
}
