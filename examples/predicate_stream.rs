//! Reservoir sampling with a predicate, standalone (paper §3 / §6.3).
//!
//! Run with: `cargo run --example predicate_stream`
//!
//! The generalized reservoir algorithm is useful far beyond joins: here we
//! sample strings whose edit distance to a query string is small, from a
//! stream where the predicate is expensive to evaluate. The classic
//! algorithm (`RS`) must evaluate the predicate on *every* item; the
//! predicate-aware skip-based algorithm (`RSWP`) only evaluates it at its
//! reservoir stops — `O(Σ min(1, k/(r_i+1)))` of them.

use rsjoin::datagen::{levenshtein_within, StringStream, StringStreamConfig};
use rsjoin::prelude::*;
use std::time::Instant;

fn main() {
    let cfg = StringStreamConfig {
        len: 512,
        n: 20_000,
        density: 0.1,
        threshold: 16,
        seed: 3,
    };
    let s = StringStream::generate(&cfg);
    println!(
        "stream: {} strings of length {}, measured density {:.3}",
        cfg.n,
        cfg.len,
        s.measured_density()
    );

    let k = 200;

    // RS: classic reservoir — predicate on every item.
    let t0 = Instant::now();
    let mut rs = ClassicReservoir::new(k, 1);
    let mut evals_rs = 0u64;
    for item in &s.items {
        evals_rs += 1;
        if levenshtein_within(&s.query, item, cfg.threshold).is_some() {
            rs.offer(item.clone());
        }
    }
    let rs_time = t0.elapsed();

    // RSWP: skip-based with predicate — evaluation only at stops.
    let t0 = Instant::now();
    let mut rswp = Reservoir::new(k, 1);
    let mut evals_rswp = 0u64;
    let mut batch = SliceBatch::new(&s.items);
    rswp.process_batch(&mut batch, |item| {
        evals_rswp += 1;
        levenshtein_within(&s.query, &item, cfg.threshold).map(|_| item)
    });
    let rswp_time = t0.elapsed();

    println!("\n              time        predicate evaluations   samples");
    println!(
        "RS   (§3.1)  {:>9.1?}   {:>21}   {:>7}",
        rs_time,
        evals_rs,
        rs.samples().len()
    );
    println!(
        "RSWP (§3.2)  {:>9.1?}   {:>21}   {:>7}",
        rswp_time,
        evals_rswp,
        rswp.samples().len()
    );
    println!(
        "\nRSWP evaluated the predicate on {:.1}% of the stream and produced \
         an equally uniform sample.",
        100.0 * evals_rswp as f64 / evals_rs as f64
    );
    assert_eq!(rswp.samples().len(), k.min(rswp.samples().len()));
}
