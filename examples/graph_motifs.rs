//! Sampling graph motifs from an edge stream.
//!
//! Run with: `cargo run --example graph_motifs`
//!
//! The workload the paper's introduction motivates: the full set of
//! length-3 paths (or triangles) in a social graph is far too large to
//! materialize, but a uniform sample of them is enough for estimation or
//! for training. This example streams a skewed synthetic graph and
//! maintains samples of
//!
//! * length-3 paths (`line-3`, acyclic — the core `ReservoirJoin`), and
//! * triangles (cyclic — the GHD driver with worst-case-optimal deltas).

use rsjoin::datagen::GraphConfig;
use rsjoin::prelude::*;
use rsjoin::queries::line_k;

fn main() {
    let cfg = GraphConfig {
        nodes: 2_000,
        edges: 10_000,
        zipf: 1.0,
        seed: 42,
    };
    let edges = cfg.generate();
    println!(
        "graph: {} nodes, {} edges, max out-degree {}",
        cfg.nodes,
        edges.len(),
        rsjoin::datagen::graph::max_out_degree(&edges)
    );

    // --- Length-3 paths -------------------------------------------------
    let w = line_k(3, &edges, 1);
    let mut rj = ReservoirJoin::new(w.query.clone(), 20, 7).expect("line-3 acyclic");
    rj.process_stream(&w.stream);
    let bound = FullSampler::default().implicit_size(rj.index());
    println!(
        "\nline-3: ~{bound} length-3 paths; N = {} streamed tuples; \
         reservoir stopped only {} times",
        w.stream.len(),
        rj.reservoir_stops()
    );
    println!("  5 of the 20 uniform path samples (A -> B -> C -> D):");
    for s in rj.samples().iter().take(5) {
        println!("    {} -> {} -> {} -> {}", s[0], s[1], s[2], s[3]);
    }

    // --- Triangles (cyclic) ----------------------------------------------
    let mut qb = QueryBuilder::new();
    qb.relation("E1", &["X", "Y"]);
    qb.relation("E2", &["Y", "Z"]);
    qb.relation("E3", &["Z", "X"]);
    let tri = qb.build().unwrap();
    let mut crj = CyclicReservoirJoin::new(tri, 20, 9).expect("GHD found");
    println!(
        "\ntriangles: GHD width {} ({} bag(s))",
        crj.ghd().width(),
        crj.ghd().bags().len()
    );
    // Stream the same edge set into all three aliases, shuffled.
    let stream = rsjoin::datagen::graph::stream_from_edges(&edges, 3, 3);
    for t in stream.iter() {
        crj.process(t.relation, &t.values);
    }
    println!(
        "  {} triangle closures observed (simulated bag stream); \
         {} samples held:",
        crj.bag_tuples(),
        crj.samples().len()
    );
    for s in crj.sample_named().iter().take(5) {
        let vals: Vec<String> = s.iter().map(|(n, v)| format!("{n}={v}")).collect();
        println!("    {}", vals.join(" "));
    }
}
