//! Retail analytics over a streaming star schema (TPC-DS-like), with the
//! foreign-key optimization.
//!
//! Run with: `cargo run --example retail_stream`
//!
//! QY-style scenario: sales facts stream in and join customers →
//! demographics → *income band* → demographics → customers, pairing every
//! sale with the customers in the same income band — a join that explodes
//! quadratically. We maintain uniform samples with both the plain engine
//! (`RSJoin`) and the foreign-key-combined one (`RSJoin_opt`), built by
//! the [`Engine`] factory and driven through one `dyn JoinSampler` loop.

use rsjoin::datagen::TpcdsLite;
use rsjoin::prelude::*;
use rsjoin::queries::qy;
use std::time::Instant;

/// Runs the workload through the facade's uniform driver, reporting wall
/// time — the same loop both engines share.
fn run(
    engine: Engine,
    w: &rsjoin::queries::Workload,
    k: usize,
    seed: u64,
) -> (std::time::Duration, Box<dyn JoinSampler>) {
    let t0 = Instant::now();
    let s = rsjoin::engine::run_workload(w, &engine, k, seed).expect("acyclic");
    (t0.elapsed(), s)
}

fn main() {
    let data = TpcdsLite::generate(/*sf*/ 2, /*seed*/ 11);
    let w = qy(&data, 5);
    println!(
        "QY over tpcds-lite sf=2: {} preloaded dimension rows, {} streamed rows",
        w.preload.len(),
        w.stream.len()
    );

    let (plain_time, plain) = run(Engine::Reservoir, &w, 1_000, 1);
    // RSJoin_opt: the rewrite collapses the FK spine to a 2-relation join
    // on the income band.
    let (opt_time, opt) = run(Engine::FkReservoir, &w, 1_000, 2);

    println!(
        "\nrewritten query: {} relations -> {} relations ({})",
        w.query.num_relations(),
        opt.output_query().num_relations(),
        opt.output_query()
            .relations()
            .iter()
            .map(|r| r.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let report = |s: &dyn JoinSampler, time: std::time::Duration| {
        let st = s.stats();
        println!(
            "{:<11} {:>8.1?}  (reservoir stops {:>7}, heap ≈ {} KiB)",
            format!("{}:", s.name()),
            time,
            st.reservoir_stops.unwrap_or(0),
            st.heap_bytes.unwrap_or(0) / 1024
        );
    };
    report(plain.as_ref(), plain_time);
    report(opt.as_ref(), opt_time);

    // Show a few samples with attribute names resolved.
    let q = opt.output_query();
    println!("\n3 uniform samples of the QY join (rewritten schema):");
    for s in opt.samples().iter().take(3) {
        let kv: Vec<String> = q
            .attr_names()
            .iter()
            .zip(s.iter())
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        println!("  {}", kv.join(" "));
    }
    assert_eq!(plain.samples().len(), 1_000);
    assert_eq!(opt.samples().len(), 1_000);
}
