//! Retail analytics over a streaming star schema (TPC-DS-like), with the
//! foreign-key optimization.
//!
//! Run with: `cargo run --example retail_stream`
//!
//! QY-style scenario: sales facts stream in and join customers →
//! demographics → *income band* → demographics → customers, pairing every
//! sale with the customers in the same income band — a join that explodes
//! quadratically. We maintain uniform samples with both the plain driver
//! (`RSJoin`) and the foreign-key-combined one (`RSJoin_opt`) and compare
//! their work.

use rsjoin::datagen::TpcdsLite;
use rsjoin::prelude::*;
use rsjoin::queries::qy;
use std::time::Instant;

fn main() {
    let data = TpcdsLite::generate(/*sf*/ 2, /*seed*/ 11);
    let w = qy(&data, 5);
    println!(
        "QY over tpcds-lite sf=2: {} preloaded dimension rows, {} streamed rows",
        w.preload.len(),
        w.stream.len()
    );

    // Plain RSJoin over the 5-relation query.
    let t0 = Instant::now();
    let mut plain = ReservoirJoin::new(w.query.clone(), 1_000, 1).unwrap();
    for t in &w.preload {
        plain.process(t.relation, &t.values);
    }
    plain.process_stream(&w.stream);
    let plain_time = t0.elapsed();

    // RSJoin_opt: the rewrite collapses the FK spine to a 2-relation join
    // on the income band.
    let t0 = Instant::now();
    let mut opt = FkReservoirJoin::new(&w.query, &w.fks, 1_000, 2).unwrap();
    for t in &w.preload {
        opt.process(t.relation, &t.values);
    }
    for t in w.stream.iter() {
        opt.process(t.relation, &t.values);
    }
    let opt_time = t0.elapsed();

    println!(
        "\nrewritten query: {} relations -> {} relations ({})",
        w.query.num_relations(),
        opt.rewritten_query().num_relations(),
        opt.rewritten_query()
            .relations()
            .iter()
            .map(|r| r.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "join size bound ≈ {}",
        FullSampler::default().implicit_size(plain.index())
    );
    println!(
        "RSJoin:     {:>8.1?}  (propagation loops {:>9})",
        plain_time,
        plain.index_stats().propagation_loops
    );
    println!(
        "RSJoin_opt: {:>8.1?}  (propagation loops {:>9})",
        opt_time,
        opt.inner().index_stats().propagation_loops
    );

    // Show a few samples with attribute names resolved.
    let q = opt.rewritten_query();
    println!("\n3 uniform samples of the QY join (rewritten schema):");
    for s in opt.samples().iter().take(3) {
        let kv: Vec<String> = q
            .attr_names()
            .iter()
            .zip(s.iter())
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        println!("  {}", kv.join(" "));
    }
    assert_eq!(plain.samples().len(), 1_000);
    assert_eq!(opt.samples().len(), 1_000);
}
