//! Tour of all seven engines behind one driver loop.
//!
//! Run with: `cargo run --example engine_tour`
//!
//! The executor layer's pitch in one file: the same two-table workload is
//! streamed through every [`Engine`] variant — the paper's `RSJoin`
//! family and all baselines — via `Box<dyn JoinSampler>`, with zero
//! engine-specific driver code. Every engine reports the same result
//! count; their cost profiles (shown via the uniform stats hook) differ
//! wildly, which is exactly the paper's point.

use rsjoin::prelude::*;
use std::time::Instant;

fn main() {
    // R(X,Y) ⋈ S(Y,Z): the one shape every engine supports, including the
    // two-table-only symmetric hash join.
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    let query = qb.build().unwrap();

    // A skewed stream: a few hot join keys so the join is much larger
    // than the input.
    let mut rng = RsjRng::seed_from_u64(11);
    let mut stream = TupleStream::new();
    for _ in 0..4_000 {
        let rel = rng.index(2);
        stream.push(rel, vec![rng.below_u64(5_000), rng.below_u64(40)]);
    }

    let k = 100;
    println!(
        "{:<18} {:>10} {:>9} {:>10} {:>12} {:>14}",
        "engine", "time", "samples", "stops", "heap KiB", "exact |Q(R)|"
    );
    for engine in Engine::ALL {
        if !engine.supports(&query) {
            continue;
        }
        // NaiveRebuild re-enumerates the join after every insert; at this
        // stream size that is the quadratic wall the paper opens with, so
        // give it a shorter stream instead of an afternoon.
        let n = if engine == Engine::Naive {
            400
        } else {
            stream.len()
        };
        let mut sampler = engine
            .build(&query, k, 7, &EngineOpts::default())
            .expect("two-table join suits every engine");
        let t0 = Instant::now();
        for t in stream.iter().take(n) {
            sampler.process(t.relation, &t.values);
        }
        let elapsed = t0.elapsed();
        let st = sampler.stats();
        let opt = |v: Option<String>| v.unwrap_or_else(|| "—".into());
        println!(
            "{:<18} {:>10} {:>9} {:>10} {:>12} {:>14}{}",
            sampler.name(),
            format!("{elapsed:.2?}"),
            sampler.samples().len(),
            opt(st.reservoir_stops.map(|v| v.to_string())),
            opt(st.heap_bytes.map(|v| (v / 1024).to_string())),
            opt(st.exact_results.map(|v| v.to_string())),
            if n < stream.len() {
                format!("   (first {n} tuples only)")
            } else {
                String::new()
            }
        );
    }

    // The eighth row: the sharded wrapper, scaling the headline engine
    // across worker threads through the very same trait.
    let shards = 4;
    let engine = Engine::sharded(Engine::Reservoir, shards);
    let mut sampler = engine
        .build(&query, k, 7, &EngineOpts::default())
        .expect("sharding supports whatever its inner engine supports");
    let t0 = Instant::now();
    sampler.process_stream(&stream);
    let st = sampler.stats();
    let elapsed = t0.elapsed();
    let opt = |v: Option<String>| v.unwrap_or_else(|| "—".into());
    println!(
        "{:<18} {:>10} {:>9} {:>10} {:>12} {:>14}   ({engine}: {shards} worker threads)",
        sampler.name(),
        format!("{elapsed:.2?}"),
        sampler.samples().len(),
        opt(st.reservoir_stops.map(|v| v.to_string())),
        opt(st.heap_bytes.map(|v| (v / 1024).to_string())),
        opt(st.exact_results.map(|v| v.to_string())),
    );

    println!(
        "\nall engines above drove the identical stream through the same\n\
         `dyn JoinSampler` loop; see tests/engine_conformance.rs for the\n\
         proof that their result sets agree exactly."
    );
}
