//! Approximate analytics from join samples — the use case the paper's
//! introduction motivates ("a uniform sample of the join results would
//! suffice ... for answering analytical queries").
//!
//! Run with: `cargo run --example approximate_analytics`
//!
//! We stream a star-schema join, then answer three analytical questions
//! from the k-sample alone and compare against exact answers computed by
//! the SJoin baseline's exact counters / full enumeration:
//!
//! 1. `COUNT(*)` of the join — via the sampler's unbiased size estimator;
//! 2. `AVG(amount)` over the join — sample mean;
//! 3. a GROUP-BY share — fraction of results per region.

use rsjoin::prelude::*;

fn main() {
    // orders(order, cust, amount) ⋈ customers(cust, region)
    let mut qb = QueryBuilder::new();
    qb.relation("orders", &["order", "cust", "amount"]);
    qb.relation("customers", &["cust", "region"]);
    let query = qb.build().unwrap();

    // Build the stream: region shares 50/30/20, amounts correlated with
    // region so the estimates are non-trivial.
    let mut rng = RsjRng::seed_from_u64(7);
    let n_cust = 2_000u64;
    let mut stream: Vec<(usize, Vec<u64>)> = Vec::new();
    for c in 0..n_cust {
        let region = match c % 10 {
            0..=4 => 0,
            5..=7 => 1,
            _ => 2,
        };
        stream.push((1, vec![c, region]));
    }
    for o in 0..60_000u64 {
        let c = rng.below_u64(n_cust);
        let region = match c % 10 {
            0..=4 => 0u64,
            5..=7 => 1,
            _ => 2,
        };
        let amount = 100 + region * 50 + rng.below_u64(40);
        stream.push((0, vec![o, c, amount]));
    }
    let mut shuffle_rng = RsjRng::seed_from_u64(9);
    for i in (1..stream.len()).rev() {
        stream.swap(i, shuffle_rng.index(i + 1));
    }

    // Maintain k samples + an ad-hoc sampler for size estimation.
    let k = 2_000;
    let mut rj = ReservoirJoin::new(query.clone(), k, 1).unwrap();
    let mut ix = DynamicSampleIndex::new(query.clone(), 2).unwrap();
    let mut exact = SJoin::new(query, 1 << 24, 3).unwrap();
    for (rel, t) in &stream {
        rj.process(*rel, t);
        ix.insert(*rel, t);
        exact.process(*rel, t);
    }

    // (1) COUNT(*).
    let est_count = ix.estimate_result_size(50_000);
    let true_count = exact.index().total_results() as f64;
    println!(
        "COUNT(*):   estimate {est_count:.0}   exact {true_count:.0}   err {:.2}%",
        100.0 * (est_count - true_count).abs() / true_count
    );

    // (2) AVG(amount) — attribute order: order, cust, amount, region.
    let avg_est: f64 =
        rj.samples().iter().map(|s| s[2] as f64).sum::<f64>() / rj.samples().len() as f64;
    let avg_true: f64 =
        exact.samples().iter().map(|s| s[2] as f64).sum::<f64>() / exact.samples().len() as f64;
    println!(
        "AVG(amount): estimate {avg_est:.2}   exact {avg_true:.2}   err {:.2}%",
        100.0 * (avg_est - avg_true).abs() / avg_true
    );

    // (3) GROUP BY region shares.
    let share = |samples: &[Vec<u64>], region: u64| -> f64 {
        samples.iter().filter(|s| s[3] == region).count() as f64 / samples.len() as f64
    };
    println!("\nregion shares (estimate vs exact):");
    for region in 0..3u64 {
        println!(
            "  region {region}: {:.3} vs {:.3}",
            share(rj.samples(), region),
            share(exact.samples(), region)
        );
    }
    println!(
        "\nall from {k} samples of a {true_count:.0}-row join, maintained \
         in one streaming pass."
    );
    assert!((est_count - true_count).abs() / true_count < 0.05);
    assert!((avg_est - avg_true).abs() / avg_true < 0.02);
}
