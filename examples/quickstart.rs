//! Quickstart: maintain a uniform sample over a streaming two-table join.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The scenario: an `orders(order_id, customer)` stream joins a
//! `customers(customer, region)` stream, and we keep 10 uniform samples of
//! the join at all times — without ever materializing it.

use rsjoin::prelude::*;

fn main() {
    // SELECT * FROM orders, customers WHERE orders.customer = customers.customer
    let mut qb = QueryBuilder::new();
    let orders = qb.relation("orders", &["order_id", "customer"]);
    let customers = qb.relation("customers", &["customer", "region"]);
    let query = qb.build().expect("two-table join is acyclic");
    let attr_names: Vec<String> = query.attr_names().to_vec();

    let k = 10;
    let mut rj = ReservoirJoin::new(query, k, /*seed*/ 2024).expect("acyclic");

    // Simulate an interleaved stream: customers trickle in while orders
    // arrive at high velocity.
    let mut rng = RsjRng::seed_from_u64(7);
    for step in 0..5_000u64 {
        if step % 50 == 0 {
            let c = step / 50;
            rj.process(customers, &[c, c % 7]);
        }
        rj.process(orders, &[step, rng.below_u64(1 + step / 50)]);

        if step % 1000 == 999 {
            println!(
                "after {:>5} arrivals: {} samples held, index heap ≈ {} KiB",
                step + 1,
                rj.samples().len(),
                rj.heap_size() / 1024
            );
        }
    }

    println!("\nfinal reservoir ({} uniform samples of the join):", k);
    println!("  {:?}", attr_names);
    for s in rj.samples() {
        println!("  {s:?}");
    }
    println!(
        "\nstream length N = {}, reservoir stops = {} (≪ join size)",
        rj.inserts(),
        rj.reservoir_stops()
    );
}
