//! Cross-engine conformance over the plan-sensitive workloads
//! (snowflake, self-join line, skewed star): every engine that supports
//! the query — and its sharded wrapper — must collect exactly the true
//! result set with `k >= |Q(R)|`, agreeing with the exact counter; and
//! samples drawn *after* an adaptive `replan()` (including a forced index
//! rebuild) must still be uniform over `Q(R)`.

use rsj_common::{FxHashMap, FxHashSet};
use rsj_testutil::{brute_join_named, live_sets_of_stream, NamedSample, UniformityCheck};
use rsjoin::engine::{workload_opts, Engine};
use rsjoin::prelude::*;
use rsjoin::queries::{self_join_line, skewed_star, snowflake, Workload};

/// Preload + stream as one insert-only stream (the engines' full input).
fn full_stream(w: &Workload) -> TupleStream {
    let mut s = TupleStream::new();
    for t in w.preload.iter().chain(w.stream.iter()) {
        s.push(t.relation, t.values.clone());
    }
    s
}

#[test]
fn all_engines_agree_with_exact_counts_on_planner_workloads() {
    let workloads = [
        snowflake(160, 5),
        self_join_line(3, 90, 7),
        skewed_star(4, 120, 9),
    ];
    for w in &workloads {
        let stream = full_stream(w);
        let expect = brute_join_named(&w.query, &live_sets_of_stream(&w.query, &stream));
        assert!(!expect.is_empty(), "{}: degenerate instance", w.name);
        let exact = expect.len() as u128;
        let mut engines: Vec<Engine> = Engine::ALL
            .iter()
            .filter(|e| e.supports(&w.query))
            .cloned()
            .collect();
        engines.push(Engine::sharded(Engine::Reservoir, 2));
        engines.push(Engine::sharded(Engine::SJoin, 3));
        for engine in engines {
            let mut s = engine
                .build(&w.query, 1 << 18, 11, &workload_opts(w))
                .unwrap_or_else(|e| panic!("{}: {engine}: {e}", w.name));
            s.process_stream(&stream);
            let got: FxHashSet<NamedSample> = s.samples_named().into_iter().collect();
            assert_eq!(got, expect, "{}: {engine}", w.name);
            if let Some(reported) = s.stats().exact_results {
                assert_eq!(reported, exact, "{}: {engine} exact count", w.name);
            }
        }
    }
}

#[test]
fn replan_mid_stream_preserves_exactness_across_engines() {
    // Drive half the stream, force a replan through the trait (sharded
    // wrappers forward it to every worker), then the rest; with k >= |Q|
    // the final sample set must still be exactly the live results.
    let workloads = [
        snowflake(120, 13),
        self_join_line(3, 80, 15),
        skewed_star(4, 100, 17),
    ];
    for w in &workloads {
        let stream = full_stream(w);
        let expect = brute_join_named(&w.query, &live_sets_of_stream(&w.query, &stream));
        for engine in [
            Engine::Reservoir,
            Engine::FkReservoir,
            Engine::sharded(Engine::Reservoir, 2),
        ] {
            if !engine.supports(&w.query) {
                continue;
            }
            let mut s = engine
                .build(&w.query, 1 << 18, 3, &workload_opts(w))
                .unwrap_or_else(|e| panic!("{}: {engine}: {e}", w.name));
            let half = stream.len() / 2;
            for t in stream.iter().take(half) {
                s.process(t.relation, &t.values);
            }
            s.replan();
            for t in stream.iter().skip(half) {
                s.process(t.relation, &t.values);
            }
            let got: FxHashSet<NamedSample> = s.samples_named().into_iter().collect();
            assert_eq!(got, expect, "{}: {engine} post-replan", w.name);
        }
    }
}

/// Post-replan uniformity: force an actual index rebuild (greedy planner,
/// deliberately bad starting tree) mid-stream and chi-square the final
/// reservoir against the uniform distribution over `Q(R)`.
#[test]
fn post_rebuild_samples_stay_uniform() {
    // A tiny skewed-star-3 instance small enough to enumerate.
    let w = skewed_star(3, 24, 21);
    let stream = full_stream(&w);
    let expect = brute_join_named(&w.query, &live_sets_of_stream(&w.query, &stream));
    let support = expect.len();
    assert!(
        (6..=200).contains(&support),
        "need an enumerable instance, got {support}"
    );
    let trees = rsjoin::query::all_join_trees(&w.query, 8);
    assert!(trees.len() > 1, "star-3 must offer alternative trees");
    // Find the orientation a greedy planner settles on for this instance,
    // then deliberately start every trial from a *different* tree so the
    // mid-stream replan is guaranteed to rebuild.
    let greedy = Planner {
        hold_margin: 0.0,
        ..Planner::default()
    };
    let winner_edges = {
        let mut scout = ReservoirJoin::new(w.query.clone(), 4, 0).unwrap();
        for t in stream.iter().take(stream.len() / 2) {
            scout.process(t.relation, &t.values);
        }
        scout.set_planner(greedy);
        scout.replan();
        scout.plan().tree.canonical_edges()
    };
    let bad_tree = trees
        .iter()
        .find(|t| t.canonical_edges() != winner_edges)
        .expect("some tree differs from the greedy winner")
        .clone();
    let k = 3;
    let trials = 4000u64;
    let mut counts: FxHashMap<NamedSample, u64> = FxHashMap::default();
    let mut rebuilds = 0u64;
    for seed in 0..trials {
        let mut plan = Plan::canonical(&w.query).unwrap();
        plan.tree = bad_tree.clone();
        plan.is_canonical = false;
        let mut rj =
            ReservoirJoin::with_plan(w.query.clone(), k, seed, IndexOptions::default(), plan)
                .unwrap();
        rj.set_planner(greedy);
        let half = stream.len() / 2;
        for t in stream.iter().take(half) {
            rj.process(t.relation, &t.values);
        }
        rj.replan();
        rebuilds += rj.rebuilds();
        for t in stream.iter().skip(half) {
            rj.process(t.relation, &t.values);
        }
        assert_eq!(rj.samples().len(), k.min(support), "seed {seed}");
        for named in {
            let s: &dyn JoinSampler = &rj;
            s.samples_named()
        } {
            assert!(expect.contains(&named), "dead sample {named:?}");
            *counts.entry(named).or_default() += 1;
        }
    }
    assert!(
        rebuilds > 0,
        "the forced replan never rebuilt — the test lost its teeth"
    );
    UniformityCheck::single().assert_uniform(&counts, support, "post-rebuild");
}
