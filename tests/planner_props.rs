//! Property tests for the cost-based planner's invariants:
//!
//! 1. every emitted plan's tree satisfies the join-tree property
//!    (per-attribute connectedness — the running-intersection property in
//!    tree form) and spans every relation, with a root and partition
//!    attribute in range;
//! 2. candidate costs are invariant under relation relabeling: permuting
//!    the relations (and the statistics with them) permutes the
//!    candidates, not their scores;
//! 3. `replan()` preserves the exact live `|Q(R)|` and the maintained
//!    sample set.

use proptest::prelude::*;
use rsjoin::core::exact_result_count;
use rsjoin::prelude::*;
use rsjoin::query::all_join_trees;
use rsjoin::query::plan::empty_statistics;

/// Builds a random acyclic-by-construction query: a relation tree where
/// each edge carries a shared attribute drawn from a small label pool
/// (label collisions merge edges into star-like cliques, producing queries
/// with many candidate join trees), plus one private attribute per
/// relation. `parent_raw[i] % (i+1)` is relation `i+1`'s tree parent.
fn build_query(n: usize, parent_raw: &[usize], labels: &[usize]) -> Query {
    let parents: Vec<usize> = (1..n).map(|i| parent_raw[i - 1] % i).collect();
    let mut qb = QueryBuilder::new();
    for r in 0..n {
        let mut attrs: Vec<String> = vec![format!("P{r}")];
        for (child0, &p) in parents.iter().enumerate() {
            let child = child0 + 1;
            if child == r || p == r {
                let name = format!("S{}", labels[child0] % 3);
                if !attrs.contains(&name) {
                    attrs.push(name);
                }
            }
        }
        let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        qb.relation(&format!("R{r}"), &refs);
    }
    qb.build().expect("tree-structured query is well-formed")
}

/// Random observations shaped for `q`.
fn observe(q: &Query, draws: &[(usize, u64)]) -> TableStatistics {
    let mut stats = empty_statistics(q);
    for &(rel0, x) in draws {
        let rel = rel0 % q.num_relations();
        let arity = q.relation(rel).attrs.len();
        let tuple: Vec<u64> = (0..arity).map(|pos| (x >> (8 * (pos % 8))) % 7).collect();
        stats.observe_insert(rel, &tuple);
    }
    stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: structural validity of everything the planner emits.
    #[test]
    fn plans_are_valid_join_trees(
        n in 2usize..6,
        parent_raw in proptest::collection::vec(0usize..16, 5..6),
        labels in proptest::collection::vec(0usize..3, 5..6),
        draws in proptest::collection::vec((0usize..8, any::<u64>()), 0..120)
    ) {
        let q = build_query(n, &parent_raw, &labels);
        prop_assume!(JoinTree::build(&q).is_some());
        let stats = observe(&q, &draws);
        let plan = Planner::default().plan(&q, &stats).expect("acyclic");
        prop_assert_eq!(plan.tree.len(), q.num_relations());
        prop_assert_eq!(plan.tree.edges().len(), q.num_relations() - 1);
        prop_assert!(plan.tree.satisfies_connectedness(&q), "connectedness violated");
        prop_assert!(plan.root < q.num_relations());
        prop_assert!(plan.partition_attr < q.num_attrs());
        prop_assert!(plan.cost.total.is_finite());
        // Every enumerated candidate is itself valid.
        for t in all_join_trees(&q, 64) {
            prop_assert!(t.satisfies_connectedness(&q));
        }
    }

    /// Invariant 2: cost is invariant under relation relabeling.
    #[test]
    fn cost_is_invariant_under_relabeling(
        n in 2usize..6,
        parent_raw in proptest::collection::vec(0usize..16, 5..6),
        labels in proptest::collection::vec(0usize..3, 5..6),
        draws in proptest::collection::vec((0usize..8, any::<u64>()), 0..120),
        rot in 1usize..5
    ) {
        let q = build_query(n, &parent_raw, &labels);
        prop_assume!(JoinTree::build(&q).is_some());
        // Relabel by rotation: relation r becomes perm[r] = (r + rot) % n.
        let perm: Vec<usize> = (0..n).map(|r| (r + rot) % n).collect();
        let mut inv = vec![0usize; n];
        for (r, &pr) in perm.iter().enumerate() {
            inv[pr] = r;
        }
        let mut qb = QueryBuilder::new();
        for &old in &inv {
            let schema = q.relation(old);
            let attrs: Vec<&str> = schema.attrs.iter().map(|&a| q.attr_name(a)).collect();
            qb.relation(&schema.name, &attrs);
        }
        let qp = qb.build().unwrap();
        let stats = observe(&q, &draws);
        let stats_p = {
            let draws_p: Vec<(usize, u64)> = draws
                .iter()
                .map(|&(rel0, x)| (perm[rel0 % n], x))
                .collect();
            observe(&qp, &draws_p)
        };
        let planner = Planner::default();
        for tree in all_join_trees(&q, 32) {
            let edges_p: Vec<(usize, usize)> = tree
                .canonical_edges()
                .iter()
                .map(|&(i, j)| (perm[i].min(perm[j]), perm[i].max(perm[j])))
                .collect();
            let tree_p = JoinTree::from_edges(n, &edges_p);
            for root in 0..n {
                let a = planner.score(&q, &tree, root, &stats);
                let b = planner.score(&qp, &tree_p, perm[root], &stats_p);
                match (a, b) {
                    (Some(a), Some(b)) => {
                        prop_assert!(
                            (a.total - b.total).abs() < 1e-9 * (1.0 + a.total.abs()),
                            "total {} vs {}", a.total, b.total
                        );
                        prop_assert!((a.insert - b.insert).abs() < 1e-9 * (1.0 + a.insert.abs()));
                        prop_assert!((a.sample - b.sample).abs() < 1e-9 * (1.0 + a.sample.abs()));
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "feasibility differed under relabeling"),
                }
            }
        }
    }

    /// Invariant 3: `replan()` preserves the exact live `|Q(R)|` and the
    /// collected sample set (k >= |Q|), even when it rebuilds the index.
    #[test]
    fn replan_preserves_live_population(
        n in 2usize..6,
        parent_raw in proptest::collection::vec(0usize..16, 5..6),
        labels in proptest::collection::vec(0usize..3, 5..6),
        stream in proptest::collection::vec((0usize..8, 0u64..5, 0u64..5), 1..100)
    ) {
        let q = build_query(n, &parent_raw, &labels);
        prop_assume!(JoinTree::build(&q).is_some());
        let mut rj = ReservoirJoin::new(q.clone(), 1 << 16, 7).unwrap();
        for &(rel0, a, b) in &stream {
            let rel = rel0 % q.num_relations();
            let arity = q.relation(rel).attrs.len();
            let tuple: Vec<u64> = (0..arity).map(|p| if p % 2 == 0 { a } else { b }).collect();
            rj.process(rel, &tuple);
        }
        let live_before = exact_result_count(rj.index().query(), rj.index().database());
        let set_before: std::collections::BTreeSet<Vec<u64>> =
            rj.samples().iter().cloned().collect();
        prop_assert_eq!(set_before.len() as u128, live_before);
        // Greedy planner maximizes the chance of an actual rebuild.
        rj.set_planner(Planner { hold_margin: 0.0, ..Planner::default() });
        rj.replan();
        let live_after = exact_result_count(rj.index().query(), rj.index().database());
        prop_assert_eq!(live_before, live_after, "replan changed |Q(R)|");
        let set_after: std::collections::BTreeSet<Vec<u64>> =
            rj.samples().iter().cloned().collect();
        prop_assert_eq!(set_before, set_after, "replan changed the sample set");
    }
}
