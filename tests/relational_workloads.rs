//! End-to-end tests of the packaged benchmark workloads (QX, QY, QZ, Q10,
//! graph queries) at miniature scale: every engine runs the full pipeline
//! (preload + stream) through the `JoinSampler` executor interface and the
//! optimized variants agree with the plain ones.

use rsjoin::datagen::{GraphConfig, LdbcLite, TpcdsLite};
use rsjoin::prelude::*;
use rsjoin::queries::{dumbbell, line_k, q10, qx, qy, qz, star_k, Workload};

type ResultSet = std::collections::BTreeSet<Vec<(String, u64)>>;

/// Runs the workload through `engine` via the facade's uniform driver.
fn run_workload(w: &Workload, engine: &Engine, k: usize, seed: u64) -> Box<dyn JoinSampler + Send> {
    rsjoin::engine::run_workload(w, engine, k, seed)
        .unwrap_or_else(|e| panic!("{}: {engine}: {e}", w.name))
}

fn run_all_and_compare(w: &Workload) -> usize {
    let k = 1 << 22; // collect everything
    let mut truth: Option<ResultSet> = None;
    let mut exact: Option<u128> = None;
    for (seed, engine) in [
        Engine::Reservoir,
        Engine::FkReservoir,
        Engine::SJoin,
        Engine::SJoinOpt,
    ]
    .into_iter()
    .enumerate()
    {
        let s = run_workload(w, &engine, k, seed as u64 + 1);
        let got: ResultSet = s.samples_named().into_iter().collect();
        match &truth {
            None => truth = Some(got),
            Some(t) => assert_eq!(t, &got, "{}: RSJoin vs {engine}", w.name),
        }
        if let Some(n) = s.stats().exact_results {
            exact = Some(n);
        }
    }
    let truth = truth.expect("at least one engine ran");
    // Exact count cross-check against SJoin's counter.
    assert_eq!(
        truth.len() as u128,
        exact.expect("SJoin counts"),
        "{}",
        w.name
    );
    truth.len()
}

/// A tiny tpcds-lite instance so full enumeration stays cheap.
fn mini_tpcds() -> TpcdsLite {
    let mut d = TpcdsLite::generate(1, 77);
    d.store_sales.truncate(120);
    d.store_returns = d
        .store_sales
        .iter()
        .take(30)
        .map(|s| [s[0], s[1], s[2]])
        .collect();
    d.catalog_sales.truncate(60);
    d.customer.truncate(80);
    // Re-point sales FKs into the truncated customer table.
    for s in &mut d.store_sales {
        s[2] %= 80;
    }
    for r in &mut d.store_returns {
        r[2] %= 80;
    }
    for c in &mut d.catalog_sales {
        c[0] %= 80;
    }
    d.item.truncate(40);
    for s in &mut d.store_sales {
        s[0] %= 40;
    }
    for r in &mut d.store_returns {
        r[0] %= 40;
    }
    d
}

#[test]
fn qx_all_drivers_agree() {
    let d = mini_tpcds();
    let n = run_all_and_compare(&qx(&d, 5));
    assert!(n > 0, "QX produced no results at mini scale");
}

#[test]
fn qy_all_drivers_agree() {
    let d = mini_tpcds();
    let n = run_all_and_compare(&qy(&d, 5));
    assert!(n > 0, "QY produced no results");
}

#[test]
fn qz_all_drivers_agree() {
    let d = mini_tpcds();
    let n = run_all_and_compare(&qz(&d, 5));
    assert!(n > 0, "QZ produced no results");
}

#[test]
fn q10_all_drivers_agree() {
    let mut d = LdbcLite::generate(1, 77);
    d.message.truncate(100);
    d.has_tag.retain(|h| h[0] < 100);
    d.knows.truncate(150);
    let n = run_all_and_compare(&q10(&d, 5));
    assert!(n > 0, "Q10 produced no results");
}

#[test]
fn graph_queries_rsjoin_vs_sjoin() {
    let edges = GraphConfig {
        nodes: 40,
        edges: 150,
        zipf: 0.8,
        seed: 5,
    }
    .generate();
    for w in [
        line_k(3, &edges, 1),
        line_k(4, &edges, 1),
        star_k(4, &edges, 1),
    ] {
        let k = 1 << 22;
        let rj = run_workload(&w, &Engine::Reservoir, k, 1);
        let sj = run_workload(&w, &Engine::SJoin, k, 2);
        let a: ResultSet = rj.samples_named().into_iter().collect();
        let b: ResultSet = sj.samples_named().into_iter().collect();
        assert_eq!(a, b, "{}", w.name);
        assert_eq!(
            a.len() as u128,
            sj.stats().exact_results.expect("SJoin counts"),
            "{}",
            w.name
        );
    }
}

#[test]
fn dumbbell_cyclic_driver_runs_and_validates() {
    let edges = GraphConfig {
        nodes: 25,
        edges: 120,
        zipf: 0.6,
        seed: 9,
    }
    .generate();
    let w = dumbbell(&edges, 1);
    let crj = run_workload(&w, &Engine::Cyclic, 1 << 22, 1);
    // Validate every sample is a genuine dumbbell: two triangles + bridge.
    let q = crj.output_query().clone();
    let pos = |n: &str| q.attr_names().iter().position(|a| a == n).unwrap();
    let (x1, x2, x3, x4, x5, x6) = (
        pos("x1"),
        pos("x2"),
        pos("x3"),
        pos("x4"),
        pos("x5"),
        pos("x6"),
    );
    let edge_set: std::collections::BTreeSet<(u64, u64)> = edges.iter().copied().collect();
    for s in crj.samples() {
        assert!(edge_set.contains(&(s[x1], s[x2])), "G1 edge");
        assert!(edge_set.contains(&(s[x1], s[x3])), "G2 edge");
        assert!(edge_set.contains(&(s[x2], s[x3])), "G3 edge");
        assert!(edge_set.contains(&(s[x5], s[x6])), "G4 edge");
        assert!(edge_set.contains(&(s[x4], s[x5])), "G5 edge");
        assert!(edge_set.contains(&(s[x4], s[x6])), "G6 edge");
        assert!(edge_set.contains(&(s[x3], s[x4])), "G7 bridge");
    }
}
