//! Statistical uniformity tests: the sample distribution of every engine
//! matches the uniform distribution over the true result set, at final and
//! intermediate timestamps. Fixed seeds; all machinery (counting harness,
//! chi-square thresholds, alpha levels) lives in `rsj-testutil` — see its
//! crate docs for the documented base level and the Bonferroni correction
//! applied when one family of checks spans several engines.

use rsj_testutil::{inclusion_counts, UniformityCheck};
use rsjoin::prelude::*;

type NamedSample = rsj_testutil::NamedSample;

fn line3_query() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    qb.build().unwrap()
}

/// A fixed line-3 instance with 24 results and skewed multiplicities.
fn skewed_stream() -> TupleStream {
    let mut s = TupleStream::new();
    for a in 0..4u64 {
        s.push(0, vec![a, 1]);
    }
    s.push(1, vec![1, 2]);
    s.push(1, vec![1, 3]);
    for d in 0..2u64 {
        s.push(2, vec![2, d]);
    }
    for d in 0..4u64 {
        s.push(2, vec![3, 10 + d]);
    }
    // 4 * (2 + 4) = 24 results.
    s
}

/// RSJoin and SJoin each run the same skewed instance — one family of two
/// comparisons sharing the base alpha budget.
#[test]
fn rsjoin_and_sjoin_uniform_with_k3() {
    let check = UniformityCheck::across(2);
    for (engine, expect_full) in [(Engine::Reservoir, true), (Engine::SJoin, false)] {
        let counts = inclusion_counts(
            &engine,
            &line3_query(),
            &EngineOpts::default(),
            &skewed_stream(),
            3,
            0..6000,
            expect_full,
        );
        check.assert_uniform(&counts, 24, &format!("{engine} k=3"));
    }
}

#[test]
fn rsjoin_and_sjoin_agree_distributionally() {
    // Same instance, same k: the two engines' inclusion frequencies per
    // result must both be k/|Q(R)| within noise.
    let stream = skewed_stream();
    let q = line3_query();
    let opts = EngineOpts::default();
    let trials = 4000u64;
    let k = 4;
    let rs_counts = inclusion_counts(&Engine::Reservoir, &q, &opts, &stream, k, 0..trials, true);
    let sj_counts = inclusion_counts(
        &Engine::SJoin,
        &q,
        &opts,
        &stream,
        k,
        50_000..50_000 + trials,
        false,
    );
    let expect = trials as f64 * k as f64 / 24.0;
    for (r, c) in &rs_counts {
        let c = *c as f64;
        assert!(
            (c - expect).abs() < expect * 0.25,
            "rsjoin freq off for {r:?}: {c} vs {expect}"
        );
        let sc = sj_counts.get(r).copied().unwrap_or(0) as f64;
        assert!(
            (sc - expect).abs() < expect * 0.25,
            "sjoin freq off for {r:?}: {sc} vs {expect}"
        );
    }
}

#[test]
fn uniform_at_intermediate_prefix() {
    // After only part of the stream, the reservoir must be uniform over
    // the partial result set.
    let full = skewed_stream();
    // Prefix: 4 G1 tuples + both G2 tuples + the two C=2 G3 tuples
    // => 4 * 2 = 8 results.
    let prefix: TupleStream = full.iter().take(8).cloned().collect();
    let counts = inclusion_counts(
        &Engine::Reservoir,
        &line3_query(),
        &EngineOpts::default(),
        &prefix,
        2,
        90_000..95_000,
        false,
    );
    UniformityCheck::single().assert_uniform(&counts, 8, "prefix");
}

/// A line-3 instance whose results are spread over several B values, so
/// that a sharded run genuinely splits the population across shards (the
/// plan partitions G1/G2 on B and broadcasts G3).
///
/// Results per partition value: B=1 → 3·(2+3) = 15, B=2 → 2, B=3 → 1;
/// 18 results total, heavily skewed across shards.
fn sharded_stream() -> TupleStream {
    let mut s = TupleStream::new();
    for a in 0..3u64 {
        s.push(0, vec![a, 1]);
    }
    s.push(0, vec![0, 2]);
    s.push(0, vec![0, 3]);
    s.push(1, vec![1, 10]);
    s.push(1, vec![1, 11]);
    s.push(1, vec![2, 10]);
    s.push(1, vec![3, 12]);
    for d in 0..2u64 {
        s.push(2, vec![10, d]);
    }
    for d in 0..3u64 {
        s.push(2, vec![11, 20 + d]);
    }
    s.push(2, vec![12, 30]);
    s
}

#[test]
fn sharded_rsjoin_uniform_with_k3() {
    // The scale-out statistical guarantee: the weighted reservoir union of
    // per-shard RSJoin reservoirs is uniform over the full result set,
    // even with shard populations skewed 15:2:1.
    let counts = inclusion_counts(
        &Engine::sharded(Engine::Reservoir, 3),
        &line3_query(),
        &EngineOpts::default(),
        &sharded_stream(),
        3,
        0..6000,
        true,
    );
    UniformityCheck::single().assert_uniform(&counts, 18, "sharded rsjoin k=3");
}

#[test]
fn sharded_matches_naive_ground_truth_distributionally() {
    // Sharded<RSJoin> and the NaiveRebuild ground truth on the same
    // instance: per-result inclusion frequencies must both be k/|Q(R)|.
    let stream = sharded_stream();
    let q = line3_query();
    let opts = EngineOpts::default();
    let trials = 4000u64;
    let k = 4;
    let sharded = inclusion_counts(
        &Engine::sharded(Engine::Reservoir, 3),
        &q,
        &opts,
        &stream,
        k,
        0..trials,
        true,
    );
    let naive = inclusion_counts(
        &Engine::Naive,
        &q,
        &opts,
        &stream,
        k,
        70_000..70_000 + trials,
        true,
    );
    let expect = trials as f64 * k as f64 / 18.0;
    for (r, c) in &sharded {
        let c = *c as f64;
        assert!(
            (c - expect).abs() < expect * 0.25,
            "sharded freq off for {r:?}: {c} vs {expect}"
        );
        let nc: f64 = naive.get(r).copied().unwrap_or(0) as f64;
        assert!(
            (nc - expect).abs() < expect * 0.25,
            "naive freq off for {r:?}: {nc} vs {expect}"
        );
    }
}

#[test]
fn sharded_cyclic_uniform() {
    // Triangles spread over two X partition values (3 vs 1): the cyclic
    // engine's merged reservoir must stay uniform.
    let mut qb = QueryBuilder::new();
    qb.relation("R1", &["X", "Y"]);
    qb.relation("R2", &["Y", "Z"]);
    qb.relation("R3", &["Z", "X"]);
    let q = qb.build().unwrap();
    let mut stream = TupleStream::new();
    for (rel, t) in [
        (0, vec![0, 1]),
        (0, vec![0, 2]),
        (0, vec![1, 1]),
        (1, vec![1, 4]),
        (1, vec![2, 4]),
        (1, vec![1, 5]),
        (2, vec![4, 0]),
        (2, vec![5, 0]),
        (2, vec![4, 1]),
    ] {
        stream.push(rel, t);
    }
    // Triangles: (0,1,4), (0,2,4), (0,1,5) on X=0; (1,1,4) on X=1.
    let counts = inclusion_counts(
        &Engine::sharded(Engine::Cyclic, 2),
        &q,
        &EngineOpts::default(),
        &stream,
        1,
        0..6000,
        true,
    );
    UniformityCheck::single().assert_uniform(&counts, 4, "sharded cyclic k=1");
}

#[test]
fn fk_driver_uniform() {
    // fact ⋈ dim with k=1 over a 6-result instance.
    let mut qb = QueryBuilder::new();
    qb.relation("fact", &["K", "M"]);
    qb.relation("dim", &["K", "D"]);
    let q = qb.build().unwrap();
    let opts = EngineOpts {
        fks: Some(FkSchema::none(2).with_pk(1, vec![0])),
        ..EngineOpts::default()
    };
    let mut stream = TupleStream::new();
    for (rel, t) in [
        (0, vec![1, 100]),
        (0, vec![1, 101]),
        (1, vec![1, 7]),
        (0, vec![1, 102]),
        (0, vec![2, 103]),
        (1, vec![2, 8]),
        (0, vec![2, 104]),
        (0, vec![2, 105]),
    ] {
        stream.push(rel, t);
    }
    let counts = inclusion_counts(&Engine::FkReservoir, &q, &opts, &stream, 1, 0..6000, true);
    UniformityCheck::single().assert_uniform(&counts, 6, "fk k=1");
}

#[test]
fn cyclic_driver_uniform() {
    // Triangle instance with 4 triangles; k=1.
    let mut qb = QueryBuilder::new();
    qb.relation("R1", &["X", "Y"]);
    qb.relation("R2", &["Y", "Z"]);
    qb.relation("R3", &["Z", "X"]);
    let q = qb.build().unwrap();
    let mut stream = TupleStream::new();
    for (rel, t) in [
        (0, vec![0, 1]),
        (0, vec![0, 2]),
        (1, vec![1, 4]),
        (1, vec![2, 4]),
        (1, vec![1, 5]),
        (1, vec![2, 5]),
        (2, vec![4, 0]),
        (2, vec![5, 0]),
    ] {
        stream.push(rel, t);
    }
    // Triangles: (0,1,4), (0,2,4), (0,1,5), (0,2,5).
    let counts = inclusion_counts(
        &Engine::Cyclic,
        &q,
        &EngineOpts::default(),
        &stream,
        1,
        0..6000,
        true,
    );
    UniformityCheck::single().assert_uniform(&counts, 4, "cyclic k=1");
}

/// The harness's named-sample normalization keeps engines comparable: spot
/// check the shape once here rather than per test.
#[test]
fn named_samples_are_sorted_pairs() {
    let counts = inclusion_counts(
        &Engine::Reservoir,
        &line3_query(),
        &EngineOpts::default(),
        &skewed_stream(),
        1,
        0..1,
        true,
    );
    let sample: &NamedSample = counts.keys().next().unwrap();
    let names: Vec<&str> = sample.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["A", "B", "C", "D"]);
}
