//! Statistical uniformity tests: the sample distribution of every driver
//! matches the uniform distribution over the true result set, at final and
//! intermediate timestamps. Fixed seeds; thresholds at alpha = 1e-4 so the
//! suite never flakes.

use rsjoin::common::stats::{chi_square_critical, chi_square_uniform};
use rsjoin::common::FxHashMap;
use rsjoin::prelude::*;

fn line3_query() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    qb.build().unwrap()
}

/// A fixed line-3 instance with 24 results and skewed multiplicities.
fn skewed_stream() -> Vec<(usize, Vec<u64>)> {
    let mut s = Vec::new();
    for a in 0..4u64 {
        s.push((0, vec![a, 1]));
    }
    s.push((1, vec![1, 2]));
    s.push((1, vec![1, 3]));
    for d in 0..2u64 {
        s.push((2, vec![2, d]));
    }
    for d in 0..4u64 {
        s.push((2, vec![3, 10 + d]));
    }
    // 4 * (2 + 4) = 24 results.
    s
}

fn assert_uniform(counts: &FxHashMap<Vec<u64>, u64>, expected_support: usize, label: &str) {
    assert_eq!(counts.len(), expected_support, "{label}: support");
    let obs: Vec<u64> = counts.values().copied().collect();
    let (stat, df) = chi_square_uniform(&obs);
    let crit = chi_square_critical(df, 0.0001);
    assert!(stat < crit, "{label}: chi2={stat:.1} > crit={crit:.1}");
}

#[test]
fn rsjoin_uniform_with_k3() {
    let stream = skewed_stream();
    let q = line3_query();
    let mut counts: FxHashMap<Vec<u64>, u64> = FxHashMap::default();
    for seed in 0..6000 {
        let mut rj = ReservoirJoin::new(q.clone(), 3, seed).unwrap();
        for (rel, t) in &stream {
            rj.process(*rel, t);
        }
        assert_eq!(rj.samples().len(), 3);
        for s in rj.samples() {
            *counts.entry(s.clone()).or_default() += 1;
        }
    }
    assert_uniform(&counts, 24, "rsjoin k=3");
}

#[test]
fn sjoin_uniform_with_k3() {
    let stream = skewed_stream();
    let q = line3_query();
    let mut counts: FxHashMap<Vec<u64>, u64> = FxHashMap::default();
    for seed in 0..6000 {
        let mut sj = SJoin::new(q.clone(), 3, seed).unwrap();
        for (rel, t) in &stream {
            sj.process(*rel, t);
        }
        for s in sj.samples() {
            *counts.entry(s.clone()).or_default() += 1;
        }
    }
    assert_uniform(&counts, 24, "sjoin k=3");
}

#[test]
fn rsjoin_and_sjoin_agree_distributionally() {
    // Same instance, same k: the two algorithms' inclusion frequencies per
    // result must both be k/|Q(R)| within noise.
    let stream = skewed_stream();
    let q = line3_query();
    let trials = 4000u64;
    let k = 4;
    let mut rs_counts: FxHashMap<Vec<u64>, f64> = FxHashMap::default();
    let mut sj_counts: FxHashMap<Vec<u64>, f64> = FxHashMap::default();
    for seed in 0..trials {
        let mut rj = ReservoirJoin::new(q.clone(), k, seed).unwrap();
        let mut sj = SJoin::new(q.clone(), k, seed + 50_000).unwrap();
        for (rel, t) in &stream {
            rj.process(*rel, t);
            sj.process(*rel, t);
        }
        for s in rj.samples() {
            *rs_counts.entry(s.clone()).or_default() += 1.0;
        }
        for s in sj.samples() {
            *sj_counts.entry(s.clone()).or_default() += 1.0;
        }
    }
    let expect = trials as f64 * k as f64 / 24.0;
    for (r, c) in &rs_counts {
        assert!(
            (c - expect).abs() < expect * 0.25,
            "rsjoin freq off for {r:?}: {c} vs {expect}"
        );
        let sc = sj_counts.get(r).copied().unwrap_or(0.0);
        assert!(
            (sc - expect).abs() < expect * 0.25,
            "sjoin freq off for {r:?}: {sc} vs {expect}"
        );
    }
}

#[test]
fn uniform_at_intermediate_prefix() {
    // After only part of the stream, the reservoir must be uniform over
    // the partial result set.
    let stream = skewed_stream();
    let q = line3_query();
    // Prefix: 4 G1 tuples + both G2 tuples + the two C=2 G3 tuples
    // => 4 * 2 = 8 results.
    let prefix = 8;
    let trials = 5000u64;
    let mut counts: FxHashMap<Vec<u64>, u64> = FxHashMap::default();
    for seed in 0..trials {
        let mut rj = ReservoirJoin::new(q.clone(), 2, 90_000 + seed).unwrap();
        for (rel, t) in &stream[..prefix] {
            rj.process(*rel, t);
        }
        for s in rj.samples() {
            *counts.entry(s.clone()).or_default() += 1;
        }
    }
    assert_uniform(&counts, 8, "prefix");
}

#[test]
fn fk_driver_uniform() {
    // fact ⋈ dim with k=1 over a 6-result instance.
    let mut qb = QueryBuilder::new();
    qb.relation("fact", &["K", "M"]);
    qb.relation("dim", &["K", "D"]);
    let q = qb.build().unwrap();
    let fks = FkSchema::none(2).with_pk(1, vec![0]);
    let stream: Vec<(usize, Vec<u64>)> = vec![
        (0, vec![1, 100]),
        (0, vec![1, 101]),
        (1, vec![1, 7]),
        (0, vec![1, 102]),
        (0, vec![2, 103]),
        (1, vec![2, 8]),
        (0, vec![2, 104]),
        (0, vec![2, 105]),
    ];
    let trials = 6000u64;
    let mut counts: FxHashMap<Vec<u64>, u64> = FxHashMap::default();
    for seed in 0..trials {
        let mut rj = FkReservoirJoin::new(&q, &fks, 1, seed).unwrap();
        for (rel, t) in &stream {
            rj.process(*rel, t);
        }
        assert_eq!(rj.samples().len(), 1);
        *counts.entry(rj.samples()[0].clone()).or_default() += 1;
    }
    assert_uniform(&counts, 6, "fk k=1");
}

#[test]
fn cyclic_driver_uniform() {
    // Triangle instance with 4 triangles; k=1.
    let mut qb = QueryBuilder::new();
    qb.relation("R1", &["X", "Y"]);
    qb.relation("R2", &["Y", "Z"]);
    qb.relation("R3", &["Z", "X"]);
    let q = qb.build().unwrap();
    // Hub vertex 0: edges (0,y) for y in 1..3, (y,z) for z in 4..6 matching
    // (z,0) closures.
    let stream: Vec<(usize, Vec<u64>)> = vec![
        (0, vec![0, 1]),
        (0, vec![0, 2]),
        (1, vec![1, 4]),
        (1, vec![2, 4]),
        (1, vec![1, 5]),
        (1, vec![2, 5]),
        (2, vec![4, 0]),
        (2, vec![5, 0]),
    ];
    // Triangles: (0,1,4), (0,2,4), (0,1,5), (0,2,5).
    let trials = 6000u64;
    let mut counts: FxHashMap<Vec<u64>, u64> = FxHashMap::default();
    for seed in 0..trials {
        let mut crj = CyclicReservoirJoin::new(q.clone(), 1, seed).unwrap();
        for (rel, t) in &stream {
            crj.process(*rel, t);
        }
        assert_eq!(crj.samples().len(), 1);
        *counts.entry(crj.samples()[0].clone()).or_default() += 1;
    }
    assert_uniform(&counts, 4, "cyclic k=1");
}
