//! Cross-algorithm equivalence: with `k` larger than the join, every
//! algorithm must hold *exactly* the full result set, for every query
//! shape, under randomized streams. All engines are built by the
//! [`Engine`] factory and driven through `dyn JoinSampler` — no
//! per-engine loops.

use rsjoin::prelude::*;

type ResultSet = std::collections::BTreeSet<Vec<(String, u64)>>;

const K_ALL: usize = 1_000_000;

/// Streams `stream` through `engine` and returns the normalized
/// (attr-name, value) result set, comparable across engines with
/// different internal attribute orders.
fn collect(engine: Engine, q: &Query, opts: &EngineOpts, stream: &TupleStream) -> ResultSet {
    let mut s = engine
        .build(q, K_ALL, 7, opts)
        .unwrap_or_else(|e| panic!("{engine}: {e}"));
    s.process_stream(stream);
    s.samples_named().into_iter().collect()
}

fn line4_query() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    qb.relation("G4", &["D", "E"]);
    qb.build().unwrap()
}

fn star3_query() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B1"]);
    qb.relation("G2", &["A", "B2"]);
    qb.relation("G3", &["A", "B3"]);
    qb.build().unwrap()
}

fn random_binary_stream(rels: usize, n: usize, dom: u64, seed: u64) -> TupleStream {
    let mut rng = RsjRng::seed_from_u64(seed);
    let mut s = TupleStream::new();
    for _ in 0..n {
        s.push(
            rng.index(rels),
            vec![rng.below_u64(dom), rng.below_u64(dom)],
        );
    }
    s
}

#[test]
fn rsjoin_equals_naive_on_line4() {
    let opts = EngineOpts::default();
    for seed in 0..3 {
        let stream = random_binary_stream(4, 120, 4, 100 + seed);
        let q = line4_query();
        assert_eq!(
            collect(Engine::Reservoir, &q, &opts, &stream),
            collect(Engine::Naive, &q, &opts, &stream),
            "seed {seed}"
        );
    }
}

#[test]
fn rsjoin_equals_sjoin_on_star3() {
    let opts = EngineOpts::default();
    for seed in 0..3 {
        let stream = random_binary_stream(3, 150, 5, 200 + seed);
        let q = star3_query();
        let a = collect(Engine::Reservoir, &q, &opts, &stream);
        assert!(!a.is_empty(), "degenerate instance");
        assert_eq!(a, collect(Engine::SJoin, &q, &opts, &stream), "seed {seed}");
    }
}

#[test]
fn grouping_never_changes_results() {
    // A 3-relation query with a wide (groupable) middle node.
    let mut qb = QueryBuilder::new();
    qb.relation("Ra", &["X", "Y"]);
    qb.relation("Rb", &["Y", "Z", "W"]);
    qb.relation("Rc", &["W", "U"]);
    let q = qb.build().unwrap();
    let mut rng = RsjRng::seed_from_u64(5);
    let mut stream = TupleStream::new();
    for _ in 0..200 {
        let rel = rng.index(3);
        let t = if rel == 1 {
            vec![rng.below_u64(4), rng.below_u64(8), rng.below_u64(4)]
        } else {
            vec![rng.below_u64(4), rng.below_u64(4)]
        };
        stream.push(rel, t);
    }
    let run = |grouping: bool| {
        let opts = EngineOpts {
            index: IndexOptions { grouping },
            ..EngineOpts::default()
        };
        collect(Engine::Reservoir, &q, &opts, &stream)
    };
    let with = run(true);
    assert!(!with.is_empty());
    assert_eq!(with, run(false));
}

#[test]
fn cyclic_triangle_equals_naive() {
    let mut qb = QueryBuilder::new();
    qb.relation("R1", &["X", "Y"]);
    qb.relation("R2", &["Y", "Z"]);
    qb.relation("R3", &["Z", "X"]);
    let q = qb.build().unwrap();
    let opts = EngineOpts::default();
    for seed in 0..3 {
        let stream = random_binary_stream(3, 150, 6, 300 + seed);
        assert_eq!(
            collect(Engine::Cyclic, &q, &opts, &stream),
            collect(Engine::Naive, &q, &opts, &stream),
            "seed {seed}"
        );
    }
}

#[test]
fn fk_rewrite_preserves_results_under_all_orders() {
    // fact(K,M) ⋈ c(K,HD) ⋈ d(HD,IB) with PKs on c and d; plain vs _opt
    // engines on a shuffled stream including late-arriving dimensions.
    let mut qb = QueryBuilder::new();
    qb.relation("fact", &["K", "M"]);
    qb.relation("c", &["K", "HD"]);
    qb.relation("d", &["HD", "IB"]);
    let q = qb.build().unwrap();
    let opts = EngineOpts {
        fks: Some(FkSchema::none(3).with_pk(1, vec![0]).with_pk(2, vec![2])),
        ..EngineOpts::default()
    };
    let mut rng = RsjRng::seed_from_u64(9);
    let mut stream = TupleStream::new();
    for k in 0..12u64 {
        stream.push(1, vec![k, k % 5]);
    }
    for hd in 0..5u64 {
        stream.push(2, vec![hd, hd % 2]);
    }
    for _ in 0..60 {
        stream.push(0, vec![rng.below_u64(12), rng.below_u64(30)]);
    }
    for perm_seed in 0..4 {
        let mut s = stream.clone();
        s.shuffle(&mut RsjRng::seed_from_u64(perm_seed));
        let a = collect(Engine::Reservoir, &q, &opts, &s);
        let b = collect(Engine::FkReservoir, &q, &opts, &s);
        assert!(!a.is_empty());
        assert_eq!(a, b, "perm {perm_seed}");
    }
}

#[test]
fn dynamic_sampler_and_reservoir_agree_on_support() {
    // Every result the ad-hoc sampler can produce must be in the full
    // result set collected by the reservoir with huge k, and vice versa.
    // (`DynamicSampleIndex` is the on-demand sampling facade, not one of
    // the streaming engines, so it keeps its own insert interface.)
    let q = star3_query();
    let stream = random_binary_stream(3, 100, 4, 11);
    let full = collect(Engine::Reservoir, &q, &EngineOpts::default(), &stream);
    let mut ix = DynamicSampleIndex::new(q.clone(), 2).unwrap();
    for t in stream.iter() {
        ix.insert(t.relation, &t.values);
    }
    let sampled: ResultSet = ix
        .sample_many(3000)
        .iter()
        .map(|s| {
            let mut kv: Vec<(String, u64)> = q
                .attr_names()
                .iter()
                .cloned()
                .zip(s.iter().copied())
                .collect();
            kv.sort();
            kv
        })
        .collect();
    assert!(!full.is_empty());
    // With 3000 draws over a small result set, support should be covered.
    assert_eq!(sampled, full);
}
