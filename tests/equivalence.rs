//! Cross-algorithm equivalence: with `k` larger than the join, every
//! algorithm must hold *exactly* the full result set, for every query
//! shape, under randomized streams. This pins RSJoin, RSJoin_opt, SJoin,
//! SJoin_opt, the cyclic driver and the naive baseline to one another.

use rsjoin::prelude::*;

type ResultSet = std::collections::BTreeSet<Vec<(String, u64)>>;

/// Normalizes samples to sorted (attr-name, value) sets so drivers with
/// different attribute orders compare equal.
fn normalize(samples: &[Vec<u64>], q: &Query) -> ResultSet {
    samples
        .iter()
        .map(|s| {
            let mut kv: Vec<(String, u64)> = q
                .attr_names()
                .iter()
                .cloned()
                .zip(s.iter().copied())
                .collect();
            kv.sort();
            kv
        })
        .collect()
}

fn line4_query() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    qb.relation("G4", &["D", "E"]);
    qb.build().unwrap()
}

fn star3_query() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B1"]);
    qb.relation("G2", &["A", "B2"]);
    qb.relation("G3", &["A", "B3"]);
    qb.build().unwrap()
}

fn random_binary_stream(rels: usize, n: usize, dom: u64, seed: u64) -> Vec<(usize, Vec<u64>)> {
    let mut rng = RsjRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                rng.index(rels),
                vec![rng.below_u64(dom), rng.below_u64(dom)],
            )
        })
        .collect()
}

#[test]
fn rsjoin_equals_naive_on_line4() {
    for seed in 0..3 {
        let stream = random_binary_stream(4, 120, 4, 100 + seed);
        let q = line4_query();
        let mut rj = ReservoirJoin::new(q.clone(), 1_000_000, seed).unwrap();
        let mut naive = NaiveRebuild::new(q.clone(), usize::MAX >> 1, seed);
        for (rel, t) in &stream {
            rj.process(*rel, t);
            naive.process(*rel, t);
        }
        assert_eq!(
            normalize(rj.samples(), &q),
            normalize(naive.samples(), &q),
            "seed {seed}"
        );
    }
}

#[test]
fn rsjoin_equals_sjoin_on_star3() {
    for seed in 0..3 {
        let stream = random_binary_stream(3, 150, 5, 200 + seed);
        let q = star3_query();
        let mut rj = ReservoirJoin::new(q.clone(), 1_000_000, seed).unwrap();
        let mut sj = SJoin::new(q.clone(), 1_000_000, seed + 77).unwrap();
        for (rel, t) in &stream {
            rj.process(*rel, t);
            sj.process(*rel, t);
        }
        assert!(!rj.samples().is_empty(), "degenerate instance");
        assert_eq!(
            normalize(rj.samples(), &q),
            normalize(sj.samples(), &q),
            "seed {seed}"
        );
    }
}

#[test]
fn grouping_never_changes_results() {
    // A 3-relation query with a wide (groupable) middle node.
    let build = || {
        let mut qb = QueryBuilder::new();
        qb.relation("Ra", &["X", "Y"]);
        qb.relation("Rb", &["Y", "Z", "W"]);
        qb.relation("Rc", &["W", "U"]);
        qb.build().unwrap()
    };
    let mut rng = RsjRng::seed_from_u64(5);
    let mut stream: Vec<(usize, Vec<u64>)> = Vec::new();
    for _ in 0..200 {
        let rel = rng.index(3);
        let t = if rel == 1 {
            vec![rng.below_u64(4), rng.below_u64(8), rng.below_u64(4)]
        } else {
            vec![rng.below_u64(4), rng.below_u64(4)]
        };
        stream.push((rel, t));
    }
    let run = |grouping: bool| {
        let q = build();
        let mut rj = rsjoin::core::ReservoirJoin::with_options(
            q.clone(),
            1_000_000,
            3,
            IndexOptions { grouping },
        )
        .unwrap();
        for (rel, t) in &stream {
            rj.process(*rel, t);
        }
        normalize(rj.samples(), &q)
    };
    let with = run(true);
    assert!(!with.is_empty());
    assert_eq!(with, run(false));
}

#[test]
fn cyclic_triangle_equals_naive() {
    let mut qb = QueryBuilder::new();
    qb.relation("R1", &["X", "Y"]);
    qb.relation("R2", &["Y", "Z"]);
    qb.relation("R3", &["Z", "X"]);
    let q = qb.build().unwrap();
    for seed in 0..3 {
        let stream = random_binary_stream(3, 150, 6, 300 + seed);
        let mut crj = CyclicReservoirJoin::new(q.clone(), 1_000_000, seed).unwrap();
        let mut naive = NaiveRebuild::new(q.clone(), usize::MAX >> 1, seed);
        for (rel, t) in &stream {
            crj.process(*rel, t);
            naive.process(*rel, t);
        }
        // Bag-level query has the same attribute names.
        let got = normalize(crj.samples(), crj.inner().index().query());
        let expect = normalize(naive.samples(), &q);
        assert_eq!(got, expect, "seed {seed}");
    }
}

#[test]
fn fk_rewrite_preserves_results_under_all_orders() {
    // fact(K,M) ⋈ c(K,HD) ⋈ d(HD,IB) with PKs on c and d; plain vs _opt
    // drivers on a shuffled stream including late-arriving dimensions.
    let build = || {
        let mut qb = QueryBuilder::new();
        qb.relation("fact", &["K", "M"]);
        qb.relation("c", &["K", "HD"]);
        qb.relation("d", &["HD", "IB"]);
        qb.build().unwrap()
    };
    let q = build();
    let fks = FkSchema::none(3).with_pk(1, vec![0]).with_pk(2, vec![2]);
    let mut rng = RsjRng::seed_from_u64(9);
    let mut stream: Vec<(usize, Vec<u64>)> = Vec::new();
    for k in 0..12u64 {
        stream.push((1, vec![k, k % 5]));
    }
    for hd in 0..5u64 {
        stream.push((2, vec![hd, hd % 2]));
    }
    for _ in 0..60 {
        stream.push((0, vec![rng.below_u64(12), rng.below_u64(30)]));
    }
    for perm_seed in 0..4 {
        let mut s = stream.clone();
        let mut prng = RsjRng::seed_from_u64(perm_seed);
        for i in (1..s.len()).rev() {
            let j = prng.index(i + 1);
            s.swap(i, j);
        }
        let mut plain = ReservoirJoin::new(q.clone(), 1_000_000, 1).unwrap();
        let mut opt = FkReservoirJoin::new(&q, &fks, 1_000_000, 2).unwrap();
        for (rel, t) in &s {
            plain.process(*rel, t);
            opt.process(*rel, t);
        }
        let a = normalize(plain.samples(), &q);
        let b = normalize(opt.samples(), opt.rewritten_query());
        assert!(!a.is_empty());
        assert_eq!(a, b, "perm {perm_seed}");
    }
}

#[test]
fn dynamic_sampler_and_reservoir_agree_on_support() {
    // Every result the ad-hoc sampler can produce must be in the full
    // result set collected by the reservoir with huge k, and vice versa.
    let q = star3_query();
    let stream = random_binary_stream(3, 100, 4, 11);
    let mut rj = ReservoirJoin::new(q.clone(), 1_000_000, 1).unwrap();
    let mut ix = DynamicSampleIndex::new(q.clone(), 2).unwrap();
    for (rel, t) in &stream {
        rj.process(*rel, t);
        ix.insert(*rel, t);
    }
    let full = normalize(rj.samples(), &q);
    let sampled = normalize(&ix.sample_many(3000), &q);
    assert!(!full.is_empty());
    // With 3000 draws over a small result set, support should be covered.
    assert_eq!(sampled, full);
}
