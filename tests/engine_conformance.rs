//! Cross-engine conformance: one workload streamed through every
//! [`Engine`] variant via `dyn JoinSampler`, asserting exact agreement of
//! the collected result sets (and therefore join counts) against the
//! `NaiveRebuild` ground truth.
//!
//! This is the executor layer's contract test: every engine, however it
//! rewrites or decomposes the query internally, must expose the same
//! name→value result set through the uniform interface. No per-engine
//! driver code appears anywhere in this file — engines are built by the
//! factory and driven exclusively through the trait.

use rsjoin::prelude::*;

type ResultSet = std::collections::BTreeSet<Vec<(String, u64)>>;

/// `k` large enough that the reservoir collects every result.
const K_ALL: usize = 1 << 22;

/// Builds `engine`, streams `stream` through the trait, returns the
/// normalized result set.
fn collect(engine: &Engine, query: &Query, opts: &EngineOpts, stream: &TupleStream) -> ResultSet {
    let mut sampler = engine
        .build(query, K_ALL, 7, opts)
        .unwrap_or_else(|e| panic!("{engine}: {e}"));
    sampler.process_stream(stream);
    sampler.samples_named().into_iter().collect()
}

/// Streams through every supporting engine and asserts agreement with
/// `NaiveRebuild`. Returns the (common) result count.
fn conform(query: &Query, opts: &EngineOpts, stream: &TupleStream, label: &str) -> usize {
    let truth = collect(&Engine::Naive, query, opts, stream);
    for engine in Engine::ALL {
        if engine == Engine::Naive || !engine.supports(query) {
            continue;
        }
        let got = collect(&engine, query, opts, stream);
        assert_eq!(
            got.len(),
            truth.len(),
            "{label}: {engine} count {} != naive count {}",
            got.len(),
            truth.len()
        );
        assert_eq!(got, truth, "{label}: {engine} disagrees with NaiveRebuild");
    }
    truth.len()
}

fn random_stream(rels: usize, n: usize, dom: u64, seed: u64) -> TupleStream {
    let mut rng = RsjRng::seed_from_u64(seed);
    let mut s = TupleStream::new();
    for _ in 0..n {
        s.push(
            rng.index(rels),
            vec![rng.below_u64(dom), rng.below_u64(dom)],
        );
    }
    s
}

#[test]
fn all_seven_engines_agree_on_two_table_join() {
    // The only query shape every engine (including SymmetricHashJoin)
    // supports: R(X,Y) ⋈ S(Y,Z).
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    let q = qb.build().unwrap();
    let opts = EngineOpts::default();
    for seed in 0..3 {
        let stream = random_stream(2, 150, 6, 40 + seed);
        let n = conform(&q, &opts, &stream, "two-table");
        assert!(n > 0, "degenerate instance at seed {seed}");
    }
}

#[test]
fn acyclic_engines_agree_on_line3() {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    let q = qb.build().unwrap();
    let opts = EngineOpts::default();
    for seed in 0..3 {
        let stream = random_stream(3, 150, 5, 60 + seed);
        let n = conform(&q, &opts, &stream, "line-3");
        assert!(n > 0, "degenerate instance at seed {seed}");
    }
}

#[test]
fn fk_engines_agree_under_declared_keys() {
    // fact(K,M) ⋈ c(K,HD) ⋈ d(HD,IB) with PKs on c and d: the `_opt`
    // engines take the combination rewrite, the others run the original
    // query; results must match regardless.
    let mut qb = QueryBuilder::new();
    qb.relation("fact", &["K", "M"]);
    qb.relation("c", &["K", "HD"]);
    qb.relation("d", &["HD", "IB"]);
    let q = qb.build().unwrap();
    let opts = EngineOpts {
        fks: Some(FkSchema::none(3).with_pk(1, vec![0]).with_pk(2, vec![2])),
        ..EngineOpts::default()
    };
    let mut stream = TupleStream::new();
    for k in 0..12u64 {
        stream.push(1, vec![k, k % 5]);
    }
    for hd in 0..5u64 {
        stream.push(2, vec![hd, hd % 2]);
    }
    let mut rng = RsjRng::seed_from_u64(9);
    for _ in 0..60 {
        stream.push(0, vec![rng.below_u64(12), rng.below_u64(30)]);
    }
    // Dimensions must arrive in any order relative to facts.
    stream.shuffle(&mut RsjRng::seed_from_u64(3));
    let n = conform(&q, &opts, &stream, "fk-chain");
    assert!(n > 0);
}

#[test]
fn cyclic_engines_agree_on_triangle() {
    let mut qb = QueryBuilder::new();
    qb.relation("R1", &["X", "Y"]);
    qb.relation("R2", &["Y", "Z"]);
    qb.relation("R3", &["Z", "X"]);
    let q = qb.build().unwrap();
    let opts = EngineOpts::default();
    for seed in 0..2 {
        let stream = random_stream(3, 120, 6, 80 + seed);
        conform(&q, &opts, &stream, "triangle");
    }
}

#[test]
fn sharded_wrapper_conforms_for_every_inner_engine() {
    // Sharded<inner> must collect exactly the same result set as its inner
    // engine (and therefore as NaiveRebuild): partitioning shuffles work
    // across threads, never results.
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    let q = qb.build().unwrap();
    let opts = EngineOpts::default();
    let stream = random_stream(2, 150, 6, 90);
    let truth = collect(&Engine::Naive, &q, &opts, &stream);
    assert!(!truth.is_empty(), "degenerate instance");
    for inner in Engine::ALL {
        for shards in [1, 3] {
            let sharded = Engine::sharded(inner.clone(), shards);
            assert_eq!(
                collect(&sharded, &q, &opts, &stream),
                truth,
                "{sharded} disagrees with NaiveRebuild"
            );
        }
    }
}

#[test]
fn sharded_wrapper_conforms_on_multiway_and_cyclic_queries() {
    // Line-3 exercises the broadcast path (G3 has no partition attribute);
    // the triangle exercises the cyclic merge path.
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    let line3 = qb.build().unwrap();
    let mut qb = QueryBuilder::new();
    qb.relation("R1", &["X", "Y"]);
    qb.relation("R2", &["Y", "Z"]);
    qb.relation("R3", &["Z", "X"]);
    let triangle = qb.build().unwrap();
    let opts = EngineOpts::default();
    for (q, inner, label) in [
        (&line3, Engine::Reservoir, "line-3"),
        (&triangle, Engine::Cyclic, "triangle"),
    ] {
        let stream = random_stream(3, 150, 5, 95);
        let truth = collect(&Engine::Naive, q, &opts, &stream);
        assert!(!truth.is_empty(), "{label}: degenerate instance");
        let sharded = Engine::sharded(inner, 4);
        assert_eq!(
            collect(&sharded, q, &opts, &stream),
            truth,
            "{label}: {sharded}"
        );
    }
}

#[test]
fn sharded_stats_report_exact_results() {
    // The merge maintains exact per-shard populations, so Sharded reports
    // exact |Q(R)| through the uniform stats hook — for any inner engine.
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    let q = qb.build().unwrap();
    let stream = random_stream(2, 100, 5, 1);
    let truth = collect(&Engine::Naive, &q, &EngineOpts::default(), &stream);
    let mut s = Engine::sharded(Engine::Reservoir, 3)
        .build(&q, 10, 1, &EngineOpts::default())
        .unwrap();
    s.process_stream(&stream);
    assert_eq!(s.stats().exact_results, Some(truth.len() as u128));
}

#[test]
fn engines_report_their_identity_and_capacity() {
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    let q = qb.build().unwrap();
    for engine in Engine::ALL {
        let s = engine.build(&q, 17, 1, &EngineOpts::default()).unwrap();
        assert_eq!(s.name(), engine.name());
        assert_eq!(s.k(), 17);
        assert!(s.samples().is_empty());
    }
}

#[test]
fn stats_flow_through_the_trait() {
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    let q = qb.build().unwrap();
    let stream = random_stream(2, 100, 5, 1);
    for engine in [Engine::Reservoir, Engine::SJoin, Engine::Symmetric] {
        let mut s = engine.build(&q, 10, 1, &EngineOpts::default()).unwrap();
        s.process_stream(&stream);
        let st = s.stats();
        assert!(st.inserts.unwrap() > 0, "{engine} tracks accepted tuples");
    }
    // SJoin and the symmetric join maintain exact counts; they must agree.
    let run = |engine: Engine| {
        let mut s = engine.build(&q, 10, 1, &EngineOpts::default()).unwrap();
        s.process_stream(&stream);
        s.stats().exact_results.unwrap()
    };
    assert_eq!(run(Engine::SJoin), run(Engine::Symmetric));
}
