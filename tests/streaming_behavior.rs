//! Streaming-semantics tests: correctness at every prefix, duplicate
//! handling, arrival-order invariance of the result *set*, and unbounded
//! operation (no knowledge of N anywhere).

use rsjoin::prelude::*;

fn line3_query() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    qb.build().unwrap()
}

/// Brute-force join of the accepted tuples so far.
fn brute(tuples: &[(usize, Vec<u64>)]) -> std::collections::BTreeSet<Vec<u64>> {
    let mut out = std::collections::BTreeSet::new();
    for (r1, t1) in tuples.iter().filter(|(r, _)| *r == 0) {
        for (r2, t2) in tuples.iter().filter(|(r, _)| *r == 1) {
            for (r3, t3) in tuples.iter().filter(|(r, _)| *r == 2) {
                let _ = (r1, r2, r3);
                if t1[1] == t2[0] && t2[1] == t3[0] {
                    out.insert(vec![t1[0], t1[1], t2[1], t3[1]]);
                }
            }
        }
    }
    out
}

#[test]
fn samples_valid_and_complete_at_every_prefix() {
    let mut rng = RsjRng::seed_from_u64(1);
    let q = line3_query();
    let mut rj = ReservoirJoin::new(q, 1_000_000, 2).unwrap();
    let mut accepted = Vec::new();
    for step in 0..300 {
        let rel = rng.index(3);
        let t = vec![rng.below_u64(5), rng.below_u64(5)];
        if rj.process(rel, &t).is_some() {
            accepted.push((rel, t));
        }
        if step % 25 == 24 {
            let truth = brute(&accepted);
            let got: std::collections::BTreeSet<Vec<u64>> = rj.samples().iter().cloned().collect();
            assert_eq!(got, truth, "prefix at step {step}");
        }
    }
}

#[test]
fn arrival_order_does_not_change_final_result_set() {
    let mut rng = RsjRng::seed_from_u64(3);
    let base: Vec<(usize, Vec<u64>)> = (0..150)
        .map(|_| (rng.index(3), vec![rng.below_u64(5), rng.below_u64(5)]))
        .collect();
    let run = |order_seed: u64| {
        let mut s = base.clone();
        let mut prng = RsjRng::seed_from_u64(order_seed);
        for i in (1..s.len()).rev() {
            let j = prng.index(i + 1);
            s.swap(i, j);
        }
        let mut rj = ReservoirJoin::new(line3_query(), 1_000_000, 5).unwrap();
        for (rel, t) in &s {
            rj.process(*rel, t);
        }
        rj.samples()
            .iter()
            .cloned()
            .collect::<std::collections::BTreeSet<_>>()
    };
    let a = run(10);
    assert!(!a.is_empty());
    assert_eq!(a, run(11));
    assert_eq!(a, run(12));
}

#[test]
fn heavy_duplicates_are_no_ops_everywhere() {
    // Every engine must treat re-sent tuples as no-ops (set semantics);
    // checked through the uniform stats interface.
    let q = line3_query();
    let mut stream = TupleStream::new();
    for (rel, t) in [
        (0, vec![1, 2]),
        (1, vec![2, 3]),
        (2, vec![3, 4]),
        (0, vec![5, 2]),
    ] {
        stream.push(rel, t);
    }
    for engine in Engine::ALL {
        if !engine.supports(&q) {
            continue;
        }
        let mut s = engine.build(&q, 100, 1, &EngineOpts::default()).unwrap();
        for round in 0..5 {
            s.process_stream(&stream);
            if let Some(n) = s.stats().inserts {
                assert_eq!(n, 4, "{engine} round {round}");
            }
            if let Some(total) = s.stats().exact_results {
                assert_eq!(total, 2, "{engine} round {round}");
            }
            assert_eq!(s.samples().len(), 2, "{engine} round {round}");
        }
    }
}

#[test]
fn works_on_unbounded_style_stream() {
    // Feed a long stream in small pieces, interleaving queries of state —
    // nothing may require knowing N upfront.
    let q = line3_query();
    let mut rj = ReservoirJoin::new(q, 10, 7).unwrap();
    let mut rng = RsjRng::seed_from_u64(9);
    let mut last_bound = 0u128;
    for chunk in 0..20 {
        for _ in 0..200 {
            let rel = rng.index(3);
            rj.process(rel, &[rng.below_u64(30), rng.below_u64(30)]);
        }
        let bound = FullSampler::default().implicit_size(rj.index());
        assert!(bound >= last_bound, "result bound shrank at chunk {chunk}");
        last_bound = bound;
        assert!(rj.samples().len() <= 10);
    }
    assert_eq!(rj.samples().len(), 10);
}

#[test]
fn empty_relations_mean_no_samples_ever() {
    // If one relation never receives tuples, the join stays empty no
    // matter how much the others grow.
    let q = line3_query();
    let mut rj = ReservoirJoin::new(q, 10, 1).unwrap();
    let mut rng = RsjRng::seed_from_u64(4);
    for _ in 0..500 {
        let rel = rng.index(2); // never relation 2
        rj.process(rel, &[rng.below_u64(5), rng.below_u64(5)]);
    }
    assert!(rj.samples().is_empty());
    assert_eq!(FullSampler::default().implicit_size(rj.index()), 0);
}

#[test]
fn late_arriving_relation_unlocks_results() {
    let q = line3_query();
    let mut rj = ReservoirJoin::new(q, 1_000, 1).unwrap();
    for a in 0..10u64 {
        rj.process(0, &[a, 0]);
    }
    for c in 0..10u64 {
        rj.process(1, &[0, c]);
    }
    assert!(rj.samples().is_empty());
    // One G3 tuple unlocks 10 * 1 results for C=0.
    rj.process(2, &[0, 99]);
    assert_eq!(rj.samples().len(), 10);
    // Another unlocks 10 more for C=1.
    rj.process(2, &[1, 98]);
    assert_eq!(rj.samples().len(), 20);
}

#[test]
fn two_table_memory_lower_bound_scenario() {
    // The §2.1 adversarial scenario: N tuples all in R1, then one R2 tuple.
    // The first join result must be sampled — the algorithm must have kept
    // all of R1.
    let mut qb = QueryBuilder::new();
    qb.relation("R1", &["X", "Y"]);
    qb.relation("R2", &["Y", "Z"]);
    let q = qb.build().unwrap();
    let mut rj = ReservoirJoin::new(q, 5, 3).unwrap();
    for x in 0..1000u64 {
        rj.process(0, &[x, x % 7]);
    }
    assert!(rj.samples().is_empty());
    rj.process(1, &[3, 42]);
    // All R1 tuples with Y=3 join: ~143 results; reservoir holds 5.
    assert_eq!(rj.samples().len(), 5);
    for s in rj.samples() {
        assert_eq!(s[1], 3);
        assert_eq!(s[2], 42);
    }
}
