//! Golden-determinism guard: fixed seed + fixed stream ⇒ byte-identical
//! final reservoirs.
//!
//! The dynamic index promises that internal layout changes (hash tables,
//! posting arenas, batching) are invisible to the sampling distribution:
//! group and item ids are arrival-ordered and retrieval is positional, so
//! for a fixed seed the reservoir must come out byte-for-byte identical no
//! matter how the index stores its postings. These digests were recorded
//! from the pre-arena implementation (tiny per-key `Vec` posting lists,
//! std `FxHashMap`s, per-tree re-hashing); any future layout change that
//! shifts them is changing *samples*, not just memory layout, and must be
//! treated as a correctness bug, not a test update.

use rsjoin::engine::{run_workload, workload_opts, Engine};
use rsjoin::prelude::*;

/// FNV-1a over the sample matrix, in reservoir order.
fn digest(samples: &[Vec<Value>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(samples.len() as u64);
    for s in samples {
        eat(s.len() as u64);
        for &v in s {
            eat(v);
        }
    }
    h
}

/// Zipf-skewed graph stream: line-3, heavy hubs, duplicates included.
fn graph_workload() -> rsj_queries::Workload {
    let edges = rsj_datagen::GraphConfig {
        nodes: 300,
        edges: 2400,
        zipf: 0.8,
        seed: 4242,
    }
    .generate();
    rsj_queries::line_k(3, &edges, 7)
}

/// QY over tpcds-lite: wide tuples (groupable nodes) and a real FK schema,
/// so the grouped arena and the foreign-key combiner are both on the path.
fn relational_workload() -> rsj_queries::Workload {
    let data = rsj_datagen::TpcdsLite::generate(1, 99);
    rsj_queries::qy(&data, 31)
}

fn run(w: &rsj_queries::Workload, engine: Engine) -> u64 {
    let sampler = run_workload(w, &engine, 64, 0xD15EA5E).unwrap();
    digest(&sampler.samples())
}

#[test]
fn rsjoin_reservoir_bytes_are_pinned() {
    assert_eq!(
        run(&graph_workload(), Engine::Reservoir),
        0x42B7_36F8_2FB0_5316,
        "RSJoin/line3"
    );
}

#[test]
fn sharded_reservoir_bytes_are_pinned() {
    assert_eq!(
        run(&graph_workload(), Engine::sharded(Engine::Reservoir, 2)),
        0xE1E4_CF08_D938_BC0C,
        "Sharded<RSJoinx2>/line3"
    );
}

#[test]
fn rsjoin_grouped_reservoir_bytes_are_pinned() {
    assert_eq!(
        run(&relational_workload(), Engine::Reservoir),
        0x7B60_24CE_90D1_C2BE,
        "RSJoin/QY"
    );
}

#[test]
fn rsjoin_opt_reservoir_bytes_are_pinned() {
    assert_eq!(
        run(&relational_workload(), Engine::FkReservoir),
        0xD85D_8DF7_05E9_87FE,
        "RSJoin_opt/QY"
    );
}

/// The columnar fast path must be byte-invisible: `run_workload` ships the
/// preload and stream as struct-of-arrays batches with bulk-hashed keys, so
/// the four pinned digests above already certify the columnar path. This
/// test drives the identical arrivals tuple-at-a-time (the historical row
/// shape) and checks both ingest shapes land on the same pinned bytes —
/// including through the sharded router, whose columnar side partitions on
/// vectorized column hashes instead of per-tuple hashing.
#[test]
fn row_shaped_ingest_reproduces_columnar_digests() {
    let cases: [(&str, rsj_queries::Workload, Engine, u64); 4] = [
        (
            "RSJoin/line3",
            graph_workload(),
            Engine::Reservoir,
            0x42B7_36F8_2FB0_5316,
        ),
        (
            "Sharded<RSJoinx2>/line3",
            graph_workload(),
            Engine::sharded(Engine::Reservoir, 2),
            0xE1E4_CF08_D938_BC0C,
        ),
        (
            "RSJoin/QY",
            relational_workload(),
            Engine::Reservoir,
            0x7B60_24CE_90D1_C2BE,
        ),
        (
            "RSJoin_opt/QY",
            relational_workload(),
            Engine::FkReservoir,
            0xD85D_8DF7_05E9_87FE,
        ),
    ];
    for (name, w, engine, expect) in cases {
        let mut s = engine
            .build(&w.query, 64, 0xD15EA5E, &workload_opts(&w))
            .unwrap();
        s.process_batch(&w.preload);
        s.process_stream(&w.stream);
        assert_eq!(digest(&s.samples()), expect, "{name}: row-shaped ingest");
    }
}

/// Post-delete reservoirs are golden too: the signed delta pipelines
/// (`_opt` FK combiner retraction, cyclic bag delta forwarding) and the
/// eviction-and-backfill repair they feed are all deterministic for a
/// fixed seed, so a fixed turnstile weave pins the final bytes exactly
/// like the insert-only digests above. A shift here means the *delete*
/// path changed samples; the insert-only pins would not catch it.
#[test]
fn post_delete_reservoirs_are_pinned() {
    use rsj_datagen::{TurnstileConfig, VictimPolicy};
    let cases: [(&str, rsj_queries::Workload, Engine, u64); 4] = [
        (
            "RSJoin_opt/line3+deletes",
            graph_workload(),
            Engine::FkReservoir,
            0x32D4_5898_FC46_EDF9,
        ),
        (
            "RSJoin_cyclic/line3+deletes",
            graph_workload(),
            Engine::Cyclic,
            0x32D4_5898_FC46_EDF9,
        ),
        (
            "SJoin_opt/line3+deletes",
            graph_workload(),
            Engine::SJoinOpt,
            0x86BA_1A96_C801_1427,
        ),
        (
            "RSJoin_opt/QY+deletes",
            relational_workload(),
            Engine::FkReservoir,
            0xBF6F_9FBC_1E0B_26A8,
        ),
    ];
    for (name, w, engine, expect) in cases {
        let mut s = engine
            .build(&w.query, 64, 0xD15EA5E, &workload_opts(&w))
            .unwrap();
        s.process_batch(&w.preload);
        let ops = TurnstileConfig {
            delete_ratio: 0.2,
            policy: VictimPolicy::Uniform,
            seed: 9,
        }
        .weave(&w.stream);
        assert!(ops.num_deletes() > 0, "{name}: weave produced no deletes");
        s.process_op_stream(&ops).unwrap();
        let d = digest(&s.samples());
        if std::env::var_os("RSJ_PIN_PLANS").is_some() {
            println!("{name}: 0x{d:016X}");
            continue;
        }
        assert_eq!(d, expect, "{name}: post-delete reservoir bytes moved");
    }
}

/// On-disk durability images are golden too: the WAL segment and the
/// checkpoint written for a fixed engine/seed/stream must be
/// byte-identical across releases, or old logs stop being replayable.
///
/// **Format-version bump rule**: these digests pin WAL/checkpoint
/// `FORMAT_VERSION = 1` (crates/storage/src/wal.rs) *and* every engine's
/// canonical snapshot image. Any deliberate change to the record layout,
/// the checkpoint layout, or a snapshot wire format MUST (1) bump
/// `FORMAT_VERSION` so old files are rejected loudly instead of
/// misparsed, and (2) re-pin these digests in the same commit, with a
/// migration note. A digest shift without a version bump is a corruption
/// bug, not a test update.
#[test]
fn durability_images_are_pinned() {
    use rsjoin::prelude::{CheckpointPolicy, Persistent};

    // FNV-1a over raw file bytes.
    fn file_digest(path: &std::path::Path) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in std::fs::read(path).unwrap() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    // Fixed turnstile stream over line-3: inserts with every 5th op
    // deleting the tuple inserted four ops earlier.
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    let query = qb.build().unwrap();
    let mut rng = RsjRng::seed_from_u64(0x90_1D);
    let mut ops: Vec<StreamOp> = Vec::new();
    let mut recent: Vec<(usize, Vec<Value>)> = Vec::new();
    for i in 0..120usize {
        if i % 5 == 4 {
            let (rel, t) = recent.remove(0);
            ops.push(StreamOp::delete(rel, t));
        } else {
            let rel = rng.index(3);
            let t = vec![rng.below_u64(6), rng.below_u64(6)];
            recent.push((rel, t.clone()));
            ops.push(StreamOp::insert(rel, t));
        }
    }

    let dir = std::env::temp_dir().join(format!("rsj-golden-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = Engine::Reservoir;
    let mut p = Persistent::open(
        engine
            .build(&query, 16, 0xD15EA5E, &Default::default())
            .unwrap(),
        &dir,
        CheckpointPolicy::Manual,
    )
    .unwrap();
    for op in &ops[..100] {
        p.process_op(op).unwrap();
    }
    p.checkpoint().unwrap(); // checkpoint @ lsn 100, log truncated
    for op in &ops[100..] {
        p.process_op(op).unwrap();
    }
    p.flush().unwrap();
    drop(p);

    let checkpoint = file_digest(&dir.join("checkpoint.rsjc"));
    // After truncation the live segment is wal-00000001.log, holding ops
    // 100..120.
    let segment = file_digest(&dir.join("wal").join("wal-00000001.log"));
    std::fs::remove_dir_all(&dir).unwrap();
    if std::env::var_os("RSJ_PIN_PLANS").is_some() {
        println!("checkpoint: 0x{checkpoint:016X}\nsegment: 0x{segment:016X}");
        return;
    }
    assert_eq!(
        checkpoint, 0x1D13_8FA6_1909_DCBA,
        "checkpoint image moved — see the format-version bump rule above"
    );
    assert_eq!(
        segment, 0xF639_9094_2DAA_D761,
        "WAL segment image moved — see the format-version bump rule above"
    );
}

/// Digest of a planner choice: tree edge set, root, partition attribute.
fn plan_digest(plan: &Plan) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let edges = plan.tree.canonical_edges();
    eat(edges.len() as u64);
    for (i, j) in edges {
        eat(i as u64);
        eat(j as u64);
    }
    eat(plan.root as u64);
    eat(plan.partition_attr as u64);
    h
}

/// The planner's default choice for a workload, run against statistics
/// observed from the workload's full input under set semantics (preload
/// then stream, in arrival order — exactly what an engine's live database
/// would report at end of stream).
fn default_plan(w: &rsj_queries::Workload) -> Plan {
    let mut stats = rsjoin::query::plan::empty_statistics(&w.query);
    let mut seen: rsjoin::common::FxHashSet<(usize, Vec<Value>)> = Default::default();
    for t in w.preload.iter().chain(w.stream.iter()) {
        if seen.insert((t.relation, t.values.clone())) {
            stats.observe_insert(t.relation, &t.values);
        }
    }
    Planner::default().plan(&w.query, &stats).expect("acyclic")
}

/// Pin the planner's default tree/root/partition choices on the existing
/// and new workloads. A silent cost-model change that moves any default
/// choice fails here loudly; deliberate model changes must update these
/// digests *knowingly* (and re-run `fig_planner` to show the new choices
/// are no slower).
#[test]
fn planner_default_choices_are_pinned() {
    let cases: [(&str, rsj_queries::Workload, u64); 5] = [
        ("line-3", graph_workload(), 0xA93B_B823_B561_9E45),
        ("QY", relational_workload(), 0x4EC9_42DD_7ADB_EFC1),
        (
            "snowflake",
            rsj_queries::snowflake(192, 23),
            0xD650_9511_7FB3_ABC4,
        ),
        (
            "self-line-3",
            rsj_queries::self_join_line(3, 96, 29),
            0xA93B_B823_B561_9E45,
        ),
        (
            "skewed-star-4",
            rsj_queries::skewed_star(4, 128, 31),
            0xCB46_E9C7_16D0_1524,
        ),
    ];
    for (name, w, expect) in cases {
        let plan = default_plan(&w);
        assert!(plan.tree.satisfies_connectedness(&w.query), "{name}");
        if std::env::var_os("RSJ_PIN_PLANS").is_some() {
            println!(
                "{name}: 0x{:016X} (tree {:?}, root {}, partition {})",
                plan_digest(&plan),
                plan.tree.canonical_edges(),
                plan.root,
                plan.partition_attr
            );
            continue;
        }
        assert_eq!(
            plan_digest(&plan),
            expect,
            "{name}: planner default choice moved (tree {:?}, root {}, partition {})",
            plan.tree.canonical_edges(),
            plan.root,
            plan.partition_attr
        );
    }
}

/// The turnstile machinery must be invisible to insert-only runs: driving
/// the identical insert-only stream through the `StreamOp` path
/// (`process_op_stream`) consumes the same randomness and must reproduce
/// the exact pinned digest — repair RNGs exist but are never touched.
#[test]
fn op_stream_path_reproduces_insert_only_digests() {
    let w = graph_workload();
    let engine = Engine::Reservoir;
    let sampler = {
        let mut s = engine
            .build(&w.query, 64, 0xD15EA5E, &rsjoin::engine::workload_opts(&w))
            .unwrap();
        let ops: rsj_storage::OpStream = w
            .preload
            .iter()
            .chain(w.stream.iter())
            .map(|t| rsj_storage::StreamOp::Insert(t.clone()))
            .collect();
        s.process_op_stream(&ops).unwrap();
        s
    };
    assert_eq!(
        digest(&sampler.samples()),
        0x42B7_36F8_2FB0_5316,
        "RSJoin/line3 via StreamOp"
    );
}
