//! The deterministic chaos harness: seeded fault schedules driven through
//! the supervision and durability layers.
//!
//! Every run is reproducible from a `u64` seed ([`FaultPlan::from_seed`]).
//! The sweeps check the three contracts of the fault-tolerance layer:
//!
//! 1. **Healing is invisible** — a sharded run whose workers are killed
//!    and restarted ends with a reservoir *byte-identical* to its
//!    fault-free twin (invariant 9 in ARCHITECTURE.md).
//! 2. **Retry is invisible** — transient and torn WAL writes absorbed by
//!    backoff leave recovery digests identical to a clean run, across
//!    every persistent engine family.
//! 3. **Degradation is honest and uniform** — out-of-space degrades
//!    instead of corrupting, dead-past-budget shards serve a chi-square
//!    uniform sample over the surviving population, and no injected panic
//!    ever escapes the public API.
//!
//! The sweep width is `RSJ_CHAOS_SEEDS` (default 60; CI runs a smaller
//! dedicated job — see .github/workflows/ci.yml).

use rsj_testutil::{FaultFs, FaultPlan, FsOp, IoFault, TestSleeper};
use rsjoin::engine::Engine;
use rsjoin::prelude::*;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

// ---------------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------------

/// Silences the panic-hook noise of *injected* worker deaths (they are
/// caught by the supervisor; the default hook would still print a
/// backtrace per kill). Real panics keep the default report.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains(INJECTED_FAULT))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains(INJECTED_FAULT));
            if !injected {
                default(info);
            }
        }));
    });
}

fn sweep_seeds() -> u64 {
    std::env::var("RSJ_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

static SCRATCH_ID: AtomicU64 = AtomicU64::new(0);

/// Self-cleaning scratch directory under the system temp dir.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let id = SCRATCH_ID.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("rsj-chaos-{tag}-{}-{id}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// FNV-1a over the sample matrix — the same digest the recovery and
/// golden-determinism suites pin, so "equal" means "identical bytes".
fn digest(samples: &[Vec<Value>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(samples.len() as u64);
    for s in samples {
        eat(s.len() as u64);
        for &v in s {
            eat(v);
        }
    }
    h
}

fn line3() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    qb.build().unwrap()
}

fn two_rel() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["x", "y"]);
    qb.relation("S", &["y", "z"]);
    qb.build().unwrap()
}

/// Mixed insert/delete turnstile stream (1 in 4 ops deletes a live tuple).
fn turnstile_ops(query: &Query, n_ops: usize, domain: u64, seed: u64) -> Vec<StreamOp> {
    let mut rng = RsjRng::seed_from_u64(seed);
    let nrels = query.num_relations();
    let mut live: Vec<(usize, Vec<Value>)> = Vec::new();
    let mut live_set: rsjoin::common::FxHashSet<(usize, Vec<Value>)> = Default::default();
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        if !live.is_empty() && rng.below_u64(4) == 0 {
            let j = rng.index(live.len());
            let (rel, t) = live.swap_remove(j);
            live_set.remove(&(rel, t.clone()));
            ops.push(StreamOp::delete(rel, t));
        } else {
            let rel = rng.index(nrels);
            let arity = query.relation(rel).attrs.len();
            let t: Vec<Value> = (0..arity).map(|_| rng.below_u64(domain)).collect();
            if live_set.insert((rel, t.clone())) {
                live.push((rel, t.clone()));
            }
            ops.push(StreamOp::insert(rel, t));
        }
    }
    ops
}

const K: usize = 16;

/// A supervised sharded sampler running `inner` engines per shard.
fn sharded(
    inner: &Engine,
    query: &Query,
    shards: usize,
    policy: SupervisorPolicy,
    seed: u64,
) -> ShardedSampler {
    let inner = inner.clone();
    let q = query.clone();
    ShardedSampler::with_policy(query, K, seed, shards, None, policy, move |shard_seed| {
        inner
            .build(&q, K, shard_seed, &EngineOpts::default())
            .map_err(|e| e.to_string())
    })
    .unwrap()
}

/// The shardable inner families the kill sweep rotates through.
fn kill_families() -> Vec<(Engine, Query)> {
    vec![
        (Engine::Reservoir, line3()),
        (Engine::Naive, line3()),
        (Engine::SJoin, line3()),
        (Engine::Symmetric, two_rel()),
    ]
}

/// The snapshot-capable engine families the WAL fault sweep rotates
/// through (the recovery suite's matrix).
fn persist_families() -> Vec<(Engine, Query)> {
    vec![
        (Engine::Reservoir, line3()),
        (Engine::Naive, line3()),
        (Engine::SJoin, line3()),
        (Engine::sharded(Engine::Reservoir, 2), line3()),
        (Engine::Symmetric, two_rel()),
    ]
}

// ---------------------------------------------------------------------------
// Sweep 1: killed-and-healed runs are byte-identical to fault-free twins
// ---------------------------------------------------------------------------

/// For every seed: derive a fault plan (1–2 worker kills, 0–1 stalls),
/// drive the same turnstile stream through a fault-free twin and a faulted
/// twin, restart-heal the faulted one along the way, and require the final
/// reservoirs to be byte-identical. Rotates engine family, shard count,
/// and snapshot cadence with the seed, so the sweep covers restart from
/// snapshot image *and* restart by full replay.
#[test]
fn healed_runs_are_byte_identical_to_fault_free_twins() {
    quiet_injected_panics();
    let families = kill_families();
    let n_ops = 200;
    for seed in 0..sweep_seeds() {
        let (inner, query) = &families[(seed as usize) % families.len()];
        let shards = 2 + (seed as usize % 2);
        let plan = FaultPlan::from_seed(seed, n_ops as u64, shards);
        // Even seeds heal from snapshot images, odd seeds by full replay.
        let policy = SupervisorPolicy {
            snapshot_every: if seed % 2 == 0 { 32 } else { 0 },
            ..SupervisorPolicy::default()
        };
        let ops = turnstile_ops(query, n_ops, 6, seed ^ 0xFEED);

        let mut clean = sharded(inner, query, shards, policy, seed);
        for op in &ops {
            clean.process_op(op).unwrap();
        }
        let expect = digest(&clean.samples());

        let mut faulted = sharded(inner, query, shards, policy, seed);
        for (i, op) in ops.iter().enumerate() {
            for &(shard, at) in &plan.kills {
                if at == i as u64 {
                    faulted.inject_fault(shard, ShardFault::Panic);
                }
            }
            for &(shard, ms) in &plan.stalls {
                if plan.kills.first().is_some_and(|&(_, at)| at == i as u64) {
                    faulted.inject_fault(shard, ShardFault::Stall(ms));
                }
            }
            faulted.process_op(op).unwrap();
        }
        assert_eq!(
            digest(&faulted.samples()),
            expect,
            "seed {seed} ({inner} x{shards}): healed run diverged from its fault-free twin"
        );
        assert_eq!(
            faulted.health(),
            ShardHealth::Healthy,
            "seed {seed}: every kill is within budget, so the pool must heal"
        );
        let restarts = faulted.stats().restarts.unwrap_or(0);
        assert!(
            restarts >= 1,
            "seed {seed}: at least one kill must have caused a restart"
        );
    }
}

// ---------------------------------------------------------------------------
// Sweep 2: WAL write faults absorbed by retry leave recovery digests intact
// ---------------------------------------------------------------------------

/// For every seed and a rotating persistent engine family: arm the plan's
/// WAL faults (transient and torn appends/syncs, plus a checkpoint-write
/// failure on every third seed) under `Persistent::open_with`, kill at a
/// seed-derived op boundary, recover on a clean filesystem, finish the
/// stream — and require the uninterrupted digest. Backoff delays are
/// recorded, not slept.
#[test]
fn wal_fault_sweep_recovers_byte_identically() {
    quiet_injected_panics();
    let families = persist_families();
    let n_ops = 160;
    for seed in 0..sweep_seeds() {
        let (engine, query) = &families[(seed as usize) % families.len()];
        let ops = turnstile_ops(query, n_ops, 5, seed ^ 0xBEEF);
        let mut clean = engine
            .build(query, K, 0xD15EA5E, &EngineOpts::default())
            .unwrap();
        for op in &ops {
            clean.process_op(op).unwrap();
        }
        let expect = digest(&clean.samples());

        let plan = FaultPlan::from_seed(seed, n_ops as u64, 1);
        let (fs, handle) = FaultFs::new();
        plan.arm(&handle);
        if seed % 3 == 0 {
            // A failed checkpoint write: not retryable, absorbed by the
            // re-arm path (the previous checkpoint stays valid).
            handle.fail_at(FsOp::WriteFile, 1 + seed % 2, IoFault::Full);
        }
        let sleeper = TestSleeper::new();
        let scratch = Scratch::new("walsweep");
        let mut p = Persistent::open_with(
            engine
                .build(query, K, 0xD15EA5E, &EngineOpts::default())
                .unwrap(),
            scratch.path(),
            CheckpointPolicy::EveryOps(37),
            WalOptions {
                auto_flush: 0,
                ..WalOptions::default()
            },
            Box::new(fs),
            Box::new(sleeper.clone()),
        )
        .unwrap();
        let kill = (plan.kills[0].1 as usize).min(n_ops - 1).max(1);
        for op in &ops[..kill] {
            p.process_op(op)
                .unwrap_or_else(|e| panic!("seed {seed} ({engine}): {e}"));
        }
        assert_eq!(
            p.health(),
            DurabilityHealth::Durable,
            "seed {seed}: retryable faults must not degrade"
        );
        let absorbed = p.retries();
        p.flush().unwrap();
        drop(p);

        // Recovery on a clean filesystem must land exactly at the kill
        // point and converge on the uninterrupted digest.
        let mut r = Persistent::open(
            engine
                .build(query, K, 0xD15EA5E, &EngineOpts::default())
                .unwrap(),
            scratch.path(),
            CheckpointPolicy::EveryOps(37),
        )
        .unwrap();
        for op in &ops[kill..] {
            r.process_op(op).unwrap();
        }
        assert_eq!(
            digest(&r.engine().samples()),
            expect,
            "seed {seed} ({engine}): faulted WAL run diverged after recovery"
        );
        if absorbed > 0 {
            assert!(
                !sleeper.slept().is_empty(),
                "seed {seed}: absorbed retries must have taken backoff"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Out-of-space: degrade, keep serving, heal on checkpoint
// ---------------------------------------------------------------------------

/// ENOSPC mid-stream degrades the durability wrapper instead of failing
/// it: the triggering op surfaces the typed error exactly once (after
/// being applied), later ops apply silently and are counted as lost, reads
/// keep working, and a successful checkpoint after space is freed heals
/// the wrapper — recovery afterwards covers the ops logged *and* lost.
#[test]
fn out_of_space_degrades_then_heals_on_checkpoint() {
    let query = line3();
    let ops = turnstile_ops(&query, 120, 5, 0x5ACE);
    let mut clean = Engine::Reservoir
        .build(&query, K, 7, &EngineOpts::default())
        .unwrap();
    for op in &ops {
        clean.process_op(op).unwrap();
    }
    let expect = digest(&clean.samples());

    let (fs, handle) = FaultFs::new();
    let scratch = Scratch::new("enospc");
    let mut p = Persistent::open_with(
        Engine::Reservoir
            .build(&query, K, 7, &EngineOpts::default())
            .unwrap(),
        scratch.path(),
        CheckpointPolicy::Manual,
        WalOptions {
            auto_flush: 0,
            ..WalOptions::default()
        },
        Box::new(fs),
        Box::new(TestSleeper::new()),
    )
    .unwrap();
    for op in &ops[..60] {
        p.process_op(op).unwrap();
    }

    handle.set_full(true);
    let err = p
        .process_op(&ops[60])
        .expect_err("first ENOSPC is surfaced");
    assert!(
        matches!(err, PersistError::Wal(ref w) if w.is_out_of_space()),
        "unexpected error: {err}"
    );
    for op in &ops[61..90] {
        p.process_op(op).unwrap(); // degraded: applied, unlogged, counted
    }
    assert_eq!(
        p.health(),
        DurabilityHealth::Degraded {
            lost_ops: 30,
            since_lsn: 60
        }
    );
    assert_eq!(p.stats().degraded, Some(1));
    assert!(
        !p.engine().samples().is_empty(),
        "degraded wrapper keeps serving reads"
    );
    // Checkpoints fail while the device is full — non-fatally.
    assert!(p.checkpoint().is_err());
    assert_eq!(p.checkpoint_failures(), 1);

    // Space freed: the next checkpoint heals (its snapshot includes the
    // lost ops), and the run finishes durable.
    handle.set_full(false);
    p.checkpoint().unwrap();
    assert_eq!(p.health(), DurabilityHealth::Durable);
    assert_eq!(p.stats().degraded, Some(0));
    for op in &ops[90..] {
        p.process_op(op).unwrap();
    }
    p.flush().unwrap();
    drop(p);

    let r = Persistent::open(
        Engine::Reservoir
            .build(&query, K, 7, &EngineOpts::default())
            .unwrap(),
        scratch.path(),
        CheckpointPolicy::Manual,
    )
    .unwrap();
    assert_eq!(
        digest(&r.engine().samples()),
        expect,
        "post-heal recovery must cover the ops lost while degraded"
    );
}

// ---------------------------------------------------------------------------
// Torn-write fault matrix: every byte offset of a record
// ---------------------------------------------------------------------------

/// Crash-style torn writes at *every byte offset* of the final record:
/// the append reports success but only a prefix hits disk. Reopening must
/// recover exactly the flushed prefix — whole records survive, the torn
/// one never becomes an op, and no offset panics or corrupts.
#[test]
fn torn_write_matrix_recovers_the_flushed_prefix() {
    let query = line3();
    let ops = turnstile_ops(&query, 8, 5, 0x70AA);
    // Frame length of the final record: encoded payload + 8 header bytes,
    // measured by appending it once more and diffing the segment length.
    let frame_len = {
        let scratch = Scratch::new("torn-probe");
        let mut wal = Wal::open(scratch.path().join("wal")).unwrap();
        for op in &ops {
            wal.append(op).unwrap();
        }
        wal.flush().unwrap();
        let before = fs::metadata(final_segment(scratch.path())).unwrap().len();
        wal.append(&ops[ops.len() - 1]).unwrap();
        wal.flush().unwrap();
        (fs::metadata(final_segment(scratch.path())).unwrap().len() - before) as usize
    };
    assert!(frame_len > 8, "frame must have header + payload");

    for torn_at in 0..frame_len {
        let scratch = Scratch::new("torn-matrix");
        let (fs_shim, handle) = FaultFs::new();
        // Appends 0..n-1 are clean; append n-1 writes only `torn_at` bytes.
        handle.fail_at(
            FsOp::Append,
            ops.len() as u64 - 1,
            IoFault::SilentTorn(torn_at),
        );
        let mut wal = Wal::open_with(
            scratch.path().join("wal"),
            WalOptions {
                auto_flush: 0,
                ..WalOptions::default()
            },
            Box::new(fs_shim),
            Box::new(TestSleeper::new()),
        )
        .unwrap();
        for op in &ops {
            wal.append(op).unwrap();
        }
        drop(wal); // the crash

        let mut r = Wal::open(scratch.path().join("wal")).unwrap();
        let recovered = r.replay_from(0).unwrap();
        assert_eq!(
            recovered.len(),
            ops.len() - 1,
            "torn at byte {torn_at}: exactly the flushed prefix must survive"
        );
        assert_eq!(
            &recovered[..],
            &ops[..ops.len() - 1],
            "torn at byte {torn_at}: surviving ops must be intact"
        );
        assert_eq!(r.next_lsn(), ops.len() as u64 - 1);
    }
}

fn final_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir.join("wal"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segs.sort();
    segs.pop().expect("wal has at least one segment")
}

// ---------------------------------------------------------------------------
// Degraded mode: uniform over the surviving population
// ---------------------------------------------------------------------------

/// Kill one of two shards past its restart budget and draw one sample per
/// seed: the inclusion counts over many seeds must be chi-square uniform
/// over the population owned by the *surviving* shard. Degradation loses
/// coverage, never uniformity.
#[test]
fn degraded_samples_are_uniform_over_the_surviving_population() {
    quiet_injected_panics();
    let query = line3();
    // One join result per B value: G1(b, b) x G2(b, b) x G3(b, 9).
    let n_results = 6u64;
    let mut ops = Vec::new();
    for b in 0..n_results {
        ops.push(StreamOp::insert(0, vec![b, b]));
        ops.push(StreamOp::insert(1, vec![b, b]));
    }
    for b in 0..n_results {
        ops.push(StreamOp::insert(2, vec![b, 9]));
    }

    let policy = SupervisorPolicy {
        max_restarts: 0,
        ..SupervisorPolicy::default()
    };
    // Partition on B (attr 1): each result's owner is its G1 tuple's route.
    let probe = ShardedSampler::with_policy(&query, 1, 0, 2, Some(1), policy, |sd| {
        Engine::Reservoir
            .build(&line3(), 1, sd, &EngineOpts::default())
            .map_err(|e| e.to_string())
    })
    .unwrap();
    let survivors: Vec<u64> = (0..n_results)
        .filter(|&b| probe.plan().route(0, &[b, b]) == Some(0))
        .collect();
    drop(probe);
    assert!(
        survivors.len() >= 2 && survivors.len() < n_results as usize,
        "fixture must split results across both shards, got {survivors:?}"
    );

    let mut counts: rsjoin::common::FxHashMap<u64, u64> = Default::default();
    let runs = 1400;
    for seed in 0..runs {
        let mut s = ShardedSampler::with_policy(&query, 1, seed, 2, Some(1), policy, |sd| {
            Engine::Reservoir
                .build(&line3(), 1, sd, &EngineOpts::default())
                .map_err(|e| e.to_string())
        })
        .unwrap();
        for op in &ops {
            s.process_op(op).unwrap();
        }
        s.inject_fault(1, ShardFault::Panic);
        let samples = s.samples();
        assert!(
            matches!(s.health(), ShardHealth::Degraded { ref dead_shards, .. } if dead_shards == &[1]),
            "seed {seed}: budget 0 must leave shard 1 dead"
        );
        assert_eq!(samples.len(), 1, "seed {seed}");
        let b = samples[0][0];
        assert!(
            survivors.contains(&b),
            "seed {seed}: sample {b} is owned by the dead shard"
        );
        *counts.entry(b).or_default() += 1;
        assert_eq!(s.stats().degraded, Some(1), "seed {seed}");
    }
    rsj_testutil::UniformityCheck::single().assert_uniform(
        &counts,
        survivors.len(),
        "degraded sharded sampler",
    );
}

// ---------------------------------------------------------------------------
// No panic escapes the public API
// ---------------------------------------------------------------------------

/// Nasty schedules — kills before any op, repeated kills of the same
/// shard past the budget, kills plus stalls interleaved — must never let
/// a panic escape the `JoinSampler` surface: every call returns.
#[test]
fn no_injected_panic_escapes_the_facade() {
    quiet_injected_panics();
    let query = line3();
    for seed in 0..20u64 {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let policy = SupervisorPolicy {
                max_restarts: seed % 3, // includes budget 0: degrade paths
                snapshot_every: if seed % 2 == 0 { 16 } else { 0 },
                ..SupervisorPolicy::default()
            };
            let mut s = sharded(&Engine::Reservoir, &query, 2, policy, seed);
            let ops = turnstile_ops(&query, 80, 5, seed);
            s.inject_fault(0, ShardFault::Panic); // before any op
            for (i, op) in ops.iter().enumerate() {
                if i % 17 == 3 {
                    s.inject_fault((i / 17) % 2, ShardFault::Panic);
                }
                if i == 40 {
                    s.inject_fault(1, ShardFault::Stall(1));
                }
                s.process_op(op).unwrap();
            }
            // Reads and stats must return regardless of pool health.
            let _ = s.samples();
            let _ = s.samples_named();
            let _ = s.stats();
            let _ = s.health();
            drop(s);
        }));
        assert!(
            outcome.is_ok(),
            "seed {seed}: a panic escaped the public API"
        );
    }
}
