//! Turnstile correctness across the engine matrix.
//!
//! The update-model contract (ARCHITECTURE.md, "Update model") promises
//! that every fully-dynamic engine keeps its maintained sample uniform
//! over the *post-delete* `Q(R)`. These tests drive interleaved
//! insert/delete streams end-to-end through the executor trait and check:
//! validity (every sample is a live join result), cardinality
//! (`min(k, |Q(R)|)` samples), statistical uniformity at a 20% delete
//! ratio, delete-then-reinsert round trips, and the capability probe.
//! The counting/brute-force/chi-square machinery is `rsj-testutil`'s; the
//! multi-engine uniformity family runs Bonferroni-corrected (one
//! comparison per dynamic engine).

use rsj_common::{FxHashSet, Value};
use rsj_datagen::{TurnstileConfig, VictimPolicy};
use rsj_storage::{OpStream, StreamOp};
use rsj_testutil::{
    brute_join_named, live_sets, op_inclusion_counts, random_stream, UniformityCheck,
};
use rsjoin::engine::{Engine, EngineOpts};
use rsjoin::prelude::*;

fn line3() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    qb.build().unwrap()
}

fn two_table() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    qb.build().unwrap()
}

/// The engines the turnstile contract declares fully dynamic, per query
/// shape (SymmetricHashJoin only runs two-table joins).
fn dynamic_engines(query: &Query) -> Vec<Engine> {
    let mut engines = vec![
        Engine::Reservoir,
        Engine::SJoin,
        Engine::Naive,
        Engine::sharded(Engine::Reservoir, 2),
    ];
    if query.num_relations() == 2 {
        engines.push(Engine::Symmetric);
    }
    engines
}

#[test]
fn turnstile_end_to_end_across_the_engine_matrix() {
    for (query, dom) in [(line3(), 6), (two_table(), 8)] {
        let stream = random_stream(&query, 300, dom, 11);
        for policy in [VictimPolicy::Uniform, VictimPolicy::Recent] {
            let ops = TurnstileConfig {
                delete_ratio: 0.25,
                policy,
                seed: 5,
            }
            .weave(&stream);
            assert!(ops.num_deletes() > 0);
            let expect = brute_join_named(&query, &live_sets(&query, &ops));
            for engine in dynamic_engines(&query) {
                let mut s = engine
                    .build(&query, 1 << 16, 9, &EngineOpts::default())
                    .unwrap_or_else(|e| panic!("{engine}: {e}"));
                assert!(s.supports_deletes(), "{engine}");
                s.process_op_stream(&ops).unwrap();
                let got: FxHashSet<Vec<(String, Value)>> = s.samples_named().into_iter().collect();
                // k >= |Q(R)|: the maintained sample must be exactly the
                // live result set — insertions collected, deletions'
                // casualties evicted, backfill complete.
                assert_eq!(got, expect, "{engine}/{policy:?}");
            }
        }
    }
}

#[test]
fn sample_cardinality_tracks_live_population() {
    // Small k: |samples| must equal min(k, |Q(R)|) at several read points.
    let query = line3();
    let k = 4;
    let mut ops = OpStream::new();
    for a in 0..3u64 {
        ops.push_insert(0, vec![a, 1]);
    }
    ops.push_insert(1, vec![1, 2]);
    for d in 0..4u64 {
        ops.push_insert(2, vec![2, d]);
    }
    // 12 results now; delete the middle tuple -> 0; re-add -> 12.
    for engine in dynamic_engines(&query) {
        let mut s = engine.build(&query, k, 2, &EngineOpts::default()).unwrap();
        s.process_op_stream(&ops).unwrap();
        assert_eq!(s.samples().len(), k, "{engine} full");
        s.process_op(&StreamOp::delete(1, vec![1, 2])).unwrap();
        assert_eq!(s.samples().len(), 0, "{engine} emptied");
        s.process_op(&StreamOp::insert(1, vec![1, 2])).unwrap();
        assert_eq!(s.samples().len(), k, "{engine} refilled");
        // Shrink below k: delete G1 tuples until only one chain remains.
        s.process_op(&StreamOp::delete(0, vec![1, 1])).unwrap();
        s.process_op(&StreamOp::delete(0, vec![2, 1])).unwrap();
        s.process_op(&StreamOp::delete(2, vec![2, 0])).unwrap();
        // Live: 1 G1 tuple x 1 G2 x 3 G3 = 3 < k.
        assert_eq!(s.samples().len(), 3, "{engine} below k");
    }
}

/// The maintained sample must stay uniform over the post-delete `Q(R)` —
/// the acceptance-criteria chi-square at a 20% delete ratio, with deletes
/// interleaved mid-stream (not just at the end) so repair points and
/// subsequent insertions both land in the measured distribution. One
/// Bonferroni family across the dynamic engines.
#[test]
fn uniform_under_twenty_percent_deletes() {
    let query = line3();
    let ops: OpStream = {
        let mut o = OpStream::new();
        o.push_insert(0, vec![1, 10]);
        o.push_insert(1, vec![10, 20]);
        o.push_insert(2, vec![20, 5]);
        o.push_insert(2, vec![20, 6]);
        o.push_insert(0, vec![2, 10]);
        o.push_delete(2, vec![20, 5]); // kills 2 results
        o.push_insert(2, vec![20, 7]);
        o.push_insert(0, vec![3, 10]);
        o.push_insert(1, vec![10, 21]);
        o.push_insert(2, vec![21, 8]);
        o.push_delete(0, vec![2, 10]); // kills the A=2 chains
        o.push_insert(2, vec![21, 9]);
        o.push_delete(2, vec![21, 8]); // kills 2 results again
        o.push_insert(2, vec![21, 8]); // ... and re-inserts them
        o.push_insert(0, vec![4, 10]);
        o
    };
    assert_eq!(ops.num_deletes() * 5, ops.len(), "20% delete ratio");
    let expect = brute_join_named(&query, &live_sets(&query, &ops));
    // G1 {1,3,4} x (20->{6,7} + 21->{8,9}) = 3 * 4 = 12 live results.
    assert_eq!(expect.len(), 12);
    let k = 3;
    let trials = 4000u64;
    let engines = dynamic_engines(&query);
    let check = UniformityCheck::across(engines.len());
    for engine in engines {
        let counts = op_inclusion_counts(
            &engine,
            &query,
            &EngineOpts::default(),
            &ops,
            &expect,
            k,
            0..trials,
        );
        check.assert_uniform(&counts, 12, &format!("{engine} at 20% deletes"));
    }
}

#[test]
fn delete_then_reinsert_matches_fresh_insert_only_run() {
    // Round-tripping half the stream through delete+reinsert must land on
    // the same final sample *set* as a fresh insert-only run (k >= |Q|).
    let query = line3();
    let stream = random_stream(&query, 200, 5, 21);
    let round_trip: OpStream = {
        let mut o = OpStream::from(&stream);
        for t in stream.iter().step_by(2) {
            o.push(StreamOp::Delete(t.clone()));
        }
        for t in stream.iter().step_by(2) {
            o.push(StreamOp::Insert(t.clone()));
        }
        o
    };
    let expect = brute_join_named(&query, &live_sets(&query, &round_trip));
    assert!(!expect.is_empty(), "degenerate instance");
    for engine in dynamic_engines(&query) {
        let mut fresh = engine
            .build(&query, 1 << 16, 3, &EngineOpts::default())
            .unwrap();
        fresh.process_stream(&stream);
        let fresh_set: FxHashSet<Vec<(String, Value)>> =
            fresh.samples_named().into_iter().collect();
        assert_eq!(fresh_set, expect, "{engine} fresh");
        let mut rt = engine
            .build(&query, 1 << 16, 3, &EngineOpts::default())
            .unwrap();
        rt.process_op_stream(&round_trip).unwrap();
        let rt_set: FxHashSet<Vec<(String, Value)>> = rt.samples_named().into_iter().collect();
        assert_eq!(rt_set, expect, "{engine} round-trip");
    }
}

#[test]
fn capability_matrix_is_consistent() {
    let q = two_table();
    for engine in Engine::ALL {
        let built = engine.build(&q, 8, 1, &EngineOpts::default()).unwrap();
        assert_eq!(
            built.supports_deletes(),
            engine.supports_deletes(),
            "{engine}: static matrix disagrees with the built sampler"
        );
    }
    // The sharded wrapper mirrors its inner engine.
    for (inner, expect) in [(Engine::Reservoir, true), (Engine::SJoinOpt, false)] {
        let sharded = Engine::sharded(inner, 2);
        assert_eq!(sharded.supports_deletes(), expect);
        let built = sharded.build(&q, 8, 1, &EngineOpts::default()).unwrap();
        assert_eq!(built.supports_deletes(), expect, "{sharded}");
    }
}

#[test]
fn insert_only_engines_reject_turnstile_streams() {
    let q = two_table();
    let mut ops = OpStream::new();
    ops.push_insert(0, vec![1, 2]);
    ops.push_delete(0, vec![1, 2]);
    for engine in Engine::ALL {
        if engine.supports_deletes() || !engine.supports(&q) {
            continue;
        }
        let mut s = engine.build(&q, 8, 1, &EngineOpts::default()).unwrap();
        let err = s.process_op_stream(&ops).unwrap_err();
        assert_eq!(err.engine, s.name(), "{engine}");
        // The insert before the delete was applied; the delete was not.
        assert_eq!(s.samples().len(), 0, "{engine}");
    }
    // A sharded wrapper around an insert-only engine rejects on the
    // routing side, before anything crosses a worker channel.
    let mut s = Engine::sharded(Engine::SJoinOpt, 2)
        .build(&q, 8, 1, &EngineOpts::default())
        .unwrap();
    assert!(s.process_op_stream(&ops).is_err());
}

#[test]
fn deletes_interleave_with_sharded_batching() {
    // Force multiple channel batches with interleaved deletes and verify
    // the sharded engine tracks the live population exactly.
    let query = two_table();
    let stream = random_stream(&query, 2000, 12, 31);
    let ops = TurnstileConfig {
        delete_ratio: 0.3,
        policy: VictimPolicy::Uniform,
        seed: 13,
    }
    .weave(&stream);
    let expect = brute_join_named(&query, &live_sets(&query, &ops));
    let mut s = Engine::sharded(Engine::Reservoir, 3)
        .build(&query, 1 << 16, 7, &EngineOpts::default())
        .unwrap();
    s.process_op_stream(&ops).unwrap();
    let got: FxHashSet<Vec<(String, Value)>> = s.samples_named().into_iter().collect();
    assert_eq!(got, expect);
    assert_eq!(s.stats().exact_results, Some(expect.len() as u128));
    assert!(s.stats().deletes.unwrap() > 0);
}
