//! Turnstile correctness across the engine matrix.
//!
//! The update-model contract (ARCHITECTURE.md, "Update model") promises
//! that every fully-dynamic engine keeps its maintained sample uniform
//! over the *post-delete* `Q(R)`. These tests drive interleaved
//! insert/delete streams end-to-end through the executor trait and check:
//! validity (every sample is a live join result), cardinality
//! (`min(k, |Q(R)|)` samples), statistical uniformity at a 20% delete
//! ratio, delete-then-reinsert round trips, and the capability probe.
//! The counting/brute-force/chi-square machinery is `rsj-testutil`'s; the
//! multi-engine uniformity family runs Bonferroni-corrected (one
//! comparison per dynamic engine).

use rsj_common::{FxHashSet, Value};
use rsj_datagen::{TurnstileConfig, VictimPolicy};
use rsj_storage::{OpStream, StreamOp};
use rsj_testutil::{
    brute_join_named, live_sets, op_inclusion_counts, random_stream, UniformityCheck,
};
use rsjoin::engine::{Engine, EngineOpts};
use rsjoin::prelude::*;

fn line3() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    qb.build().unwrap()
}

fn two_table() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    qb.build().unwrap()
}

/// The engines the turnstile contract declares fully dynamic, per query
/// shape (SymmetricHashJoin only runs two-table joins). Since the signed
/// delta pipelines landed this is *every* engine family; with no keys
/// declared the `_opt` engines run the identity rewrite here, and the
/// FK-combining case is exercised separately below.
fn dynamic_engines(query: &Query) -> Vec<Engine> {
    let mut engines = vec![
        Engine::Reservoir,
        Engine::FkReservoir,
        Engine::Cyclic,
        Engine::SJoin,
        Engine::SJoinOpt,
        Engine::Naive,
        Engine::sharded(Engine::Reservoir, 2),
    ];
    if query.num_relations() == 2 {
        engines.push(Engine::Symmetric);
    }
    engines
}

#[test]
fn turnstile_end_to_end_across_the_engine_matrix() {
    for (query, dom) in [(line3(), 6), (two_table(), 8)] {
        let stream = random_stream(&query, 300, dom, 11);
        for policy in [VictimPolicy::Uniform, VictimPolicy::Recent] {
            let ops = TurnstileConfig {
                delete_ratio: 0.25,
                policy,
                seed: 5,
            }
            .weave(&stream);
            assert!(ops.num_deletes() > 0);
            let expect = brute_join_named(&query, &live_sets(&query, &ops));
            for engine in dynamic_engines(&query) {
                let mut s = engine
                    .build(&query, 1 << 16, 9, &EngineOpts::default())
                    .unwrap_or_else(|e| panic!("{engine}: {e}"));
                assert!(s.supports_deletes(), "{engine}");
                s.process_op_stream(&ops).unwrap();
                let got: FxHashSet<Vec<(String, Value)>> = s.samples_named().into_iter().collect();
                // k >= |Q(R)|: the maintained sample must be exactly the
                // live result set — insertions collected, deletions'
                // casualties evicted, backfill complete.
                assert_eq!(got, expect, "{engine}/{policy:?}");
            }
        }
    }
}

#[test]
fn sample_cardinality_tracks_live_population() {
    // Small k: |samples| must equal min(k, |Q(R)|) at several read points.
    let query = line3();
    let k = 4;
    let mut ops = OpStream::new();
    for a in 0..3u64 {
        ops.push_insert(0, vec![a, 1]);
    }
    ops.push_insert(1, vec![1, 2]);
    for d in 0..4u64 {
        ops.push_insert(2, vec![2, d]);
    }
    // 12 results now; delete the middle tuple -> 0; re-add -> 12.
    for engine in dynamic_engines(&query) {
        let mut s = engine.build(&query, k, 2, &EngineOpts::default()).unwrap();
        s.process_op_stream(&ops).unwrap();
        assert_eq!(s.samples().len(), k, "{engine} full");
        s.process_op(&StreamOp::delete(1, vec![1, 2])).unwrap();
        assert_eq!(s.samples().len(), 0, "{engine} emptied");
        s.process_op(&StreamOp::insert(1, vec![1, 2])).unwrap();
        assert_eq!(s.samples().len(), k, "{engine} refilled");
        // Shrink below k: delete G1 tuples until only one chain remains.
        s.process_op(&StreamOp::delete(0, vec![1, 1])).unwrap();
        s.process_op(&StreamOp::delete(0, vec![2, 1])).unwrap();
        s.process_op(&StreamOp::delete(2, vec![2, 0])).unwrap();
        // Live: 1 G1 tuple x 1 G2 x 3 G3 = 3 < k.
        assert_eq!(s.samples().len(), 3, "{engine} below k");
    }
}

/// The maintained sample must stay uniform over the post-delete `Q(R)` —
/// the acceptance-criteria chi-square at a 20% delete ratio, with deletes
/// interleaved mid-stream (not just at the end) so repair points and
/// subsequent insertions both land in the measured distribution. One
/// Bonferroni family across the dynamic engines.
#[test]
fn uniform_under_twenty_percent_deletes() {
    let query = line3();
    let ops: OpStream = {
        let mut o = OpStream::new();
        o.push_insert(0, vec![1, 10]);
        o.push_insert(1, vec![10, 20]);
        o.push_insert(2, vec![20, 5]);
        o.push_insert(2, vec![20, 6]);
        o.push_insert(0, vec![2, 10]);
        o.push_delete(2, vec![20, 5]); // kills 2 results
        o.push_insert(2, vec![20, 7]);
        o.push_insert(0, vec![3, 10]);
        o.push_insert(1, vec![10, 21]);
        o.push_insert(2, vec![21, 8]);
        o.push_delete(0, vec![2, 10]); // kills the A=2 chains
        o.push_insert(2, vec![21, 9]);
        o.push_delete(2, vec![21, 8]); // kills 2 results again
        o.push_insert(2, vec![21, 8]); // ... and re-inserts them
        o.push_insert(0, vec![4, 10]);
        o
    };
    assert_eq!(ops.num_deletes() * 5, ops.len(), "20% delete ratio");
    let expect = brute_join_named(&query, &live_sets(&query, &ops));
    // G1 {1,3,4} x (20->{6,7} + 21->{8,9}) = 3 * 4 = 12 live results.
    assert_eq!(expect.len(), 12);
    let k = 3;
    let trials = 4000u64;
    let engines = dynamic_engines(&query);
    let check = UniformityCheck::across(engines.len());
    for engine in engines {
        let counts = op_inclusion_counts(
            &engine,
            &query,
            &EngineOpts::default(),
            &ops,
            &expect,
            k,
            0..trials,
        );
        check.assert_uniform(&counts, 12, &format!("{engine} at 20% deletes"));
    }
}

#[test]
fn delete_then_reinsert_matches_fresh_insert_only_run() {
    // Round-tripping half the stream through delete+reinsert must land on
    // the same final sample *set* as a fresh insert-only run (k >= |Q|).
    let query = line3();
    let stream = random_stream(&query, 200, 5, 21);
    let round_trip: OpStream = {
        let mut o = OpStream::from(&stream);
        for t in stream.iter().step_by(2) {
            o.push(StreamOp::Delete(t.clone()));
        }
        for t in stream.iter().step_by(2) {
            o.push(StreamOp::Insert(t.clone()));
        }
        o
    };
    let expect = brute_join_named(&query, &live_sets(&query, &round_trip));
    assert!(!expect.is_empty(), "degenerate instance");
    for engine in dynamic_engines(&query) {
        let mut fresh = engine
            .build(&query, 1 << 16, 3, &EngineOpts::default())
            .unwrap();
        fresh.process_stream(&stream);
        let fresh_set: FxHashSet<Vec<(String, Value)>> =
            fresh.samples_named().into_iter().collect();
        assert_eq!(fresh_set, expect, "{engine} fresh");
        let mut rt = engine
            .build(&query, 1 << 16, 3, &EngineOpts::default())
            .unwrap();
        rt.process_op_stream(&round_trip).unwrap();
        let rt_set: FxHashSet<Vec<(String, Value)>> = rt.samples_named().into_iter().collect();
        assert_eq!(rt_set, expect, "{engine} round-trip");
    }
}

#[test]
fn capability_matrix_is_consistent() {
    let q = two_table();
    for engine in Engine::ALL {
        assert!(
            engine.supports_deletes(),
            "{engine}: the capability matrix must be all-green"
        );
        let built = engine.build(&q, 8, 1, &EngineOpts::default()).unwrap();
        assert_eq!(
            built.supports_deletes(),
            engine.supports_deletes(),
            "{engine}: static matrix disagrees with the built sampler"
        );
    }
    // The sharded wrapper mirrors its inner engine — all-green inner
    // engines make the wrapper all-green too, including the families that
    // were insert-only before the signed delta pipelines.
    for inner in [Engine::Reservoir, Engine::SJoinOpt, Engine::Cyclic] {
        let sharded = Engine::sharded(inner, 2);
        assert!(sharded.supports_deletes(), "{sharded}");
        let built = sharded.build(&q, 8, 1, &EngineOpts::default()).unwrap();
        assert!(built.supports_deletes(), "{sharded}: built wrapper");
    }
}

/// ARCHITECTURE.md's "Engine × update-model capability matrix" documents
/// `Engine::supports_deletes`; this test parses the doc table so the two
/// can never silently disagree again (the table once claimed the `_opt`
/// engines were insert-only after the code had moved on).
#[test]
fn architecture_capability_table_matches_code() {
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/ARCHITECTURE.md"))
        .expect("ARCHITECTURE.md at the repo root");
    let section = doc
        .split("### Engine × update-model capability matrix")
        .nth(1)
        .expect("capability-matrix section present")
        .split("\n### ")
        .next()
        .unwrap();
    // Rows look like `| `Name` | update model | guarantee |`; the
    // guarantee column may itself contain pipes (`|Q(R)|`), so only the
    // first two cells are parsed.
    let mut models: std::collections::HashMap<&str, &str> = Default::default();
    for line in section.lines() {
        let mut cells = line.split('|').map(str::trim);
        let (Some(""), Some(name), Some(model)) = (cells.next(), cells.next(), cells.next()) else {
            continue;
        };
        if name.starts_with('`') && name.ends_with('`') {
            models.insert(name.trim_matches('`'), model);
        }
    }
    for engine in Engine::ALL {
        let model = models.get(engine.name()).unwrap_or_else(|| {
            panic!("{engine}: missing from the ARCHITECTURE.md capability table")
        });
        assert_eq!(
            !model.contains("insert-only"),
            engine.supports_deletes(),
            "{engine}: ARCHITECTURE.md update-model table drifted from \
             Engine::supports_deletes (doc says {model:?})"
        );
    }
    assert!(
        models
            .get("Sharded { inner }")
            .is_some_and(|m| m.contains("mirrors")),
        "sharded wrapper row missing from the capability table"
    );
}

/// Capability rejection is still a contract even with every real engine
/// family dynamic: an insert-only `JoinSampler` (third-party, or a future
/// engine mid-bringup) must reject a delete-bearing batch *atomically* —
/// nothing applied, state byte-identical to pre-batch.
#[test]
fn rejected_batches_leave_samplers_byte_identical() {
    struct InsertOnlyStub {
        query: Query,
        applied: Vec<(usize, Vec<Value>)>,
    }
    impl JoinSampler for InsertOnlyStub {
        fn name(&self) -> &'static str {
            "InsertOnlyStub"
        }
        fn output_query(&self) -> &Query {
            &self.query
        }
        fn process(&mut self, rel: usize, tuple: &[Value]) {
            self.applied.push((rel, tuple.to_vec()));
        }
        fn samples(&self) -> Vec<Vec<Value>> {
            Vec::new()
        }
        fn k(&self) -> usize {
            1
        }
        fn supports_snapshot(&self) -> bool {
            true
        }
        fn snapshot_state(&self) -> Option<Vec<u8>> {
            let mut bytes = Vec::new();
            for (rel, t) in &self.applied {
                bytes.extend_from_slice(&(*rel as u64).to_le_bytes());
                bytes.extend_from_slice(&(t.len() as u64).to_le_bytes());
                for &v in t {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            Some(bytes)
        }
    }

    let mut s = InsertOnlyStub {
        query: two_table(),
        applied: Vec::new(),
    };
    s.process_op(&StreamOp::insert(0, vec![1, 2])).unwrap();
    let before = s.snapshot_state().unwrap();
    let ops = vec![
        StreamOp::insert(0, vec![3, 4]),
        StreamOp::delete(0, vec![1, 2]),
        StreamOp::insert(1, vec![5, 6]),
    ];
    let err = s.process_op_batch(&ops).unwrap_err();
    assert_eq!(err.engine, "InsertOnlyStub");
    assert_eq!(
        s.snapshot_state().unwrap(),
        before,
        "rejected batch mutated sampler state"
    );
}

/// The engines that report `exact_results` must agree with the
/// brute-force `|Q(R)|` after a delete-heavy stream — the acceptance
/// check that the `_opt` combiners and the cyclic bag store track the
/// *live* database, not the arrival history.
#[test]
fn exact_result_counts_survive_turnstile() {
    let query = line3();
    let stream = random_stream(&query, 400, 6, 17);
    let ops = TurnstileConfig {
        delete_ratio: 0.3,
        policy: VictimPolicy::Uniform,
        seed: 3,
    }
    .weave(&stream);
    let expect = brute_join_named(&query, &live_sets(&query, &ops)).len() as u128;
    for engine in [
        Engine::FkReservoir,
        Engine::SJoinOpt,
        Engine::Cyclic,
        Engine::SJoin,
    ] {
        let mut s = engine.build(&query, 8, 5, &EngineOpts::default()).unwrap();
        s.process_op_stream(&ops).unwrap();
        let st = s.stats();
        assert_eq!(st.exact_results, Some(expect), "{engine}");
        assert!(st.deletes.unwrap() > 0, "{engine}: no deletes counted");
    }
}

/// The `_opt` engines with a *real* foreign-key schema: deletes hit facts
/// and both dimension levels (with PK slots re-filled by different
/// tuples), and the signed combiner must still land on the brute-force
/// live result set with an exact count.
#[test]
fn fk_combining_engines_stay_exact_under_pk_turnstile() {
    let mut qb = QueryBuilder::new();
    qb.relation("F", &["K", "M"]);
    qb.relation("D1", &["K", "L"]);
    qb.relation("D2", &["L", "W"]);
    let query = qb.build().unwrap();
    // Global attr ids: K=0, M=1, L=2, W=3. D1's PK is K, D2's is L.
    let fks = FkSchema::none(3).with_pk(1, vec![0]).with_pk(2, vec![2]);
    let mut ops = OpStream::new();
    for k in 0..6u64 {
        ops.push_insert(1, vec![k, k % 3 + 10]);
    }
    for l in 10..13u64 {
        ops.push_insert(2, vec![l, l + 100]);
    }
    for i in 0..30u64 {
        ops.push_insert(0, vec![i % 6, 1000 + i]);
    }
    ops.push_delete(2, vec![11, 111]); // kills every L=11 chain
    ops.push_delete(1, vec![4, 11]); // kills the K=4 chains
    ops.push_delete(0, vec![0, 1000]);
    ops.push_delete(0, vec![3, 1003]);
    ops.push_insert(1, vec![4, 12]); // PK K=4 re-filled, now pointing at L=12
    ops.push_insert(2, vec![11, 211]); // PK L=11 re-filled with a new payload
    ops.push_insert(0, vec![0, 2000]);
    let expect = brute_join_named(&query, &live_sets(&query, &ops));
    assert!(!expect.is_empty(), "degenerate instance");
    let opts = EngineOpts {
        fks: Some(fks),
        ..EngineOpts::default()
    };
    for engine in [Engine::FkReservoir, Engine::SJoinOpt] {
        let mut s = engine.build(&query, 1 << 16, 7, &opts).unwrap();
        s.process_op_stream(&ops).unwrap();
        let got: FxHashSet<Vec<(String, Value)>> = s.samples_named().into_iter().collect();
        assert_eq!(got, expect, "{engine}");
        let st = s.stats();
        assert_eq!(st.exact_results, Some(expect.len() as u128), "{engine}");
        assert!(st.deletes.unwrap() >= 4, "{engine}: deletes under-counted");
    }
}

#[test]
fn deletes_interleave_with_sharded_batching() {
    // Force multiple channel batches with interleaved deletes and verify
    // the sharded engine tracks the live population exactly.
    let query = two_table();
    let stream = random_stream(&query, 2000, 12, 31);
    let ops = TurnstileConfig {
        delete_ratio: 0.3,
        policy: VictimPolicy::Uniform,
        seed: 13,
    }
    .weave(&stream);
    let expect = brute_join_named(&query, &live_sets(&query, &ops));
    let mut s = Engine::sharded(Engine::Reservoir, 3)
        .build(&query, 1 << 16, 7, &EngineOpts::default())
        .unwrap();
    s.process_op_stream(&ops).unwrap();
    let got: FxHashSet<Vec<(String, Value)>> = s.samples_named().into_iter().collect();
    assert_eq!(got, expect);
    assert_eq!(s.stats().exact_results, Some(expect.len() as u128));
    assert!(s.stats().deletes.unwrap() > 0);
}
