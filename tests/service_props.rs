//! Property tests for the resident [`SamplerService`]'s bookkeeping:
//!
//! 1. **Counts are exact under churn** — any random interleaving of
//!    register / deregister / ingest actions leaves every live
//!    registration's `exact_count` equal to the brute-force `|Q(R)|`, its
//!    reservoir at `min(k, |Q(R)|)` live samples, and the shared store's
//!    reference counts in lockstep with the live registration set.
//! 2. **Nothing leaks** — after the last deregistration the service heap
//!    is exactly the retained store again (`heap_size() ==
//!    store().heap_size()`) and no relation holds a reference.
//! 3. **Snapshots are faithful** — a `snapshot_to`/`restore_from_snapshot`
//!    round trip at any churn point reproduces every member byte-for-byte
//!    and continues identically on further ingest.

use proptest::prelude::*;
use rsj_testutil::{brute_join_named, NamedSample};
use rsjoin::common::codec::{Decoder, Encoder};
use rsjoin::common::{FxHashSet, HeapSize};
use rsjoin::engine::{Engine, EngineOpts};
use rsjoin::prelude::*;

fn two_table() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    qb.build().unwrap()
}

fn named(q: &Query, row: &[Value]) -> NamedSample {
    let mut kv: Vec<(String, Value)> = q
        .attr_names()
        .iter()
        .cloned()
        .zip(row.iter().copied())
        .collect();
    kv.sort();
    kv
}

/// Decodes one `(tag, raw)` action against the current model and applies
/// it to the service, keeping the model in lockstep. Returns `Ok(())`
/// from every path — failures surface as panics/prop asserts upstream.
fn apply_action(
    q: &Query,
    svc: &mut SamplerService,
    model: &mut [FxHashSet<Vec<Value>>],
    live: &mut Vec<(QueryHandle, usize)>,
    tag: u8,
    raw: u64,
) {
    match tag {
        // Ingest (weighted 5/8): inserts with occasional deletes of a
        // live tuple, values from a small domain so joins stay dense.
        0..=4 => {
            if raw.is_multiple_of(5) {
                let all: Vec<(usize, Vec<Value>)> = model
                    .iter()
                    .enumerate()
                    .flat_map(|(r, s)| s.iter().map(move |t| (r, t.clone())))
                    .collect();
                if !all.is_empty() {
                    let (rel, t) = all[(raw >> 24) as usize % all.len()].clone();
                    svc.process_op(&StreamOp::delete(rel, t.clone())).unwrap();
                    model[rel].remove(&t);
                    return;
                }
            }
            let rel = (raw % 2) as usize;
            let vals = vec![(raw >> 8) % 4, (raw >> 16) % 4];
            svc.process(rel, &vals).unwrap();
            model[rel].insert(vals);
        }
        // Register (weighted 2/8): shared path or a boxed NaiveRebuild.
        5 | 6 => {
            let k = 1 + (raw % 6) as usize;
            let h = if raw.is_multiple_of(2) {
                svc.register(q, &QueryOpts::new(k, raw)).unwrap()
            } else {
                svc.register_sampler(
                    Engine::Naive
                        .build(q, k, raw, &EngineOpts::default())
                        .unwrap(),
                )
                .unwrap()
            };
            live.push((h, k));
        }
        // Deregister (weighted 1/8), plus the double-free probe.
        _ => {
            if !live.is_empty() {
                let (h, _) = live.swap_remove(raw as usize % live.len());
                svc.deregister(h).unwrap();
                assert!(!svc.registered(h));
                assert!(
                    svc.deregister(h).is_err(),
                    "double deregister must be rejected"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Invariants 1 + 2: exact counts and live samples after every single
    /// action, store refcounts in lockstep, and a leak-free drain.
    #[test]
    fn churn_preserves_exact_counts_and_leaks_nothing(
        actions in proptest::collection::vec((0u8..8, any::<u64>()), 1..120)
    ) {
        let q = two_table();
        let mut svc = SamplerService::with_opts(q.clone(), ServiceOpts { publish_every: 16 });
        let mut model: Vec<FxHashSet<Vec<Value>>> =
            vec![FxHashSet::default(); q.num_relations()];
        let mut live: Vec<(QueryHandle, usize)> = Vec::new();
        for &(tag, raw) in &actions {
            apply_action(&q, &mut svc, &mut model, &mut live, tag, raw);
            let brute = brute_join_named(&q, &model);
            for &(h, k) in &live {
                prop_assert_eq!(
                    svc.exact_count(h).unwrap(),
                    brute.len() as u128,
                    "|Q(R)| drifted for handle {}", h.id()
                );
                let samples = svc.samples(h).unwrap();
                prop_assert_eq!(samples.len(), k.min(brute.len()));
                for row in &samples {
                    prop_assert!(brute.contains(&named(&q, row)), "dead sample");
                }
            }
            prop_assert_eq!(svc.num_queries(), live.len());
            prop_assert_eq!(
                svc.store().live_refs(),
                (live.len() * q.num_relations()) as u64,
                "store refcounts out of lockstep"
            );
        }
        // A final publish serves every reader the exact live state.
        svc.publish();
        let brute = brute_join_named(&q, &model);
        for &(h, _) in &live {
            let snap = svc.reader(h).unwrap().snapshot();
            prop_assert_eq!(snap.lsn, svc.lsn());
            prop_assert_eq!(snap.population, brute.len() as u128);
            prop_assert_eq!(&snap.samples, &svc.samples(h).unwrap());
        }
        // Drain: the heap must return to exactly the retained store.
        for (h, _) in live.drain(..) {
            svc.deregister(h).unwrap();
        }
        prop_assert_eq!(svc.store().live_refs(), 0);
        prop_assert_eq!(svc.num_groups(), 0);
        prop_assert_eq!(svc.num_queries(), 0);
        prop_assert_eq!(
            svc.heap_size(),
            svc.store().heap_size(),
            "registration state leaked past the last deregister"
        );
    }

    /// Invariant 3: snapshot/restore at an arbitrary churn point is an
    /// identity — and stays one over further ingest.
    #[test]
    fn snapshot_restore_round_trips_at_any_churn_point(
        actions in proptest::collection::vec((0u8..8, any::<u64>()), 1..80),
        tail in proptest::collection::vec(any::<u64>(), 0..24)
    ) {
        let q = two_table();
        let mut svc = SamplerService::with_opts(q.clone(), ServiceOpts { publish_every: 8 });
        let mut model: Vec<FxHashSet<Vec<Value>>> =
            vec![FxHashSet::default(); q.num_relations()];
        let mut live: Vec<(QueryHandle, usize)> = Vec::new();
        for &(tag, raw) in &actions {
            apply_action(&q, &mut svc, &mut model, &mut live, tag, raw);
        }
        let mut enc = Encoder::new();
        svc.snapshot_to(&mut enc).unwrap();
        let bytes = enc.into_bytes();
        let mut rebuild = |name: &str, k: usize| -> Option<Box<dyn JoinSampler + Send>> {
            (name == "NaiveRebuild").then(|| {
                Box::new(NaiveRebuild::new(two_table(), k, 0)) as Box<dyn JoinSampler + Send>
            })
        };
        let mut twin = SamplerService::new(q.clone());
        let mut dec = Decoder::new(&bytes);
        twin.restore_from_snapshot(&mut dec, &mut rebuild).unwrap();
        dec.finish().unwrap();
        prop_assert_eq!(twin.lsn(), svc.lsn());
        prop_assert_eq!(twin.num_queries(), svc.num_queries());
        prop_assert_eq!(twin.num_groups(), svc.num_groups());
        for &(h, _) in &live {
            prop_assert_eq!(twin.samples(h).unwrap(), svc.samples(h).unwrap());
            prop_assert_eq!(twin.exact_count(h).unwrap(), svc.exact_count(h).unwrap());
        }
        // Continuation identity: both sides ingest the same suffix.
        for &raw in &tail {
            let op = if raw % 4 == 0 {
                StreamOp::delete((raw % 2) as usize, vec![(raw >> 8) % 4, (raw >> 16) % 4])
            } else {
                StreamOp::insert((raw % 2) as usize, vec![(raw >> 8) % 4, (raw >> 16) % 4])
            };
            svc.process_op(&op).unwrap();
            twin.process_op(&op).unwrap();
        }
        for &(h, _) in &live {
            prop_assert_eq!(twin.samples(h).unwrap(), svc.samples(h).unwrap());
            prop_assert_eq!(twin.exact_count(h).unwrap(), svc.exact_count(h).unwrap());
        }
    }
}
