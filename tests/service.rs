//! Conformance, uniformity, and epoch-consistency suite for the resident
//! [`SamplerService`].
//!
//! Four contracts (invariant 10 in ARCHITECTURE.md and its neighbours):
//!
//! 1. **Sharing is invisible** — a query registered on the service (early
//!    or mid-stream, row or columnar path, shared or boxed) ends with a
//!    reservoir *byte-identical* to a standalone sampler fed the same
//!    stream. The shared index and the backfill replay are pure
//!    optimizations.
//! 2. **Reads are uniform** — a reader's `snapshot().sample(n)` taken
//!    mid-ingest is a uniform draw from the live join result at the
//!    snapshot's LSN (chi-square at the usual family-wise level).
//! 3. **Reads are never torn** — every `(lsn, |Q(R)|, samples)` triple a
//!    concurrent reader observes is exactly the triple some single
//!    publish point wrote; no snapshot ever mixes two epochs.
//! 4. **Interleavings are reproducible** — the seeded [`Schedule`] sweep
//!    drives register/deregister/ingest/read/publish churn and every seed
//!    is a one-line reproduction. Width: `RSJ_SERVICE_SEEDS` (default 12;
//!    CI's service-sweep job runs more).

use rsj_testutil::{
    brute_join_named, live_sets, NamedSample, Schedule, Step, StepMix, UniformityCheck,
};
use rsjoin::common::{FxHashMap, FxHashSet, HeapSize};
use rsjoin::engine::{Engine, EngineOpts};
use rsjoin::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn two_table() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    qb.build().unwrap()
}

fn line3() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    qb.build().unwrap()
}

/// A seeded turnstile stream over `query`'s binary relations: random
/// inserts with every `del_every`-th op deleting a random live tuple.
fn turnstile_ops(query: &Query, n: usize, dom: u64, del_every: usize, seed: u64) -> OpStream {
    let mut rng = RsjRng::seed_from_u64(seed);
    let mut live: Vec<(usize, Vec<Value>)> = Vec::new();
    let mut ops = OpStream::new();
    for step in 0..n {
        if del_every > 0 && step % del_every == del_every - 1 && !live.is_empty() {
            let (rel, t) = live.swap_remove(rng.index(live.len()));
            ops.push_delete(rel, t);
        } else {
            let rel = rng.index(query.num_relations());
            let t = vec![rng.below_u64(dom), rng.below_u64(dom)];
            if !live.contains(&(rel, t.clone())) {
                live.push((rel, t.clone()));
            }
            ops.push_insert(rel, t);
        }
    }
    ops
}

/// FNV-1a over the sample matrix — the same digest the chaos and recovery
/// suites pin, so "equal" means "identical bytes".
fn digest(samples: &[Vec<Value>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(samples.len() as u64);
    for s in samples {
        eat(s.len() as u64);
        for &v in s {
            eat(v);
        }
    }
    h
}

/// The standalone twin of a shared-path registration: same engine, plans
/// pinned (the service never replans, so neither may the reference).
fn standalone(q: &Query, k: usize, seed: u64) -> ReservoirJoin {
    let mut rj = ReservoirJoin::new(q.clone(), k, seed).unwrap();
    rj.set_replan_policy(ReplanPolicy {
        auto: false,
        min_inserts: u64::MAX,
    });
    rj
}

/// A service sample row (universe attribute order) as the engine-neutral
/// sorted `(attr, value)` form the brute-force oracle produces.
fn named(q: &Query, row: &[Value]) -> NamedSample {
    let mut kv: Vec<(String, Value)> = q
        .attr_names()
        .iter()
        .cloned()
        .zip(row.iter().copied())
        .collect();
    kv.sort();
    kv
}

fn brute_of_ops(q: &Query, ops: &OpStream) -> FxHashSet<NamedSample> {
    brute_join_named(q, &live_sets(q, ops))
}

// ---------------------------------------------------------------------------
// 1. Conformance: sharing is invisible
// ---------------------------------------------------------------------------

/// Four members of one shared index (different `k` and seeds) each end
/// byte-identical to their standalone twin over a turnstile stream.
#[test]
fn shared_members_conform_to_standalone_samplers() {
    let q = line3();
    let ops = turnstile_ops(&q, 400, 6, 5, 11);
    let mut svc = SamplerService::new(q.clone());
    let params: Vec<(usize, u64)> = vec![(4, 100), (7, 101), (16, 102), (1, 103)];
    let handles: Vec<QueryHandle> = params
        .iter()
        .map(|&(k, seed)| svc.register(&q, &QueryOpts::new(k, seed)).unwrap())
        .collect();
    assert_eq!(svc.num_groups(), 1, "identical tree + options must share");
    svc.process_op_stream(&ops).unwrap();
    for (&(k, seed), h) in params.iter().zip(&handles) {
        let mut twin = standalone(&q, k, seed);
        twin.process_op_stream(&ops).unwrap();
        assert_eq!(
            digest(&svc.samples(*h).unwrap()),
            digest(&JoinSampler::samples(&twin)),
            "shared member (k={k}, seed={seed}) diverged from its twin"
        );
    }
    let brute = brute_of_ops(&q, &ops);
    for h in &handles {
        assert_eq!(svc.exact_count(*h).unwrap(), brute.len() as u128);
    }
}

/// A query registered mid-stream backfills from the retained history to
/// the exact state of an early registration — and of a standalone twin
/// that saw the whole stream — both at the registration point and after
/// ingest continues.
#[test]
fn mid_stream_registration_is_byte_identical_to_early() {
    let q = line3();
    let ops = turnstile_ops(&q, 360, 6, 4, 23);
    let mut svc = SamplerService::new(q.clone());
    let early = svc.register(&q, &QueryOpts::new(8, 42)).unwrap();
    for op in ops.iter().take(220) {
        svc.process_op(op).unwrap();
    }
    let late = svc.register(&q, &QueryOpts::new(8, 42)).unwrap();
    assert_eq!(
        digest(&svc.samples(early).unwrap()),
        digest(&svc.samples(late).unwrap()),
        "backfill must reproduce the early member's state at registration"
    );
    for op in ops.iter().skip(220) {
        svc.process_op(op).unwrap();
    }
    let mut twin = standalone(&q, 8, 42);
    twin.process_op_stream(&ops).unwrap();
    let want = digest(&JoinSampler::samples(&twin));
    assert_eq!(digest(&svc.samples(early).unwrap()), want);
    assert_eq!(digest(&svc.samples(late).unwrap()), want);
}

/// The columnar ingest path is byte-identical to the row path for every
/// member — shared and boxed — across uneven chunk boundaries.
#[test]
fn columnar_ingest_matches_row_ingest_for_every_member() {
    let q = line3();
    let mut rng = RsjRng::seed_from_u64(31);
    let mut rows: Vec<InputTuple> = Vec::new();
    for _ in 0..300 {
        rows.push(InputTuple::new(
            rng.index(q.num_relations()),
            vec![rng.below_u64(7), rng.below_u64(7)],
        ));
    }
    let build = |svc: &mut SamplerService| {
        let a = svc.register(&q, &QueryOpts::new(6, 1)).unwrap();
        let b = svc.register(&q, &QueryOpts::new(12, 2)).unwrap();
        let c = svc
            .register_sampler(
                Engine::SJoin
                    .build(&q, 5, 3, &EngineOpts::default())
                    .unwrap(),
            )
            .unwrap();
        (a, b, c)
    };
    let mut columnar = SamplerService::new(q.clone());
    let hc = build(&mut columnar);
    // Uneven chunks: 37 rows per batch exercises mid-batch group state.
    for chunk in rows.chunks(37) {
        columnar
            .process_columnar(&ColumnarBatch::from_rows(chunk))
            .unwrap();
    }
    let mut rowwise = SamplerService::new(q.clone());
    let hr = build(&mut rowwise);
    for t in &rows {
        rowwise.process(t.relation, &t.values).unwrap();
    }
    assert_eq!(columnar.lsn(), rowwise.lsn());
    for (a, b) in [(hc.0, hr.0), (hc.1, hr.1), (hc.2, hr.2)] {
        assert_eq!(
            digest(&columnar.samples(a).unwrap()),
            digest(&rowwise.samples(b).unwrap()),
            "columnar and row paths diverged"
        );
        assert_eq!(
            columnar.exact_count(a).unwrap(),
            rowwise.exact_count(b).unwrap()
        );
    }
}

/// Every boxed engine family conforms: registered mid-stream on the
/// service (backfill + residency), its final reservoir is byte-identical
/// to the same engine fed the stream directly, and the service's exact
/// count sidecar agrees with the brute-force oracle.
#[test]
fn boxed_engine_matrix_conforms_to_direct_execution() {
    let q = two_table();
    let engines = [
        Engine::Naive,
        Engine::SJoin,
        Engine::SJoinOpt,
        Engine::Symmetric,
        Engine::FkReservoir,
        Engine::Cyclic,
    ];
    for engine in &engines {
        // Insert-only engines get an insert-only history (a history with
        // deletes rejects them at registration — by design).
        let del_every = if engine.supports_deletes() { 5 } else { 0 };
        let ops = turnstile_ops(&q, 240, 6, del_every, 47);
        let mut svc = SamplerService::new(q.clone());
        for op in ops.iter().take(150) {
            svc.process_op(op).unwrap();
        }
        let h = svc
            .register_sampler(engine.build(&q, 7, 9, &EngineOpts::default()).unwrap())
            .unwrap();
        for op in ops.iter().skip(150) {
            svc.process_op(op).unwrap();
        }
        let mut twin = engine.build(&q, 7, 9, &EngineOpts::default()).unwrap();
        twin.process_op_stream(&ops).unwrap();
        assert_eq!(
            digest(&svc.samples(h).unwrap()),
            digest(&twin.samples()),
            "{engine}: service residency diverged from direct execution"
        );
        let brute = brute_of_ops(&q, &ops);
        assert_eq!(
            svc.exact_count(h).unwrap(),
            brute.len() as u128,
            "{engine}: exact-count sidecar disagrees with brute force"
        );
        svc.publish();
        let snap = svc.reader(h).unwrap().snapshot();
        assert_eq!(snap.lsn, ops.len() as u64);
        assert_eq!(snap.population, brute.len() as u128);
        assert_eq!(digest(&snap.samples), digest(&svc.samples(h).unwrap()));
    }
}

// ---------------------------------------------------------------------------
// 2. Uniformity: reader subsamples mid-ingest
// ---------------------------------------------------------------------------

/// `snapshot().sample(n)` mid-ingest is uniform over the live join result
/// at the snapshot's LSN: a uniform subsample of a uniform reservoir is
/// uniform over `Q(R)`. Checked at a mid-stream publish point and again
/// at end of stream (two comparisons sharing the family-wise budget).
#[test]
fn reader_subsamples_are_uniform_mid_ingest() {
    let q = two_table();
    let ops = turnstile_ops(&q, 120, 4, 0, 77);
    let mid = 60;
    let brute_mid = brute_of_ops(
        &q,
        &OpStream::from_vec(ops.iter().take(mid).cloned().collect()),
    );
    let brute_end = brute_of_ops(&q, &ops);
    assert!(
        brute_mid.len() >= 8,
        "fixture too sparse: {}",
        brute_mid.len()
    );
    // Enough runs for ~60 expected hits per cell at the wider support.
    let support = brute_mid.len().max(brute_end.len());
    let runs = (support * 30) as u64;
    let mut counts_mid: FxHashMap<NamedSample, u64> = FxHashMap::default();
    let mut counts_end: FxHashMap<NamedSample, u64> = FxHashMap::default();
    for seed in 0..runs {
        let mut svc = SamplerService::with_opts(q.clone(), ServiceOpts { publish_every: 0 });
        let h = svc.register(&q, &QueryOpts::new(5, seed)).unwrap();
        let reader = svc.reader(h).unwrap();
        let mut rng = RsjRng::seed_from_u64(rsjoin::common::rng::child_seed(seed, 9));
        for op in ops.iter().take(mid) {
            svc.process_op(op).unwrap();
        }
        svc.publish();
        // The read happens mid-ingest: the stream continues below.
        for row in reader.snapshot().sample(2, &mut rng) {
            *counts_mid.entry(named(&q, &row)).or_default() += 1;
        }
        for op in ops.iter().skip(mid) {
            svc.process_op(op).unwrap();
        }
        svc.publish();
        for row in reader.snapshot().sample(2, &mut rng) {
            *counts_end.entry(named(&q, &row)).or_default() += 1;
        }
    }
    let check = UniformityCheck::across(2);
    check.assert_uniform(&counts_mid, brute_mid.len(), "service reader (mid-stream)");
    check.assert_uniform(
        &counts_end,
        brute_end.len(),
        "service reader (end of stream)",
    );
}

// ---------------------------------------------------------------------------
// 3. Epoch consistency: no torn pairs under real concurrency
// ---------------------------------------------------------------------------

/// Concurrent readers spinning on `snapshot()` while the service ingests
/// never observe a torn `(lsn, |Q(R)|, samples)` triple: every observed
/// triple is exactly one a single publish point wrote, epochs and LSNs
/// are monotone per reader, and a brute-force anchor validates a spread
/// of the published triples themselves.
#[test]
fn concurrent_readers_never_observe_torn_pairs() {
    let q = two_table();
    let ops = turnstile_ops(&q, 1500, 9, 4, 5);
    let (k, seed, publish_every) = (16, 3, 5);

    // Pass 1 (single-threaded reference): the service publishes at a
    // deterministic cadence; record every published triple, and anchor a
    // spread of them against the brute-force oracle.
    let mut expected: FxHashMap<u64, (u128, u64)> = FxHashMap::default();
    {
        let mut svc = SamplerService::with_opts(q.clone(), ServiceOpts { publish_every });
        let h = svc.register(&q, &QueryOpts::new(k, seed)).unwrap();
        let reader = svc.reader(h).unwrap();
        let mut model: Vec<FxHashSet<Vec<Value>>> = vec![FxHashSet::default(); 2];
        let record =
            |expected: &mut FxHashMap<u64, (u128, u64)>, snap: &SampleSnapshot, at: u64| {
                if snap.lsn == at {
                    let prev = expected.insert(snap.lsn, (snap.population, digest(&snap.samples)));
                    assert!(
                        prev.is_none_or(|p| p == (snap.population, digest(&snap.samples))),
                        "republish at lsn {at} changed the triple"
                    );
                }
            };
        record(&mut expected, &reader.snapshot(), 0);
        for (i, op) in ops.iter().enumerate() {
            svc.process_op(op).unwrap();
            let t = op.tuple();
            if op.is_delete() {
                model[t.relation].remove(&t.values);
            } else {
                model[t.relation].insert(t.values.clone());
            }
            let snap = reader.snapshot();
            record(&mut expected, &snap, (i + 1) as u64);
            // Brute-force anchor every 250 ops: the published population
            // and samples really are the live join at that LSN.
            if snap.lsn == (i + 1) as u64 && (i + 1) % 250 == 0 {
                let brute = brute_join_named(&q, &model);
                assert_eq!(
                    snap.population,
                    brute.len() as u128,
                    "anchor at lsn {}",
                    i + 1
                );
                assert_eq!(snap.samples.len(), k.min(brute.len()));
                for row in &snap.samples {
                    assert!(
                        brute.contains(&named(&q, row)),
                        "dead sample at lsn {}",
                        i + 1
                    );
                }
            }
        }
        svc.publish();
        record(&mut expected, &reader.snapshot(), ops.len() as u64);
    }
    assert!(
        expected.len() > 200,
        "cadence fixture broke: {}",
        expected.len()
    );

    // Pass 2: identical service, real reader threads racing the ingest.
    let mut svc = SamplerService::with_opts(q.clone(), ServiceOpts { publish_every });
    let h = svc.register(&q, &QueryOpts::new(k, seed)).unwrap();
    let reader = svc.reader(h).unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut observers = Vec::new();
        for _ in 0..4 {
            let r = reader.clone();
            let stop = &stop;
            observers.push(scope.spawn(move || {
                let mut seen: Vec<(u64, u64, u128, u64)> = Vec::new();
                loop {
                    let done = stop.load(Ordering::Acquire);
                    let snap = r.snapshot();
                    seen.push((snap.epoch, snap.lsn, snap.population, digest(&snap.samples)));
                    if done {
                        return seen;
                    }
                    std::hint::spin_loop();
                }
            }));
        }
        for op in ops.iter() {
            svc.process_op(op).unwrap();
        }
        svc.publish();
        stop.store(true, Ordering::Release);
        let mut reads = 0usize;
        for obs in observers {
            let seen = obs.join().unwrap();
            reads += seen.len();
            let mut last = (0u64, 0u64);
            for (epoch, lsn, population, dig) in seen {
                assert_eq!(epoch % 2, 0, "odd epoch escaped the seqlock");
                assert!(
                    (epoch, lsn) >= last,
                    "reader went back in time: {:?} after {last:?}",
                    (epoch, lsn)
                );
                last = (epoch, lsn);
                let want = expected
                    .get(&lsn)
                    .unwrap_or_else(|| panic!("snapshot at unpublished lsn {lsn}"));
                assert_eq!(
                    (population, dig),
                    *want,
                    "torn pair at lsn {lsn}: observed triple matches no publish point"
                );
            }
        }
        assert!(reads >= 4, "observers never read");
    });
}

// ---------------------------------------------------------------------------
// 4. Seeded interleaving sweep
// ---------------------------------------------------------------------------

fn sweep_seeds() -> u64 {
    std::env::var("RSJ_SERVICE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

/// One seeded interleaving: registration churn, turnstile ingest, reader
/// snapshots, and explicit publishes in the order [`Schedule`] derives
/// from the seed, with the brute-force oracle checked at every register
/// and publish step. Returns a trace digest for the determinism check.
fn run_interleaving(seed: u64) -> u64 {
    let q = two_table();
    let dom = 6u64;
    let mix = StepMix::default();
    let mut sched = Schedule::from_seed(seed);
    let mut svc = SamplerService::with_opts(q.clone(), ServiceOpts { publish_every: 0 });
    let mut model: Vec<FxHashSet<Vec<Value>>> = vec![FxHashSet::default(); 2];
    let mut live: Vec<(QueryHandle, usize, SampleReader)> = Vec::new();
    let mut next_reg: u64 = 0;
    let mut trace: Vec<u64> = Vec::new();

    let register = |svc: &mut SamplerService,
                    live: &mut Vec<(QueryHandle, usize, SampleReader)>,
                    next_reg: &mut u64,
                    aux: &mut RsjRng,
                    model: &[FxHashSet<Vec<Value>>]| {
        let k = 2 + aux.index(5);
        let reg_seed = 1000 * seed + *next_reg;
        *next_reg += 1;
        let h = if aux.index(4) == 0 {
            // One in four registrations takes the boxed path.
            svc.register_sampler(
                Engine::Naive
                    .build(&q, k, reg_seed, &EngineOpts::default())
                    .unwrap(),
            )
            .unwrap()
        } else {
            let mut opts = QueryOpts::new(k, reg_seed);
            opts.index = IndexOptions {
                grouping: aux.index(2) == 0,
            };
            svc.register(&q, &opts).unwrap()
        };
        // Backfill correctness at an arbitrary point of the history.
        let brute = brute_join_named(&q, model);
        assert_eq!(svc.exact_count(h).unwrap(), brute.len() as u128);
        let samples = svc.samples(h).unwrap();
        assert_eq!(samples.len(), k.min(brute.len()));
        for row in &samples {
            assert!(
                brute.contains(&named(&q, row)),
                "dead sample after backfill"
            );
        }
        let reader = svc.reader(h).unwrap();
        live.push((h, k, reader));
        h.id()
    };

    // The workload starts with one registration so readers exist.
    let _ = register(&mut svc, &mut live, &mut next_reg, sched.aux(), &model);
    for _ in 0..300 {
        match sched.next_step(&mix, live.len()) {
            Step::Ingest => {
                let aux = sched.aux();
                let deletable: Vec<(usize, Vec<Value>)> = if aux.index(4) == 0 {
                    model
                        .iter()
                        .enumerate()
                        .flat_map(|(r, s)| s.iter().map(move |t| (r, t.clone())))
                        .collect()
                } else {
                    Vec::new()
                };
                let op = if !deletable.is_empty() {
                    let (rel, t) = deletable[aux.index(deletable.len())].clone();
                    StreamOp::delete(rel, t)
                } else {
                    StreamOp::insert(aux.index(2), vec![aux.below_u64(dom), aux.below_u64(dom)])
                };
                let lsn = svc.process_op(&op).unwrap();
                let t = op.tuple();
                if op.is_delete() {
                    model[t.relation].remove(&t.values);
                } else {
                    model[t.relation].insert(t.values.clone());
                }
                trace.push(1_000_000 + lsn);
            }
            Step::Read(i) => {
                let (_, _, reader) = &live[i % live.len()];
                let snap = reader.snapshot();
                assert!(snap.lsn <= svc.lsn(), "snapshot from the future");
                trace.push(2_000_000 + snap.epoch + snap.lsn + snap.population as u64);
            }
            Step::Register => {
                let id = register(&mut svc, &mut live, &mut next_reg, sched.aux(), &model);
                trace.push(3_000_000 + id);
            }
            Step::Deregister => {
                if live.len() > 1 {
                    let victim = sched.aux().index(live.len());
                    let (h, _, _) = live.swap_remove(victim);
                    svc.deregister(h).unwrap();
                    assert!(!svc.registered(h));
                    trace.push(4_000_000 + h.id());
                }
            }
            Step::Publish => {
                svc.publish();
                let brute = brute_join_named(&q, &model);
                for (_, k, reader) in &live {
                    let snap = reader.snapshot();
                    assert_eq!(snap.lsn, svc.lsn(), "stale publish");
                    assert_eq!(snap.population, brute.len() as u128);
                    assert_eq!(snap.samples.len(), (*k).min(brute.len()));
                    for row in &snap.samples {
                        assert!(brute.contains(&named(&q, row)), "dead published sample");
                    }
                }
                trace.push(5_000_000 + svc.lsn() + brute.len() as u64);
            }
        }
    }
    // Drain every registration; the store must return to baseline.
    for (h, _, _) in live.drain(..) {
        svc.deregister(h).unwrap();
    }
    assert_eq!(svc.store().live_refs(), 0);
    assert_eq!(svc.heap_size(), svc.store().heap_size());
    digest(&[trace])
}

/// Sweeps seeded interleavings (width `RSJ_SERVICE_SEEDS`), asserting the
/// oracle checks inside each run and that every seed replays to the exact
/// same trace — any failure is reproducible from the printed seed alone.
#[test]
fn interleaving_sweep_is_deterministic_and_correct() {
    for seed in 0..sweep_seeds() {
        let a = run_interleaving(seed);
        let b = run_interleaving(seed);
        assert_eq!(a, b, "seed {seed}: interleaving replay diverged");
    }
}

// ---------------------------------------------------------------------------
// 5. Durability round-trip (facade wrapper)
// ---------------------------------------------------------------------------

/// The durable service recovers registrations from the checkpoint and the
/// log suffix from the WAL: after crash-reopen, every member — shared and
/// boxed — continues byte-identically to the uninterrupted original.
#[test]
fn persistent_service_round_trips_checkpoint_and_wal() {
    let q = two_table();
    let dir = std::env::temp_dir().join(format!("rsj-service-rt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ops = turnstile_ops(&q, 220, 6, 5, 13);
    let mut rebuild = |name: &str, k: usize| -> Option<Box<dyn JoinSampler + Send>> {
        (name == "NaiveRebuild")
            .then(|| Box::new(NaiveRebuild::new(two_table(), k, 9)) as Box<dyn JoinSampler + Send>)
    };

    let mut ps = PersistentService::open(
        SamplerService::new(q.clone()),
        &dir,
        CheckpointPolicy::Manual,
        &mut rebuild,
    )
    .unwrap();
    let shared = ps
        .service_mut()
        .register(&q, &QueryOpts::new(8, 4))
        .unwrap();
    let boxed = ps
        .service_mut()
        .register_sampler(
            Engine::Naive
                .build(&q, 5, 9, &EngineOpts::default())
                .unwrap(),
        )
        .unwrap();
    for op in ops.iter().take(150) {
        ps.process_op(op).unwrap();
    }
    ps.checkpoint().unwrap();
    for op in ops.iter().skip(150) {
        ps.process_op(op).unwrap();
    }
    ps.flush().unwrap();
    let want_shared = digest(&ps.service().samples(shared).unwrap());
    let want_boxed = digest(&ps.service().samples(boxed).unwrap());
    let want_lsn = ps.service().lsn();
    drop(ps);

    let restored = PersistentService::open(
        SamplerService::new(q.clone()),
        &dir,
        CheckpointPolicy::Manual,
        &mut rebuild,
    )
    .unwrap();
    let svc = restored.service();
    assert_eq!(svc.lsn(), want_lsn, "WAL suffix not replayed");
    assert_eq!(svc.num_queries(), 2, "registrations lost in recovery");
    // Handles survive the checkpoint with their ids.
    assert_eq!(digest(&svc.samples(shared).unwrap()), want_shared);
    assert_eq!(digest(&svc.samples(boxed).unwrap()), want_boxed);
    let brute = brute_of_ops(&q, &ops);
    assert_eq!(svc.exact_count(shared).unwrap(), brute.len() as u128);
    assert_eq!(svc.exact_count(boxed).unwrap(), brute.len() as u128);
    let _ = std::fs::remove_dir_all(&dir);
}
