//! Property-based tests (proptest) over the core invariants:
//! density lemmas (3.6–3.8), count approximation (Lemma 4.4 flavour),
//! delta-batch completeness, reservoir batching invariance, and the
//! Fenwick tree against a naive model.

use proptest::prelude::*;
use rsjoin::prelude::*;
use rsjoin::stream::density;

// ---------------------------------------------------------------- density

proptest! {
    #[test]
    fn lemma_3_6_concat_density(a in proptest::collection::vec(any::<bool>(), 0..60),
                                b in proptest::collection::vec(any::<bool>(), 0..60)) {
        let c = density::concat(&a, &b);
        let lhs = density::density(&c);
        let rhs = density::density(&a).min(density::density(&b));
        prop_assert!(lhs >= rhs - 1e-12, "concat {lhs} < min {rhs}");
    }

    #[test]
    fn lemma_3_7_product_density(a in proptest::collection::vec(any::<bool>(), 1..25),
                                 b in proptest::collection::vec(any::<bool>(), 1..25)) {
        let p = density::product(&a, &b);
        let lhs = density::density(&p);
        let rhs = density::density(&a) * density::density(&b) / 2.0;
        prop_assert!(lhs >= rhs - 1e-12, "product {lhs} < bound {rhs}");
    }

    #[test]
    fn lemma_3_8_padding_density(a in proptest::collection::vec(any::<bool>(), 1..60),
                                 pad in 0usize..120) {
        let padded = density::pad(&a, pad);
        let m = a.len() as f64;
        let bound = m / (m + pad as f64) * density::density(&a);
        prop_assert!(density::density(&padded) >= bound - 1e-12);
    }
}

// ---------------------------------------------------- index vs brute force

/// Brute-force two-hop join size for line-3 tuples.
fn brute_line3_count(tuples: &[(usize, (u8, u8))]) -> u128 {
    let mut n = 0u128;
    for &(r1, t1) in tuples.iter().filter(|(r, _)| *r == 0) {
        for &(r2, t2) in tuples.iter().filter(|(r, _)| *r == 1) {
            for &(r3, t3) in tuples.iter().filter(|(r, _)| *r == 2) {
                let _ = (r1, r2, r3);
                if t1.1 == t2.0 && t2.1 == t3.0 {
                    n += 1;
                }
            }
        }
    }
    n
}

fn line3_query() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    qb.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The index's implicit full-result array always bounds the true join
    /// size from above, within the density constant (16x for |T| = 3).
    #[test]
    fn index_size_bound_sandwich(
        stream in proptest::collection::vec(
            (0usize..3, (0u8..5, 0u8..5)), 1..120)
    ) {
        let mut idx = DynamicIndex::new(line3_query(), IndexOptions::default()).unwrap();
        let mut accepted = Vec::new();
        for &(rel, t) in &stream {
            if idx.insert(rel, &[t.0 as u64, t.1 as u64]).is_some() {
                accepted.push((rel, t));
            }
        }
        let truth = brute_line3_count(&accepted);
        let bound = FullSampler::default().implicit_size(&idx);
        prop_assert!(bound >= truth, "bound {bound} < truth {truth}");
        prop_assert!(bound <= truth * 16, "bound {bound} > 16x truth {truth}");
    }

    /// Sum of per-tuple delta batch real counts equals the final join size.
    #[test]
    fn deltas_partition_the_result(
        stream in proptest::collection::vec(
            (0usize..3, (0u8..4, 0u8..4)), 1..80)
    ) {
        let mut idx = DynamicIndex::new(line3_query(), IndexOptions::default()).unwrap();
        let mut reals = 0u128;
        let mut accepted = Vec::new();
        for &(rel, t) in &stream {
            if let Some(tid) = idx.insert(rel, &[t.0 as u64, t.1 as u64]) {
                accepted.push((rel, t));
                let b = idx.delta_batch(rel, tid);
                for z in 0..b.size() {
                    if b.retrieve(z).is_some() {
                        reals += 1;
                    }
                }
            }
        }
        prop_assert_eq!(reals, brute_line3_count(&accepted));
    }

    /// SJoin's exact total always equals brute force.
    #[test]
    fn sjoin_exact_count(
        stream in proptest::collection::vec(
            (0usize..3, (0u8..5, 0u8..5)), 1..100)
    ) {
        let mut idx = rsjoin::baselines::SJoinIndex::new(line3_query()).unwrap();
        let mut accepted = Vec::new();
        for &(rel, t) in &stream {
            if idx.insert(rel, &[t.0 as u64, t.1 as u64]).is_some() {
                accepted.push((rel, t));
            }
        }
        prop_assert_eq!(idx.total_results(), brute_line3_count(&accepted));
    }
}

// ---------------------------------------------------- reservoir invariance

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Splitting a stream into arbitrary batches never changes the
    /// reservoir (same seed => identical samples).
    #[test]
    fn reservoir_batch_split_invariance(
        n in 1usize..800,
        k in 1usize..20,
        seed in 0u64..1000,
        splits in proptest::collection::vec(1usize..97, 1..8)
    ) {
        let items: Vec<u64> = (0..n as u64).collect();
        let run = |sizes: &[usize]| {
            let mut r = Reservoir::new(k, seed);
            let mut rest: &[u64] = &items;
            let mut i = 0;
            while !rest.is_empty() {
                let take = sizes[i % sizes.len()].min(rest.len());
                let (chunk, tail) = rest.split_at(take);
                let mut b = SliceBatch::new(chunk);
                r.process_batch(&mut b, |x| (x % 3 != 0).then_some(x));
                rest = tail;
                i += 1;
            }
            r.into_samples()
        };
        prop_assert_eq!(run(&[usize::MAX >> 1]), run(&splits));
    }

    /// The reservoir never holds a dummy, never exceeds k, and holds
    /// exactly min(k, #reals) items.
    #[test]
    fn reservoir_cardinality(
        flags in proptest::collection::vec(any::<bool>(), 0..400),
        k in 1usize..10,
        seed in 0u64..100
    ) {
        let items: Vec<(u64, bool)> =
            flags.iter().enumerate().map(|(i, &f)| (i as u64, f)).collect();
        let mut r = Reservoir::new(k, seed);
        let mut b = SliceBatch::new(&items);
        r.process_batch(&mut b, |(x, real)| real.then_some(x));
        let reals = flags.iter().filter(|&&f| f).count();
        prop_assert_eq!(r.samples().len(), reals.min(k));
        // All sampled ids must be real positions, distinct.
        let mut seen = std::collections::BTreeSet::new();
        for &s in r.samples() {
            prop_assert!(flags[s as usize]);
            prop_assert!(seen.insert(s));
        }
    }
}

// ------------------------------------------------------------- fenwick

proptest! {
    #[test]
    fn fenwick_matches_model(
        ops in proptest::collection::vec((any::<bool>(), 0usize..50, 0u64..100), 1..200)
    ) {
        let mut f = rsjoin::baselines::Fenwick::new();
        let mut model: Vec<u128> = Vec::new();
        for (push, idx, w) in ops {
            if push || model.is_empty() {
                f.push(w as u128);
                model.push(w as u128);
            } else {
                let i = idx % model.len();
                f.add(i, w as u128);
                model[i] += w as u128;
            }
        }
        prop_assert_eq!(f.total(), model.iter().sum::<u128>());
        for i in 0..=model.len() {
            prop_assert_eq!(f.prefix(i), model[..i].iter().sum::<u128>());
        }
        // Search on every valid position of a small prefix.
        let total = f.total();
        if total > 0 {
            for z in (0..total.min(64)).chain([total - 1]) {
                let (i, rem) = f.search(z);
                prop_assert!(rem < model[i]);
                prop_assert_eq!(f.prefix(i) + rem, z);
            }
        }
    }
}

// ----------------------------------------------------------- levenshtein

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn banded_levenshtein_matches_full(
        a in proptest::collection::vec(0u8..4, 0..40),
        b in proptest::collection::vec(0u8..4, 0..40),
        limit in 0usize..15
    ) {
        let full = rsjoin::datagen::strings::levenshtein_full(&a, &b);
        let banded = rsjoin::datagen::levenshtein_within(&a, &b, limit);
        prop_assert_eq!(banded, (full <= limit).then_some(full));
    }
}
