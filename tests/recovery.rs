//! Crash-recovery harness for the durability layer (`rsjoin::persist`).
//!
//! The contract under test: kill a [`Persistent`]-wrapped engine at *any*
//! op boundary of a turnstile stream, recover from the checkpoint + WAL
//! suffix into a freshly built engine, finish the stream — and the final
//! reservoir is **byte-identical** (FNV digest over the sample matrix) to
//! an uninterrupted run of the same stream. The sweep covers every engine
//! family — including the signed-delta FK combiners and the cyclic GHD
//! driver — checkpoint cadences from every-op to never, torn log tails,
//! and cross-engine checkpoint rejection.

use rsjoin::engine::Engine;
use rsjoin::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// Scratch dirs (no tempfile dependency) and digesting
// ---------------------------------------------------------------------------

static SCRATCH_ID: AtomicU64 = AtomicU64::new(0);

/// Self-cleaning scratch directory under the system temp dir.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let id = SCRATCH_ID.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("rsj-recovery-{tag}-{}-{id}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// FNV-1a over the sample matrix, in reservoir order — same digest the
/// golden-determinism suite pins, so "equal digests" means "identical
/// reservoir bytes".
fn digest(samples: &[Vec<Value>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(samples.len() as u64);
    for s in samples {
        eat(s.len() as u64);
        for &v in s {
            eat(v);
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Turnstile workloads
// ---------------------------------------------------------------------------

fn line3() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    qb.build().unwrap()
}

fn two_rel() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["x", "y"]);
    qb.relation("S", &["y", "z"]);
    qb.build().unwrap()
}

/// Mixed insert/delete stream: every op either inserts a random tuple or
/// (1 in 4) deletes a currently-live one, so replay exercises the repair
/// paths, not just appends.
fn turnstile_ops(query: &Query, n_ops: usize, domain: u64, seed: u64) -> Vec<StreamOp> {
    let mut rng = RsjRng::seed_from_u64(seed);
    let nrels = query.num_relations();
    let mut live: Vec<(usize, Vec<Value>)> = Vec::new();
    let mut live_set: rsjoin::common::FxHashSet<(usize, Vec<Value>)> = Default::default();
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        if !live.is_empty() && rng.below_u64(4) == 0 {
            let j = rng.index(live.len());
            let (rel, t) = live.swap_remove(j);
            live_set.remove(&(rel, t.clone()));
            ops.push(StreamOp::delete(rel, t));
        } else {
            let rel = rng.index(nrels);
            let arity = query.relation(rel).attrs.len();
            let t: Vec<Value> = (0..arity).map(|_| rng.below_u64(domain)).collect();
            if live_set.insert((rel, t.clone())) {
                live.push((rel, t.clone()));
            }
            ops.push(StreamOp::insert(rel, t));
        }
    }
    ops
}

type BoxedSampler = Box<dyn JoinSampler + Send>;

fn build(engine: &Engine, query: &Query) -> BoxedSampler {
    engine
        .build(query, 16, 0xD15EA5E, &EngineOpts::default())
        .unwrap()
}

/// Digest of an uninterrupted run over the whole stream.
fn uninterrupted_digest(engine: &Engine, query: &Query, ops: &[StreamOp]) -> u64 {
    let mut s = build(engine, query);
    for op in ops {
        s.process_op(op).unwrap();
    }
    digest(&s.samples())
}

/// Every engine family and the query each runs (SymmetricHashJoin is
/// binary-only; the `_opt` engines recover their signed FK combiner, the
/// cyclic driver its bag tries, alongside the inner reservoir).
fn recovery_engines() -> Vec<(Engine, Query)> {
    vec![
        (Engine::Reservoir, line3()),
        (Engine::FkReservoir, line3()),
        (Engine::Cyclic, line3()),
        (Engine::Naive, line3()),
        (Engine::SJoin, line3()),
        (Engine::SJoinOpt, line3()),
        (Engine::sharded(Engine::Reservoir, 2), line3()),
        (Engine::Symmetric, two_rel()),
    ]
}

// ---------------------------------------------------------------------------
// Kill-at-random-op recovery, every engine family
// ---------------------------------------------------------------------------

/// For each engine: run through `Persistent`, "kill" at a random op
/// boundary (drop after flush), recover into a freshly built engine,
/// finish the stream, and require the exact uninterrupted digest. Kill
/// points straddle checkpoint boundaries (policy: every 71 ops).
#[test]
fn kill_at_random_op_recovers_byte_identically() {
    let n_ops = 500;
    let mut rng = RsjRng::seed_from_u64(0xDEAD);
    for (engine, query) in recovery_engines() {
        let ops = turnstile_ops(&query, n_ops, 6, 0xFEED);
        let expect = uninterrupted_digest(&engine, &query, &ops);
        // Deterministic edge kills plus random interior ones.
        let mut kills = vec![0, 1, 70, 71, 72, n_ops - 1, n_ops];
        kills.extend((0..4).map(|_| rng.index(n_ops)));
        for kill in kills {
            let scratch = Scratch::new(engine.name());
            let mut p = Persistent::open(
                build(&engine, &query),
                scratch.path(),
                CheckpointPolicy::EveryOps(71),
            )
            .unwrap();
            for op in &ops[..kill] {
                p.process_op(op).unwrap();
            }
            p.flush().unwrap();
            drop(p); // the kill: in-memory engine state is gone

            let mut r = Persistent::open(
                build(&engine, &query),
                scratch.path(),
                CheckpointPolicy::EveryOps(71),
            )
            .unwrap();
            assert_eq!(
                r.next_lsn(),
                kill as u64,
                "{}: recovery must land exactly at the kill point",
                engine.name()
            );
            for op in &ops[kill..] {
                r.process_op(op).unwrap();
            }
            assert_eq!(
                digest(&r.engine().samples()),
                expect,
                "{} killed at op {kill}: recovered stream diverged",
                engine.name()
            );
        }
    }
}

/// Checkpoint-cadence sweep (proptest-style, hand-rolled seeds): for a
/// spread of `EveryOps` cadences — every op, primes, larger than the
/// stream (i.e. never) — and several stream seeds, a mid-stream kill must
/// recover to the identical digest. Catches any state the snapshot forgets
/// and any op the truncated log drops.
#[test]
fn checkpoint_cadence_sweep_preserves_digests() {
    let engine = Engine::Reservoir;
    let query = line3();
    let n_ops = 300;
    for stream_seed in [11u64, 222, 3333] {
        let ops = turnstile_ops(&query, n_ops, 5, stream_seed);
        let expect = uninterrupted_digest(&engine, &query, &ops);
        let mut rng = RsjRng::seed_from_u64(stream_seed ^ 0xC0FFEE);
        for cadence in [1u64, 2, 13, 97, 10_000] {
            let kill = 1 + rng.index(n_ops - 1);
            let scratch = Scratch::new("cadence");
            let mut p = Persistent::open(
                build(&engine, &query),
                scratch.path(),
                CheckpointPolicy::EveryOps(cadence),
            )
            .unwrap();
            for op in &ops[..kill] {
                p.process_op(op).unwrap();
            }
            p.flush().unwrap();
            drop(p);

            let mut r = Persistent::open(
                build(&engine, &query),
                scratch.path(),
                CheckpointPolicy::EveryOps(cadence),
            )
            .unwrap();
            for op in &ops[kill..] {
                r.process_op(op).unwrap();
            }
            assert_eq!(
                digest(&r.engine().samples()),
                expect,
                "cadence {cadence}, kill {kill}, stream {stream_seed}"
            );
        }
    }
}

/// Manual checkpoints at arbitrary points (plus log truncation) are
/// equally recoverable, and checkpointing twice in a row is fine.
#[test]
fn manual_checkpoints_recover() {
    let engine = Engine::SJoin;
    let query = line3();
    let ops = turnstile_ops(&query, 240, 5, 77);
    let expect = uninterrupted_digest(&engine, &query, &ops);
    let scratch = Scratch::new("manual");
    let mut p = Persistent::open(
        build(&engine, &query),
        scratch.path(),
        CheckpointPolicy::Manual,
    )
    .unwrap();
    for (i, op) in ops[..200].iter().enumerate() {
        p.process_op(op).unwrap();
        if i == 60 || i == 61 || i == 150 {
            p.checkpoint().unwrap();
            assert_eq!(p.ops_since_checkpoint(), 0);
        }
    }
    p.flush().unwrap();
    drop(p);

    let mut r = Persistent::open(
        build(&engine, &query),
        scratch.path(),
        CheckpointPolicy::Manual,
    )
    .unwrap();
    assert_eq!(r.next_lsn(), 200);
    for op in &ops[200..] {
        r.process_op(op).unwrap();
    }
    assert_eq!(digest(&r.engine().samples()), expect);
}

// ---------------------------------------------------------------------------
// Torn tails
// ---------------------------------------------------------------------------

fn final_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir.join("wal"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segs.sort();
    segs.pop().expect("wal has at least one segment")
}

/// Garbage appended past the last record (a torn in-flight append) is
/// dropped on recovery; the flushed prefix survives intact.
#[test]
fn torn_tail_garbage_is_discarded() {
    let engine = Engine::Reservoir;
    let query = line3();
    let ops = turnstile_ops(&query, 200, 5, 99);
    let expect = uninterrupted_digest(&engine, &query, &ops);
    let scratch = Scratch::new("torn-garbage");
    let mut p = Persistent::open(
        build(&engine, &query),
        scratch.path(),
        CheckpointPolicy::EveryOps(64),
    )
    .unwrap();
    for op in &ops[..150] {
        p.process_op(op).unwrap();
    }
    p.sync().unwrap();
    drop(p);

    // The crash left half an appended record: length prefix + junk.
    let seg = final_segment(scratch.path());
    let mut bytes = fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x44, 0x00, 0x00, 0x00, 0xAB, 0xCD, 0xEF]);
    fs::write(&seg, bytes).unwrap();

    let mut r = Persistent::open(
        build(&engine, &query),
        scratch.path(),
        CheckpointPolicy::EveryOps(64),
    )
    .unwrap();
    assert_eq!(r.next_lsn(), 150, "torn bytes must not become ops");
    for op in &ops[150..] {
        r.process_op(op).unwrap();
    }
    assert_eq!(digest(&r.engine().samples()), expect);
}

/// A truncated final segment (the tail of the last record never hit disk)
/// recovers the surviving record prefix; finishing the stream from the
/// recovered LSN still converges on the uninterrupted digest.
#[test]
fn truncated_final_segment_recovers_the_prefix() {
    let engine = Engine::Reservoir;
    let query = line3();
    let ops = turnstile_ops(&query, 200, 5, 55);
    let expect = uninterrupted_digest(&engine, &query, &ops);
    let scratch = Scratch::new("torn-truncate");
    let mut p = Persistent::open(
        build(&engine, &query),
        scratch.path(),
        CheckpointPolicy::EveryOps(64),
    )
    .unwrap();
    for op in &ops[..150] {
        p.process_op(op).unwrap();
    }
    p.sync().unwrap();
    drop(p);

    // Chop 5 bytes off the final segment — the last record is now torn.
    let seg = final_segment(scratch.path());
    let bytes = fs::read(&seg).unwrap();
    fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();

    let mut r = Persistent::open(
        build(&engine, &query),
        scratch.path(),
        CheckpointPolicy::EveryOps(64),
    )
    .unwrap();
    let recovered = r.next_lsn() as usize;
    assert!(
        (128..150).contains(&recovered),
        "exactly the checkpointed prefix plus whole tail records survive, got {recovered}"
    );
    for op in &ops[recovered..] {
        r.process_op(op).unwrap();
    }
    assert_eq!(digest(&r.engine().samples()), expect);
}

// ---------------------------------------------------------------------------
// Rejections
// ---------------------------------------------------------------------------

/// A checkpoint written by one engine must not restore into another.
#[test]
fn recovery_rejects_checkpoint_from_different_engine() {
    let query = line3();
    let ops = turnstile_ops(&query, 80, 5, 13);
    let scratch = Scratch::new("mismatch");
    let mut p = Persistent::open(
        build(&Engine::Reservoir, &query),
        scratch.path(),
        CheckpointPolicy::Manual,
    )
    .unwrap();
    for op in &ops {
        p.process_op(op).unwrap();
    }
    p.checkpoint().unwrap();
    drop(p);

    let err = Persistent::open(
        build(&Engine::Naive, &query),
        scratch.path(),
        CheckpointPolicy::Manual,
    )
    .err()
    .expect("cross-engine restore must fail");
    assert!(
        matches!(err, PersistError::Engine(ref m) if m.contains("RSJoin")),
        "unexpected error: {err}"
    );
}

/// Engines without snapshot support are rejected up front, before any
/// files are written. Every real engine family snapshots now, so the
/// probe is exercised through a minimal snapshotless stub — the contract
/// still protects third-party samplers and engines mid-bringup.
#[test]
fn snapshotless_engines_are_rejected() {
    struct Snapshotless(Query);
    impl JoinSampler for Snapshotless {
        fn name(&self) -> &'static str {
            "Snapshotless"
        }
        fn output_query(&self) -> &Query {
            &self.0
        }
        fn process(&mut self, _rel: usize, _tuple: &[Value]) {}
        fn samples(&self) -> Vec<Vec<Value>> {
            Vec::new()
        }
        fn k(&self) -> usize {
            1
        }
    }
    let scratch = Scratch::new("unsupported");
    let err = Persistent::open(
        Box::new(Snapshotless(line3())) as Box<dyn JoinSampler + Send>,
        scratch.path().join("nested"),
        CheckpointPolicy::Manual,
    )
    .err()
    .expect("snapshotless engines must be rejected");
    assert!(matches!(err, PersistError::Unsupported(_)));
    assert!(
        !scratch.path().join("nested").exists(),
        "rejection must precede directory creation"
    );
}

/// Checkpointing truncates the log: old segments disappear, and recovery
/// afterwards reads only the fresh segment.
#[test]
fn checkpoint_truncates_the_log() {
    let engine = Engine::Reservoir;
    let query = line3();
    let ops = turnstile_ops(&query, 120, 5, 31);
    let scratch = Scratch::new("truncate");
    let mut p = Persistent::open(
        build(&engine, &query),
        scratch.path(),
        CheckpointPolicy::Manual,
    )
    .unwrap();
    for op in &ops {
        p.process_op(op).unwrap();
    }
    p.flush().unwrap(); // appends are buffered; measure what's on disk
    let before: u64 = fs::read_dir(scratch.path().join("wal"))
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    p.checkpoint().unwrap();
    let after: u64 = fs::read_dir(scratch.path().join("wal"))
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    assert!(
        after < before / 4,
        "checkpoint must truncate the log ({before} -> {after} bytes)"
    );
    drop(p);
    let r = Persistent::open(
        build(&engine, &query),
        scratch.path(),
        CheckpointPolicy::Manual,
    )
    .unwrap();
    assert_eq!(r.next_lsn(), 120, "lsn is global, surviving truncation");
}
