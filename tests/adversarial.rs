//! Adversarial end-to-end scenarios: extreme skew, composite keys, long
//! chains, and the degenerate patterns that separate the paper's algorithm
//! from the baselines.

use rsjoin::prelude::*;

#[test]
fn power_of_two_boundary_degrees() {
    // Degrees that sit exactly at powers of two stress the cnt~ change
    // detection: inserting the (2^j + 1)-th tuple must trigger exactly one
    // doubling.
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    let q = qb.build().unwrap();
    let mut rj = ReservoirJoin::new(q, 1 << 20, 1).unwrap();
    for j in [1u64, 2, 4, 8, 16, 32, 64] {
        // Grow S⋉{Y=0} to exactly j tuples, then add one R probe.
        let start = rj.samples().len();
        while rj.index().database().relation(1).len() < j as usize {
            let z = rj.index().database().relation(1).len() as u64;
            rj.process(1, &[0, z]);
        }
        rj.process(0, &[j, 0]);
        // The probe joins with all j S-tuples plus earlier probes' results.
        assert!(rj.samples().len() > start, "no growth at degree {j}");
    }
    // Total: Σ_j j results from probes... validate against SJoin's exact
    // count.
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    let mut sj = SJoin::new(qb.build().unwrap(), 1 << 20, 1).unwrap();
    for t in rj
        .index()
        .database()
        .relation(1)
        .iter()
        .map(|(_, t)| t.to_vec())
        .collect::<Vec<_>>()
    {
        sj.process(1, &t);
    }
    for t in rj
        .index()
        .database()
        .relation(0)
        .iter()
        .map(|(_, t)| t.to_vec())
        .collect::<Vec<_>>()
    {
        sj.process(0, &t);
    }
    assert_eq!(rj.samples().len() as u128, sj.index().total_results());
}

#[test]
fn composite_key_end_to_end() {
    // Join on a 2-attribute composite key (QX's (item, ticket) shape) with
    // collision-prone values: (1,2) vs (2,1) must not cross-match.
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["I", "T", "M"]);
    qb.relation("S", &["I", "T", "C"]);
    let q = qb.build().unwrap();
    let mut rj = ReservoirJoin::new(q, 1 << 20, 1).unwrap();
    rj.process(0, &[1, 2, 100]);
    rj.process(0, &[2, 1, 101]);
    rj.process(1, &[1, 2, 200]);
    assert_eq!(rj.samples().len(), 1);
    assert_eq!(rj.samples()[0], vec![1, 2, 100, 200]);
    rj.process(1, &[2, 1, 201]);
    assert_eq!(rj.samples().len(), 2);
}

#[test]
fn six_relation_chain() {
    // Deepest acyclic shape in the paper's family: line-6. Exercise
    // propagation through 5 levels and 6 rooted trees.
    let mut qb = QueryBuilder::new();
    for i in 0..6 {
        qb.relation(
            &format!("G{i}"),
            &[&format!("A{i}"), &format!("A{}", i + 1)],
        );
    }
    let q = qb.build().unwrap();
    let mut rng = RsjRng::seed_from_u64(3);
    let mut stream = TupleStream::new();
    for _ in 0..400 {
        stream.push(rng.index(6), vec![rng.below_u64(3), rng.below_u64(3)]);
    }
    let run = |engine: Engine, seed: u64| {
        let mut s = engine
            .build(&q, 1 << 20, seed, &EngineOpts::default())
            .unwrap();
        s.process_stream(&stream);
        s.samples_named()
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
    };
    let a = run(Engine::Reservoir, 1);
    let b = run(Engine::SJoin, 2);
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

#[test]
fn all_tuples_one_relation_then_flood() {
    // §2.1's lower-bound scenario, at scale, plus a flood after: the first
    // results arrive in one gigantic delta batch.
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    let q = qb.build().unwrap();
    let mut rj = ReservoirJoin::new(q, 100, 1).unwrap();
    for x in 0..20_000u64 {
        rj.process(0, &[x, 0]);
    }
    assert!(rj.samples().is_empty());
    rj.process(1, &[0, 1]); // one delta batch of 20,000 results
    assert_eq!(rj.samples().len(), 100);
    // The reservoir should NOT have stopped 20k times for that batch:
    // fill (100) + ~k log(N/k) skips.
    assert!(
        rj.reservoir_stops() < 2_000,
        "stops {}",
        rj.reservoir_stops()
    );
}

#[test]
fn skew_flip_flop() {
    // Alternate which side of the join is heavy; counts must stay
    // consistent through repeated doubling/halving pressure (insert-only,
    // so counts never shrink — but the *hot* key alternates).
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    let q = qb.build().unwrap();
    let mut stream = TupleStream::new();
    for round in 0..6u64 {
        let hot = round % 2;
        for i in 0..50u64 {
            stream.push(0, vec![round * 100 + i, hot]);
            stream.push(1, vec![hot, hot]);
            stream.push(2, vec![hot, round * 100 + i]);
        }
    }
    let run = |engine: Engine, seed: u64| {
        let mut s = engine
            .build(&q, 1 << 22, seed, &EngineOpts::default())
            .unwrap();
        s.process_stream(&stream);
        let set: std::collections::BTreeSet<_> = s.samples_named().into_iter().collect();
        (set, s.stats().exact_results)
    };
    let (a, _) = run(Engine::Reservoir, 1);
    let (b, exact) = run(Engine::SJoin, 2);
    assert_eq!(a.len() as u128, exact.expect("SJoin counts"));
    assert_eq!(a, b);
}

#[test]
fn values_at_u64_extremes() {
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["X", "Y"]);
    qb.relation("S", &["Y", "Z"]);
    let q = qb.build().unwrap();
    let mut rj = ReservoirJoin::new(q, 10, 1).unwrap();
    rj.process(0, &[u64::MAX, u64::MAX - 1]);
    rj.process(1, &[u64::MAX - 1, 0]);
    assert_eq!(rj.samples(), &[vec![u64::MAX, u64::MAX - 1, 0]]);
}
