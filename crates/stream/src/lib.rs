#![warn(missing_docs)]

//! Reservoir sampling algorithms over positional streams (paper §3).
//!
//! This crate implements the first technical ingredient of *Reservoir
//! Sampling over Joins* (SIGMOD 2024): reservoir sampling **with a
//! predicate**. The streams it samples from are *positional*: in addition to
//! `next()`, they support `skip(i)` — jump over `i` items in `O(1)` stream
//! operations — and `remain()`. The join machinery in `rsj-core` exposes each
//! delta-result batch `ΔJ` as such a stream, where "items" are join results
//! retrieved by position from the dynamic index and *dummy* items are the
//! positions the index's power-of-two rounding left empty.
//!
//! Algorithms provided:
//!
//! * [`reservoir::ClassicReservoir`] — Waterman's `O(N)` algorithm
//!   (paper §3.1, used by the `RS` baseline of §6.3);
//! * [`reservoir::Reservoir`] — the predicate-aware skip-based algorithm
//!   (Algorithm 1) in its batched form (Algorithms 4–5), running in
//!   `O(Σ min(1, k/(r_i+1)))` stops, which is instance-optimal
//!   (Theorem 3.3);
//! * [`density`] — the φ-density machinery of Definition 3.4 and
//!   Lemmas 3.6–3.8, used both by tests and by the index's density
//!   guarantees.

pub mod batch;
pub mod density;
pub mod reservoir;

pub use batch::{Batch, FnBatch, SliceBatch};
pub use reservoir::{ClassicReservoir, Reservoir};
