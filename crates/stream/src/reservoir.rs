//! The reservoir sampling algorithms (paper §3.1–§3.3).
//!
//! [`ClassicReservoir`] is Waterman's algorithm: one uniform draw per item,
//! `O(N)` total. [`Reservoir`] is the paper's contribution — Algorithm 1
//! (reservoir sampling with a predicate) in the batched formulation of
//! Algorithms 4–5. It only *stops* at (and therefore only evaluates the
//! predicate on) an expected `Σ_i min(1, k/(r_i+1))` positions, where `r_i`
//! counts real items before position `i`; everything between stops is
//! skipped in `O(1)` stream operations.
//!
//! The two are distribution-equivalent: the predicate version is exactly
//! classic reservoir sampling run over the subsequence of real items
//! (Theorem 3.1). Splitting a stream into batches does not change the
//! random sequence consumed, so for a fixed seed the batched and unbatched
//! runs produce byte-identical reservoirs — a property the tests rely on.

use crate::batch::Batch;
use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::rng::RsjRng;

fn put_rng(enc: &mut Encoder, rng: &RsjRng) {
    for w in rng.state() {
        enc.put_u64(w);
    }
}

fn get_rng(dec: &mut Decoder) -> Result<RsjRng, CodecError> {
    let s = [dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?];
    RsjRng::restore_state(s).ok_or(CodecError::Corrupt("rng state is the zero fixed point"))
}

/// Shared turnstile-backfill loop: draw candidates until `samples` holds
/// `target` distinct entries, spending at most `per_slot_tries` draws per
/// vacated slot (`draw` returns `None` for a failed trial — a dummy
/// position). Returns whether the target was reached — `false` means the
/// defensive cap was exhausted, which callers treat as an invariant
/// violation (the cap is sized from the engine's draw density).
fn backfill_distinct<T: PartialEq>(
    samples: &mut Vec<T>,
    target: usize,
    per_slot_tries: usize,
    mut draw: impl FnMut() -> Option<T>,
) -> bool {
    while samples.len() < target {
        let mut tries = per_slot_tries;
        loop {
            if tries == 0 {
                return false;
            }
            tries -= 1;
            let Some(t) = draw() else { continue };
            if !samples.contains(&t) {
                samples.push(t);
                break;
            }
        }
    }
    true
}

/// Waterman's classic `O(N)` reservoir (paper §3.1, the `RS` baseline).
///
/// Maintains `k` uniform samples without replacement of all items offered so
/// far. Every item costs one RNG draw; there is no skipping.
#[derive(Clone, Debug)]
pub struct ClassicReservoir<T> {
    k: usize,
    seen: u128,
    samples: Vec<T>,
    rng: RsjRng,
}

impl<T> ClassicReservoir<T> {
    /// Creates a reservoir of capacity `k > 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "reservoir size must be positive");
        ClassicReservoir {
            k,
            seen: 0,
            samples: Vec::with_capacity(k),
            rng: RsjRng::seed_from_u64(seed),
        }
    }

    /// Offers one item to the reservoir.
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.samples.len() < self.k {
            self.samples.push(item);
        } else {
            let j = self.rng.below_u128(self.seen);
            if j < self.k as u128 {
                self.samples[j as usize] = item;
            }
        }
    }

    /// The current samples (length `min(k, items offered)`).
    pub fn samples(&self) -> &[T] {
        &self.samples
    }

    /// Reservoir capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of items offered so far.
    pub fn seen(&self) -> u128 {
        self.seen
    }

    /// Consumes the reservoir, returning the samples.
    pub fn into_samples(self) -> Vec<T> {
        self.samples
    }

    /// Removes every sample matching `dead`, returning how many were
    /// evicted. Part of the turnstile repair protocol (see
    /// [`set_population`](ClassicReservoir::set_population)).
    pub fn evict_where(&mut self, mut dead: impl FnMut(&T) -> bool) -> usize {
        let before = self.samples.len();
        self.samples.retain(|s| !dead(s));
        before - self.samples.len()
    }

    /// Pushes a replacement sample into a vacated slot (turnstile repair).
    ///
    /// # Panics
    /// Panics if the reservoir is already at capacity.
    pub fn refill(&mut self, item: T) {
        assert!(self.samples.len() < self.k, "refill past capacity");
        self.samples.push(item);
    }

    /// Backfills vacated slots to `min(target, k)` distinct samples using
    /// `draw` (turnstile repair; `None` = failed trial). Returns whether
    /// the target was reached within `per_slot_tries` draws per slot.
    pub fn backfill_distinct(
        &mut self,
        target: usize,
        per_slot_tries: usize,
        draw: impl FnMut() -> Option<T>,
    ) -> bool
    where
        T: PartialEq,
    {
        let target = target.min(self.k);
        backfill_distinct(&mut self.samples, target, per_slot_tries, draw)
    }

    /// Recalibrates the item counter to an externally maintained live
    /// population (turnstile deletions shrink the population; the classic
    /// acceptance probability `k/(seen+1)` must track the *live* count for
    /// the sample to stay uniform).
    pub fn set_population(&mut self, population: u128) {
        self.seen = population;
    }

    /// Serializes the full sampler state — samples in slot order, the item
    /// counter, and the RNG position — so a restored reservoir continues
    /// the exact same acceptance/victim stream.
    pub fn snapshot_to(&self, enc: &mut Encoder, mut put: impl FnMut(&mut Encoder, &T)) {
        enc.put_usize(self.k);
        enc.put_u128(self.seen);
        enc.put_usize(self.samples.len());
        for s in &self.samples {
            put(enc, s);
        }
        put_rng(enc, &self.rng);
    }

    /// Reconstructs a reservoir from
    /// [`snapshot_to`](ClassicReservoir::snapshot_to) bytes.
    pub fn restore_from(
        dec: &mut Decoder,
        mut get: impl FnMut(&mut Decoder) -> Result<T, CodecError>,
    ) -> Result<ClassicReservoir<T>, CodecError> {
        let k = dec.usize()?;
        if k == 0 {
            return Err(CodecError::Corrupt("reservoir capacity zero"));
        }
        let seen = dec.u128()?;
        let n = dec.seq_len(1)?;
        if n > k {
            return Err(CodecError::Corrupt("more samples than capacity"));
        }
        let mut samples = Vec::with_capacity(k);
        for _ in 0..n {
            samples.push(get(dec)?);
        }
        let rng = get_rng(dec)?;
        Ok(ClassicReservoir {
            k,
            seen,
            samples,
            rng,
        })
    }
}

/// Reservoir sampling with a predicate over a stream of batches
/// (paper Algorithms 1, 4 and 5).
///
/// The predicate is fused with payload extraction: each stop hands the
/// stream item to a `theta` closure returning `Some(payload)` for real items
/// and `None` for dummies. For join batches the "predicate evaluation" *is*
/// the positional retrieve — a dummy position comes back as `None`.
///
/// State carried across batches: the reservoir `S`, the parameter `w`
/// (`∞` until the reservoir first fills — see Algorithm 4 line 1), and the
/// pending skip count `q` (what remains of the last geometric draw after the
/// previous batch ended; Algorithm 5 line 15).
#[derive(Clone, Debug)]
pub struct Reservoir<T> {
    k: usize,
    samples: Vec<T>,
    w: f64,
    q: u128,
    rng: RsjRng,
    stops: u64,
    replacements: u64,
}

impl<T> Reservoir<T> {
    /// Creates a reservoir of capacity `k > 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "reservoir size must be positive");
        Reservoir {
            k,
            samples: Vec::with_capacity(k.min(1 << 20)),
            w: f64::INFINITY,
            q: 0,
            rng: RsjRng::seed_from_u64(seed),
            stops: 0,
            replacements: 0,
        }
    }

    /// Processes one batch (Algorithm 5, `BatchUpdate`).
    ///
    /// `theta` is invoked once per *stop*; it returns the sample payload for
    /// real items and `None` for dummies.
    pub fn process_batch<B, F>(&mut self, batch: &mut B, mut theta: F)
    where
        B: Batch,
        F: FnMut(B::Item) -> Option<T>,
    {
        // Fill phase (Alg. 5 lines 1–4): scan sequentially, keeping only
        // real items, until the reservoir holds k samples.
        while self.samples.len() < self.k {
            match batch.next() {
                None => return,
                Some(x) => {
                    self.stops += 1;
                    if let Some(t) = theta(x) {
                        self.samples.push(t);
                    }
                }
            }
        }
        // One-time initialization of (w, q) the first time the reservoir is
        // full (Alg. 5 lines 5–7; w stays <= 1 forever after).
        if self.w > 1.0 {
            self.w = self.rng.unit().powf(1.0 / self.k as f64);
            self.q = self.rng.geometric(self.w);
        }
        // Skip phase (Alg. 5 lines 8–14).
        while batch.remain() > self.q {
            let x = batch.skip(self.q).expect("stop within batch");
            self.stops += 1;
            if let Some(t) = theta(x) {
                let victim = self.rng.index(self.k);
                self.samples[victim] = t;
                self.replacements += 1;
                self.w = self.rng.decay_w(self.w, self.k);
            }
            self.q = self.rng.geometric(self.w);
        }
        // The rest of the batch is skipped wholesale; carry the remainder of
        // the geometric draw into the next batch (Alg. 5 line 15).
        self.q -= batch.remain();
    }

    /// Like [`process_batch`](Reservoir::process_batch), but fills sample
    /// payloads *in place*: at each stop, `fill(item, buf)` writes the
    /// payload into `buf` (a reusable buffer) and returns whether the item
    /// was real. A replacement then swaps `buf` with the victim slot, so a
    /// full steady-state reservoir performs no payload allocations — the
    /// evicted sample's buffer becomes the next scratch.
    ///
    /// Consumes randomness identically to `process_batch`: for a fixed
    /// seed the two produce byte-identical reservoirs.
    pub fn process_batch_in_place<B, F>(&mut self, batch: &mut B, mut fill: F, scratch: &mut T)
    where
        B: Batch,
        T: Default,
        F: FnMut(B::Item, &mut T) -> bool,
    {
        while self.samples.len() < self.k {
            match batch.next() {
                None => return,
                Some(x) => {
                    self.stops += 1;
                    if fill(x, scratch) {
                        self.samples.push(std::mem::take(scratch));
                    }
                }
            }
        }
        if self.w > 1.0 {
            self.w = self.rng.unit().powf(1.0 / self.k as f64);
            self.q = self.rng.geometric(self.w);
        }
        while batch.remain() > self.q {
            let x = batch.skip(self.q).expect("stop within batch");
            self.stops += 1;
            if fill(x, scratch) {
                let victim = self.rng.index(self.k);
                std::mem::swap(&mut self.samples[victim], scratch);
                self.replacements += 1;
                self.w = self.rng.decay_w(self.w, self.k);
            }
            self.q = self.rng.geometric(self.w);
        }
        self.q -= batch.remain();
    }

    /// Consumes a whole batch of `n` items by pure skip arithmetic, if the
    /// pending geometric skip allows it: a full reservoir whose next stop
    /// lies beyond the batch does exactly `q -= n` and touches nothing
    /// else — no RNG, no retrievals. Returns whether the batch was
    /// consumed; on `false` the caller must run the real
    /// [`process_batch_in_place`](Reservoir::process_batch_in_place) path.
    ///
    /// Callers use this to spare building the batch's retrieval machinery
    /// at all; randomness consumption is identical either way.
    pub fn try_skip(&mut self, n: u128) -> bool {
        if self.samples.len() == self.k && self.w <= 1.0 && n <= self.q {
            self.q -= n;
            true
        } else {
            false
        }
    }

    /// The current samples (fewer than `k` until enough real items arrive).
    pub fn samples(&self) -> &[T] {
        &self.samples
    }

    /// Reservoir capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Instrumentation: number of stream positions the algorithm stopped at
    /// (and thus evaluated the predicate on). Theorem 3.2 bounds its
    /// expectation by `(p-1) + Σ_{i>=p} k/(r_i+1)`.
    pub fn stops(&self) -> u64 {
        self.stops
    }

    /// Instrumentation: number of reservoir replacements performed.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Consumes the reservoir, returning the samples.
    pub fn into_samples(self) -> Vec<T> {
        self.samples
    }

    /// Removes every sample matching `dead`, returning how many were
    /// evicted. First step of the turnstile repair protocol (see
    /// [`recalibrate`](Reservoir::recalibrate)).
    pub fn evict_where(&mut self, mut dead: impl FnMut(&T) -> bool) -> usize {
        let before = self.samples.len();
        self.samples.retain(|s| !dead(s));
        before - self.samples.len()
    }

    /// Pushes a replacement sample into a vacated slot (turnstile repair).
    ///
    /// # Panics
    /// Panics if the reservoir is already at capacity.
    pub fn refill(&mut self, item: T) {
        assert!(self.samples.len() < self.k, "refill past capacity");
        self.samples.push(item);
    }

    /// Backfills vacated slots to `min(target, k)` distinct samples using
    /// `draw` (turnstile repair; `None` = failed trial — a dummy
    /// position). Returns whether the target was reached within
    /// `per_slot_tries` draws per slot; size the budget from the draw's
    /// real-position density.
    pub fn backfill_distinct(
        &mut self,
        target: usize,
        per_slot_tries: usize,
        draw: impl FnMut() -> Option<T>,
    ) -> bool
    where
        T: PartialEq,
    {
        let target = target.min(self.k);
        backfill_distinct(&mut self.samples, target, per_slot_tries, draw)
    }

    /// Re-draws the skip state `(w, q)` against an exact live population of
    /// `population` real items — the turnstile repair step that keeps
    /// *future* inserts correctly weighted after deletions.
    ///
    /// Algorithm L's `w` is distributed as the `k`-th smallest of `r` iid
    /// uniform keys when `r` reals have been processed (after the fill it
    /// is `U^(1/k)`, the max of `k` uniforms = `k`-th smallest of `k`; each
    /// replacement multiplies by `U^(1/k)`, maintaining the law). A
    /// deletion shrinks the population, so the stored `w` corresponds to a
    /// stale, larger `r` and under-accepts subsequent arrivals. Because
    /// `(samples, w)` are independent in the algorithm's state law (the
    /// sample is a uniform `k`-subset by exchangeability, whatever the key
    /// *values*), drawing a fresh `w` from the exact `k`-th-smallest-of-`r`
    /// law — an `O(k)` ascending order-statistics chain — restores the
    /// exact joint state of a fresh run over the live population. The
    /// pending skip `q` is re-drawn too (geometric in `w`).
    ///
    /// With `population <= samples.len()` the reservoir holds the whole
    /// result set and `(w, q)` reverts to the unfilled state.
    ///
    /// Call after [`evict_where`](Reservoir::evict_where) /
    /// [`refill`](Reservoir::refill) have restored the sample itself;
    /// insert-only runs never call this, so their random streams are
    /// untouched.
    pub fn recalibrate(&mut self, population: u128) {
        if population <= self.samples.len() as u128 {
            self.w = f64::INFINITY;
            self.q = 0;
            return;
        }
        debug_assert_eq!(self.samples.len(), self.k, "full before population");
        // Ascending order-statistics chain: U_(1) = 1 - V^(1/r), then each
        // next order statistic rescales into the remaining interval.
        let mut w = 0.0f64;
        let mut rem = population as f64;
        for _ in 0..self.k {
            w += (1.0 - w) * (1.0 - self.rng.unit().powf(1.0 / rem));
            rem -= 1.0;
        }
        self.w = w;
        self.q = self.rng.geometric(self.w);
    }

    /// Serializes the full sampler state — samples in slot order, the skip
    /// parameters `(w, q)` (bit-exact, including the pre-fill `w = ∞`), the
    /// RNG position, and the instrumentation counters — so a restored
    /// reservoir continues the exact same skip/victim stream.
    pub fn snapshot_to(&self, enc: &mut Encoder, mut put: impl FnMut(&mut Encoder, &T)) {
        enc.put_usize(self.k);
        enc.put_usize(self.samples.len());
        for s in &self.samples {
            put(enc, s);
        }
        enc.put_f64(self.w);
        enc.put_u128(self.q);
        put_rng(enc, &self.rng);
        enc.put_u64(self.stops);
        enc.put_u64(self.replacements);
    }

    /// Reconstructs a reservoir from [`snapshot_to`](Reservoir::snapshot_to)
    /// bytes.
    pub fn restore_from(
        dec: &mut Decoder,
        mut get: impl FnMut(&mut Decoder) -> Result<T, CodecError>,
    ) -> Result<Reservoir<T>, CodecError> {
        let k = dec.usize()?;
        if k == 0 {
            return Err(CodecError::Corrupt("reservoir capacity zero"));
        }
        let n = dec.seq_len(1)?;
        if n > k {
            return Err(CodecError::Corrupt("more samples than capacity"));
        }
        let mut samples = Vec::with_capacity(k.min(1 << 20).max(n));
        for _ in 0..n {
            samples.push(get(dec)?);
        }
        let w = dec.f64()?;
        let q = dec.u128()?;
        let rng = get_rng(dec)?;
        let stops = dec.u64()?;
        let replacements = dec.u64()?;
        Ok(Reservoir {
            k,
            samples,
            w,
            q,
            rng,
            stops,
            replacements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::SliceBatch;
    use rsj_common::stats::{chi_square_critical, chi_square_uniform};

    /// Runs `trials` reservoirs of size `k` over `0..n` and returns per-item
    /// inclusion counts.
    fn inclusion_counts_classic(n: u64, k: usize, trials: u64) -> Vec<u64> {
        let mut counts = vec![0u64; n as usize];
        for t in 0..trials {
            let mut r = ClassicReservoir::new(k, 1000 + t);
            for x in 0..n {
                r.offer(x);
            }
            for &x in r.samples() {
                counts[x as usize] += 1;
            }
        }
        counts
    }

    fn inclusion_counts_predicate(
        n: u64,
        k: usize,
        trials: u64,
        batch_size: usize,
        real: impl Fn(u64) -> bool,
    ) -> Vec<u64> {
        let mut counts = vec![0u64; n as usize];
        let items: Vec<u64> = (0..n).collect();
        for t in 0..trials {
            let mut r = Reservoir::new(k, 2000 + t);
            for chunk in items.chunks(batch_size) {
                let mut b = SliceBatch::new(chunk);
                r.process_batch(&mut b, |x| if real(x) { Some(x) } else { None });
            }
            for &x in r.samples() {
                counts[x as usize] += 1;
            }
        }
        counts
    }

    #[test]
    fn classic_uniformity() {
        let counts = inclusion_counts_classic(50, 10, 4000);
        let (stat, df) = chi_square_uniform(&counts);
        assert!(
            stat < chi_square_critical(df, 0.0001),
            "chi2={stat} df={df}"
        );
    }

    #[test]
    fn classic_without_replacement() {
        let mut r = ClassicReservoir::new(10, 1);
        for x in 0..5u64 {
            r.offer(x);
        }
        let mut s = r.into_samples();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn predicate_uniform_over_reals_only() {
        // Items divisible by 3 are real; dummies must never be sampled and
        // reals must be uniform.
        let n = 90;
        let counts = inclusion_counts_predicate(n, 6, 4000, 17, |x| x % 3 == 0);
        for (x, &c) in counts.iter().enumerate() {
            if x % 3 != 0 {
                assert_eq!(c, 0, "dummy {x} sampled");
            }
        }
        let real_counts: Vec<u64> = counts
            .iter()
            .enumerate()
            .filter(|(x, _)| x % 3 == 0)
            .map(|(_, &c)| c)
            .collect();
        let (stat, df) = chi_square_uniform(&real_counts);
        assert!(
            stat < chi_square_critical(df, 0.0001),
            "chi2={stat} df={df}"
        );
    }

    #[test]
    fn batching_is_invisible_to_the_distribution() {
        // Same seed, different batch splits => byte-identical reservoirs,
        // because skips across batch boundaries consume no randomness.
        let items: Vec<u64> = (0..10_000).collect();
        let run = |sizes: &[usize]| {
            let mut r = Reservoir::new(20, 777);
            let mut rest: &[u64] = &items;
            let mut i = 0;
            while !rest.is_empty() {
                let take = sizes[i % sizes.len()].min(rest.len());
                let (chunk, tail) = rest.split_at(take);
                let mut b = SliceBatch::new(chunk);
                r.process_batch(&mut b, |x| if x % 2 == 0 { Some(x) } else { None });
                rest = tail;
                i += 1;
            }
            r.into_samples()
        };
        assert_eq!(run(&[10_000]), run(&[1]));
        assert_eq!(run(&[10_000]), run(&[7, 1, 313, 50]));
    }

    #[test]
    fn in_place_path_is_byte_identical() {
        // process_batch_in_place must consume randomness exactly like
        // process_batch: same seed => same reservoir bytes, with every
        // payload written through the reusable scratch buffer.
        let items: Vec<u64> = (0..50_000).collect();
        let real = |x: u64| x % 3 != 1;
        let boxed = |sizes: &[usize], in_place: bool| -> Vec<Vec<u64>> {
            let mut r: Reservoir<Vec<u64>> = Reservoir::new(16, 4242);
            let mut scratch = Vec::new();
            let mut rest: &[u64] = &items;
            let mut i = 0;
            while !rest.is_empty() {
                let take = sizes[i % sizes.len()].min(rest.len());
                let (chunk, tail) = rest.split_at(take);
                let mut b = SliceBatch::new(chunk);
                if in_place {
                    r.process_batch_in_place(
                        &mut b,
                        |x, buf| {
                            if real(x) {
                                buf.clear();
                                buf.push(x);
                                true
                            } else {
                                false
                            }
                        },
                        &mut scratch,
                    );
                } else {
                    r.process_batch(&mut b, |x| real(x).then(|| vec![x]));
                }
                rest = tail;
                i += 1;
            }
            r.into_samples()
        };
        assert_eq!(boxed(&[997], true), boxed(&[997], false));
        assert_eq!(boxed(&[1], true), boxed(&[50_000], false));
    }

    #[test]
    fn all_dummy_stream_never_fills() {
        let items: Vec<u64> = (0..1000).collect();
        let mut r = Reservoir::new(5, 3);
        let mut b = SliceBatch::new(&items);
        r.process_batch(&mut b, |_| None::<u64>);
        assert!(r.samples().is_empty());
        // Not safe to skip anything: every position must be a stop.
        assert_eq!(r.stops(), 1000);
    }

    #[test]
    fn single_real_item_always_found() {
        // The adversarial case from §1: exactly one real item hiding in a
        // sea of dummies must always end up in the reservoir.
        for seed in 0..50 {
            let mut r = Reservoir::new(3, seed);
            let items: Vec<u64> = (0..500).collect();
            let mut b = SliceBatch::new(&items);
            r.process_batch(&mut b, |x| if x == 499 { Some(x) } else { None });
            assert_eq!(r.samples(), &[499]);
        }
    }

    #[test]
    fn dense_stream_stops_are_logarithmic() {
        // Fully real stream of n items, reservoir k: expected stops
        // ~ k + k ln(n/k) ≈ 100 + 100*ln(1000) ≈ 790. Allow generous slack.
        let n: u64 = 100_000;
        let k = 100;
        let items: Vec<u64> = (0..n).collect();
        let mut r = Reservoir::new(k, 11);
        let mut b = SliceBatch::new(&items);
        r.process_batch(&mut b, Some);
        let stops = r.stops();
        assert!((300..4000).contains(&stops), "stops={stops}, expected ~790");
    }

    #[test]
    fn half_dense_stream_stops_stay_logarithmic() {
        // Theorem 3.2: for φ-dense streams with constant φ, stops stay
        // O(k log(N/k)) — far below N.
        let n: u64 = 100_000;
        let items: Vec<u64> = (0..n).collect();
        let mut r = Reservoir::new(100, 13);
        let mut b = SliceBatch::new(&items);
        r.process_batch(&mut b, |x| if x % 2 == 0 { Some(x) } else { None });
        assert!(r.stops() < 8000, "stops={}", r.stops());
    }

    #[test]
    fn reservoir_correct_at_every_prefix() {
        // Uniformity must hold at every timestamp, not just the end: check
        // inclusion frequency of item 0 after 10 and after 40 items.
        let trials = 3000u64;
        let (mut hit10, mut hit40) = (0u64, 0u64);
        for t in 0..trials {
            let mut r = Reservoir::new(2, 5000 + t);
            let items: Vec<u64> = (0..40).collect();
            let mut b = SliceBatch::new(&items[..10]);
            r.process_batch(&mut b, Some);
            if r.samples().contains(&0) {
                hit10 += 1;
            }
            let mut b = SliceBatch::new(&items[10..]);
            r.process_batch(&mut b, Some);
            if r.samples().contains(&0) {
                hit40 += 1;
            }
        }
        let f10 = hit10 as f64 / trials as f64; // expect 2/10
        let f40 = hit40 as f64 / trials as f64; // expect 2/40
        assert!((f10 - 0.2).abs() < 0.03, "f10={f10}");
        assert!((f40 - 0.05).abs() < 0.02, "f40={f40}");
    }

    #[test]
    fn fewer_reals_than_k_collects_all() {
        let items: Vec<u64> = (0..100).collect();
        let mut r = Reservoir::new(50, 9);
        let mut b = SliceBatch::new(&items);
        r.process_batch(&mut b, |x| if x % 10 == 0 { Some(x) } else { None });
        let mut s = r.into_samples();
        s.sort_unstable();
        assert_eq!(s, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn predicate_matches_classic_distribution() {
        // Theorem 3.1: Alg. 1 == classic reservoir over the real
        // subsequence. Compare inclusion-frequency vectors statistically.
        let n = 60u64;
        let trials = 4000;
        let pred_counts = inclusion_counts_predicate(n, 5, trials, 13, |x| x % 2 == 0);
        let classic: Vec<u64> = {
            let mut counts = vec![0u64; n as usize];
            for t in 0..trials {
                let mut r = ClassicReservoir::new(5, 9000 + t);
                for x in (0..n).filter(|x| x % 2 == 0) {
                    r.offer(x);
                }
                for &x in r.samples() {
                    counts[x as usize] += 1;
                }
            }
            counts
        };
        // Both should be uniform over the 30 reals with mean trials*5/30.
        for x in (0..n).step_by(2) {
            let a = pred_counts[x as usize] as f64;
            let b = classic[x as usize] as f64;
            let expect = trials as f64 * 5.0 / 30.0;
            assert!((a - expect).abs() < expect * 0.25, "pred {x}: {a}");
            assert!((b - expect).abs() < expect * 0.25, "classic {x}: {b}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        Reservoir::<u64>::new(0, 0);
    }

    #[test]
    fn snapshot_mid_stream_continues_byte_identically() {
        // Run to position p, snapshot, restore, finish — the reservoir must
        // equal an uninterrupted run bit for bit (samples AND skip state,
        // exercised by continuing the stream after restore).
        let items: Vec<u64> = (0..30_000).collect();
        let real = |x: u64| x % 5 != 2;
        for p in [0usize, 3, 1000, 15_000, 29_999] {
            let mut whole = Reservoir::new(12, 99);
            let mut b = SliceBatch::new(&items);
            whole.process_batch(&mut b, |x| real(x).then_some(x));

            let mut head = Reservoir::new(12, 99);
            let mut b = SliceBatch::new(&items[..p]);
            head.process_batch(&mut b, |x| real(x).then_some(x));
            let mut enc = rsj_common::codec::Encoder::new();
            head.snapshot_to(&mut enc, |e, v| e.put_u64(*v));
            let bytes = enc.into_bytes();
            let mut dec = rsj_common::codec::Decoder::new(&bytes);
            let mut tail = Reservoir::restore_from(&mut dec, |d| d.u64()).unwrap();
            dec.finish().unwrap();
            let mut b = SliceBatch::new(&items[p..]);
            tail.process_batch(&mut b, |x| real(x).then_some(x));
            assert_eq!(tail.samples(), whole.samples(), "split at {p}");
            assert_eq!(tail.stops(), whole.stops(), "split at {p}");
            assert_eq!(tail.replacements(), whole.replacements(), "split at {p}");
        }
    }

    #[test]
    fn classic_snapshot_continues_byte_identically() {
        for p in [0usize, 5, 500] {
            let mut whole = ClassicReservoir::new(7, 31);
            for x in 0..1000u64 {
                whole.offer(x);
            }
            let mut head = ClassicReservoir::new(7, 31);
            for x in 0..p as u64 {
                head.offer(x);
            }
            let mut enc = rsj_common::codec::Encoder::new();
            head.snapshot_to(&mut enc, |e, v| e.put_u64(*v));
            let bytes = enc.into_bytes();
            let mut dec = rsj_common::codec::Decoder::new(&bytes);
            let mut tail = ClassicReservoir::restore_from(&mut dec, |d| d.u64()).unwrap();
            dec.finish().unwrap();
            for x in p as u64..1000 {
                tail.offer(x);
            }
            assert_eq!(tail.samples(), whole.samples(), "split at {p}");
            assert_eq!(tail.seen(), whole.seen(), "split at {p}");
        }
    }

    #[test]
    fn snapshot_rejects_over_capacity_sample_counts() {
        let mut r = Reservoir::new(2, 1);
        let items: Vec<u64> = (0..10).collect();
        let mut b = SliceBatch::new(&items);
        r.process_batch(&mut b, Some);
        let mut enc = rsj_common::codec::Encoder::new();
        r.snapshot_to(&mut enc, |e, v| e.put_u64(*v));
        let mut bytes = enc.into_bytes();
        bytes[..8].copy_from_slice(&1u64.to_le_bytes()); // claim k=1 < 2 samples
        let mut dec = rsj_common::codec::Decoder::new(&bytes);
        assert!(Reservoir::<u64>::restore_from(&mut dec, |d| d.u64()).is_err());
    }
}
