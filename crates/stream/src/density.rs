//! φ-density of real/dummy streams (paper Definition 3.4, Lemmas 3.6–3.8).
//!
//! A stream is φ-dense when every prefix of length `i` contains at least
//! `φ·i` real items. Density is what makes the predicate reservoir fast
//! (Corollary 3.5), and the dynamic index is engineered so that every delta
//! batch it emits is `(1/2)^{2|T_e|-1}`-dense — a constant for a fixed
//! query. The three lemmas say density survives the ways batches are
//! composed: concatenation, Cartesian product, and dummy padding. This
//! module implements the compositions on explicit flag vectors so tests and
//! property tests can check the lemmas directly against the index's
//! behaviour.

/// The density of a stream given its real-item flags: the largest φ with
/// `q_i >= φ·i` for every prefix, i.e. `min_i q_i / i`.
///
/// Returns 1.0 for an empty stream (vacuously dense).
pub fn density(flags: &[bool]) -> f64 {
    let mut reals = 0u64;
    let mut phi = 1.0f64;
    for (i, &f) in flags.iter().enumerate() {
        if f {
            reals += 1;
        }
        phi = phi.min(reals as f64 / (i + 1) as f64);
    }
    phi
}

/// Number of real items in the stream.
pub fn real_count(flags: &[bool]) -> usize {
    flags.iter().filter(|&&f| f).count()
}

/// Concatenation of two streams (Lemma 3.6: density >= min(φ1, φ2)).
pub fn concat(a: &[bool], b: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

/// Row-major Cartesian product of two streams, where a pair is real iff both
/// components are (Lemma 3.7: density >= φ1·φ2/2).
pub fn product(a: &[bool], b: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for &x in a {
        for &y in b {
            out.push(x && y);
        }
    }
    out
}

/// Pads `n` dummies at the end (Lemma 3.8: density >= m/(m+n)·φ).
pub fn pad(a: &[bool], n: usize) -> Vec<bool> {
    let mut out = Vec::with_capacity(a.len() + n);
    out.extend_from_slice(a);
    out.extend(std::iter::repeat_n(false, n));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_basics() {
        assert_eq!(density(&[]), 1.0);
        assert_eq!(density(&[true, true]), 1.0);
        assert_eq!(density(&[false]), 0.0);
        assert_eq!(density(&[true, false]), 0.5);
        // Leading dummy forces density 0 regardless of what follows.
        assert_eq!(density(&[false, true, true, true]), 0.0);
    }

    #[test]
    fn alternating_is_half_dense() {
        let s: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let d = density(&s);
        assert!((0.5..=1.0).contains(&d), "d={d}");
    }

    #[test]
    fn lemma_3_6_concat() {
        let a = [true, true, false, true]; // 0.5-ish dense
        let b = [true, false];
        let c = concat(&a, &b);
        assert!(density(&c) >= density(&a).min(density(&b)) - 1e-12);
    }

    #[test]
    fn lemma_3_7_product() {
        let a = [true, false, true, true];
        let b = [true, true, false];
        let p = product(&a, &b);
        assert_eq!(p.len(), 12);
        assert!(density(&p) >= density(&a) * density(&b) / 2.0 - 1e-12);
        // Real pairs = reals(a) * reals(b).
        assert_eq!(real_count(&p), real_count(&a) * real_count(&b));
    }

    #[test]
    fn lemma_3_8_pad() {
        let a = [true, true, true, false];
        let padded = pad(&a, 4);
        let m = a.len() as f64;
        let bound = m / (m + 4.0) * density(&a);
        assert!(density(&padded) >= bound - 1e-12);
    }

    #[test]
    fn pow2_padding_is_half_dense() {
        // The index pads a cnt-sized all-real batch to cnt~ = next pow2;
        // the result must be at least 1/2-dense: the exact situation of
        // BatchGenerate Case 3.
        for cnt in 1usize..200 {
            let padded = pad(&vec![true; cnt], cnt.next_power_of_two() - cnt);
            assert!(density(&padded) >= 0.5, "cnt={cnt} d={}", density(&padded));
        }
    }
}
