//! Positional batch streams: the `next` / `skip` / `remain` primitives.
//!
//! A [`Batch`] is one item-disjoint segment of the conceptual stream the
//! batched reservoir algorithm (paper Algorithms 4–5) consumes. The join
//! driver produces one batch per input tuple — the delta `ΔJ` of that tuple —
//! without materializing it: [`FnBatch`] wraps a positional accessor closure
//! so that `skip(i)` is a constant number of closure calls, each `O(log N)`
//! inside the index.
//!
//! Positions and sizes are `u128`: a single delta batch over a join with
//! fractional edge cover number `ρ*` can have up to `N^{ρ*}` positions.

/// A finite stream segment supporting positional access.
///
/// The cursor starts before position 0. `next()` returns the item at the
/// cursor and advances; `skip(i)` discards `i` items and returns the
/// `(i+1)`-th, mirroring the paper's primitives exactly.
pub trait Batch {
    /// The item type. For join batches this is `Option<JoinResult>`, where
    /// `None` positions are the dummies introduced by count rounding.
    type Item;

    /// Number of items not yet consumed.
    fn remain(&self) -> u128;

    /// Skips `i` items, then consumes and returns the next one.
    /// Returns `None` iff fewer than `i + 1` items remain (the batch is then
    /// fully consumed).
    fn skip(&mut self, i: u128) -> Option<Self::Item>;

    /// Consumes and returns the next item (`skip(0)`).
    fn next(&mut self) -> Option<Self::Item> {
        self.skip(0)
    }
}

/// A batch over a slice, cloning items out. Mostly used in tests and by the
/// string-stream experiments.
#[derive(Debug)]
pub struct SliceBatch<'a, T: Clone> {
    items: &'a [T],
    pos: usize,
}

impl<'a, T: Clone> SliceBatch<'a, T> {
    /// Wraps a slice as a batch.
    pub fn new(items: &'a [T]) -> Self {
        SliceBatch { items, pos: 0 }
    }
}

impl<T: Clone> Batch for SliceBatch<'_, T> {
    type Item = T;

    fn remain(&self) -> u128 {
        (self.items.len() - self.pos) as u128
    }

    fn skip(&mut self, i: u128) -> Option<T> {
        let r = self.remain();
        if i >= r {
            self.pos = self.items.len();
            return None;
        }
        self.pos += i as usize;
        let item = self.items[self.pos].clone();
        self.pos += 1;
        Some(item)
    }
}

/// A batch defined by a size and a positional accessor.
///
/// This is the adapter the join driver uses: `f(z)` performs a positional
/// `Retrieve` into the dynamic index (paper Algorithm 9) and returns either a
/// real join result or a dummy.
pub struct FnBatch<T, F: FnMut(u128) -> T> {
    size: u128,
    pos: u128,
    f: F,
}

impl<T, F: FnMut(u128) -> T> FnBatch<T, F> {
    /// Creates a batch of `size` positions backed by accessor `f`.
    pub fn new(size: u128, f: F) -> Self {
        FnBatch { size, pos: 0, f }
    }

    /// Total size of the batch (consumed or not).
    pub fn size(&self) -> u128 {
        self.size
    }
}

impl<T, F: FnMut(u128) -> T> Batch for FnBatch<T, F> {
    type Item = T;

    fn remain(&self) -> u128 {
        self.size - self.pos
    }

    fn skip(&mut self, i: u128) -> Option<T> {
        if i >= self.remain() {
            self.pos = self.size;
            return None;
        }
        self.pos += i;
        let item = (self.f)(self.pos);
        self.pos += 1;
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_batch_sequential() {
        let data = [1, 2, 3];
        let mut b = SliceBatch::new(&data);
        assert_eq!(b.remain(), 3);
        assert_eq!(b.next(), Some(1));
        assert_eq!(b.next(), Some(2));
        assert_eq!(b.next(), Some(3));
        assert_eq!(b.next(), None);
        assert_eq!(b.remain(), 0);
    }

    #[test]
    fn slice_batch_skip() {
        let data = [10, 20, 30, 40, 50];
        let mut b = SliceBatch::new(&data);
        assert_eq!(b.skip(2), Some(30));
        assert_eq!(b.remain(), 2);
        assert_eq!(b.skip(1), Some(50));
        assert_eq!(b.remain(), 0);
        assert_eq!(b.skip(0), None);
    }

    #[test]
    fn skip_past_end_consumes_all() {
        let data = [1, 2];
        let mut b = SliceBatch::new(&data);
        assert_eq!(b.skip(5), None);
        assert_eq!(b.remain(), 0);
    }

    #[test]
    fn fn_batch_positions() {
        let mut calls = Vec::new();
        {
            let mut b = FnBatch::new(10, |z| {
                calls.push(z);
                z * z
            });
            assert_eq!(b.skip(3), Some(9));
            assert_eq!(b.skip(0), Some(16));
            assert_eq!(b.skip(4), Some(81));
            assert_eq!(b.remain(), 0);
            assert_eq!(b.skip(0), None);
        }
        // Accessor called only at stop positions — that's the whole point.
        assert_eq!(calls, vec![3, 4, 9]);
    }

    #[test]
    fn fn_batch_huge_positions() {
        let size = 1u128 << 100;
        let mut b = FnBatch::new(size, |z| z);
        assert_eq!(b.skip((1u128 << 99) - 1), Some((1u128 << 99) - 1));
        assert_eq!(b.remain(), 1u128 << 99);
    }
}
