//! Property and boundary tests for the reservoir algorithms beyond the
//! in-module unit tests: stop-count bounds against Theorem 3.2's formula,
//! k = 1 analytics, and adversarial real/dummy layouts.

use proptest::prelude::*;
use rsj_stream::{ClassicReservoir, Reservoir, SliceBatch};

/// Theorem 3.2 stop bound: (p-1) + Σ_{i>=p} k/(r_i+1), where p is the
/// first index at which k reals have been seen.
fn theorem_bound(flags: &[bool], k: usize) -> f64 {
    let mut r = 0usize; // reals among the first i-1
    let mut p_reached = false;
    let mut bound = 0.0;
    for &f in flags.iter() {
        if r >= k {
            p_reached = true;
        }
        if p_reached {
            bound += k as f64 / (r as f64 + 1.0);
        } else {
            bound += 1.0;
        }
        if f {
            r += 1;
        }
    }
    bound
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Measured stops stay within a constant factor of the Theorem 3.2
    /// expectation (averaged across seeds to tame variance).
    #[test]
    fn stops_match_theorem_bound(
        density_pct in 5u32..100,
        k in 1usize..8,
    ) {
        let n = 4000;
        // Periodic real pattern at the given density.
        let flags: Vec<bool> = (0..n)
            .map(|i| (i as u32 * density_pct) % 100 < density_pct)
            .collect();
        let items: Vec<(u64, bool)> = flags
            .iter()
            .enumerate()
            .map(|(i, &f)| (i as u64, f))
            .collect();
        let expected = theorem_bound(&flags, k);
        let seeds = 12;
        let mut total = 0u64;
        for seed in 0..seeds {
            let mut r = Reservoir::new(k, seed);
            let mut b = SliceBatch::new(&items);
            r.process_batch(&mut b, |(x, f)| f.then_some(x));
            total += r.stops();
        }
        let mean = total as f64 / seeds as f64;
        prop_assert!(
            mean < 6.0 * expected + 50.0,
            "mean stops {mean} ≫ bound {expected}"
        );
    }

    /// k=1 inclusion: the last real item is sampled with probability
    /// 1/#reals — spot-check the frequency.
    #[test]
    fn k1_last_item_frequency(reals in 2usize..30) {
        let items: Vec<u64> = (0..reals as u64).collect();
        let trials = 3000u64;
        let mut hits = 0u64;
        for seed in 0..trials {
            let mut r = Reservoir::new(1, seed);
            let mut b = SliceBatch::new(&items);
            r.process_batch(&mut b, Some);
            if r.samples()[0] == (reals as u64 - 1) {
                hits += 1;
            }
        }
        let f = hits as f64 / trials as f64;
        let expect = 1.0 / reals as f64;
        prop_assert!(
            (f - expect).abs() < 0.05 + expect,
            "freq {f} vs {expect}"
        );
    }
}

#[test]
fn adversarial_real_at_the_very_end_of_many_batches() {
    // Dummy-only batches forever, then one real item in the last batch —
    // it must always be captured (can't be skipped past).
    for seed in 0..100 {
        let mut r: Reservoir<u64> = Reservoir::new(2, seed);
        for _ in 0..50 {
            let dummies: Vec<(u64, bool)> = (0..37).map(|i| (i, false)).collect();
            let mut b = SliceBatch::new(&dummies);
            r.process_batch(&mut b, |(x, f)| f.then_some(x));
        }
        let last = vec![(999u64, true)];
        let mut b = SliceBatch::new(&last);
        r.process_batch(&mut b, |(x, f)| f.then_some(x));
        assert_eq!(r.samples(), &[999], "seed {seed}");
    }
}

#[test]
fn alternating_fill_and_drain_batches() {
    // Alternate dense and empty batches; reservoir stays valid throughout.
    let mut r: Reservoir<u64> = Reservoir::new(5, 3);
    let mut next_id = 0u64;
    for round in 0..30 {
        let n = if round % 2 == 0 { 100 } else { 0 };
        let items: Vec<u64> = (0..n).map(|i| next_id + i).collect();
        next_id += n;
        let mut b = SliceBatch::new(&items);
        r.process_batch(&mut b, Some);
        assert!(r.samples().len() <= 5);
        for &s in r.samples() {
            assert!(s < next_id);
        }
    }
    assert_eq!(r.samples().len(), 5);
}

#[test]
fn classic_reservoir_huge_seen_count() {
    // seen is u128; push past u32 range cheaply by offering in a loop with
    // a small reservoir — sanity that nothing overflows and frequency of
    // retention drops.
    let mut r = ClassicReservoir::new(1, 9);
    for x in 0..200_000u64 {
        r.offer(x);
    }
    assert_eq!(r.seen(), 200_000);
    assert_eq!(r.samples().len(), 1);
}

#[test]
fn stops_scale_logarithmically_in_stream_length() {
    // Doubling N adds ~k ln 2 stops, not 2x stops.
    let run = |n: u64| {
        let items: Vec<u64> = (0..n).collect();
        let mut total = 0u64;
        for seed in 0..8 {
            let mut r = Reservoir::new(50, seed);
            let mut b = SliceBatch::new(&items);
            r.process_batch(&mut b, Some);
            total += r.stops();
        }
        total as f64 / 8.0
    };
    let s1 = run(50_000);
    let s2 = run(100_000);
    assert!(
        s2 - s1 < 200.0,
        "doubling N added {} stops (expected ~{})",
        s2 - s1,
        50.0 * std::f64::consts::LN_2
    );
}
