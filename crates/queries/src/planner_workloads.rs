//! Plan-sensitive workloads: query/data shapes where the cost-based
//! planner's choices (join tree, sampling root, partition attribute)
//! actually change the measured cost.
//!
//! The paper's graph workloads are symmetric — every relation streams the
//! same edge set — so the canonical orientation is as good as any. These
//! three break the symmetry on purpose:
//!
//! * [`snowflake`] — a fact table with two dimension chains of very
//!   different depth and skew; the join tree is *unique*, so everything the
//!   planner can win here is in the **root** choice (rounding slack
//!   concentrates at the skewed fact keys).
//! * [`self_join_line`] — a line-k self-join over a graph with Zipf-skewed
//!   sources but uniform destinations; again a unique tree, with key skew
//!   rising monotonically along the chain.
//! * [`skewed_star`] — a star-k whose relations have wildly different
//!   cardinalities and hub skew; the star has `k^(k-2)` candidate join
//!   trees, so this is where **tree** choice matters.

use crate::Workload;
use rsj_common::rng::RsjRng;
use rsj_common::Value;
use rsj_datagen::graph::{stream_from_edges, Zipf};
use rsj_query::{FkSchema, QueryBuilder};
use rsj_storage::{InputTuple, TupleStream};

/// Snowflake: `fact(K1, K2, M) ⋈ dim1(K1, D1) ⋈ dim1b(D1, E1) ⋈
/// dim2(K2, D2)`, with Zipf-skewed `K1` on the fact side and a long `dim1`
/// chain. Dimensions are pre-loaded (static, per the §6.1 protocol); facts
/// stream. `scale` is the fact count.
pub fn snowflake(scale: usize, seed: u64) -> Workload {
    let mut qb = QueryBuilder::new();
    qb.relation("fact", &["K1", "K2", "M"]);
    qb.relation("dim1", &["K1", "D1"]);
    qb.relation("dim1b", &["D1", "E1"]);
    qb.relation("dim2", &["K2", "D2"]);
    let query = qb.build().expect("snowflake is well-formed");

    let n_facts = scale.max(8);
    let n_k1 = (n_facts / 8).max(4);
    let n_k2 = (n_facts / 32).max(2);
    let mut rng = RsjRng::seed_from_u64(seed);
    let zipf = Zipf::new(n_k1, 1.1);

    let mut preload = Vec::new();
    for k1 in 0..n_k1 as Value {
        // dim1 fans each K1 out to two D1 values; dim1b chains each D1 on.
        for j in 0..2 {
            let d1 = k1 * 2 + j;
            preload.push(InputTuple::new(1, vec![k1, d1]));
            preload.push(InputTuple::new(2, vec![d1, 1000 + d1]));
        }
    }
    for k2 in 0..n_k2 as Value {
        preload.push(InputTuple::new(3, vec![k2, 5000 + k2]));
    }

    let mut stream = TupleStream::new();
    let mut seen = rsj_common::FxHashSet::default();
    let mut m = 0 as Value;
    while stream.len() < n_facts {
        let k1 = zipf.sample(&mut rng) as Value;
        let k2 = rng.below_u64(n_k2 as u64);
        if seen.insert((k1, k2, m)) {
            stream.push(0, vec![k1, k2, m]);
        }
        m += 1;
    }
    Workload {
        name: "snowflake".to_string(),
        fks: FkSchema::none(query.num_relations()),
        query,
        preload,
        stream,
    }
}

/// Line-k self-join over a graph whose *sources* are Zipf hubs but whose
/// *destinations* are uniform — each logical relation streams the same
/// edge set, and the key skew the planner sees differs per chain position.
/// `scale` is the edge count.
pub fn self_join_line(k: usize, scale: usize, seed: u64) -> Workload {
    assert!(k >= 2);
    // Destinations share the vertex space so chains actually form.
    let edges = skewed_edges(
        scale.max(8),
        (scale / 8).max(4),
        1.2,
        seed,
        DstDomain::Vertices,
    );
    let mut qb = QueryBuilder::new();
    let names: Vec<String> = (0..=k).map(|i| format!("A{i}")).collect();
    for i in 0..k {
        qb.relation(&format!("G{}", i + 1), &[&names[i], &names[i + 1]]);
    }
    let query = qb.build().expect("self-join line is well-formed");
    Workload {
        name: format!("self-line-{k}"),
        fks: FkSchema::none(query.num_relations()),
        query,
        preload: Vec::new(),
        stream: stream_from_edges(&edges, k, seed ^ 0x11fe_5eed),
    }
}

/// Star-k with wildly asymmetric petals: relation `G1` streams the full
/// hub-skewed edge set, and each later relation streams a geometrically
/// smaller subset. Every spanning tree of the relation clique is a valid
/// join tree here, so this is the workload where the planner's *tree*
/// choice (who sits next to whom) is measurable. `scale` is `G1`'s edge
/// count.
pub fn skewed_star(k: usize, scale: usize, seed: u64) -> Workload {
    assert!(k >= 3);
    // Petals only join on the hub; fresh per-edge destinations keep the
    // B-columns near-distinct.
    let full = skewed_edges(
        scale.max(16),
        (scale / 16).max(4),
        1.1,
        seed,
        DstDomain::Fresh,
    );
    let mut qb = QueryBuilder::new();
    for i in 0..k {
        qb.relation(&format!("G{}", i + 1), &["HUB", &format!("B{}", i + 1)]);
    }
    let query = qb.build().expect("skewed star is well-formed");
    let mut stream = TupleStream::new();
    let mut len = full.len();
    for rel in 0..k {
        for &(s, t) in &full[..len] {
            stream.push(rel, vec![s, t]);
        }
        // Each petal a quarter the size of the previous one.
        len = (len / 4).max(2);
    }
    let mut rng = RsjRng::seed_from_u64(seed ^ 0x5742_7374);
    stream.shuffle(&mut rng);
    Workload {
        name: format!("skewed-star-{k}"),
        fks: FkSchema::none(query.num_relations()),
        query,
        preload: Vec::new(),
        stream,
    }
}

/// Where [`skewed_edges`] draws destination endpoints.
#[derive(Clone, Copy)]
enum DstDomain {
    /// Uniform over the same vertex space as the sources — edges chain.
    Vertices,
    /// A disjoint wide range — destinations are near-distinct payload.
    Fresh,
}

/// Distinct directed edges with Zipf-distributed sources — asymmetric
/// per-column skew, unlike [`rsj_datagen::GraphConfig`]'s symmetric
/// endpoints.
fn skewed_edges(
    edges: usize,
    nodes: usize,
    zipf: f64,
    seed: u64,
    dst: DstDomain,
) -> Vec<(Value, Value)> {
    let mut rng = RsjRng::seed_from_u64(seed);
    let z = Zipf::new(nodes, zipf);
    let mut seen = rsj_common::FxHashSet::default();
    let mut out = Vec::with_capacity(edges);
    let fresh_domain = (edges as u64 * 2).max(4);
    let mut attempts = 0usize;
    while out.len() < edges && attempts < edges * 200 + 1000 {
        attempts += 1;
        let s = z.sample(&mut rng) as Value;
        let t = match dst {
            DstDomain::Vertices => rng.below_u64(nodes as u64),
            DstDomain::Fresh => nodes as Value + rng.below_u64(fresh_domain),
        };
        if seen.insert((s, t)) {
            out.push((s, t));
        }
    }
    assert_eq!(out.len(), edges, "could not place {edges} distinct edges");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_query::{all_join_trees, JoinTree};

    #[test]
    fn snowflake_shape() {
        let w = snowflake(256, 7);
        assert!(JoinTree::build(&w.query).is_some());
        assert_eq!(all_join_trees(&w.query, 64).len(), 1, "unique tree");
        assert!(!w.preload.is_empty());
        assert!(w.stream.len() >= 256);
        // Streamed tuples never hit the static dimensions.
        let static_rels: rsj_common::FxHashSet<usize> =
            w.preload.iter().map(|t| t.relation).collect();
        assert_eq!(static_rels, [1usize, 2, 3].into_iter().collect());
        for t in w.stream.iter() {
            assert_eq!(t.relation, 0);
        }
    }

    #[test]
    fn self_join_line_shape() {
        let w = self_join_line(4, 128, 3);
        assert_eq!(w.query.num_relations(), 4);
        assert_eq!(all_join_trees(&w.query, 64).len(), 1, "unique tree");
        assert_eq!(w.stream.len(), 128 * 4);
    }

    #[test]
    fn skewed_star_shape() {
        let w = skewed_star(4, 256, 5);
        assert_eq!(all_join_trees(&w.query, 64).len(), 16, "16 trees on K4");
        // Petal sizes shrink geometrically.
        let mut per_rel = [0usize; 4];
        for t in w.stream.iter() {
            per_rel[t.relation] += 1;
        }
        assert_eq!(per_rel[0], 256);
        assert!(per_rel[1] < per_rel[0] && per_rel[2] < per_rel[1]);
    }

    #[test]
    fn workloads_are_deterministic() {
        for (a, b) in [
            (snowflake(64, 9), snowflake(64, 9)),
            (self_join_line(3, 64, 9), self_join_line(3, 64, 9)),
            (skewed_star(3, 64, 9), skewed_star(3, 64, 9)),
        ] {
            assert_eq!(a.stream.tuples(), b.stream.tuples(), "{}", a.name);
            assert_eq!(a.preload, b.preload, "{}", a.name);
        }
    }
}
