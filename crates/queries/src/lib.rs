#![warn(missing_docs)]

//! The paper's benchmark queries (§6.1 and Appendix A), packaged as
//! runnable workloads.
//!
//! A [`Workload`] bundles a query, its foreign-key metadata, the pre-loaded
//! tuples (static dimension tables, per §6.1), and the shuffled input
//! stream. Graph queries (line-k, star-k, dumbbell) stream one shuffled
//! copy of the edge set per logical relation; relational queries (QX, QY,
//! QZ over `tpcds-lite`, Q10 over `ldbc-lite`) pre-load the small static
//! tables and stream the rest.

pub mod graph_queries;
pub mod planner_workloads;
pub mod relational;

pub use graph_queries::{dumbbell, line_k, star_k};
pub use planner_workloads::{self_join_line, skewed_star, snowflake};
pub use relational::{q10, qx, qy, qz};

use rsj_query::{FkSchema, Query};
use rsj_storage::{InputTuple, TupleStream};

/// A fully wired benchmark workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name (`"line-3"`, `"QZ"`, ...).
    pub name: String,
    /// The join query.
    pub query: Query,
    /// Primary-key metadata (empty for graph queries).
    pub fks: FkSchema,
    /// Tuples loaded before the clock starts (static dimension tables).
    pub preload: Vec<InputTuple>,
    /// The timed input stream.
    pub stream: TupleStream,
}

impl Workload {
    /// Total input size `N` (preload + stream).
    pub fn total_tuples(&self) -> usize {
        self.preload.len() + self.stream.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_datagen::{GraphConfig, LdbcLite, TpcdsLite};

    fn small_graph() -> Vec<(u64, u64)> {
        GraphConfig {
            nodes: 60,
            edges: 200,
            zipf: 0.8,
            seed: 1,
        }
        .generate()
    }

    #[test]
    fn all_graph_workloads_build_and_are_acyclic_or_cyclic_as_expected() {
        let edges = small_graph();
        for k in 3..=5 {
            let w = line_k(k, &edges, 1);
            assert!(rsj_query::JoinTree::build(&w.query).is_some(), "line-{k}");
            assert_eq!(w.stream.len(), edges.len() * k);
        }
        for k in 4..=6 {
            let w = star_k(k, &edges, 1);
            assert!(rsj_query::JoinTree::build(&w.query).is_some(), "star-{k}");
        }
        let d = dumbbell(&edges, 1);
        assert!(
            rsj_query::JoinTree::build(&d.query).is_none(),
            "dumbbell cyclic"
        );
        assert_eq!(d.stream.len(), edges.len() * 7);
    }

    #[test]
    fn relational_workloads_build() {
        let t = TpcdsLite::generate(1, 2);
        for (w, expected_rewritten) in [(qx(&t, 3), 2), (qy(&t, 3), 2), (qz(&t, 3), 3)] {
            assert!(
                rsj_query::JoinTree::build(&w.query).is_some(),
                "{} must be acyclic",
                w.name
            );
            let plan = rsj_query::CombinePlan::build(&w.query, &w.fks)
                .expect("workload fks are well-formed");
            assert_eq!(
                plan.rewritten.num_relations(),
                expected_rewritten,
                "{} rewrite",
                w.name
            );
            assert!(!w.preload.is_empty());
            assert!(!w.stream.is_empty());
        }
        let l = LdbcLite::generate(1, 2);
        let w = q10(&l, 3);
        assert!(
            rsj_query::JoinTree::build(&w.query).is_some(),
            "Q10 acyclic"
        );
        let plan =
            rsj_query::CombinePlan::build(&w.query, &w.fks).expect("workload fks are well-formed");
        assert!(
            plan.rewritten.num_relations() <= 4,
            "Q10 rewrite got {} relations",
            plan.rewritten.num_relations()
        );
    }

    #[test]
    fn preloaded_relations_are_static_in_stream() {
        // No streamed tuple may target a relation that appears in preload
        // for relational workloads built per §6.1 (static tables fully
        // pre-loaded).
        let t = TpcdsLite::generate(1, 4);
        let w = qz(&t, 5);
        let static_rels: rsj_common::FxHashSet<usize> =
            w.preload.iter().map(|t| t.relation).collect();
        for s in w.stream.iter() {
            assert!(
                !static_rels.contains(&s.relation),
                "streamed tuple into static relation {}",
                s.relation
            );
        }
    }
}
