//! Relational benchmark queries: QX, QY, QZ (TPC-DS) and Q10 (LDBC-SNB),
//! from the paper's Appendix A.
//!
//! Attribute naming encodes the SQL equi-join predicates as natural joins;
//! table aliases (`d1`/`d2`, `c1`/`c2`, `i1`/`i2`, `Tag1`/`Tag2`, ...)
//! become distinct relations fed from the same generated table. Primary
//! keys are declared exactly where TPC-DS/LDBC declare them, which is what
//! the `_opt` variants' foreign-key rewrite consumes. Static dimension
//! tables are pre-loaded; the rest stream in shuffled order (§6.1).

use crate::Workload;
use rsj_common::rng::RsjRng;
use rsj_datagen::{LdbcLite, TpcdsLite};
use rsj_query::{FkSchema, QueryBuilder};
use rsj_storage::{InputTuple, TupleStream};

fn shuffled(mut tuples: Vec<InputTuple>, seed: u64) -> TupleStream {
    let mut stream = TupleStream::from_vec(std::mem::take(&mut tuples));
    let mut rng = RsjRng::seed_from_u64(seed);
    stream.shuffle(&mut rng);
    stream
}

/// QX: `store_sales ⋈ store_returns ⋈ catalog_sales ⋈ date_dim d1 ⋈
/// date_dim d2`.
///
/// Relations: 0 = store_sales, 1 = store_returns, 2 = catalog_sales,
/// 3 = d1, 4 = d2. Pre-loaded: d1, d2.
pub fn qx(data: &TpcdsLite, seed: u64) -> Workload {
    let mut qb = QueryBuilder::new();
    let ss = qb.relation("store_sales", &["ITEM", "TICKET", "SS_CUST", "D1"]);
    let sr = qb.relation("store_returns", &["ITEM", "TICKET", "CUST"]);
    let cs = qb.relation("catalog_sales", &["CUST", "D2"]);
    let d1 = qb.relation("d1", &["D1"]);
    let d2 = qb.relation("d2", &["D2"]);
    let query = qb.build().expect("QX is well-formed");
    // Attr ids by interning order: ITEM=0, TICKET=1, SS_CUST=2, D1=3,
    // CUST=4, D2=5.
    let fks = FkSchema::none(query.num_relations())
        .with_pk(sr, vec![0, 1])
        .with_pk(d1, vec![3])
        .with_pk(d2, vec![5]);
    let mut preload = Vec::new();
    for d in &data.date_dim {
        preload.push(InputTuple::new(d1, vec![d[0]]));
        preload.push(InputTuple::new(d2, vec![d[0]]));
    }
    let mut dynamic = Vec::new();
    for s in &data.store_sales {
        dynamic.push(InputTuple::new(ss, vec![s[0], s[1], s[2], s[3]]));
    }
    for r in &data.store_returns {
        dynamic.push(InputTuple::new(sr, vec![r[0], r[1], r[2]]));
    }
    for c in &data.catalog_sales {
        dynamic.push(InputTuple::new(cs, vec![c[0], c[1]]));
    }
    Workload {
        name: "QX".to_string(),
        query,
        fks,
        preload,
        stream: shuffled(dynamic, seed),
    }
}

/// QY: `store_sales ⋈ customer c1 ⋈ household_demographics d1 ⋈
/// household_demographics d2 ⋈ customer c2`, linked through
/// `hd_income_band_sk`.
///
/// Relations: 0 = store_sales, 1 = c1, 2 = d1, 3 = d2, 4 = c2.
/// Pre-loaded: d1, d2 (household_demographics is static per §6.1).
pub fn qy(data: &TpcdsLite, seed: u64) -> Workload {
    let mut qb = QueryBuilder::new();
    let ss = qb.relation("store_sales", &["SS_ITEM", "TICKET", "CUST1", "SS_DATE"]);
    let c1 = qb.relation("c1", &["CUST1", "HD1"]);
    let d1 = qb.relation("d1", &["HD1", "IB"]);
    let d2 = qb.relation("d2", &["HD2", "IB"]);
    let c2 = qb.relation("c2", &["CUST2", "HD2"]);
    let query = qb.build().expect("QY is well-formed");
    // Attr ids: SS_ITEM=0, TICKET=1, CUST1=2, SS_DATE=3, HD1=4, IB=5,
    // HD2=6, CUST2=7.
    let fks = FkSchema::none(query.num_relations())
        .with_pk(c1, vec![2])
        .with_pk(d1, vec![4])
        .with_pk(d2, vec![6])
        .with_pk(c2, vec![7]);
    let mut preload = Vec::new();
    for h in &data.household_demographics {
        preload.push(InputTuple::new(d1, vec![h[0], h[1]]));
        preload.push(InputTuple::new(d2, vec![h[0], h[1]]));
    }
    let mut dynamic = Vec::new();
    for s in &data.store_sales {
        dynamic.push(InputTuple::new(ss, vec![s[0], s[1], s[2], s[3]]));
    }
    for c in &data.customer {
        dynamic.push(InputTuple::new(c1, vec![c[0], c[1]]));
        dynamic.push(InputTuple::new(c2, vec![c[0], c[1]]));
    }
    Workload {
        name: "QY".to_string(),
        query,
        fks,
        preload,
        stream: shuffled(dynamic, seed),
    }
}

/// QZ: QY plus the item self-pairing through `i_category_id`.
///
/// Relations: 0 = store_sales, 1 = c1, 2 = d1, 3 = d2, 4 = c2, 5 = i1,
/// 6 = i2. Pre-loaded: d1, d2.
pub fn qz(data: &TpcdsLite, seed: u64) -> Workload {
    let mut qb = QueryBuilder::new();
    let ss = qb.relation("store_sales", &["ITEM1", "TICKET", "CUST1", "SS_DATE"]);
    let c1 = qb.relation("c1", &["CUST1", "HD1"]);
    let d1 = qb.relation("d1", &["HD1", "IB"]);
    let d2 = qb.relation("d2", &["HD2", "IB"]);
    let c2 = qb.relation("c2", &["CUST2", "HD2"]);
    let i1 = qb.relation("i1", &["ITEM1", "CAT"]);
    let i2 = qb.relation("i2", &["ITEM2", "CAT"]);
    let query = qb.build().expect("QZ is well-formed");
    // Attr ids: ITEM1=0, TICKET=1, CUST1=2, SS_DATE=3, HD1=4, IB=5, HD2=6,
    // CUST2=7, CAT=8, ITEM2=9.
    let fks = FkSchema::none(query.num_relations())
        .with_pk(c1, vec![2])
        .with_pk(d1, vec![4])
        .with_pk(d2, vec![6])
        .with_pk(c2, vec![7])
        .with_pk(i1, vec![0])
        .with_pk(i2, vec![9]);
    let mut preload = Vec::new();
    for h in &data.household_demographics {
        preload.push(InputTuple::new(d1, vec![h[0], h[1]]));
        preload.push(InputTuple::new(d2, vec![h[0], h[1]]));
    }
    let mut dynamic = Vec::new();
    for s in &data.store_sales {
        dynamic.push(InputTuple::new(ss, vec![s[0], s[1], s[2], s[3]]));
    }
    for c in &data.customer {
        dynamic.push(InputTuple::new(c1, vec![c[0], c[1]]));
        dynamic.push(InputTuple::new(c2, vec![c[0], c[1]]));
    }
    for i in &data.item {
        dynamic.push(InputTuple::new(i1, vec![i[0], i[1]]));
        dynamic.push(InputTuple::new(i2, vec![i[0], i[1]]));
    }
    Workload {
        name: "QZ".to_string(),
        query,
        fks,
        preload,
        stream: shuffled(dynamic, seed),
    }
}

/// Q10 from the LDBC-SNB Business Intelligence workload.
///
/// Relations: 0 = Message, 1 = HasTag1, 2 = Tag1, 3 = HasTag2, 4 = Tag2,
/// 5 = TagClass, 6 = Person1, 7 = City, 8 = Country, 9 = Knows,
/// 10 = Person2. Pre-loaded: Tag1, Tag2, TagClass, City, Country.
pub fn q10(data: &LdbcLite, seed: u64) -> Workload {
    let mut qb = QueryBuilder::new();
    let message = qb.relation("Message", &["MSG", "P1"]);
    let has_tag1 = qb.relation("HasTag1", &["MSG", "TAG1"]);
    let tag1 = qb.relation("Tag1", &["TAG1", "TAG1_CLASS"]);
    let has_tag2 = qb.relation("HasTag2", &["MSG", "TAG2"]);
    let tag2 = qb.relation("Tag2", &["TAG2", "TC"]);
    let tag_class = qb.relation("TagClass", &["TC"]);
    let person1 = qb.relation("Person1", &["P1", "CITY"]);
    let city = qb.relation("City", &["CITY", "CTRY"]);
    let country = qb.relation("Country", &["CTRY"]);
    let knows = qb.relation("Knows", &["P1", "P2"]);
    let person2 = qb.relation("Person2", &["P2", "P2_CITY"]);
    let query = qb.build().expect("Q10 is well-formed");
    // Attr ids: MSG=0, P1=1, TAG1=2, TAG1_CLASS=3, TAG2=4, TC=5, CITY=6,
    // CTRY=7, P2=8, P2_CITY=9.
    let fks = FkSchema::none(query.num_relations())
        .with_pk(message, vec![0])
        .with_pk(tag1, vec![2])
        .with_pk(tag2, vec![4])
        .with_pk(tag_class, vec![5])
        .with_pk(person1, vec![1])
        .with_pk(city, vec![6])
        .with_pk(country, vec![7])
        .with_pk(person2, vec![8]);
    let mut preload = Vec::new();
    for t in &data.tag {
        preload.push(InputTuple::new(tag1, vec![t[0], t[1]]));
        preload.push(InputTuple::new(tag2, vec![t[0], t[1]]));
    }
    for tc in &data.tag_class {
        preload.push(InputTuple::new(tag_class, vec![tc[0]]));
    }
    for c in &data.city {
        preload.push(InputTuple::new(city, vec![c[0], c[1]]));
    }
    for c in &data.country {
        preload.push(InputTuple::new(country, vec![c[0]]));
    }
    let mut dynamic = Vec::new();
    for m in &data.message {
        dynamic.push(InputTuple::new(message, vec![m[0], m[1]]));
    }
    for h in &data.has_tag {
        dynamic.push(InputTuple::new(has_tag1, vec![h[0], h[1]]));
        dynamic.push(InputTuple::new(has_tag2, vec![h[0], h[1]]));
    }
    for p in &data.person {
        dynamic.push(InputTuple::new(person1, vec![p[0], p[1]]));
        dynamic.push(InputTuple::new(person2, vec![p[0], p[1]]));
    }
    for k in &data.knows {
        dynamic.push(InputTuple::new(knows, vec![k[0], k[1]]));
    }
    Workload {
        name: "Q10".to_string(),
        query,
        fks,
        preload,
        stream: shuffled(dynamic, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qx_rewrite_shape() {
        let data = TpcdsLite::generate(1, 1);
        let w = qx(&data, 2);
        let plan =
            rsj_query::CombinePlan::build(&w.query, &w.fks).expect("workload fks are well-formed");
        assert_eq!(plan.rewritten.num_relations(), 2);
        // The surviving relations join on CUST.
        let shared = plan.rewritten.shared_attrs(0, 1);
        let names: Vec<&str> = shared
            .iter()
            .map(|&a| plan.rewritten.attr_name(a))
            .collect();
        assert_eq!(names, vec!["CUST"]);
    }

    #[test]
    fn qy_rewrite_joins_on_income_band() {
        let data = TpcdsLite::generate(1, 1);
        let w = qy(&data, 2);
        let plan =
            rsj_query::CombinePlan::build(&w.query, &w.fks).expect("workload fks are well-formed");
        assert_eq!(plan.rewritten.num_relations(), 2);
        let shared = plan.rewritten.shared_attrs(0, 1);
        let names: Vec<&str> = shared
            .iter()
            .map(|&a| plan.rewritten.attr_name(a))
            .collect();
        assert_eq!(names, vec!["IB"]);
    }

    #[test]
    fn qz_rewrite_three_relations() {
        let data = TpcdsLite::generate(1, 1);
        let w = qz(&data, 2);
        let plan =
            rsj_query::CombinePlan::build(&w.query, &w.fks).expect("workload fks are well-formed");
        assert_eq!(plan.rewritten.num_relations(), 3);
    }

    #[test]
    fn q10_query_is_acyclic_and_rewrites_small() {
        let data = LdbcLite::generate(1, 1);
        let w = q10(&data, 2);
        assert!(rsj_query::JoinTree::build(&w.query).is_some());
        let plan =
            rsj_query::CombinePlan::build(&w.query, &w.fks).expect("workload fks are well-formed");
        assert!(plan.rewritten.num_relations() <= 4);
        // Knows cannot be absorbed (P1 is not its key), so it survives.
        assert!(plan
            .rewritten
            .relations()
            .iter()
            .any(|r| r.name.contains("Knows")));
    }

    #[test]
    fn stream_sizes_match_generators() {
        let data = TpcdsLite::generate(1, 5);
        let w = qy(&data, 6);
        assert_eq!(
            w.stream.len(),
            data.store_sales.len() + 2 * data.customer.len()
        );
        assert_eq!(w.preload.len(), 2 * data.household_demographics.len());
    }
}
