//! Graph benchmark queries: line-k, star-k, dumbbell (paper Appendix A).
//!
//! Each logical relation is a full copy of the edge table `G(src, dst)`;
//! the natural-join attribute naming encodes the SQL `WHERE` clauses:
//! line-k chains `dst = src`, star-k shares the hub `src`, and the dumbbell
//! glues two triangles through a bridge edge.

use crate::Workload;
use rsj_common::Value;
use rsj_datagen::graph::stream_from_edges;
use rsj_query::{FkSchema, QueryBuilder};

/// Line-k: paths of length `k`
/// (`G1.dst = G2.src AND G2.dst = G3.src ...`).
pub fn line_k(k: usize, edges: &[(Value, Value)], seed: u64) -> Workload {
    assert!(k >= 2);
    let mut qb = QueryBuilder::new();
    let names: Vec<String> = (0..=k).map(|i| format!("A{i}")).collect();
    for i in 0..k {
        qb.relation(&format!("G{}", i + 1), &[&names[i], &names[i + 1]]);
    }
    let query = qb.build().expect("line-k is well-formed");
    Workload {
        name: format!("line-{k}"),
        fks: FkSchema::none(query.num_relations()),
        query,
        preload: Vec::new(),
        stream: stream_from_edges(edges, k, seed),
    }
}

/// Star-k: `k` edges sharing a source vertex
/// (`G1.src = G2.src = ... = Gk.src`).
pub fn star_k(k: usize, edges: &[(Value, Value)], seed: u64) -> Workload {
    assert!(k >= 2);
    let mut qb = QueryBuilder::new();
    for i in 0..k {
        qb.relation(&format!("G{}", i + 1), &["HUB", &format!("B{}", i + 1)]);
    }
    let query = qb.build().expect("star-k is well-formed");
    Workload {
        name: format!("star-{k}"),
        fks: FkSchema::none(query.num_relations()),
        query,
        preload: Vec::new(),
        stream: stream_from_edges(edges, k, seed),
    }
}

/// The dumbbell: two triangles connected by a bridge edge (paper Figure 4).
/// Cyclic — requires the GHD driver.
pub fn dumbbell(edges: &[(Value, Value)], seed: u64) -> Workload {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["x1", "x2"]);
    qb.relation("G2", &["x1", "x3"]);
    qb.relation("G3", &["x2", "x3"]);
    qb.relation("G4", &["x5", "x6"]);
    qb.relation("G5", &["x4", "x5"]);
    qb.relation("G6", &["x4", "x6"]);
    qb.relation("G7", &["x3", "x4"]);
    let query = qb.build().expect("dumbbell is well-formed");
    Workload {
        name: "dumbbell".to_string(),
        fks: FkSchema::none(query.num_relations()),
        query,
        preload: Vec::new(),
        stream: stream_from_edges(edges, 7, seed),
    }
}

/// The canonical GHD grouping for the dumbbell: left triangle, bridge,
/// right triangle (width 1.5).
pub fn dumbbell_ghd_groups() -> Vec<Vec<usize>> {
    vec![vec![0, 1, 2], vec![6], vec![3, 4, 5]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_k_attr_chain() {
        let edges = vec![(1, 2), (2, 3)];
        let w = line_k(3, &edges, 1);
        assert_eq!(w.query.num_relations(), 3);
        assert_eq!(w.query.num_attrs(), 4);
        // Consecutive relations share exactly one attribute.
        assert_eq!(w.query.shared_attrs(0, 1).len(), 1);
        assert_eq!(w.query.shared_attrs(1, 2).len(), 1);
        assert!(w.query.shared_attrs(0, 2).is_empty());
    }

    #[test]
    fn star_k_hub_shared_by_all() {
        let edges = vec![(1, 2)];
        let w = star_k(5, &edges, 1);
        for i in 1..5 {
            assert_eq!(w.query.shared_attrs(0, i).len(), 1);
        }
        assert_eq!(w.query.num_attrs(), 6);
    }

    #[test]
    fn dumbbell_ghd_groups_valid() {
        let edges = vec![(1, 2)];
        let w = dumbbell(&edges, 1);
        let ghd = rsj_query::Ghd::manual(&w.query, &dumbbell_ghd_groups()).unwrap();
        assert!((ghd.width() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn stream_deterministic() {
        let edges = vec![(1, 2), (3, 4), (5, 6)];
        let a = line_k(3, &edges, 9);
        let b = line_k(3, &edges, 9);
        assert_eq!(a.stream.tuples(), b.stream.tuples());
    }
}
