//! Extra cyclic-driver coverage: 4-cycles, five-cycles through manual
//! GHDs, and stress randomization against brute force.

use rsj_common::rng::RsjRng;
use rsj_common::FxHashSet;
use rsj_core::CyclicReservoirJoin;
use rsj_query::{Ghd, QueryBuilder};

fn cycle4_query() -> rsj_query::Query {
    let mut qb = QueryBuilder::new();
    qb.relation("R1", &["A", "B"]);
    qb.relation("R2", &["B", "C"]);
    qb.relation("R3", &["C", "D"]);
    qb.relation("R4", &["D", "A"]);
    qb.build().unwrap()
}

fn brute_cycle4(edges: &[FxHashSet<(u64, u64)>; 4]) -> FxHashSet<(u64, u64, u64, u64)> {
    let mut out = FxHashSet::default();
    for &(a, b) in &edges[0] {
        for &(b2, c) in &edges[1] {
            if b != b2 {
                continue;
            }
            for &(c2, d) in &edges[2] {
                if c != c2 {
                    continue;
                }
                if edges[3].contains(&(d, a)) {
                    out.insert((a, b, c, d));
                }
            }
        }
    }
    out
}

#[test]
fn cycle4_collects_exactly_brute_force() {
    let q = cycle4_query();
    for seed in 0..3u64 {
        let mut rng = RsjRng::seed_from_u64(seed);
        let mut crj = CyclicReservoirJoin::new(q.clone(), 1 << 22, seed).unwrap();
        let mut edges: [FxHashSet<(u64, u64)>; 4] = Default::default();
        for _ in 0..300 {
            let rel = rng.index(4);
            let e = (rng.below_u64(8), rng.below_u64(8));
            if edges[rel].insert(e) {
                crj.process(rel, &[e.0, e.1]);
            }
        }
        let truth = brute_cycle4(&edges);
        let q_inner = crj.inner().index().query().clone();
        let pos = |n: &str| q_inner.attr_names().iter().position(|a| a == n).unwrap();
        let (pa, pb, pc, pd) = (pos("A"), pos("B"), pos("C"), pos("D"));
        let got: FxHashSet<(u64, u64, u64, u64)> = crj
            .samples()
            .iter()
            .map(|s| (s[pa], s[pb], s[pc], s[pd]))
            .collect();
        assert_eq!(got, truth, "seed {seed}");
        assert_eq!(got.len(), crj.samples().len(), "no duplicates");
    }
}

#[test]
fn manual_ghd_matches_searched_ghd_results() {
    let q = cycle4_query();
    // Manual decomposition: {R1,R2} and {R3,R4}.
    let ghd = Ghd::manual(&q, &[vec![0, 1], vec![2, 3]]).unwrap();
    let mut rng = RsjRng::seed_from_u64(5);
    let stream: Vec<(usize, [u64; 2])> = (0..200)
        .map(|_| (rng.index(4), [rng.below_u64(6), rng.below_u64(6)]))
        .collect();
    let run = |ghd: Option<Ghd>| {
        let mut crj = match ghd {
            Some(g) => CyclicReservoirJoin::with_ghd(q.clone(), g, 1 << 22, 1).unwrap(),
            None => CyclicReservoirJoin::new(q.clone(), 1 << 22, 1).unwrap(),
        };
        for (rel, t) in &stream {
            crj.process(*rel, t);
        }
        let mut named = crj.sample_named();
        named.sort();
        named
    };
    assert_eq!(run(Some(ghd)), run(None));
}

#[test]
fn bag_stream_size_respects_agm() {
    // Triangle: simulated bag-tuple count = #triangle closures, bounded by
    // AGM = E^{3/2}.
    let mut qb = QueryBuilder::new();
    qb.relation("R1", &["X", "Y"]);
    qb.relation("R2", &["Y", "Z"]);
    qb.relation("R3", &["Z", "X"]);
    let q = qb.build().unwrap();
    let mut crj = CyclicReservoirJoin::new(q, 10, 1).unwrap();
    let mut rng = RsjRng::seed_from_u64(7);
    let mut inserted = 0u64;
    let mut seen: FxHashSet<(usize, u64, u64)> = FxHashSet::default();
    for _ in 0..600 {
        let rel = rng.index(3);
        let e = (rng.below_u64(20), rng.below_u64(20));
        if seen.insert((rel, e.0, e.1)) {
            inserted += 1;
            crj.process(rel, &[e.0, e.1]);
        }
    }
    let agm = ((inserted as f64).powf(1.5)).ceil() as u64;
    assert!(
        crj.bag_tuples() <= agm,
        "bag tuples {} > AGM {agm}",
        crj.bag_tuples()
    );
}

#[test]
fn cyclic_driver_duplicate_edges_ignored() {
    let mut qb = QueryBuilder::new();
    qb.relation("R1", &["X", "Y"]);
    qb.relation("R2", &["Y", "Z"]);
    qb.relation("R3", &["Z", "X"]);
    let q = qb.build().unwrap();
    let mut crj = CyclicReservoirJoin::new(q, 100, 1).unwrap();
    for _ in 0..3 {
        crj.process(0, &[1, 2]);
        crj.process(1, &[2, 3]);
        crj.process(2, &[3, 1]);
    }
    assert_eq!(crj.samples().len(), 1);
    assert_eq!(crj.bag_tuples(), 1);
}
