//! Exact `|Q(R)|` counting — the shared sidecar behind the sharded merge
//! and the turnstile reservoir repair.
//!
//! Acyclic queries count by one bottom-up message pass over the join tree
//! (`O(N)` with hashing); queries without a join tree fall back to
//! backtracking enumeration. Two frontends share the walk:
//!
//! * [`exact_result_count`] counts directly over a [`Database`] (live
//!   tuples only — tombstones are skipped), used by `ReservoirJoin`'s
//!   deletion repair to recalibrate the reservoir against the exact live
//!   population;
//! * `JoinCounter` (crate-internal, used by the sharded workers) owns its
//!   tuple sets — the workers have no relation access through the
//!   `JoinSampler` interface — and counts on demand, with deletions
//!   removing from the sets.

use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::{FxHashMap, FxHashSet, Value};
use rsj_query::{JoinTree, Query};
use rsj_storage::Database;

/// The rooted message-passing schedule for acyclic counting.
pub(crate) struct CountPlan {
    /// BFS order from the root (parents before children); counting walks it
    /// in reverse.
    order: Vec<usize>,
    parent: Vec<Option<usize>>,
    /// Per relation: schema positions projecting onto the attributes shared
    /// with its parent.
    up: Vec<Vec<usize>>,
    /// Per relation: for each child, `(child, schema positions)` projecting
    /// onto the same shared attributes in the same order as the child's
    /// `up` projection.
    down: Vec<Vec<(usize, Vec<usize>)>>,
}

impl CountPlan {
    pub(crate) fn new(query: &Query, tree: &JoinTree) -> CountPlan {
        let n = query.num_relations();
        let mut parent = vec![None; n];
        let mut order = vec![0usize];
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut i = 0;
        while i < order.len() {
            let r = order[i];
            i += 1;
            for &c in tree.neighbors(r) {
                if !seen[c] {
                    seen[c] = true;
                    parent[c] = Some(r);
                    order.push(c);
                }
            }
        }
        let mut up = vec![Vec::new(); n];
        let mut down = vec![Vec::new(); n];
        for c in 0..n {
            if let Some(p) = parent[c] {
                let ids = query.shared_attrs(c, p);
                up[c] = ids
                    .iter()
                    .map(|&a| query.relation(c).position_of(a).expect("shared attr"))
                    .collect();
                down[p].push((
                    c,
                    ids.iter()
                        .map(|&a| query.relation(p).position_of(a).expect("shared attr"))
                        .collect(),
                ));
            }
        }
        CountPlan {
            order,
            parent,
            up,
            down,
        }
    }

    /// One bottom-up message pass; `tuples_of(rel)` yields the live tuples
    /// of each relation.
    fn count<'a>(
        &self,
        n: usize,
        tuples_of: impl Fn(usize) -> Box<dyn Iterator<Item = &'a [Value]> + 'a>,
    ) -> u128 {
        // msgs[c]: sum of subtree weights of c's tuples, grouped by the
        // projection onto the attributes shared with c's parent.
        let mut msgs: Vec<FxHashMap<Vec<Value>, u128>> = vec![FxHashMap::default(); n];
        let mut total: u128 = 0;
        for &r in self.order.iter().rev() {
            for t in tuples_of(r) {
                let mut w: u128 = 1;
                for (c, pos) in &self.down[r] {
                    let key: Vec<Value> = pos.iter().map(|&p| t[p]).collect();
                    match msgs[*c].get(&key) {
                        Some(&s) => w = w.saturating_mul(s),
                        None => {
                            w = 0;
                            break;
                        }
                    }
                }
                if w == 0 {
                    continue;
                }
                match self.parent[r] {
                    Some(_) => {
                        let key: Vec<Value> = self.up[r].iter().map(|&p| t[p]).collect();
                        let slot = msgs[r].entry(key).or_insert(0);
                        *slot = slot.saturating_add(w);
                    }
                    None => total = total.saturating_add(w),
                }
            }
        }
        total
    }
}

/// Exact `|Q(R)|` over the live tuples of `db`.
///
/// One `O(N)` join-tree message pass for acyclic queries, backtracking
/// enumeration otherwise. Tombstoned (deleted) tuples are skipped — this is
/// the exact post-delete population the turnstile reservoir repair
/// recalibrates against.
pub fn exact_result_count(query: &Query, db: &Database) -> u128 {
    match JoinTree::build(query) {
        Some(tree) => CountPlan::new(query, &tree).count(query.num_relations(), |r| {
            Box::new(db.relation(r).iter().map(|(_, t)| t))
        }),
        None => {
            let seen: Vec<Vec<Vec<Value>>> = (0..query.num_relations())
                .map(|r| db.relation(r).iter().map(|(_, t)| t.to_vec()).collect())
                .collect();
            count_backtracking(query, &seen, 0, &mut vec![None; query.num_attrs()])
        }
    }
}

/// Exact per-shard result counting: a `Database`-free sidecar that stores
/// the shard's accepted tuples (set semantics) and computes `|Q_i|` on
/// demand.
///
/// The sidecar keeps its own copy of the shard's tuples — roughly
/// doubling per-shard input storage next to the inner engine's — because
/// the `JoinSampler` interface deliberately exposes no relation access;
/// the trade is input-linear memory for an exact merge with any engine.
/// Deletions remove from the sets, so the count stays exact under
/// turnstile streams.
pub(crate) struct JoinCounter {
    query: Query,
    plan: Option<CountPlan>,
    /// Per relation: the distinct tuples currently live.
    seen: Vec<FxHashSet<Vec<Value>>>,
}

impl JoinCounter {
    pub(crate) fn new(query: Query) -> JoinCounter {
        let plan = JoinTree::build(&query).map(|t| CountPlan::new(&query, &t));
        let seen = vec![FxHashSet::default(); query.num_relations()];
        JoinCounter { query, plan, seen }
    }

    /// Accepts one tuple; duplicates are no-ops, mirroring the engines' set
    /// semantics.
    pub(crate) fn insert(&mut self, rel: usize, tuple: Vec<Value>) {
        self.seen[rel].insert(tuple);
    }

    /// Removes one tuple; absent tuples are no-ops (set semantics).
    pub(crate) fn remove(&mut self, rel: usize, tuple: &[Value]) {
        self.seen[rel].remove(tuple);
    }

    /// Serializes the live tuple sets, sorted per relation for a canonical
    /// image. The counting plan is a pure function of the query and is not
    /// serialized.
    pub(crate) fn snapshot_to(&self, enc: &mut Encoder) {
        enc.put_usize(self.seen.len());
        for side in &self.seen {
            let mut tuples: Vec<&Vec<Value>> = side.iter().collect();
            tuples.sort_unstable();
            enc.put_usize(tuples.len());
            for t in tuples {
                enc.put_u64s(t);
            }
        }
    }

    /// Restores the live tuple sets from a [`JoinCounter::snapshot_to`]
    /// image taken over the same query.
    pub(crate) fn restore_from_snapshot(&mut self, dec: &mut Decoder) -> Result<(), CodecError> {
        let seen = Self::decode_live(dec, self.query.num_relations())?;
        self.seen = seen;
        Ok(())
    }

    /// Decodes the per-relation live tuple sets of a counter image without
    /// needing a counter instance — the shard-rebalance replay path reads
    /// old counter images directly.
    pub(crate) fn decode_live(
        dec: &mut Decoder,
        num_relations: usize,
    ) -> Result<Vec<FxHashSet<Vec<Value>>>, CodecError> {
        let nrels = dec.seq_len(1)?;
        if nrels != num_relations {
            return Err(CodecError::Corrupt(
                "counter snapshot relation count mismatch",
            ));
        }
        let mut seen = Vec::with_capacity(nrels);
        for _ in 0..nrels {
            let n = dec.seq_len(1)?;
            let mut side = FxHashSet::default();
            for _ in 0..n {
                if !side.insert(dec.u64s()?) {
                    return Err(CodecError::Corrupt("duplicate tuple in counter snapshot"));
                }
            }
            seen.push(side);
        }
        Ok(seen)
    }

    /// Structural heap bytes of the live tuple sets — the sidecar's share
    /// of a service member's footprint.
    pub(crate) fn heap_size(&self) -> usize {
        self.seen
            .iter()
            .map(|side| {
                side.capacity() * std::mem::size_of::<Vec<Value>>()
                    + side
                        .iter()
                        .map(|t| t.capacity() * std::mem::size_of::<Value>())
                        .sum::<usize>()
            })
            .sum()
    }

    /// Exact `|Q_i|` over the live accepted tuples.
    pub(crate) fn count(&self) -> u128 {
        match &self.plan {
            Some(plan) => plan.count(self.query.num_relations(), |r| {
                Box::new(self.seen[r].iter().map(|t| t.as_slice()))
            }),
            None => {
                let seen: Vec<Vec<Vec<Value>>> = self
                    .seen
                    .iter()
                    .map(|s| s.iter().cloned().collect())
                    .collect();
                count_backtracking(
                    &self.query,
                    &seen,
                    0,
                    &mut vec![None; self.query.num_attrs()],
                )
            }
        }
    }
}

fn count_backtracking(
    query: &Query,
    seen: &[Vec<Vec<Value>>],
    rel: usize,
    partial: &mut Vec<Option<Value>>,
) -> u128 {
    if rel == query.num_relations() {
        return 1;
    }
    let schema = &query.relation(rel).attrs;
    let mut total: u128 = 0;
    'tuples: for t in &seen[rel] {
        let mut newly_bound = Vec::new();
        for (pos, &attr) in schema.iter().enumerate() {
            match partial[attr] {
                Some(v) if v != t[pos] => {
                    for &a in &newly_bound {
                        partial[a] = None;
                    }
                    continue 'tuples;
                }
                Some(_) => {}
                None => {
                    partial[attr] = Some(t[pos]);
                    newly_bound.push(attr);
                }
            }
        }
        total = total.saturating_add(count_backtracking(query, seen, rel + 1, partial));
        for &a in &newly_bound {
            partial[a] = None;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::rng::RsjRng;
    use rsj_query::QueryBuilder;

    fn line3() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("G1", &["A", "B"]);
        qb.relation("G2", &["B", "C"]);
        qb.relation("G3", &["C", "D"]);
        qb.build().unwrap()
    }

    #[test]
    fn db_count_matches_counter_and_tracks_deletes() {
        let q = line3();
        let mut db = Database::new();
        for r in q.relations() {
            db.add_relation(r.name.clone(), r.attrs.len());
        }
        let mut counter = JoinCounter::new(q.clone());
        let mut rng = RsjRng::seed_from_u64(9);
        let mut live: Vec<(usize, Vec<Value>)> = Vec::new();
        for _ in 0..250 {
            let rel = rng.index(3);
            let t = vec![rng.below_u64(5), rng.below_u64(5)];
            if db.relation_mut(rel).insert(&t).is_some() {
                live.push((rel, t.clone()));
            }
            counter.insert(rel, t);
        }
        assert_eq!(exact_result_count(&q, &db), counter.count());
        assert!(counter.count() > 0, "degenerate instance");
        // Delete a third of the live tuples from both sides.
        for (rel, t) in live.iter().step_by(3) {
            db.relation_mut(*rel).remove(t).unwrap();
            counter.remove(*rel, t);
        }
        assert_eq!(exact_result_count(&q, &db), counter.count());
    }

    #[test]
    fn cyclic_count_over_database() {
        let mut qb = QueryBuilder::new();
        qb.relation("R1", &["X", "Y"]);
        qb.relation("R2", &["Y", "Z"]);
        qb.relation("R3", &["Z", "X"]);
        let q = qb.build().unwrap();
        let mut db = Database::new();
        for r in q.relations() {
            db.add_relation(r.name.clone(), r.attrs.len());
        }
        db.relation_mut(0).insert(&[1, 2]);
        db.relation_mut(1).insert(&[2, 3]);
        db.relation_mut(2).insert(&[3, 1]);
        db.relation_mut(2).insert(&[3, 9]);
        assert_eq!(exact_result_count(&q, &db), 1);
        db.relation_mut(2).remove(&[3, 1]).unwrap();
        assert_eq!(exact_result_count(&q, &db), 0);
    }
}
