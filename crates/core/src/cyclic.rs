//! Reservoir sampling over cyclic joins via GHDs (paper §5).
//!
//! Each GHD bag incrementally materializes the join of its assigned
//! relations with worst-case-optimal delta enumeration ([`crate::wcoj`]);
//! every delta tuple is then inserted into an acyclic [`ReservoirJoin`]
//! over the *bag-level* query, whose join results are exactly the original
//! query's results. Correctness rests on
//! `Q(R) ⋉ t = ⊎_{t' ∈ Δ_u} Q_bag(R_bag) ⋉ t'` (the bag deltas partition
//! the new results), and the cost is `O(N^w log N + k log N log(N/k))`
//! (Theorem 5.4), `w` being the decomposition's width.
//!
//! Design note (documented in DESIGN.md): bags join their *assigned*
//! relations only; the paper additionally semi-joins projections of
//! overlapping relations from other bags, an optimization that does not
//! affect correctness or the `N^w` bound.

use crate::reservoir_join::ReservoirJoin;
use crate::wcoj::BagJoin;
use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::Value;
use rsj_query::{Ghd, Query};

/// Reservoir sampling over a cyclic (or any) join query.
pub struct CyclicReservoirJoin {
    query: Query,
    ghd: Ghd,
    bags: Vec<BagJoin>,
    inner: ReservoirJoin,
    /// Total bag-delta tuples produced (the simulated stream length, whose
    /// bound is `O(N^w)`).
    bag_tuples: u64,
    /// Original-stream tuples accepted / deleted (set semantics).
    inserts: u64,
    deletes: u64,
}

impl CyclicReservoirJoin {
    /// Builds the driver, searching for a minimum-width GHD automatically.
    pub fn new(
        query: Query,
        k: usize,
        seed: u64,
    ) -> Result<CyclicReservoirJoin, Box<dyn std::error::Error>> {
        Self::with_options(query, k, seed, rsj_index::IndexOptions::default())
    }

    /// Builds the driver with explicit index options for the inner
    /// bag-level acyclic driver, searching for a minimum-width GHD.
    pub fn with_options(
        query: Query,
        k: usize,
        seed: u64,
        options: rsj_index::IndexOptions,
    ) -> Result<CyclicReservoirJoin, Box<dyn std::error::Error>> {
        let ghd = Ghd::search(&query)?;
        Self::with_ghd_options(query, ghd, k, seed, options)
    }

    /// Builds the driver with an explicit decomposition.
    pub fn with_ghd(
        query: Query,
        ghd: Ghd,
        k: usize,
        seed: u64,
    ) -> Result<CyclicReservoirJoin, Box<dyn std::error::Error>> {
        Self::with_ghd_options(query, ghd, k, seed, rsj_index::IndexOptions::default())
    }

    /// Builds the driver with an explicit decomposition and index options.
    pub fn with_ghd_options(
        query: Query,
        ghd: Ghd,
        k: usize,
        seed: u64,
        options: rsj_index::IndexOptions,
    ) -> Result<CyclicReservoirJoin, Box<dyn std::error::Error>> {
        // Attribute-id translation: bag attrs are ids of the *original*
        // query; the bag-level query re-interns the same names in bag
        // order, so a bag's sorted attr list maps positionally onto the
        // bag-level relation schema.
        let bags = ghd
            .bags()
            .iter()
            .map(|bag| {
                let rel_attrs: Vec<Vec<(usize, usize)>> = bag
                    .relations
                    .iter()
                    .map(|&r| {
                        query
                            .relation(r)
                            .attrs
                            .iter()
                            .enumerate()
                            .map(|(schema_pos, a)| {
                                let bag_idx = bag
                                    .attrs
                                    .iter()
                                    .position(|b| b == a)
                                    .expect("relation attr inside its bag");
                                (bag_idx, schema_pos)
                            })
                            .collect()
                    })
                    .collect();
                BagJoin::new(bag.attrs.len(), &rel_attrs)
            })
            .collect();
        let inner = ReservoirJoin::with_options(ghd.bag_query().clone(), k, seed, options)?;
        Ok(CyclicReservoirJoin {
            query,
            ghd,
            bags,
            inner,
            bag_tuples: 0,
            inserts: 0,
            deletes: 0,
        })
    }

    /// The bag index and within-bag relation index an original relation
    /// routes to.
    fn route(&self, rel: usize) -> (usize, usize) {
        let bag = self.ghd.bag_of(rel);
        let ri = self.ghd.bags()[bag]
            .relations
            .iter()
            .position(|&r| r == rel)
            .expect("relation assigned to its bag");
        (bag, ri)
    }

    /// Processes one input tuple of the original query. A duplicate insert
    /// is a no-op (set semantics).
    pub fn process(&mut self, rel: usize, tuple: &[Value]) {
        let (bag, ri) = self.route(rel);
        let Some(deltas) = self.bags[bag].insert_and_delta(ri, tuple) else {
            return;
        };
        self.inserts += 1;
        for d in deltas {
            self.bag_tuples += 1;
            self.inner.process(bag, &d);
        }
    }

    /// Deletes one input tuple of the original query: the bag's *dead*
    /// delta — every bag result that joined through the departing tuple —
    /// routes to the inner driver's delete path, which cascades across the
    /// other bags and repairs its reservoir by eviction-and-backfill.
    /// Correct for the same reason insertion is: the bag deltas partition
    /// `Q(R) ⋉ t`, so retracting them retracts exactly the results lost.
    /// Deleting an absent tuple is a no-op.
    pub fn delete(&mut self, rel: usize, tuple: &[Value]) {
        let (bag, ri) = self.route(rel);
        let Some(dead) = self.bags[bag].delete_and_delta(ri, tuple) else {
            return;
        };
        self.deletes += 1;
        for d in dead {
            self.inner.delete(bag, &d);
        }
    }

    /// Original-stream tuples accepted so far (set semantics).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Original-stream tuples deleted so far (present at deletion time).
    pub fn deletes(&self) -> u64 {
        self.deletes
    }

    /// Exact live `|Q(R)|`, computed on demand from the inner driver's
    /// bag-level relations (`O(N^w)` in the worst case — the same walk the
    /// delete repair uses).
    pub fn exact_result_count(&self) -> u128 {
        crate::count::exact_result_count(self.inner.index().query(), self.inner.index().database())
    }

    /// Serializes the full dynamic state: bag trie contents, the stream
    /// counters, then the inner driver's snapshot.
    pub fn snapshot_to(&self, enc: &mut Encoder) {
        enc.put_usize(self.bags.len());
        for b in &self.bags {
            b.snapshot_to(enc);
        }
        enc.put_u64(self.bag_tuples);
        enc.put_u64(self.inserts);
        enc.put_u64(self.deletes);
        self.inner.snapshot_to(enc);
    }

    /// Restores from a [`CyclicReservoirJoin::snapshot_to`] image taken by
    /// a driver built with the same `(query, ghd, k, seed, options)`. On
    /// error the receiver may be partially overwritten and must be
    /// discarded.
    pub fn restore_from_snapshot(&mut self, dec: &mut Decoder) -> Result<(), CodecError> {
        let n = dec.seq_len(2)?;
        if n != self.bags.len() {
            return Err(CodecError::Corrupt("bag count mismatch"));
        }
        for b in &mut self.bags {
            b.restore_from_snapshot(dec)?;
        }
        self.bag_tuples = dec.u64()?;
        self.inserts = dec.u64()?;
        self.deletes = dec.u64()?;
        self.inner.restore_from_snapshot(dec)
    }

    /// Current samples, as value tuples indexed by the bag-level query's
    /// attribute ids (same attribute *names* as the original query; use
    /// [`Self::sample_named`] for name–value pairs).
    pub fn samples(&self) -> &[Vec<Value>] {
        self.inner.samples()
    }

    /// Samples as sorted `(attribute name, value)` pairs of the original
    /// query — convenient for assertions and display.
    pub fn sample_named(&self) -> Vec<Vec<(String, Value)>> {
        let q = self.inner.index().query();
        self.samples()
            .iter()
            .map(|s| {
                let mut kv: Vec<(String, Value)> = q
                    .attr_names()
                    .iter()
                    .cloned()
                    .zip(s.iter().copied())
                    .collect();
                kv.sort();
                kv
            })
            .collect()
    }

    /// The decomposition in use.
    pub fn ghd(&self) -> &Ghd {
        &self.ghd
    }

    /// The original query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The inner acyclic driver (over the bag-level query).
    pub fn inner(&self) -> &ReservoirJoin {
        &self.inner
    }

    /// Mutable access to the inner acyclic driver (re-planning the
    /// bag-level orientation).
    pub fn inner_mut(&mut self) -> &mut ReservoirJoin {
        &mut self.inner
    }

    /// Bag-delta tuples produced so far (`O(N^w)`).
    pub fn bag_tuples(&self) -> u64 {
        self.bag_tuples
    }

    /// Estimated heap bytes (bag tries + inner driver).
    pub fn heap_size(&self) -> usize {
        self.bags.iter().map(BagJoin::heap_size).sum::<usize>() + self.inner.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::rng::RsjRng;
    use rsj_common::stats::{chi_square_critical, chi_square_uniform};
    use rsj_common::{FxHashMap, FxHashSet};
    use rsj_query::QueryBuilder;

    fn triangle_query() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("R1", &["X", "Y"]);
        qb.relation("R2", &["Y", "Z"]);
        qb.relation("R3", &["Z", "X"]);
        qb.build().unwrap()
    }

    fn dumbbell_query() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("R1", &["x1", "x2"]);
        qb.relation("R2", &["x1", "x3"]);
        qb.relation("R3", &["x2", "x3"]);
        qb.relation("R4", &["x5", "x6"]);
        qb.relation("R5", &["x4", "x5"]);
        qb.relation("R6", &["x4", "x6"]);
        qb.relation("R7", &["x3", "x4"]);
        qb.build().unwrap()
    }

    #[test]
    fn triangle_collects_all_results() {
        let mut rng = RsjRng::seed_from_u64(31);
        let mut crj = CyclicReservoirJoin::new(triangle_query(), 100_000, 1).unwrap();
        let mut edges: [FxHashSet<(u64, u64)>; 3] =
            [Default::default(), Default::default(), Default::default()];
        for _ in 0..400 {
            let rel = rng.index(3);
            let e = (rng.below_u64(10), rng.below_u64(10));
            if edges[rel].insert(e) {
                crj.process(rel, &[e.0, e.1]);
            }
        }
        // Brute force triangles (x,y,z).
        let mut brute: FxHashSet<(u64, u64, u64)> = FxHashSet::default();
        for &(x, y) in &edges[0] {
            for &(y2, z) in &edges[1] {
                if y == y2 && edges[2].contains(&(z, x)) {
                    brute.insert((x, y, z));
                }
            }
        }
        assert!(!brute.is_empty());
        // Samples carry attrs X, Y, Z (bag query attr names).
        let q = crj.inner().index().query().clone();
        let pos = |n: &str| q.attr_names().iter().position(|a| a == n).unwrap();
        let (px, py, pz) = (pos("X"), pos("Y"), pos("Z"));
        let got: FxHashSet<(u64, u64, u64)> = crj
            .samples()
            .iter()
            .map(|s| (s[px], s[py], s[pz]))
            .collect();
        assert_eq!(got, brute);
    }

    #[test]
    fn triangle_reservoir_is_uniform() {
        // Fixed instance with a known set of triangles; k=2 reservoir over
        // many seeds must include each triangle equally often.
        let edges: Vec<(usize, (u64, u64))> = vec![
            (0, (1, 2)),
            (1, (2, 3)),
            (2, (3, 1)), // triangle A
            (0, (4, 5)),
            (1, (5, 6)),
            (2, (6, 4)), // triangle B
            (0, (1, 5)),
            (1, (5, 3)), // triangle C = (1,5,3): needs R3 (3,1) — present
            (0, (7, 8)), // noise
        ];
        // Triangles: A=(1,2,3), B=(4,5,6), C=(1,5,3).
        let trials = 4000u64;
        let mut counts: FxHashMap<Vec<u64>, u64> = FxHashMap::default();
        for seed in 0..trials {
            let mut crj = CyclicReservoirJoin::new(triangle_query(), 2, seed).unwrap();
            for (rel, e) in &edges {
                crj.process(*rel, &[e.0, e.1]);
            }
            assert_eq!(crj.samples().len(), 2);
            for s in crj.samples() {
                *counts.entry(s.clone()).or_default() += 1;
            }
        }
        assert_eq!(counts.len(), 3, "expected 3 triangles: {counts:?}");
        let obs: Vec<u64> = counts.values().copied().collect();
        let (stat, df) = chi_square_uniform(&obs);
        assert!(stat < chi_square_critical(df, 0.0001), "chi2={stat}");
    }

    #[test]
    fn dumbbell_end_to_end() {
        // Small dumbbell instance: one triangle on each side, one bridge.
        let mut crj = CyclicReservoirJoin::new(dumbbell_query(), 10, 3).unwrap();
        // Left triangle on (1,2,3): R1(x1,x2)=(1,2), R2(x1,x3)=(1,3),
        // R3(x2,x3)=(2,3).
        crj.process(0, &[1, 2]);
        crj.process(1, &[1, 3]);
        crj.process(2, &[2, 3]);
        // Right triangle on (4,5,6): R5(x4,x5)=(4,5), R6(x4,x6)=(4,6),
        // R4(x5,x6)=(5,6).
        crj.process(4, &[4, 5]);
        crj.process(5, &[4, 6]);
        crj.process(3, &[5, 6]);
        assert!(crj.samples().is_empty(), "no bridge yet");
        // Bridge R7(x3,x4) = (3,4).
        crj.process(6, &[3, 4]);
        let named = crj.sample_named();
        assert_eq!(named.len(), 1);
        let expected: Vec<(String, u64)> = [
            ("x1", 1),
            ("x2", 2),
            ("x3", 3),
            ("x4", 4),
            ("x5", 5),
            ("x6", 6),
        ]
        .iter()
        .map(|(n, v)| (n.to_string(), *v))
        .collect();
        assert_eq!(named[0], expected);
        assert!((crj.ghd().width() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn bag_tuple_count_tracks_simulated_stream() {
        let mut crj = CyclicReservoirJoin::new(triangle_query(), 10, 5).unwrap();
        crj.process(0, &[1, 2]);
        crj.process(1, &[2, 3]);
        assert_eq!(crj.bag_tuples(), 0);
        crj.process(2, &[3, 1]);
        assert_eq!(crj.bag_tuples(), 1);
    }

    #[test]
    fn triangle_deletes_track_live_results() {
        // Random turnstile stream; at the end the sample set (k >= |Q|)
        // must equal the brute-force join of the live edges, and the
        // driver's exact count must agree.
        let mut rng = RsjRng::seed_from_u64(47);
        let mut crj = CyclicReservoirJoin::new(triangle_query(), 100_000, 1).unwrap();
        let mut edges: [FxHashSet<(u64, u64)>; 3] =
            [Default::default(), Default::default(), Default::default()];
        for _ in 0..900 {
            let rel = rng.index(3);
            let e = (rng.below_u64(9), rng.below_u64(9));
            if rng.below_u64(4) == 0 && edges[rel].contains(&e) {
                edges[rel].remove(&e);
                crj.delete(rel, &[e.0, e.1]);
            } else if edges[rel].insert(e) {
                crj.process(rel, &[e.0, e.1]);
            }
        }
        let mut brute: FxHashSet<(u64, u64, u64)> = FxHashSet::default();
        for &(x, y) in &edges[0] {
            for &(y2, z) in &edges[1] {
                if y == y2 && edges[2].contains(&(z, x)) {
                    brute.insert((x, y, z));
                }
            }
        }
        assert!(!brute.is_empty(), "test instance lost all triangles");
        let q = crj.inner().index().query().clone();
        let pos = |n: &str| q.attr_names().iter().position(|a| a == n).unwrap();
        let (px, py, pz) = (pos("X"), pos("Y"), pos("Z"));
        let got: FxHashSet<(u64, u64, u64)> = crj
            .samples()
            .iter()
            .map(|s| (s[px], s[py], s[pz]))
            .collect();
        assert_eq!(got, brute);
        assert_eq!(crj.samples().len(), brute.len(), "stale duplicate samples");
        assert_eq!(crj.exact_result_count(), brute.len() as u128);
        assert!(crj.deletes() > 0);
    }

    #[test]
    fn delete_then_reinsert_restores_the_dead_delta() {
        let mut crj = CyclicReservoirJoin::new(triangle_query(), 10, 9).unwrap();
        crj.process(0, &[1, 2]);
        crj.process(1, &[2, 3]);
        crj.process(2, &[3, 1]);
        assert_eq!(crj.samples().len(), 1);
        crj.delete(1, &[2, 3]);
        assert!(crj.samples().is_empty());
        assert_eq!(crj.exact_result_count(), 0);
        crj.process(1, &[2, 3]);
        assert_eq!(crj.sample_named().len(), 1);
        // Deleting an absent tuple is a no-op.
        crj.delete(0, &[8, 8]);
        assert_eq!(crj.samples().len(), 1);
        assert_eq!((crj.inserts(), crj.deletes()), (4, 1));
    }

    #[test]
    fn cyclic_snapshot_round_trips_mid_stream() {
        let mut rng = RsjRng::seed_from_u64(53);
        let mut ops: Vec<(bool, usize, [u64; 2])> = Vec::new();
        let mut edges: [FxHashSet<(u64, u64)>; 3] = Default::default();
        while ops.len() < 300 {
            let rel = rng.index(3);
            let e = (rng.below_u64(8), rng.below_u64(8));
            if rng.below_u64(5) == 0 && edges[rel].contains(&e) {
                edges[rel].remove(&e);
                ops.push((false, rel, [e.0, e.1]));
            } else if edges[rel].insert(e) {
                ops.push((true, rel, [e.0, e.1]));
            }
        }
        let mut crj = CyclicReservoirJoin::new(triangle_query(), 8, 11).unwrap();
        for (ins, rel, t) in &ops[..200] {
            if *ins {
                crj.process(*rel, t);
            } else {
                crj.delete(*rel, t);
            }
        }
        let mut enc = Encoder::new();
        crj.snapshot_to(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = CyclicReservoirJoin::new(triangle_query(), 8, 11).unwrap();
        restored
            .restore_from_snapshot(&mut Decoder::new(&bytes))
            .unwrap();
        for (ins, rel, t) in &ops[200..] {
            if *ins {
                crj.process(*rel, t);
                restored.process(*rel, t);
            } else {
                crj.delete(*rel, t);
                restored.delete(*rel, t);
            }
        }
        assert_eq!(crj.samples(), restored.samples());
        assert_eq!(crj.bag_tuples(), restored.bag_tuples());
        assert_eq!(crj.inserts(), restored.inserts());
        assert_eq!(crj.deletes(), restored.deletes());
        // Truncated images are rejected.
        let mut fresh = CyclicReservoirJoin::new(triangle_query(), 8, 11).unwrap();
        assert!(fresh
            .restore_from_snapshot(&mut Decoder::new(&bytes[..bytes.len() / 3]))
            .is_err());
    }

    #[test]
    fn acyclic_query_works_through_cyclic_driver() {
        // The GHD driver must degrade gracefully to acyclic queries.
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        let mut crj = CyclicReservoirJoin::new(qb.build().unwrap(), 10, 7).unwrap();
        crj.process(0, &[1, 2]);
        crj.process(1, &[2, 3]);
        assert_eq!(crj.samples().len(), 1);
    }
}
