//! Binary export/import of sample sets.
//!
//! Downstream consumers of a join sample (model trainers, approximate
//! aggregators) usually live in another process; this module gives the
//! reservoir a compact, self-describing wire format over plain byte
//! vectors:
//!
//! ```text
//! magic "RSJ1" | u32 arity | u64 count | count × arity × u64 values (LE)
//! ```
//!
//! All samples in one set share the query's arity, so the layout is a
//! dense matrix — `16 + 8·k·arity` bytes for `k` samples.

use rsj_common::Value;

const MAGIC: &[u8; 4] = b"RSJ1";

/// Errors from decoding a sample buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the `RSJ1` magic.
    BadMagic,
    /// The buffer is shorter than its header claims.
    Truncated,
    /// Header declares arity 0.
    ZeroArity,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "missing RSJ1 magic"),
            DecodeError::Truncated => write!(f, "buffer shorter than header claims"),
            DecodeError::ZeroArity => write!(f, "sample arity must be positive"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a sample set (all tuples of equal arity) into a buffer.
///
/// # Panics
/// Panics if samples have inconsistent arities.
pub fn encode_samples(samples: &[Vec<Value>], arity: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + samples.len() * arity * 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(arity as u32).to_le_bytes());
    buf.extend_from_slice(&(samples.len() as u64).to_le_bytes());
    for s in samples {
        assert_eq!(s.len(), arity, "inconsistent sample arity");
        for &v in s {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    buf
}

/// Decodes a buffer produced by [`encode_samples`].
pub fn decode_samples(buf: &[u8]) -> Result<Vec<Vec<Value>>, DecodeError> {
    if buf.len() < 16 {
        return Err(DecodeError::Truncated);
    }
    if &buf[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let arity = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
    let count = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")) as usize;
    if count > 0 && arity == 0 {
        return Err(DecodeError::ZeroArity);
    }
    let body = &buf[16..];
    if body.len() < count.saturating_mul(arity).saturating_mul(8) {
        return Err(DecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    let mut off = 0;
    for _ in 0..count {
        let mut s = Vec::with_capacity(arity);
        for _ in 0..arity {
            s.push(u64::from_le_bytes(
                body[off..off + 8].try_into().expect("8 bytes"),
            ));
            off += 8;
        }
        out.push(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let samples = vec![vec![1, 2, 3], vec![4, 5, 6], vec![u64::MAX, 0, 7]];
        let buf = encode_samples(&samples, 3);
        assert_eq!(buf.len(), 16 + 3 * 3 * 8);
        assert_eq!(decode_samples(&buf).unwrap(), samples);
    }

    #[test]
    fn empty_set() {
        let buf = encode_samples(&[], 5);
        assert_eq!(decode_samples(&buf).unwrap(), Vec::<Vec<u64>>::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = encode_samples(&[vec![1]], 1);
        raw[0] = b'X';
        assert_eq!(decode_samples(&raw), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let raw = encode_samples(&[vec![1, 2]], 2);
        for cut in [0, 8, 15, raw.len() - 1] {
            assert_eq!(
                decode_samples(&raw[..cut]),
                Err(DecodeError::Truncated),
                "{cut}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "inconsistent sample arity")]
    fn arity_mismatch_panics() {
        encode_samples(&[vec![1, 2], vec![3]], 2);
    }

    #[test]
    fn reservoir_samples_roundtrip() {
        use rsj_query::QueryBuilder;
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        let q = qb.build().unwrap();
        let arity = q.num_attrs();
        let mut rj = crate::ReservoirJoin::new(q, 10, 1).unwrap();
        rj.process(0, &[1, 2]);
        rj.process(1, &[2, 3]);
        rj.process(1, &[2, 4]);
        let buf = encode_samples(rj.samples(), arity);
        assert_eq!(decode_samples(&buf).unwrap(), rj.samples());
    }
}
