#![warn(missing_docs)]

//! Reservoir sampling over joins: the paper's headline algorithms, wired
//! together.
//!
//! This crate combines the predicate-aware reservoir (`rsj-stream`) with the
//! dynamic index (`rsj-index`) into the end-to-end drivers of the paper:
//!
//! * [`reservoir_join::ReservoirJoin`] — Algorithm 6 (`RSJoin`): maintain
//!   `k` uniform samples without replacement of `Q(R_i)` for every prefix
//!   `R_i` of an insert-only stream, over any acyclic join, in
//!   `O(N log N + k log N log(N/k))` total expected time (Corollary 4.3);
//! * [`fk_runtime`] — the foreign-key combination runtime (§4.4), yielding
//!   `RSJoin_opt`;
//! * [`wcoj`] — hash tries and generic worst-case-optimal delta enumeration,
//!   the substrate for cyclic queries;
//! * [`cyclic::CyclicReservoirJoin`] — the GHD driver of §5: bag sub-joins
//!   are materialized incrementally by delta enumeration and fed as inserts
//!   to an acyclic `ReservoirJoin` over the bag-level query (Theorem 5.4);
//! * [`sampler_facade::DynamicSampleIndex`] — the "sampling over joins"
//!   operation (draw a fresh uniform sample of `Q(R)` on demand,
//!   `O(log N)` update and sample);
//! * [`shard::ShardedSampler`] — the partition-parallel execution layer:
//!   hash-partition the stream across `S` worker shards, run any
//!   [`exec::JoinSampler`] per shard on its own thread, merge the
//!   per-shard reservoirs by weighted reservoir union;
//! * [`service::SamplerService`] — the resident sampler: one op stream in,
//!   many registered queries sharing dynamic indexes, many concurrent
//!   readers on never-blocking epoch snapshots.

pub mod count;
pub mod cyclic;
pub mod exec;
pub mod export;
pub mod fk_runtime;
pub mod reservoir_join;
pub mod sampler_facade;
pub mod service;
pub mod shard;
pub mod wcoj;

pub use count::exact_result_count;
pub use cyclic::CyclicReservoirJoin;
pub use exec::{DeleteUnsupported, JoinSampler, SamplerStats};
pub use fk_runtime::{FkBuildError, FkCombiner, FkReservoirJoin};
pub use reservoir_join::{ReplanPolicy, ReservoirJoin};
pub use sampler_facade::DynamicSampleIndex;
pub use service::{
    QueryHandle, QueryOpts, RebuildFn, SampleReader, SampleSnapshot, SamplerService, ServiceError,
    ServiceOpts,
};
pub use shard::{
    ShardError, ShardFault, ShardHealth, ShardPlan, ShardedSampler, SupervisorPolicy,
    INJECTED_FAULT,
};
