//! Hash tries and generic worst-case-optimal delta enumeration.
//!
//! The cyclic driver (§5) needs, for each GHD bag, the *delta* of the bag's
//! sub-join when one tuple arrives: `ΔQ_u = Q_u(R ∪ {t}) ⋉ t`. This module
//! implements that with the standard generic-join recipe: every relation of
//! the bag is indexed as a hash trie following one global attribute order;
//! enumeration binds attributes in that order, intersecting the candidate
//! sets of the relations that contain each attribute (iterating the
//! smallest), with the inserted tuple's attributes pre-bound. Per delta
//! result the work is `O(|attrs| · |relations|)` hash probes, and the total
//! across a stream is bounded by the bag's AGM bound — the `N^w` term of
//! Theorem 5.4.
//!
//! Since PR 10 the structure is fully turnstile: [`HashTrie::remove`] prunes
//! emptied trie paths (recycling arena nodes through a free list), and
//! [`BagJoin::delete_and_delta`] enumerates the *dead* delta — the bag
//! results that existed only through the departing tuple — before removing
//! it, giving the cyclic driver the `-1` side of its signed pipeline.

use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::{FxHashMap, Value};

/// A hash trie over tuples of a fixed arity, one map level per attribute in
/// a fixed order.
#[derive(Clone, Debug)]
pub struct HashTrie {
    depth: usize,
    /// Node arena; node 0 is the root. Leaf-level nodes store no children.
    nodes: Vec<TrieNode>,
    /// Arena slots freed by [`HashTrie::remove`], recycled by inserts.
    free: Vec<u32>,
}

#[derive(Clone, Debug, Default)]
struct TrieNode {
    children: FxHashMap<Value, u32>,
}

impl HashTrie {
    /// Creates an empty trie of the given depth (tuple arity).
    pub fn new(depth: usize) -> HashTrie {
        assert!(depth > 0);
        HashTrie {
            depth,
            nodes: vec![TrieNode::default()],
            free: Vec::new(),
        }
    }

    /// Inserts a tuple (values in trie attribute order). Returns `true` if
    /// the tuple was new, `false` if already present (set semantics).
    pub fn insert(&mut self, values: &[Value]) -> bool {
        debug_assert_eq!(values.len(), self.depth);
        let mut node = 0u32;
        let mut created = false;
        for &v in values {
            node = match self.nodes[node as usize].children.get(&v) {
                Some(&c) => c,
                None => {
                    created = true;
                    let c = match self.free.pop() {
                        Some(c) => c,
                        None => {
                            self.nodes.push(TrieNode::default());
                            (self.nodes.len() - 1) as u32
                        }
                    };
                    self.nodes[node as usize].children.insert(v, c);
                    c
                }
            };
        }
        created
    }

    /// Whether the tuple is present.
    pub fn contains(&self, values: &[Value]) -> bool {
        debug_assert_eq!(values.len(), self.depth);
        let mut node = 0u32;
        for &v in values {
            match self.nodes[node as usize].children.get(&v) {
                Some(&c) => node = c,
                None => return false,
            }
        }
        true
    }

    /// Removes a tuple, pruning every trie path that held only this tuple
    /// and recycling the freed arena nodes. Returns `true` if the tuple was
    /// present.
    pub fn remove(&mut self, values: &[Value]) -> bool {
        debug_assert_eq!(values.len(), self.depth);
        // Record the descent: (parent node, branch value, child node).
        let mut path = Vec::with_capacity(self.depth);
        let mut node = 0u32;
        for &v in values {
            match self.nodes[node as usize].children.get(&v) {
                Some(&c) => {
                    path.push((node, v, c));
                    node = c;
                }
                None => return false,
            }
        }
        // Unwind: drop the leaf, then every ancestor left childless.
        for &(parent, v, child) in path.iter().rev() {
            if !self.nodes[child as usize].children.is_empty() {
                break;
            }
            self.nodes[parent as usize].children.remove(&v);
            self.free.push(child);
        }
        true
    }

    /// All stored tuples in trie attribute order, sorted lexicographically
    /// (a canonical enumeration, independent of insertion history).
    pub fn tuples(&self) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        let mut acc = Vec::with_capacity(self.depth);
        self.collect(0, &mut acc, &mut out);
        out.sort_unstable();
        out
    }

    fn collect(&self, node: u32, acc: &mut Vec<Value>, out: &mut Vec<Vec<Value>>) {
        if acc.len() == self.depth {
            out.push(acc.clone());
            return;
        }
        for (&v, &c) in &self.nodes[node as usize].children {
            acc.push(v);
            self.collect(c, acc, out);
            acc.pop();
        }
    }

    /// The child node for value `v` under `node`, if present.
    #[inline]
    pub fn descend(&self, node: u32, v: Value) -> Option<u32> {
        self.nodes[node as usize].children.get(&v).copied()
    }

    /// Number of children under `node`.
    #[inline]
    pub fn fanout(&self, node: u32) -> usize {
        self.nodes[node as usize].children.len()
    }

    /// Iterates the `(value, child)` pairs under `node`.
    pub fn children(&self, node: u32) -> impl Iterator<Item = (Value, u32)> + '_ {
        self.nodes[node as usize]
            .children
            .iter()
            .map(|(&v, &c)| (v, c))
    }

    /// The root node id.
    pub fn root(&self) -> u32 {
        0
    }

    /// Estimated heap bytes.
    pub fn heap_size(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<TrieNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * 13)
                .sum::<usize>()
    }
}

/// One relation inside a bag join.
#[derive(Clone, Debug)]
struct BagRel {
    /// Indices into the bag's attribute order, ascending — the trie levels.
    attr_order_idx: Vec<usize>,
    /// For each trie level, the position of that attribute in the
    /// relation's own schema (to reorder incoming tuples).
    schema_positions: Vec<usize>,
    trie: HashTrie,
}

/// Incremental worst-case-optimal join over the relations of one GHD bag.
///
/// Attributes are identified by their index in the bag's (sorted) attribute
/// list; enumeration output tuples follow that order.
#[derive(Clone, Debug)]
pub struct BagJoin {
    num_attrs: usize,
    rels: Vec<BagRel>,
    /// Relations containing each attribute (by bag-relation index).
    attr_rels: Vec<Vec<usize>>,
}

impl BagJoin {
    /// Creates a bag join.
    ///
    /// `rel_attrs[i]` lists, for bag relation `i`, pairs
    /// `(bag_attr_index, position_in_relation_schema)`; they may be given in
    /// any order and are sorted by bag attribute index internally.
    pub fn new(num_attrs: usize, rel_attrs: &[Vec<(usize, usize)>]) -> BagJoin {
        let mut rels = Vec::with_capacity(rel_attrs.len());
        let mut attr_rels = vec![Vec::new(); num_attrs];
        for (ri, pairs) in rel_attrs.iter().enumerate() {
            let mut sorted = pairs.clone();
            sorted.sort_unstable();
            let attr_order_idx: Vec<usize> = sorted.iter().map(|&(a, _)| a).collect();
            let schema_positions: Vec<usize> = sorted.iter().map(|&(_, p)| p).collect();
            for &a in &attr_order_idx {
                attr_rels[a].push(ri);
            }
            rels.push(BagRel {
                trie: HashTrie::new(attr_order_idx.len()),
                attr_order_idx,
                schema_positions,
            });
        }
        BagJoin {
            num_attrs,
            rels,
            attr_rels,
        }
    }

    /// Inserts a tuple into bag relation `ri` (values in the relation's own
    /// schema order) and returns the *delta*: every full bag-attribute
    /// assignment newly joined through this tuple, in bag attribute order.
    /// A duplicate insert returns `None` (set semantics, nothing changed).
    pub fn insert_and_delta(&mut self, ri: usize, tuple: &[Value]) -> Option<Vec<Vec<Value>>> {
        // Reorder into trie order and insert.
        let reordered: Vec<Value> = self.rels[ri]
            .schema_positions
            .iter()
            .map(|&p| tuple[p])
            .collect();
        if !self.rels[ri].trie.insert(&reordered) {
            return None;
        }
        Some(self.semijoin_delta(ri, &reordered))
    }

    /// Deletes a tuple from bag relation `ri` and returns the *dead delta*:
    /// every full bag-attribute assignment that joined through this tuple
    /// (enumerated before removal, so it is exactly the mirror of the delta
    /// its insertion produced against the same co-relations). Deleting an
    /// absent tuple returns `None`.
    pub fn delete_and_delta(&mut self, ri: usize, tuple: &[Value]) -> Option<Vec<Vec<Value>>> {
        let reordered: Vec<Value> = self.rels[ri]
            .schema_positions
            .iter()
            .map(|&p| tuple[p])
            .collect();
        if !self.rels[ri].trie.contains(&reordered) {
            return None;
        }
        let dead = self.semijoin_delta(ri, &reordered);
        self.rels[ri].trie.remove(&reordered);
        Some(dead)
    }

    /// Enumerates the bag results semijoined with relation `ri`'s tuple
    /// (given in trie order): the delta of that tuple against the current
    /// trie contents, which must already include the tuple itself.
    fn semijoin_delta(&self, ri: usize, reordered: &[Value]) -> Vec<Vec<Value>> {
        let mut bound: Vec<Option<Value>> = vec![None; self.num_attrs];
        for (level, &a) in self.rels[ri].attr_order_idx.iter().enumerate() {
            bound[a] = Some(reordered[level]);
        }
        let mut out = Vec::new();
        let mut assignment = vec![0; self.num_attrs];
        let mut cursors: Vec<u32> = self.rels.iter().map(|r| r.trie.root()).collect();
        self.enumerate(0, &bound, &mut cursors, &mut assignment, &mut out);
        out
    }

    /// Recursive generic join over attribute `a`.
    fn enumerate(
        &self,
        a: usize,
        bound: &[Option<Value>],
        cursors: &mut [u32],
        assignment: &mut [Value],
        out: &mut Vec<Vec<Value>>,
    ) {
        if a == self.num_attrs {
            out.push(assignment.to_vec());
            return;
        }
        let holders = &self.attr_rels[a];
        debug_assert!(!holders.is_empty(), "bag attribute covered by no relation");
        if let Some(v) = bound[a] {
            // Pre-bound: every holder must contain v.
            let mut saved = Vec::with_capacity(holders.len());
            for &ri in holders {
                match self.rels[ri].trie.descend(cursors[ri], v) {
                    Some(c) => {
                        saved.push((ri, cursors[ri]));
                        cursors[ri] = c;
                    }
                    None => {
                        for (ri, old) in saved {
                            cursors[ri] = old;
                        }
                        return;
                    }
                }
            }
            assignment[a] = v;
            self.enumerate(a + 1, bound, cursors, assignment, out);
            for (ri, old) in saved {
                cursors[ri] = old;
            }
            return;
        }
        // Free attribute: iterate the smallest candidate set, probe others.
        let lead = *holders
            .iter()
            .min_by_key(|&&ri| self.rels[ri].trie.fanout(cursors[ri]))
            .expect("nonempty holders");
        let mut candidates: Vec<(Value, u32)> =
            self.rels[lead].trie.children(cursors[lead]).collect();
        // Canonical order: delta emission must not depend on hash-map
        // iteration (node ids shift once deletes recycle arena slots, and
        // restored tries rebuild their maps from scratch).
        candidates.sort_unstable();
        'candidates: for (v, lead_child) in candidates {
            let mut saved = Vec::with_capacity(holders.len());
            for &ri in holders {
                let child = if ri == lead {
                    Some(lead_child)
                } else {
                    self.rels[ri].trie.descend(cursors[ri], v)
                };
                match child {
                    Some(c) => {
                        saved.push((ri, cursors[ri]));
                        cursors[ri] = c;
                    }
                    None => {
                        for (ri, old) in saved {
                            cursors[ri] = old;
                        }
                        continue 'candidates;
                    }
                }
            }
            assignment[a] = v;
            self.enumerate(a + 1, bound, cursors, assignment, out);
            for (ri, old) in saved {
                cursors[ri] = old;
            }
        }
    }

    /// Estimated heap bytes of all tries.
    pub fn heap_size(&self) -> usize {
        self.rels.iter().map(|r| r.trie.heap_size()).sum()
    }

    /// Serializes the bag's dynamic contents canonically: per relation, its
    /// stored tuples in sorted trie order. Structure (attribute orders,
    /// schema positions) is not serialized — it is rebuilt from the query.
    pub fn snapshot_to(&self, enc: &mut Encoder) {
        enc.put_usize(self.rels.len());
        for r in &self.rels {
            let tuples = r.trie.tuples();
            enc.put_usize(tuples.len());
            for t in tuples {
                enc.put_u64s(&t);
            }
        }
    }

    /// Restores contents produced by [`BagJoin::snapshot_to`] into a bag
    /// built with the same structure. On error the receiver may be partially
    /// overwritten and must be discarded.
    pub fn restore_from_snapshot(&mut self, dec: &mut Decoder) -> Result<(), CodecError> {
        let n = dec.seq_len(2)?;
        if n != self.rels.len() {
            return Err(CodecError::Corrupt("bag relation count mismatch"));
        }
        for r in &mut self.rels {
            let depth = r.attr_order_idx.len();
            r.trie = HashTrie::new(depth);
            let count = dec.seq_len(2)?;
            for _ in 0..count {
                let t = dec.u64s()?;
                if t.len() != depth {
                    return Err(CodecError::Corrupt("bag tuple arity mismatch"));
                }
                if !r.trie.insert(&t) {
                    return Err(CodecError::Corrupt("duplicate bag tuple in snapshot"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::rng::RsjRng;
    use rsj_common::FxHashSet;

    #[test]
    fn trie_insert_and_descend() {
        let mut t = HashTrie::new(2);
        t.insert(&[1, 2]);
        t.insert(&[1, 3]);
        t.insert(&[1, 2]); // idempotent
        let n1 = t.descend(t.root(), 1).unwrap();
        assert_eq!(t.fanout(n1), 2);
        assert!(t.descend(t.root(), 9).is_none());
    }

    #[test]
    fn trie_remove_prunes_and_recycles() {
        let mut t = HashTrie::new(3);
        t.insert(&[1, 2, 3]);
        t.insert(&[1, 2, 4]);
        t.insert(&[1, 5, 6]);
        assert!(t.contains(&[1, 2, 3]));
        assert!(!t.remove(&[9, 9, 9])); // absent
        assert!(t.remove(&[1, 2, 3]));
        assert!(!t.contains(&[1, 2, 3]));
        assert!(t.contains(&[1, 2, 4])); // shared prefix survives
        assert!(t.remove(&[1, 2, 4]));
        // The (1,2) branch is now fully pruned.
        let n1 = t.descend(t.root(), 1).unwrap();
        assert!(t.descend(n1, 2).is_none());
        assert!(t.remove(&[1, 5, 6]));
        assert_eq!(t.fanout(t.root()), 0);
        // Freed arena slots are recycled: re-inserting everything does not
        // grow the arena past its previous footprint.
        let nodes_before = t.nodes.len();
        t.insert(&[1, 2, 3]);
        t.insert(&[1, 2, 4]);
        t.insert(&[1, 5, 6]);
        assert_eq!(t.nodes.len(), nodes_before);
        assert_eq!(
            t.tuples(),
            vec![vec![1, 2, 3], vec![1, 2, 4], vec![1, 5, 6]]
        );
    }

    /// Triangle bag: R1(X,Y), R2(Y,Z), R3(Z,X); attrs X=0, Y=1, Z=2.
    fn triangle() -> BagJoin {
        BagJoin::new(
            3,
            &[
                vec![(0, 0), (1, 1)], // R1: X at schema pos 0, Y at 1
                vec![(1, 0), (2, 1)], // R2
                vec![(2, 0), (0, 1)], // R3: Z at 0, X at 1
            ],
        )
    }

    #[test]
    fn triangle_delta_closes_on_last_edge() {
        let mut bj = triangle();
        assert!(bj.insert_and_delta(0, &[1, 2]).unwrap().is_empty()); // X=1,Y=2
        assert!(bj.insert_and_delta(1, &[2, 3]).unwrap().is_empty()); // Y=2,Z=3
        let d = bj.insert_and_delta(2, &[3, 1]).unwrap(); // Z=3,X=1
        assert_eq!(d, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn triangle_delta_counts_match_brute_force() {
        let mut bj = triangle();
        let mut rng = RsjRng::seed_from_u64(17);
        let mut edges: [FxHashSet<(u64, u64)>; 3] =
            [Default::default(), Default::default(), Default::default()];
        let mut total_delta = 0usize;
        for _ in 0..600 {
            let ri = rng.index(3);
            let e = (rng.below_u64(12), rng.below_u64(12));
            if !edges[ri].insert(e) {
                continue; // duplicate; BagJoin insert is idempotent too
            }
            total_delta += bj.insert_and_delta(ri, &[e.0, e.1]).unwrap().len();
        }
        // Brute-force triangle count.
        let mut brute = 0usize;
        for &(x, y) in &edges[0] {
            for &(y2, z) in &edges[1] {
                if y != y2 {
                    continue;
                }
                if edges[2].contains(&(z, x)) {
                    brute += 1;
                }
            }
        }
        assert_eq!(total_delta, brute);
    }

    #[test]
    fn deltas_are_disjoint_over_time() {
        // Every result is emitted exactly once across the stream.
        let mut bj = triangle();
        let mut rng = RsjRng::seed_from_u64(23);
        let mut seen: FxHashSet<Vec<u64>> = FxHashSet::default();
        for _ in 0..500 {
            let ri = rng.index(3);
            let t = [rng.below_u64(8), rng.below_u64(8)];
            for d in bj.insert_and_delta(ri, &t).into_iter().flatten() {
                assert!(seen.insert(d.clone()), "duplicate delta {d:?}");
            }
        }
    }

    #[test]
    fn two_relation_bag_is_plain_join() {
        // Bag with R(X,Y), S(Y,Z): delta of S-insert = matching R tuples.
        let mut bj = BagJoin::new(3, &[vec![(0, 0), (1, 1)], vec![(1, 0), (2, 1)]]);
        bj.insert_and_delta(0, &[1, 5]);
        bj.insert_and_delta(0, &[2, 5]);
        let d = bj.insert_and_delta(1, &[5, 9]).unwrap();
        let set: FxHashSet<Vec<u64>> = d.into_iter().collect();
        assert_eq!(set, [vec![1, 5, 9], vec![2, 5, 9]].into_iter().collect());
    }

    #[test]
    fn schema_reordering_respected() {
        // Relation whose schema order differs from bag attr order.
        // Bag attrs: A=0, B=1. Relation schema is (B, A).
        let mut bj = BagJoin::new(2, &[vec![(1, 0), (0, 1)]]);
        let d = bj.insert_and_delta(0, &[7, 3]).unwrap(); // B=7, A=3
        assert_eq!(d, vec![vec![3, 7]]); // output in bag order (A, B)
    }

    #[test]
    fn four_cycle_bag() {
        // Bag = whole 4-cycle: R1(A,B) R2(B,C) R3(C,D) R4(D,A).
        let mut bj = BagJoin::new(
            4,
            &[
                vec![(0, 0), (1, 1)],
                vec![(1, 0), (2, 1)],
                vec![(2, 0), (3, 1)],
                vec![(3, 0), (0, 1)],
            ],
        );
        bj.insert_and_delta(0, &[1, 2]);
        bj.insert_and_delta(1, &[2, 3]);
        bj.insert_and_delta(2, &[3, 4]);
        let d = bj.insert_and_delta(3, &[4, 1]).unwrap();
        assert_eq!(d, vec![vec![1, 2, 3, 4]]);
    }
}
