//! The "sampling over joins" facade: an index you update and query.
//!
//! This is the paper's *first* problem variant (§2.1): an index over a
//! growing database that can, at any moment, draw a fresh uniform sample of
//! the current `Q(R)` — update time `O(log N)`, sampling time `O(log N)`
//! expected (Theorem 4.2 operations (1)–(2)). The reservoir driver solves
//! the continuous-maintenance variant; this facade serves ad-hoc sampling
//! (e.g. "give me 100 fresh samples right now").

use rsj_common::rng::RsjRng;
use rsj_common::{TupleId, Value};
use rsj_index::{DynamicIndex, FullSampler, IndexOptions};
use rsj_query::Query;

/// A dynamic index supporting uniform sampling of the full join result.
pub struct DynamicSampleIndex {
    index: DynamicIndex,
    sampler: FullSampler,
    rng: RsjRng,
}

impl DynamicSampleIndex {
    /// Creates an empty index for an acyclic query.
    pub fn new(
        query: Query,
        seed: u64,
    ) -> Result<DynamicSampleIndex, rsj_index::dynamic::IndexError> {
        Ok(DynamicSampleIndex {
            index: DynamicIndex::new(query, IndexOptions::default())?,
            sampler: FullSampler::default(),
            rng: RsjRng::seed_from_u64(seed),
        })
    }

    /// Inserts a tuple (`O(log N)` amortized).
    pub fn insert(&mut self, rel: usize, tuple: &[Value]) -> Option<TupleId> {
        self.index.insert(rel, tuple)
    }

    /// Inserts a delta batch of tuples in arrival order, returning the
    /// number accepted (duplicates skipped).
    pub fn insert_batch(&mut self, batch: &[rsj_storage::InputTuple]) -> u64 {
        self.index.insert_batch(batch)
    }

    /// Deletes a tuple (`O(log N)` amortized); subsequent [`Self::sample`]
    /// draws are uniform over the post-delete `Q(R)`. Deleting an absent
    /// tuple is a no-op returning `None`.
    pub fn delete(&mut self, rel: usize, tuple: &[Value]) -> Option<TupleId> {
        self.index.delete(rel, tuple)
    }

    /// Draws one uniform sample of `Q(R)`, `None` when the result is empty.
    /// `O(log N)` expected.
    pub fn sample(&mut self) -> Option<Vec<Value>> {
        let mut out = Vec::new();
        self.sample_into(&mut out).then_some(out)
    }

    /// Draws one uniform sample into a caller-provided buffer (cleared and
    /// refilled); returns `false` when the result is empty. Callers that
    /// sample in a loop can reuse one buffer instead of allocating per
    /// sample.
    pub fn sample_into(&mut self, out: &mut Vec<Value>) -> bool {
        match self.sampler.sample(&self.index, &mut self.rng) {
            Some(r) => {
                self.index.materialize_into(&r, out);
                true
            }
            None => false,
        }
    }

    /// Draws `n` independent uniform samples (with replacement).
    pub fn sample_many(&mut self, n: usize) -> Vec<Vec<Value>> {
        (0..n).filter_map(|_| self.sample()).collect()
    }

    /// Upper bound on `|Q(R)|` (within the density constant).
    pub fn result_size_bound(&self) -> u128 {
        self.sampler.implicit_size(&self.index)
    }

    /// Unbiased estimate of `|Q(R)|` from `trials` sampling probes
    /// (see [`FullSampler::estimate_result_size`]).
    pub fn estimate_result_size(&mut self, trials: usize) -> f64 {
        self.sampler
            .estimate_result_size(&self.index, &mut self.rng, trials)
    }

    /// The underlying index.
    pub fn index(&self) -> &DynamicIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::stats::{chi_square_critical, chi_square_uniform};
    use rsj_common::FxHashMap;
    use rsj_query::QueryBuilder;

    #[test]
    fn ad_hoc_sampling_uniform() {
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        let mut ix = DynamicSampleIndex::new(qb.build().unwrap(), 1).unwrap();
        // Skewed: y=1 has 4 R-tuples and 1 S-tuple; y=2 has 1 and 3.
        for x in 0..4u64 {
            ix.insert(0, &[x, 1]);
        }
        ix.insert(1, &[1, 100]);
        ix.insert(0, &[9, 2]);
        for z in 0..3u64 {
            ix.insert(1, &[2, 200 + z]);
        }
        // 4*1 + 1*3 = 7 results.
        let mut counts: FxHashMap<Vec<u64>, u64> = FxHashMap::default();
        for s in ix.sample_many(14_000) {
            *counts.entry(s).or_default() += 1;
        }
        assert_eq!(counts.len(), 7);
        let obs: Vec<u64> = counts.values().copied().collect();
        let (stat, df) = chi_square_uniform(&obs);
        assert!(stat < chi_square_critical(df, 0.0001), "chi2={stat}");
    }

    #[test]
    fn size_estimation_two_table() {
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        let mut ix = DynamicSampleIndex::new(qb.build().unwrap(), 3).unwrap();
        for x in 0..20u64 {
            ix.insert(0, &[x, x % 4]);
        }
        for z in 0..12u64 {
            ix.insert(1, &[z % 4, z]);
        }
        // Exact: each y in 0..4 has 5 R-tuples and 3 S-tuples => 60.
        let est = ix.estimate_result_size(5000);
        assert!((est - 60.0).abs() < 8.0, "est {est}");
    }

    #[test]
    fn batch_insert_matches_loop() {
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        let q = qb.build().unwrap();
        let batch: Vec<rsj_storage::InputTuple> = vec![
            rsj_storage::InputTuple::new(0, vec![1, 2]),
            rsj_storage::InputTuple::new(1, vec![2, 3]),
            rsj_storage::InputTuple::new(1, vec![2, 3]), // duplicate
        ];
        let mut ix = DynamicSampleIndex::new(q, 5).unwrap();
        assert_eq!(ix.insert_batch(&batch), 2);
        assert_eq!(ix.sample(), Some(vec![1, 2, 3]));
    }

    #[test]
    fn deletes_flow_through_the_facade() {
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        let mut ix = DynamicSampleIndex::new(qb.build().unwrap(), 7).unwrap();
        ix.insert(0, &[1, 2]);
        ix.insert(1, &[2, 3]);
        ix.insert(1, &[2, 4]);
        assert!(ix.sample().is_some());
        assert!(ix.delete(1, &[2, 3]).is_some());
        assert!(ix.delete(1, &[2, 3]).is_none()); // absent: no-op
        for _ in 0..50 {
            assert_eq!(ix.sample(), Some(vec![1, 2, 4]));
        }
        assert!(ix.delete(0, &[1, 2]).is_some());
        assert!(ix.sample().is_none());
    }

    #[test]
    fn interleaving_updates_and_samples() {
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        let mut ix = DynamicSampleIndex::new(qb.build().unwrap(), 2).unwrap();
        assert!(ix.sample().is_none());
        ix.insert(0, &[1, 2]);
        assert!(ix.sample().is_none());
        ix.insert(1, &[2, 3]);
        assert_eq!(ix.sample(), Some(vec![1, 2, 3]));
        ix.insert(1, &[2, 4]);
        let s = ix.sample().unwrap();
        assert!(s == vec![1, 2, 3] || s == vec![1, 2, 4]);
        assert!(ix.result_size_bound() >= 2);
    }
}
