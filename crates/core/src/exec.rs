//! The executor layer: one uniform interface over every join-sampling
//! engine.
//!
//! The paper's evaluation (§6) compares seven engines — `RSJoin`,
//! `RSJoin_opt`, the cyclic GHD driver, and the `NaiveRebuild` / `SJoin` /
//! `SJoin_opt` / `SymmetricHashJoin` baselines. Each historically exposed
//! its own ad-hoc `process` method, so every test, bench and example
//! re-implemented the same driver loop per engine. [`JoinSampler`] is the
//! shared operator interface: feed original-stream tuples in arrival
//! order, read back the current uniform sample, inspect instrumentation.
//!
//! Implementations for the three paper engines live here; the baselines
//! implement the trait in `rsj-baselines`, and the `Engine` factory that
//! constructs any of the seven behind `Box<dyn JoinSampler>` lives in the
//! `rsjoin` facade crate.

use crate::cyclic::CyclicReservoirJoin;
use crate::fk_runtime::FkReservoirJoin;
use crate::reservoir_join::ReservoirJoin;
use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::Value;
use rsj_query::Query;
use rsj_storage::{ColumnarBatch, InputTuple, OpStream, StreamOp, TupleStream};

/// Uniform instrumentation snapshot across engines.
///
/// Every field is optional: engines report what they actually measure
/// (`None` never means zero, it means "not tracked by this engine").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SamplerStats {
    /// Distinct tuples accepted (set semantics). On an insert-only stream
    /// this is the paper's `N`; under turnstile streams subtract
    /// [`deletes`](SamplerStats::deletes) for the live count.
    pub inserts: Option<u64>,
    /// Tuples deleted (present at deletion time; absent-tuple deletes are
    /// no-ops and not counted). Always zero for insert-only engines.
    pub deletes: Option<u64>,
    /// Predicate-evaluating reservoir stops, each costing one retrieve.
    pub reservoir_stops: Option<u64>,
    /// Estimated heap footprint in bytes (index + reservoir).
    pub heap_bytes: Option<usize>,
    /// Exact `|Q(R)|` when the engine maintains it (SJoin family,
    /// symmetric hash join).
    pub exact_results: Option<u128>,
    /// Worker restarts performed by a supervising executor (sharded
    /// executor) after fault-induced deaths.
    pub restarts: Option<u64>,
    /// Transient I/O errors absorbed by retry/backoff in the durability
    /// layer.
    pub retries: Option<u64>,
    /// Degradation indicator: dead shards past the restart budget, or `1`
    /// when a durability wrapper is serving with logging marked lost.
    pub degraded: Option<u64>,
}

/// A [`StreamOp::Delete`] was fed to an engine that only supports
/// insert-only streams (see [`JoinSampler::supports_deletes`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeleteUnsupported {
    /// [`JoinSampler::name`] of the rejecting engine.
    pub engine: &'static str,
}

impl std::fmt::Display for DeleteUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} is insert-only: it cannot process StreamOp::Delete",
            self.engine
        )
    }
}

impl std::error::Error for DeleteUnsupported {}

/// A streaming join-sampling engine: maintains `k` uniform samples without
/// replacement of `Q(R)` while tuples of `R` stream in.
///
/// The unit of work is [`process`](JoinSampler::process): one tuple of the
/// *original* query's stream. Engines that internally rewrite the query
/// (foreign-key combination, GHD bag-level queries) still accept original
/// relation indices and translate internally; their samples are tuples of
/// [`output_query`](JoinSampler::output_query), which may order attributes
/// differently from the original. [`samples_named`](JoinSampler::samples_named)
/// is the engine-independent view used for cross-engine comparison.
pub trait JoinSampler {
    /// Short display name (`"RSJoin"`, `"SJoin_opt"`, ...).
    fn name(&self) -> &'static str;

    /// The query whose attribute ids index the rows of
    /// [`samples`](JoinSampler::samples). For rewriting engines this is
    /// the rewritten/bag-level query; attribute *names* always match the
    /// original query's.
    fn output_query(&self) -> &Query;

    /// Feeds one tuple of the original stream. Duplicate tuples are no-ops
    /// (set semantics).
    fn process(&mut self, rel: usize, tuple: &[Value]);

    /// Feeds a delta batch of original-stream tuples in arrival order.
    ///
    /// Semantically identical to calling [`process`](JoinSampler::process)
    /// per tuple (samples are byte-identical for a fixed seed). The
    /// sharded executor's workers feed each channel batch to their inner
    /// engine through this entry point, so the `RSJoin` family keeps its
    /// projection scratch and materialization buffers hot across the
    /// whole batch.
    fn process_batch(&mut self, batch: &[InputTuple]) {
        for t in batch {
            self.process(t.relation, &t.values);
        }
    }

    /// Feeds an entire stream in arrival order.
    fn process_stream(&mut self, stream: &TupleStream) {
        self.process_batch(stream.tuples());
    }

    /// Feeds a columnar (struct-of-arrays) batch.
    ///
    /// The default adapter shreds the batch back to rows in arrival order
    /// through [`process`](JoinSampler::process) — byte-identical to having
    /// fed the source rows directly, so every engine accepts columnar
    /// ingest. Engines with a columnar fast path (the `RSJoin` family, the
    /// sharded executor) override it; see ARCHITECTURE.md, "Columnar
    /// ingest".
    fn process_columnar(&mut self, batch: &ColumnarBatch) {
        batch.shred(|rel, t| self.process(rel, t));
    }

    /// Whether this engine accepts [`StreamOp::Delete`] — the capability
    /// probe of the update-model contract (see ARCHITECTURE.md, "Update
    /// model"). Insert-only engines keep the default `false` and
    /// [`process_op`](JoinSampler::process_op) rejects deletes for them.
    fn supports_deletes(&self) -> bool {
        false
    }

    /// Feeds one turnstile stream op. Inserts behave exactly like
    /// [`process`](JoinSampler::process); deletes remove the tuple (set
    /// semantics — deleting an absent tuple is a no-op) and repair the
    /// maintained sample so it stays uniform over the post-delete `Q(R)`.
    ///
    /// The default implementation handles inserts and errors on deletes;
    /// fully-dynamic engines override it together with
    /// [`supports_deletes`](JoinSampler::supports_deletes).
    fn process_op(&mut self, op: &StreamOp) -> Result<(), DeleteUnsupported> {
        match op {
            StreamOp::Insert(t) => {
                self.process(t.relation, &t.values);
                Ok(())
            }
            StreamOp::Delete(_) => Err(DeleteUnsupported {
                engine: self.name(),
            }),
        }
    }

    /// Feeds a batch of turnstile ops in arrival order. The batch is
    /// atomic with respect to capability: it is pre-scanned, and a batch
    /// containing any delete an insert-only engine cannot process is
    /// rejected *before any op is applied*, leaving the sampler
    /// byte-identical to its pre-batch state (the same contract the
    /// service layer enforces per batch).
    ///
    /// Delete-free windows are routed through the columnar ingest path
    /// ([`process_columnar`](JoinSampler::process_columnar)) — identical
    /// samples and stats, batch-amortized hashing for engines with the
    /// fast path. Windows containing any delete stay on the per-op path
    /// (the columnar layout is insert-only).
    fn process_op_batch(&mut self, ops: &[StreamOp]) -> Result<(), DeleteUnsupported> {
        if let Some(batch) = ColumnarBatch::from_insert_ops(ops) {
            self.process_columnar(&batch);
            return Ok(());
        }
        // The batch contains at least one delete: reject it up front if
        // this engine is insert-only, so no prefix of the batch lands.
        if !self.supports_deletes() {
            return Err(DeleteUnsupported {
                engine: self.name(),
            });
        }
        for op in ops {
            self.process_op(op)?;
        }
        Ok(())
    }

    /// Feeds an entire turnstile stream in arrival order.
    fn process_op_stream(&mut self, stream: &OpStream) -> Result<(), DeleteUnsupported> {
        self.process_op_batch(stream.ops())
    }

    /// Re-evaluates the engine's execution plan against statistics
    /// observed so far and adapts it — for the `RSJoin` family, the
    /// adaptive re-rooting hook (see `rsj_core::reservoir_join`): a
    /// cost-model pass over the live stored relations that may switch the
    /// sampling root in place or rebuild the dynamic index into a better
    /// join-tree orientation, repopulating the reservoir exactly.
    ///
    /// Returns `true` when anything about the plan changed. The default is
    /// a no-op for engines without plan choice (the exact-count baselines,
    /// the two-table symmetric join).
    fn replan(&mut self) -> bool {
        false
    }

    /// The current samples as materialized full-width value tuples of
    /// [`output_query`](JoinSampler::output_query): uniform without
    /// replacement over `Q(R)`, fewer than `k` while `|Q(R)| < k`.
    ///
    /// Returns an owned vector because some engines materialize on demand;
    /// hot paths needing zero-copy access should use the engine's inherent
    /// accessors.
    fn samples(&self) -> Vec<Vec<Value>>;

    /// Reservoir capacity `k`.
    fn k(&self) -> usize;

    /// Instrumentation snapshot; engines fill the fields they track.
    fn stats(&self) -> SamplerStats {
        SamplerStats::default()
    }

    /// Whether this engine supports full-state snapshot/restore — the
    /// capability probe of the durability layer (see ARCHITECTURE.md,
    /// "Durability"). Engines that keep the default `false` cannot be
    /// wrapped in the facade's `Persistent` checkpoint/WAL driver.
    fn supports_snapshot(&self) -> bool {
        false
    }

    /// Serializes the engine's complete dynamic state, or `None` for
    /// engines without snapshot support. The encoding captures everything
    /// future behavior depends on — index physical layout, sample slots,
    /// RNG positions, counters — so restoring it into a freshly built
    /// engine with identical construction parameters reproduces the
    /// original byte-for-byte on any further stream.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state produced by
    /// [`snapshot_state`](JoinSampler::snapshot_state) into `self`, which
    /// must have been built with the same construction parameters (query,
    /// `k`, seed, options). Any prior dynamic state of `self` is
    /// discarded. The default rejects — insert-only engines without the
    /// capability stay honest about it.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let _ = bytes;
        Err(CodecError::Corrupt(
            "engine does not support state snapshots",
        ))
    }

    /// Samples as sorted `(attribute name, value)` pairs — identical
    /// across engines regardless of internal attribute order, so
    /// cross-engine tests compare these.
    fn samples_named(&self) -> Vec<Vec<(String, Value)>> {
        let q = self.output_query();
        self.samples()
            .iter()
            .map(|s| {
                let mut kv: Vec<(String, Value)> = q
                    .attr_names()
                    .iter()
                    .cloned()
                    .zip(s.iter().copied())
                    .collect();
                kv.sort();
                kv
            })
            .collect()
    }
}

/// Boxed engines forward every method to the boxee, so `Box<dyn
/// JoinSampler + Send>` (what the `Engine` factory hands out) satisfies
/// generic bounds like the facade's `Persistent<S: JoinSampler>` without
/// unwrapping.
impl<S: JoinSampler + ?Sized> JoinSampler for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn output_query(&self) -> &Query {
        (**self).output_query()
    }

    fn process(&mut self, rel: usize, tuple: &[Value]) {
        (**self).process(rel, tuple)
    }

    fn process_batch(&mut self, batch: &[InputTuple]) {
        (**self).process_batch(batch)
    }

    fn process_stream(&mut self, stream: &TupleStream) {
        (**self).process_stream(stream)
    }

    fn process_columnar(&mut self, batch: &ColumnarBatch) {
        (**self).process_columnar(batch)
    }

    fn supports_deletes(&self) -> bool {
        (**self).supports_deletes()
    }

    fn process_op(&mut self, op: &StreamOp) -> Result<(), DeleteUnsupported> {
        (**self).process_op(op)
    }

    fn process_op_batch(&mut self, ops: &[StreamOp]) -> Result<(), DeleteUnsupported> {
        (**self).process_op_batch(ops)
    }

    fn process_op_stream(&mut self, stream: &OpStream) -> Result<(), DeleteUnsupported> {
        (**self).process_op_stream(stream)
    }

    fn replan(&mut self) -> bool {
        (**self).replan()
    }

    fn samples(&self) -> Vec<Vec<Value>> {
        (**self).samples()
    }

    fn k(&self) -> usize {
        (**self).k()
    }

    fn stats(&self) -> SamplerStats {
        (**self).stats()
    }

    fn supports_snapshot(&self) -> bool {
        (**self).supports_snapshot()
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        (**self).snapshot_state()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        (**self).restore_state(bytes)
    }

    fn samples_named(&self) -> Vec<Vec<(String, Value)>> {
        (**self).samples_named()
    }
}

impl JoinSampler for ReservoirJoin {
    fn name(&self) -> &'static str {
        "RSJoin"
    }

    fn output_query(&self) -> &Query {
        self.index().query()
    }

    fn process(&mut self, rel: usize, tuple: &[Value]) {
        ReservoirJoin::process(self, rel, tuple);
    }

    fn process_batch(&mut self, batch: &[InputTuple]) {
        ReservoirJoin::process_batch(self, batch);
    }

    /// Columnar fast path: column-hashed dedup, per-tuple application —
    /// byte-identical samples to the row path.
    fn process_columnar(&mut self, batch: &ColumnarBatch) {
        ReservoirJoin::process_columnar(self, batch);
    }

    fn replan(&mut self) -> bool {
        ReservoirJoin::replan(self)
    }

    fn samples(&self) -> Vec<Vec<Value>> {
        ReservoirJoin::samples(self).to_vec()
    }

    fn k(&self) -> usize {
        ReservoirJoin::k(self)
    }

    /// Fully dynamic: deletions mirror insertions in the index and repair
    /// the reservoir by eviction-and-backfill (see
    /// `rsj_core::reservoir_join`).
    fn supports_deletes(&self) -> bool {
        true
    }

    fn process_op(&mut self, op: &StreamOp) -> Result<(), DeleteUnsupported> {
        match op {
            StreamOp::Insert(t) => {
                ReservoirJoin::process(self, t.relation, &t.values);
            }
            StreamOp::Delete(t) => {
                ReservoirJoin::delete(self, t.relation, &t.values);
            }
        }
        Ok(())
    }

    fn stats(&self) -> SamplerStats {
        SamplerStats {
            inserts: Some(self.inserts()),
            deletes: Some(self.deletes()),
            reservoir_stops: Some(self.reservoir_stops()),
            heap_bytes: Some(self.heap_size()),
            exact_results: None,
            ..SamplerStats::default()
        }
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut enc = Encoder::new();
        ReservoirJoin::snapshot_to(self, &mut enc);
        Some(enc.into_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut dec = Decoder::new(bytes);
        ReservoirJoin::restore_from_snapshot(self, &mut dec)?;
        dec.finish()
    }
}

impl JoinSampler for FkReservoirJoin {
    fn name(&self) -> &'static str {
        "RSJoin_opt"
    }

    fn output_query(&self) -> &Query {
        self.rewritten_query()
    }

    fn process(&mut self, rel: usize, tuple: &[Value]) {
        FkReservoirJoin::process(self, rel, tuple);
    }

    /// Re-plans the *rewritten* query's orientation (the foreign-key
    /// combiner in front is plan-independent).
    fn replan(&mut self) -> bool {
        self.inner_mut().replan()
    }

    fn samples(&self) -> Vec<Vec<Value>> {
        FkReservoirJoin::samples(self).to_vec()
    }

    fn k(&self) -> usize {
        self.inner().k()
    }

    /// Fully dynamic since PR 10: the foreign-key combiner is a signed
    /// delta pipeline — retractions withdraw combined tuples (and re-park
    /// rewound facts), and the inner acyclic driver repairs its reservoir
    /// by eviction-and-backfill.
    fn supports_deletes(&self) -> bool {
        true
    }

    fn process_op(&mut self, op: &StreamOp) -> Result<(), DeleteUnsupported> {
        match op {
            StreamOp::Insert(t) => {
                FkReservoirJoin::process(self, t.relation, &t.values);
            }
            StreamOp::Delete(t) => {
                FkReservoirJoin::delete(self, t.relation, &t.values);
            }
        }
        Ok(())
    }

    fn stats(&self) -> SamplerStats {
        SamplerStats {
            inserts: Some(self.combiner().inserts()),
            deletes: Some(self.combiner().deletes()),
            reservoir_stops: Some(self.inner().reservoir_stops()),
            heap_bytes: Some(self.heap_size()),
            // Recomputed on demand from the stored relations (O(N) walk —
            // the same pass the delete repair uses), not maintained per op.
            exact_results: Some(self.exact_result_count()),
            ..SamplerStats::default()
        }
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut enc = Encoder::new();
        FkReservoirJoin::snapshot_to(self, &mut enc);
        Some(enc.into_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut dec = Decoder::new(bytes);
        FkReservoirJoin::restore_from_snapshot(self, &mut dec)?;
        dec.finish()
    }
}

impl JoinSampler for CyclicReservoirJoin {
    fn name(&self) -> &'static str {
        "RSJoin_cyclic"
    }

    fn output_query(&self) -> &Query {
        self.inner().index().query()
    }

    fn process(&mut self, rel: usize, tuple: &[Value]) {
        CyclicReservoirJoin::process(self, rel, tuple);
    }

    /// Re-plans the inner acyclic driver over the *bag-level* query (the
    /// GHD itself stays fixed).
    fn replan(&mut self) -> bool {
        self.inner_mut().replan()
    }

    fn samples(&self) -> Vec<Vec<Value>> {
        CyclicReservoirJoin::samples(self).to_vec()
    }

    fn k(&self) -> usize {
        self.inner().k()
    }

    /// Fully dynamic since PR 10: deletions enumerate the bag's dead delta
    /// and forward it, signed, into the inner acyclic driver's delete path.
    fn supports_deletes(&self) -> bool {
        true
    }

    fn process_op(&mut self, op: &StreamOp) -> Result<(), DeleteUnsupported> {
        match op {
            StreamOp::Insert(t) => {
                CyclicReservoirJoin::process(self, t.relation, &t.values);
            }
            StreamOp::Delete(t) => {
                CyclicReservoirJoin::delete(self, t.relation, &t.values);
            }
        }
        Ok(())
    }

    fn stats(&self) -> SamplerStats {
        SamplerStats {
            inserts: Some(self.inserts()),
            deletes: Some(self.deletes()),
            reservoir_stops: Some(self.inner().reservoir_stops()),
            heap_bytes: Some(self.heap_size()),
            // Recomputed on demand from the bag-level relations (worst
            // case O(N^w), the delete-repair walk), not maintained per op.
            exact_results: Some(self.exact_result_count()),
            ..SamplerStats::default()
        }
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut enc = Encoder::new();
        CyclicReservoirJoin::snapshot_to(self, &mut enc);
        Some(enc.into_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut dec = Decoder::new(bytes);
        CyclicReservoirJoin::restore_from_snapshot(self, &mut dec)?;
        dec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_query::QueryBuilder;

    fn two_table() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        qb.build().unwrap()
    }

    #[test]
    fn trait_object_drives_rsjoin() {
        let mut s: Box<dyn JoinSampler> = Box::new(ReservoirJoin::new(two_table(), 10, 1).unwrap());
        let mut stream = TupleStream::new();
        stream.push(0, vec![1, 2]);
        stream.push(1, vec![2, 3]);
        s.process_stream(&stream);
        assert_eq!(s.samples(), vec![vec![1, 2, 3]]);
        assert_eq!(s.k(), 10);
        assert_eq!(s.name(), "RSJoin");
        assert_eq!(s.stats().inserts, Some(2));
        assert_eq!(s.stats().deletes, Some(0));
    }

    #[test]
    fn op_stream_round_trip_through_trait() {
        let mut s: Box<dyn JoinSampler> = Box::new(ReservoirJoin::new(two_table(), 10, 1).unwrap());
        assert!(s.supports_deletes());
        let mut ops = OpStream::new();
        ops.push_insert(0, vec![1, 2]);
        ops.push_insert(1, vec![2, 3]);
        ops.push_delete(0, vec![1, 2]);
        s.process_op_stream(&ops).unwrap();
        assert!(s.samples().is_empty());
        assert_eq!(s.stats().inserts, Some(2));
        assert_eq!(s.stats().deletes, Some(1));
    }

    /// Minimal insert-only engine: every real engine is fully dynamic now,
    /// so the default-impl contracts (delete rejection, batch atomicity)
    /// are exercised through a stub that keeps the trait defaults.
    struct InsertOnlyStub {
        query: Query,
        applied: Vec<(usize, Vec<Value>)>,
    }

    impl InsertOnlyStub {
        fn new() -> InsertOnlyStub {
            InsertOnlyStub {
                query: two_table(),
                applied: Vec::new(),
            }
        }
    }

    impl JoinSampler for InsertOnlyStub {
        fn name(&self) -> &'static str {
            "InsertOnlyStub"
        }
        fn output_query(&self) -> &Query {
            &self.query
        }
        fn process(&mut self, rel: usize, tuple: &[Value]) {
            self.applied.push((rel, tuple.to_vec()));
        }
        fn samples(&self) -> Vec<Vec<Value>> {
            Vec::new()
        }
        fn k(&self) -> usize {
            1
        }
    }

    #[test]
    fn insert_only_engines_reject_deletes() {
        let mut s: Box<dyn JoinSampler> = Box::new(InsertOnlyStub::new());
        assert!(!s.supports_deletes());
        assert!(s.process_op(&StreamOp::insert(0, vec![1, 2])).is_ok());
        let err = s.process_op(&StreamOp::delete(0, vec![1, 2])).unwrap_err();
        assert_eq!(err.engine, "InsertOnlyStub");
        assert!(err.to_string().contains("insert-only"));
    }

    #[test]
    fn rejected_op_batch_applies_nothing() {
        // Regression: the default `process_op_batch` used to apply ops one
        // at a time, leaving the inserts before a mid-batch unsupported
        // delete applied behind the error. The batch must be atomic with
        // respect to the capability check.
        let mut s = InsertOnlyStub::new();
        let ops = vec![
            StreamOp::insert(0, vec![1, 2]),
            StreamOp::insert(1, vec![2, 3]),
            StreamOp::delete(0, vec![1, 2]),
            StreamOp::insert(0, vec![4, 5]),
        ];
        let err = s.process_op_batch(&ops).unwrap_err();
        assert_eq!(err.engine, "InsertOnlyStub");
        assert!(
            s.applied.is_empty(),
            "rejected batch left partial state: {:?}",
            s.applied
        );
        // Delete-free batches still apply in full.
        s.process_op_batch(&ops[..2]).unwrap();
        assert_eq!(s.applied.len(), 2);
    }

    #[test]
    fn samples_named_is_order_independent() {
        let mut rj = ReservoirJoin::new(two_table(), 10, 1).unwrap();
        JoinSampler::process(&mut rj, 0, &[1, 2]);
        JoinSampler::process(&mut rj, 1, &[2, 3]);
        let named = rj.samples_named();
        assert_eq!(named.len(), 1);
        assert_eq!(
            named[0],
            vec![
                ("X".to_string(), 1),
                ("Y".to_string(), 2),
                ("Z".to_string(), 3)
            ]
        );
    }

    #[test]
    fn insert_only_op_batches_match_columnar_ingest() {
        // A delete-free op batch takes the columnar fast path; the stats
        // and the reservoir bytes must match both an explicit columnar
        // call and tuple-at-a-time processing of the same arrivals.
        let mut rng = rsj_common::rng::RsjRng::seed_from_u64(77);
        let mut ops = Vec::new();
        for _ in 0..300 {
            ops.push(StreamOp::insert(
                rng.index(2),
                vec![rng.below_u64(7), rng.below_u64(7)],
            ));
        }
        let mut via_ops = ReservoirJoin::new(two_table(), 8, 5).unwrap();
        let mut via_cols = ReservoirJoin::new(two_table(), 8, 5).unwrap();
        let mut via_rows = ReservoirJoin::new(two_table(), 8, 5).unwrap();
        JoinSampler::process_op_batch(&mut via_ops, &ops).unwrap();
        let batch = ColumnarBatch::from_insert_ops(&ops).expect("insert-only");
        JoinSampler::process_columnar(&mut via_cols, &batch);
        for op in &ops {
            let t = op.tuple();
            via_rows.process(t.relation, &t.values);
        }
        assert_eq!(JoinSampler::stats(&via_ops), JoinSampler::stats(&via_cols));
        assert_eq!(JoinSampler::stats(&via_ops), JoinSampler::stats(&via_rows));
        assert_eq!(via_ops.samples(), via_cols.samples());
        assert_eq!(via_ops.samples(), via_rows.samples());
    }

    #[test]
    fn columnar_reservoir_bytes_match_row_path() {
        // The byte-exactness contract of `ReservoirJoin::process_columnar`:
        // identical reservoir contents (not just distribution) regardless
        // of how the stream is chunked into columnar batches.
        for seed in [1u64, 9, 42] {
            let mut rng = rsj_common::rng::RsjRng::seed_from_u64(seed);
            let mut row_engine = ReservoirJoin::new(two_table(), 6, seed).unwrap();
            let mut col_engine = ReservoirJoin::new(two_table(), 6, seed).unwrap();
            let mut rows = Vec::new();
            for _ in 0..600 {
                let rel = rng.index(2);
                let t = vec![rng.below_u64(9), rng.below_u64(9)];
                row_engine.process(rel, &t);
                rows.push(InputTuple::new(rel, t));
            }
            for chunk in rows.chunks(128) {
                JoinSampler::process_columnar(&mut col_engine, &ColumnarBatch::from_rows(chunk));
            }
            assert_eq!(row_engine.samples(), col_engine.samples(), "seed={seed}");
            assert_eq!(
                JoinSampler::stats(&row_engine),
                JoinSampler::stats(&col_engine),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn cyclic_engine_through_trait() {
        let mut qb = QueryBuilder::new();
        qb.relation("R1", &["X", "Y"]);
        qb.relation("R2", &["Y", "Z"]);
        qb.relation("R3", &["Z", "X"]);
        let q = qb.build().unwrap();
        let mut s: Box<dyn JoinSampler> = Box::new(CyclicReservoirJoin::new(q, 10, 1).unwrap());
        s.process(0, &[1, 2]);
        s.process(1, &[2, 3]);
        s.process(2, &[3, 1]);
        assert_eq!(s.samples_named().len(), 1);
    }
}
