//! The executor layer: one uniform interface over every join-sampling
//! engine.
//!
//! The paper's evaluation (§6) compares seven engines — `RSJoin`,
//! `RSJoin_opt`, the cyclic GHD driver, and the `NaiveRebuild` / `SJoin` /
//! `SJoin_opt` / `SymmetricHashJoin` baselines. Each historically exposed
//! its own ad-hoc `process` method, so every test, bench and example
//! re-implemented the same driver loop per engine. [`JoinSampler`] is the
//! shared operator interface: feed original-stream tuples in arrival
//! order, read back the current uniform sample, inspect instrumentation.
//!
//! Implementations for the three paper engines live here; the baselines
//! implement the trait in `rsj-baselines`, and the `Engine` factory that
//! constructs any of the seven behind `Box<dyn JoinSampler>` lives in the
//! `rsjoin` facade crate.

use crate::cyclic::CyclicReservoirJoin;
use crate::fk_runtime::FkReservoirJoin;
use crate::reservoir_join::ReservoirJoin;
use rsj_common::Value;
use rsj_query::Query;
use rsj_storage::{InputTuple, TupleStream};

/// Uniform instrumentation snapshot across engines.
///
/// Every field is optional: engines report what they actually measure
/// (`None` never means zero, it means "not tracked by this engine").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SamplerStats {
    /// Distinct tuples accepted (set semantics) — the paper's `N`.
    pub tuples_processed: Option<u64>,
    /// Predicate-evaluating reservoir stops, each costing one retrieve.
    pub reservoir_stops: Option<u64>,
    /// Estimated heap footprint in bytes (index + reservoir).
    pub heap_bytes: Option<usize>,
    /// Exact `|Q(R)|` when the engine maintains it (SJoin family,
    /// symmetric hash join).
    pub exact_results: Option<u128>,
}

/// A streaming join-sampling engine: maintains `k` uniform samples without
/// replacement of `Q(R)` while tuples of `R` stream in.
///
/// The unit of work is [`process`](JoinSampler::process): one tuple of the
/// *original* query's stream. Engines that internally rewrite the query
/// (foreign-key combination, GHD bag-level queries) still accept original
/// relation indices and translate internally; their samples are tuples of
/// [`output_query`](JoinSampler::output_query), which may order attributes
/// differently from the original. [`samples_named`](JoinSampler::samples_named)
/// is the engine-independent view used for cross-engine comparison.
pub trait JoinSampler {
    /// Short display name (`"RSJoin"`, `"SJoin_opt"`, ...).
    fn name(&self) -> &'static str;

    /// The query whose attribute ids index the rows of
    /// [`samples`](JoinSampler::samples). For rewriting engines this is
    /// the rewritten/bag-level query; attribute *names* always match the
    /// original query's.
    fn output_query(&self) -> &Query;

    /// Feeds one tuple of the original stream. Duplicate tuples are no-ops
    /// (set semantics).
    fn process(&mut self, rel: usize, tuple: &[Value]);

    /// Feeds a delta batch of original-stream tuples in arrival order.
    ///
    /// Semantically identical to calling [`process`](JoinSampler::process)
    /// per tuple (samples are byte-identical for a fixed seed). The
    /// sharded executor's workers feed each channel batch to their inner
    /// engine through this entry point, so the `RSJoin` family keeps its
    /// projection scratch and materialization buffers hot across the
    /// whole batch.
    fn process_batch(&mut self, batch: &[InputTuple]) {
        for t in batch {
            self.process(t.relation, &t.values);
        }
    }

    /// Feeds an entire stream in arrival order.
    fn process_stream(&mut self, stream: &TupleStream) {
        self.process_batch(stream.tuples());
    }

    /// The current samples as materialized full-width value tuples of
    /// [`output_query`](JoinSampler::output_query): uniform without
    /// replacement over `Q(R)`, fewer than `k` while `|Q(R)| < k`.
    ///
    /// Returns an owned vector because some engines materialize on demand;
    /// hot paths needing zero-copy access should use the engine's inherent
    /// accessors.
    fn samples(&self) -> Vec<Vec<Value>>;

    /// Reservoir capacity `k`.
    fn k(&self) -> usize;

    /// Instrumentation snapshot; engines fill the fields they track.
    fn stats(&self) -> SamplerStats {
        SamplerStats::default()
    }

    /// Samples as sorted `(attribute name, value)` pairs — identical
    /// across engines regardless of internal attribute order, so
    /// cross-engine tests compare these.
    fn samples_named(&self) -> Vec<Vec<(String, Value)>> {
        let q = self.output_query();
        self.samples()
            .iter()
            .map(|s| {
                let mut kv: Vec<(String, Value)> = q
                    .attr_names()
                    .iter()
                    .cloned()
                    .zip(s.iter().copied())
                    .collect();
                kv.sort();
                kv
            })
            .collect()
    }
}

impl JoinSampler for ReservoirJoin {
    fn name(&self) -> &'static str {
        "RSJoin"
    }

    fn output_query(&self) -> &Query {
        self.index().query()
    }

    fn process(&mut self, rel: usize, tuple: &[Value]) {
        ReservoirJoin::process(self, rel, tuple);
    }

    fn process_batch(&mut self, batch: &[InputTuple]) {
        ReservoirJoin::process_batch(self, batch);
    }

    fn samples(&self) -> Vec<Vec<Value>> {
        ReservoirJoin::samples(self).to_vec()
    }

    fn k(&self) -> usize {
        ReservoirJoin::k(self)
    }

    fn stats(&self) -> SamplerStats {
        SamplerStats {
            tuples_processed: Some(self.tuples_processed()),
            reservoir_stops: Some(self.reservoir_stops()),
            heap_bytes: Some(self.heap_size()),
            exact_results: None,
        }
    }
}

impl JoinSampler for FkReservoirJoin {
    fn name(&self) -> &'static str {
        "RSJoin_opt"
    }

    fn output_query(&self) -> &Query {
        self.rewritten_query()
    }

    fn process(&mut self, rel: usize, tuple: &[Value]) {
        FkReservoirJoin::process(self, rel, tuple);
    }

    fn samples(&self) -> Vec<Vec<Value>> {
        FkReservoirJoin::samples(self).to_vec()
    }

    fn k(&self) -> usize {
        self.inner().k()
    }

    fn stats(&self) -> SamplerStats {
        SamplerStats {
            tuples_processed: Some(self.inner().tuples_processed()),
            reservoir_stops: Some(self.inner().reservoir_stops()),
            heap_bytes: Some(self.heap_size()),
            exact_results: None,
        }
    }
}

impl JoinSampler for CyclicReservoirJoin {
    fn name(&self) -> &'static str {
        "RSJoin_cyclic"
    }

    fn output_query(&self) -> &Query {
        self.inner().index().query()
    }

    fn process(&mut self, rel: usize, tuple: &[Value]) {
        CyclicReservoirJoin::process(self, rel, tuple);
    }

    fn samples(&self) -> Vec<Vec<Value>> {
        CyclicReservoirJoin::samples(self).to_vec()
    }

    fn k(&self) -> usize {
        self.inner().k()
    }

    fn stats(&self) -> SamplerStats {
        SamplerStats {
            // The GHD driver only counts the simulated bag-level stream
            // (`O(N^w)` deltas, via [`CyclicReservoirJoin::bag_tuples`]),
            // not distinct accepted input tuples, so the field stays
            // honest-`None` here.
            tuples_processed: None,
            reservoir_stops: Some(self.inner().reservoir_stops()),
            heap_bytes: Some(self.heap_size()),
            exact_results: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_query::QueryBuilder;

    fn two_table() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        qb.build().unwrap()
    }

    #[test]
    fn trait_object_drives_rsjoin() {
        let mut s: Box<dyn JoinSampler> = Box::new(ReservoirJoin::new(two_table(), 10, 1).unwrap());
        let mut stream = TupleStream::new();
        stream.push(0, vec![1, 2]);
        stream.push(1, vec![2, 3]);
        s.process_stream(&stream);
        assert_eq!(s.samples(), vec![vec![1, 2, 3]]);
        assert_eq!(s.k(), 10);
        assert_eq!(s.name(), "RSJoin");
        assert_eq!(s.stats().tuples_processed, Some(2));
    }

    #[test]
    fn samples_named_is_order_independent() {
        let mut rj = ReservoirJoin::new(two_table(), 10, 1).unwrap();
        JoinSampler::process(&mut rj, 0, &[1, 2]);
        JoinSampler::process(&mut rj, 1, &[2, 3]);
        let named = rj.samples_named();
        assert_eq!(named.len(), 1);
        assert_eq!(
            named[0],
            vec![
                ("X".to_string(), 1),
                ("Y".to_string(), 2),
                ("Z".to_string(), 3)
            ]
        );
    }

    #[test]
    fn cyclic_engine_through_trait() {
        let mut qb = QueryBuilder::new();
        qb.relation("R1", &["X", "Y"]);
        qb.relation("R2", &["Y", "Z"]);
        qb.relation("R3", &["Z", "X"]);
        let q = qb.build().unwrap();
        let mut s: Box<dyn JoinSampler> = Box::new(CyclicReservoirJoin::new(q, 10, 1).unwrap());
        s.process(0, &[1, 2]);
        s.process(1, &[2, 3]);
        s.process(2, &[3, 1]);
        assert_eq!(s.samples_named().len(), 1);
    }
}
