//! The sharded parallel execution layer: partition the stream, run one
//! [`JoinSampler`] per shard on its own thread, merge the per-shard
//! reservoirs into one statistically correct sample.
//!
//! # Dataflow
//!
//! ```text
//!                      ┌──────────────┐  batched mpsc channel
//!   input tuple ──────▶│  ShardPlan   │───▶ shard 0: JoinSampler + counter
//!   (rel, values)      │ hash(t[p])%S │───▶ shard 1: JoinSampler + counter
//!                      │  /broadcast  │───▶   ...
//!                      └──────────────┘───▶ shard S-1
//!                                                 │ samples()
//!                                                 ▼
//!                           weighted reservoir union (w_i = |Q_i| exact)
//! ```
//!
//! [`ShardPlan`] picks one **partition attribute** `p` — the join attribute
//! shared by the most relations. Tuples of relations containing `p` are
//! routed to shard `hash(t[p]) mod S`; tuples of the remaining relations
//! are broadcast to every shard (fragment-and-replicate). Because a natural
//! join equates `p` across every relation that contains it, each join
//! result binds `p` to exactly one value and is therefore assembled by
//! exactly one shard: the per-shard result sets `Q_0, …, Q_{S-1}` are
//! disjoint and their union is `Q(R)`.
//!
//! # The merge
//!
//! Each shard `i` carries its population count `w_i = |Q_i|` (maintained
//! exactly by a `JoinCounter` sidecar) next to its `min(k, w_i)`-sample.
//! [`ShardedSampler::samples`] then simulates sequential sampling without
//! replacement from the union: each output slot picks shard `i` with
//! probability `w_i' / Σ w'` (where `w_i'` is shard `i`'s *remaining*
//! population) and takes a uniformly random not-yet-used element of shard
//! `i`'s reservoir. Slot `j` never needs more than `min(k, w_i)` elements
//! from shard `i`, so a full per-shard reservoir is always deep enough, and
//! the draw is exactly a uniform `min(k, |Q(R)|)`-sample without
//! replacement of `Q(R)` whenever the inner engines' reservoirs are
//! uniform without replacement (the `RSJoin` family, `NaiveRebuild`,
//! `SymmetricHashJoin`; `SJoin` samples per-slot with replacement, for
//! which the merged sample keeps per-slot uniformity instead).
//!
//! # Determinism
//!
//! Shard `i` is seeded with `child_seed(seed, i)` and consumes its own
//! partition in arrival order; the merge RNG is seeded from
//! `child_seed(seed, S)` mixed with the routed-tuple count. No decision
//! depends on thread scheduling, so a sharded run is reproducible from the
//! single user seed regardless of interleaving.
//!
//! # Supervision
//!
//! Workers run under `catch_unwind`: a panic in an inner engine (or one
//! injected by [`ShardFault::Panic`]) kills that worker's thread quietly,
//! and the routing side discovers the death through its closed channel. A
//! dead shard is restarted — budget permitting, see [`SupervisorPolicy`] —
//! from its last `ShardImage` snapshot plus a per-shard **replay buffer**
//! of everything routed since, then the replay is re-fed. Because engines
//! are seed-deterministic and batching-independent, the healed worker's
//! state is *byte-identical* to an unfaulted run's, independent of where in
//! the stream the death landed (ARCHITECTURE.md, invariant 9). A shard
//! that dies past its restart budget degrades instead: its ops are counted
//! as lost, reads serve from the surviving shards (still uniform over the
//! surviving population), and [`ShardedSampler::health`] reports
//! [`ShardHealth::Degraded`].

use crate::count::JoinCounter;
use crate::exec::{DeleteUnsupported, JoinSampler, SamplerStats};
use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::hash::fx_hash_words;
use rsj_common::rng::{child_seed, RsjRng};
use rsj_common::{FxHashSet, Value};
use rsj_query::Query;
use rsj_storage::{ColumnarBatch, StreamOp};
use std::cell::RefCell;
use std::hash::Hasher;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Tuples buffered per shard before a channel send.
const BATCH_TUPLES: usize = 1024;

/// Panic payload used by [`ShardFault::Panic`], so tests and panic hooks
/// can tell an injected crash from a real engine bug.
pub const INJECTED_FAULT: &str = "injected shard fault";

/// Construction-path errors of the sharded executor, surfaced through
/// `Engine::build` instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// `shards == 0`: there is nothing to route to.
    NoShards,
    /// The query has no attributes, so no partition attribute exists.
    NoAttributes,
    /// An explicit partition attribute does not exist in the query.
    PartitionAttrOutOfRange {
        /// The requested attribute id.
        attr: usize,
        /// Number of attributes in the query.
        num_attrs: usize,
    },
    /// The inner engine builder failed.
    Build(String),
    /// The OS refused to spawn a worker thread.
    Spawn(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "sharded execution needs at least one shard"),
            ShardError::NoAttributes => write!(f, "query has no attributes"),
            ShardError::PartitionAttrOutOfRange { attr, num_attrs } => write!(
                f,
                "partition attribute {attr} out of range for {num_attrs} attributes"
            ),
            ShardError::Build(e) | ShardError::Spawn(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Restart and snapshot-cadence knobs of the shard supervisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Take a fresh `ShardImage` once a shard's replay buffer holds this
    /// many ops (`0` = never snapshot mid-stream; restarts replay from the
    /// beginning of the stream). Only effective for snapshot-capable inner
    /// engines.
    pub snapshot_every: u64,
    /// Restarts allowed per shard before it degrades. `0` disables healing
    /// entirely — no replay buffer is kept, and any death degrades.
    pub max_restarts: u64,
    /// Hard cap on a shard's replay buffer (ops). Snapshot-capable engines
    /// take an image when they hit it; engines without snapshots become
    /// unhealable past it (their next death degrades).
    pub replay_cap: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> SupervisorPolicy {
        SupervisorPolicy {
            snapshot_every: 8192,
            max_restarts: 3,
            replay_cap: 65536,
        }
    }
}

/// Liveness of a [`ShardedSampler`]'s worker pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Every shard is live (possibly after restarts — a healed shard is
    /// indistinguishable from an unfaulted one).
    Healthy,
    /// One or more shards died past their restart budget. Reads serve from
    /// the survivors: still a uniform sample, but over the surviving
    /// population only.
    Degraded {
        /// Indices of the dead shards.
        dead_shards: Vec<usize>,
        /// Ops routed to dead shards and dropped.
        lost_ops: u64,
    },
}

/// A deterministic fault deliverable to one worker via
/// [`ShardedSampler::inject_fault`] — the shard-side half of the chaos
/// harness (`rsj-testutil`'s `FaultPlan` schedules these from a seed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardFault {
    /// The worker panics (payload [`INJECTED_FAULT`]) after processing
    /// everything routed before the injection point.
    Panic,
    /// The worker sleeps this many milliseconds, simulating a slow shard.
    Stall(u64),
}

/// The partitioning scheme: which attribute to hash on, and where it sits
/// in each relation's schema.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    shards: usize,
    partition_attr: usize,
    /// Per relation: position of the partition attribute in the schema, or
    /// `None` for a broadcast relation.
    positions: Vec<Option<usize>>,
}

impl ShardPlan {
    /// Builds the plan for `query` over `shards` workers: the partition
    /// attribute is the one contained in the most relations (ties resolved
    /// towards the smallest attribute id), so broadcast traffic is
    /// minimized.
    pub fn new(query: &Query, shards: usize) -> Result<ShardPlan, ShardError> {
        let partition_attr = (0..query.num_attrs())
            .max_by_key(|&a| (query.relations_with_attr(a).len(), usize::MAX - a))
            .ok_or(ShardError::NoAttributes)?;
        Self::with_partition_attr(query, shards, partition_attr)
    }

    /// Builds the plan with an explicit partition attribute — how the
    /// cost-based planner's statistics-informed choice
    /// (`rsj_query::plan::partition_attr`, which breaks most-shared ties
    /// towards the highest observed distinct count) reaches the router.
    pub fn with_partition_attr(
        query: &Query,
        shards: usize,
        attr: usize,
    ) -> Result<ShardPlan, ShardError> {
        if shards == 0 {
            return Err(ShardError::NoShards);
        }
        if attr >= query.num_attrs() {
            return Err(ShardError::PartitionAttrOutOfRange {
                attr,
                num_attrs: query.num_attrs(),
            });
        }
        let positions = (0..query.num_relations())
            .map(|r| query.relation(r).position_of(attr))
            .collect();
        Ok(ShardPlan {
            shards,
            partition_attr: attr,
            positions,
        })
    }

    /// Number of shards `S`.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The attribute id the stream is hash-partitioned on.
    pub fn partition_attr(&self) -> usize {
        self.partition_attr
    }

    /// True if tuples of relation `rel` go to every shard.
    pub fn is_broadcast(&self, rel: usize) -> bool {
        self.positions[rel].is_none()
    }

    /// The owning shard of `tuple` in relation `rel`, or `None` if the
    /// relation is broadcast.
    pub fn route(&self, rel: usize, tuple: &[Value]) -> Option<usize> {
        self.positions[rel].map(|pos| {
            let mut h = rsj_common::hash::FxHasher::default();
            h.write_u64(tuple[pos]);
            (h.finish() % self.shards as u64) as usize
        })
    }
}

/// What a worker reports back on a read request.
struct Snapshot {
    samples: Vec<Vec<Value>>,
    population: u128,
    stats: SamplerStats,
}

/// One worker's durable state: the inner engine's snapshot bytes paired
/// with its counter's live-tuple image.
type ShardImage = (Vec<u8>, Vec<u8>);

/// The builder the supervisor re-invokes to construct a replacement engine
/// for a restarted shard.
type BuildFn = Box<dyn Fn(u64) -> Result<Box<dyn JoinSampler + Send>, String> + Send>;

enum Msg {
    Batch(Vec<StreamOp>),
    /// A columnar sub-batch (inserts only): the routing side has already
    /// partitioned it, the worker ingests it through the engine's columnar
    /// path.
    Columnar(ColumnarBatch),
    Read(mpsc::Sender<Snapshot>),
    /// Ask the inner engine to re-evaluate its plan; replies with whether
    /// anything changed.
    Replan(mpsc::Sender<bool>),
    /// Serialize the worker's durable state: the inner engine's snapshot
    /// (`None` if it has no snapshot capability) paired with the counter's
    /// live tuple sets.
    Snapshot(mpsc::Sender<Option<ShardImage>>),
    /// Overlay a previously captured `(engine, counter)` state pair onto
    /// the worker's engine and counter.
    Restore(Vec<u8>, Vec<u8>, mpsc::Sender<Result<(), CodecError>>),
    /// Deliver an injected fault (chaos harness only).
    Chaos(ShardFault),
}

fn worker_loop(
    mut sampler: Box<dyn JoinSampler + Send>,
    mut counter: JoinCounter,
    rx: mpsc::Receiver<Msg>,
) {
    // The population count is recomputed lazily: invalidated by ingest,
    // cached across consecutive reads so `samples()` + `stats()` back to
    // back pay for one count pass, not two.
    let mut cached_count: Option<u128> = None;
    for msg in rx {
        match msg {
            Msg::Batch(batch) => {
                cached_count = None;
                // One batched call into the engine (the RSJoin family keeps
                // its scratch hot across the whole delta batch), then the
                // tuples move into the counter. Deletes were
                // capability-checked on the routing side, so a rejection
                // here is a bug, not a user error.
                sampler
                    .process_op_batch(&batch)
                    .expect("inner engine rejected a delete past the capability check");
                for op in batch {
                    match op {
                        StreamOp::Insert(t) => counter.insert(t.relation, t.values),
                        StreamOp::Delete(t) => counter.remove(t.relation, &t.values),
                    }
                }
            }
            Msg::Columnar(batch) => {
                cached_count = None;
                // The columnar twin of `Msg::Batch`: one batched call into
                // the engine's columnar path, then the tuples move into the
                // counter in arrival order.
                sampler.process_columnar(&batch);
                batch.shred(|rel, values| counter.insert(rel, values.to_vec()));
            }
            Msg::Read(reply) => {
                let population = *cached_count.get_or_insert_with(|| counter.count());
                // The requester may already have hung up (drop mid-read);
                // that is not the worker's problem.
                let _ = reply.send(Snapshot {
                    samples: sampler.samples(),
                    population,
                    stats: sampler.stats(),
                });
            }
            Msg::Replan(reply) => {
                let _ = reply.send(sampler.replan());
            }
            Msg::Snapshot(reply) => {
                let snap = sampler.snapshot_state().map(|engine| {
                    let mut enc = Encoder::new();
                    counter.snapshot_to(&mut enc);
                    (engine, enc.into_bytes())
                });
                let _ = reply.send(snap);
            }
            Msg::Restore(engine, counter_bytes, reply) => {
                cached_count = None;
                let res = sampler.restore_state(&engine).and_then(|()| {
                    let mut dec = Decoder::new(&counter_bytes);
                    counter.restore_from_snapshot(&mut dec)?;
                    dec.finish()
                });
                let _ = reply.send(res);
            }
            Msg::Chaos(fault) => match fault {
                ShardFault::Panic => std::panic::panic_any(INJECTED_FAULT),
                ShardFault::Stall(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            },
        }
    }
}

/// Spawns one supervised worker thread. The `catch_unwind` is what turns a
/// worker panic into a silently closed channel for the routing side to
/// discover, instead of a process-level crash.
fn spawn_worker(
    shard: usize,
    sampler: Box<dyn JoinSampler + Send>,
    counter: JoinCounter,
    rx: mpsc::Receiver<Msg>,
) -> Result<JoinHandle<()>, ShardError> {
    std::thread::Builder::new()
        .name(format!("rsj-shard-{shard}"))
        .spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                worker_loop(sampler, counter, rx)
            }));
        })
        .map_err(|e| ShardError::Spawn(format!("failed to spawn shard worker: {e}")))
}

/// Replay-buffer entries mirror the two channel ingest shapes, so a healed
/// worker sees the same call sequence (batching independence makes the
/// exact chunking irrelevant to the rebuilt state).
enum ReplayEntry {
    Ops(Vec<StreamOp>),
    Columnar(ColumnarBatch),
}

/// One shard's worker plus everything the supervisor needs to resurrect it.
struct Slot {
    tx: mpsc::Sender<Msg>,
    handle: Option<JoinHandle<()>>,
    /// Ops routed but not yet shipped over the channel.
    buf: Vec<StreamOp>,
    /// Last durable image of this worker's state.
    image: Option<ShardImage>,
    /// Everything routed since `image` (or since construction), replayed
    /// into a restarted worker. Always a superset of `buf`.
    replay: Vec<ReplayEntry>,
    /// Ops held in `replay`.
    replay_ops: u64,
    /// Times this shard has been restarted.
    restarts: u64,
    /// Dead past the restart budget: ops are dropped, reads skip it.
    dead: bool,
    /// The replay buffer no longer covers the full history and the engine
    /// cannot snapshot: the next death cannot be healed.
    unhealable: bool,
}

impl Slot {
    fn record_op(&mut self, op: &StreamOp) {
        if let Some(ReplayEntry::Ops(v)) = self.replay.last_mut() {
            v.push(op.clone());
        } else {
            self.replay.push(ReplayEntry::Ops(vec![op.clone()]));
        }
        self.replay_ops += 1;
    }
}

/// Mutable innards behind a `RefCell` so that the read-only trait surface
/// (`samples(&self)`, `stats(&self)`) can flush buffers, synchronize with
/// the workers, and heal dead shards.
struct State {
    slots: Vec<Slot>,
    tuples_routed: u64,
    /// Ops routed to shards that were already degraded.
    lost_ops: u64,
    query: Query,
    seed: u64,
    policy: SupervisorPolicy,
    /// Whether the inner engine can produce a [`ShardImage`].
    snapshot_capable: bool,
    build: BuildFn,
}

impl State {
    fn recording(&self, shard: usize) -> bool {
        self.policy.max_restarts > 0 && !self.slots[shard].unhealable
    }

    fn push(&mut self, shard: usize, op: StreamOp) {
        if self.slots[shard].dead {
            self.lost_ops += 1;
            return;
        }
        if self.recording(shard) {
            self.slots[shard].record_op(&op);
        }
        let slot = &mut self.slots[shard];
        slot.buf.push(op);
        if slot.buf.len() >= BATCH_TUPLES {
            self.flush(shard);
        }
        self.maybe_snapshot(shard);
    }

    /// Ships the shard's pending row buffer. Returns false if the shard is
    /// (or just became) degraded.
    fn flush(&mut self, shard: usize) -> bool {
        if self.slots[shard].dead {
            self.slots[shard].buf.clear();
            return false;
        }
        if self.slots[shard].buf.is_empty() {
            return true;
        }
        let batch = std::mem::take(&mut self.slots[shard].buf);
        let n = batch.len() as u64;
        if self.slots[shard].tx.send(Msg::Batch(batch)).is_ok() {
            return true;
        }
        // Worker died. The batch is already in the replay buffer, so a
        // successful heal resends it.
        if self.on_dead(shard) {
            true
        } else {
            self.lost_ops += n;
            false
        }
    }

    /// Ships a columnar sub-batch to `shard`, flushing the shard's pending
    /// row buffer first so the worker sees tuples in routing order.
    fn send_columnar(&mut self, shard: usize, sub: ColumnarBatch) {
        let n = sub.len() as u64;
        if self.slots[shard].dead {
            self.lost_ops += n;
            return;
        }
        if !self.flush(shard) {
            self.lost_ops += n;
            return;
        }
        if self.recording(shard) {
            self.slots[shard]
                .replay
                .push(ReplayEntry::Columnar(sub.clone()));
            self.slots[shard].replay_ops += n;
        }
        if self.slots[shard].tx.send(Msg::Columnar(sub)).is_err() && !self.on_dead(shard) {
            self.lost_ops += n;
            return;
        }
        self.maybe_snapshot(shard);
    }

    /// Takes a fresh image when the shard's replay buffer hits the snapshot
    /// cadence or the hard cap (see [`SupervisorPolicy`]).
    fn maybe_snapshot(&mut self, shard: usize) {
        if self.policy.max_restarts == 0 {
            return;
        }
        let slot = &self.slots[shard];
        if slot.dead || slot.unhealable {
            return;
        }
        let due = self.policy.snapshot_every > 0 && slot.replay_ops >= self.policy.snapshot_every;
        let overflow = slot.replay_ops >= self.policy.replay_cap;
        if !(due || overflow) {
            return;
        }
        if self.snapshot_capable {
            self.take_image(shard);
        } else if overflow {
            // Replay can no longer cover the full history and the engine
            // cannot snapshot: from here on a death degrades.
            let slot = &mut self.slots[shard];
            slot.unhealable = true;
            slot.replay.clear();
            slot.replay_ops = 0;
        }
    }

    /// Synchronously snapshots one worker and resets its replay buffer.
    fn take_image(&mut self, shard: usize) {
        if !self.flush(shard) {
            return;
        }
        let (rtx, rrx) = mpsc::channel();
        if self.slots[shard].tx.send(Msg::Snapshot(rtx)).is_err() {
            // Died right here; heal (state is image+replay) and let the
            // next cadence check retry the snapshot.
            let _ = self.on_dead(shard);
            return;
        }
        match rrx.recv() {
            Ok(Some(img)) => {
                let slot = &mut self.slots[shard];
                slot.image = Some(img);
                slot.replay.clear();
                slot.replay_ops = 0;
            }
            Ok(None) => {}
            Err(_) => {
                let _ = self.on_dead(shard);
            }
        }
    }

    /// Marks shard `shard` dead and drops its supervision state.
    fn degrade(&mut self, shard: usize) -> bool {
        let slot = &mut self.slots[shard];
        slot.dead = true;
        let lost = slot.buf.len() as u64;
        slot.buf.clear();
        slot.replay.clear();
        slot.replay_ops = 0;
        slot.image = None;
        self.lost_ops += lost;
        false
    }

    /// Handles a dead worker: joins the corpse and, budget permitting,
    /// restarts it from its last image plus the replay buffer. Returns true
    /// when the shard is healthy again; false leaves it degraded.
    fn on_dead(&mut self, shard: usize) -> bool {
        loop {
            if let Some(h) = self.slots[shard].handle.take() {
                let _ = h.join();
            }
            if self.slots[shard].dead {
                return false;
            }
            if self.slots[shard].unhealable
                || self.slots[shard].restarts >= self.policy.max_restarts
            {
                return self.degrade(shard);
            }
            self.slots[shard].restarts += 1;
            let engine = match (self.build)(child_seed(self.seed, shard as u64)) {
                Ok(e) => e,
                Err(_) => return self.degrade(shard),
            };
            let counter = JoinCounter::new(self.query.clone());
            let (tx, rx) = mpsc::channel();
            let handle = match spawn_worker(shard, engine, counter, rx) {
                Ok(h) => h,
                Err(_) => return self.degrade(shard),
            };
            {
                let slot = &mut self.slots[shard];
                slot.tx = tx;
                slot.handle = Some(handle);
                // The buffered tail is a suffix of the replay buffer and is
                // resent with it; drop the duplicate.
                slot.buf.clear();
            }
            if self.rehydrate(shard) {
                return true;
            }
            // The fresh worker died during rehydration (another injected
            // fault, or a corrupt image): loop — the budget bounds this.
        }
    }

    /// Replays image + buffered ops into a freshly restarted shard.
    fn rehydrate(&mut self, shard: usize) -> bool {
        if let Some((engine, counter)) = self.slots[shard].image.clone() {
            let (rtx, rrx) = mpsc::channel();
            if self.slots[shard]
                .tx
                .send(Msg::Restore(engine, counter, rtx))
                .is_err()
            {
                return false;
            }
            match rrx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(_)) | Err(_) => return false,
            }
        }
        for i in 0..self.slots[shard].replay.len() {
            let msg = match &self.slots[shard].replay[i] {
                ReplayEntry::Ops(ops) => Msg::Batch(ops.clone()),
                ReplayEntry::Columnar(b) => Msg::Columnar(b.clone()),
            };
            if self.slots[shard].tx.send(msg).is_err() {
                return false;
            }
        }
        true
    }

    /// Flushes everything, sends one request per live shard in parallel,
    /// and collects the replies — healing (or degrading) shards whose
    /// worker died along the way. `None` entries are degraded shards.
    fn request_all<T>(&mut self, make: &dyn Fn(mpsc::Sender<T>) -> Msg) -> Vec<Option<T>> {
        let n = self.slots.len();
        for s in 0..n {
            self.flush(s);
        }
        let mut pending: Vec<Option<mpsc::Receiver<T>>> = Vec::with_capacity(n);
        for s in 0..n {
            if self.slots[s].dead {
                pending.push(None);
                continue;
            }
            let (rtx, rrx) = mpsc::channel();
            match self.slots[s].tx.send(make(rtx)) {
                Ok(()) => pending.push(Some(rrx)),
                Err(_) => pending.push(None),
            }
        }
        pending
            .into_iter()
            .enumerate()
            .map(|(s, p)| match p {
                Some(rrx) => match rrx.recv() {
                    Ok(v) => Some(v),
                    Err(_) => self.retry_request(s, make),
                },
                None => self.retry_request(s, make),
            })
            .collect()
    }

    /// Heal-and-retry loop for one shard's request; bounded by the restart
    /// budget.
    fn retry_request<T>(
        &mut self,
        shard: usize,
        make: &dyn Fn(mpsc::Sender<T>) -> Msg,
    ) -> Option<T> {
        loop {
            if !self.on_dead(shard) {
                return None;
            }
            let (rtx, rrx) = mpsc::channel();
            if self.slots[shard].tx.send(make(rtx)).is_err() {
                continue;
            }
            match rrx.recv() {
                Ok(v) => return Some(v),
                Err(_) => continue,
            }
        }
    }
}

/// A partition-parallel [`JoinSampler`]: `S` independent inner engines on
/// their own threads, one hash partition of the stream each, merged into a
/// single uniform reservoir on read (see the [module docs](self) for the
/// partitioning, merge, and supervision arguments).
///
/// Constructed directly from any engine builder, or through the factory as
/// `Engine::Sharded { inner, shards }` in the `rsjoin` facade.
pub struct ShardedSampler {
    output_query: Query,
    k: usize,
    merge_seed: u64,
    plan: ShardPlan,
    /// Whether the inner engine accepts deletes, captured at construction
    /// so the routing side can reject turnstile ops *before* they cross a
    /// channel (workers have no error path back to the caller).
    inner_supports_deletes: bool,
    /// Whether the inner engine can serialize its state, captured at
    /// construction for the same reason.
    inner_supports_snapshot: bool,
    state: RefCell<State>,
}

impl ShardedSampler {
    /// Spawns `shards` workers, each owning one inner sampler built by
    /// `build(child_seed(seed, shard))`, under the default
    /// [`SupervisorPolicy`].
    ///
    /// All inner samplers must be instances of the same engine (the merged
    /// sample is materialized in the first one's
    /// [`output_query`](JoinSampler::output_query) attribute order).
    pub fn new<F>(
        query: &Query,
        k: usize,
        seed: u64,
        shards: usize,
        build: F,
    ) -> Result<ShardedSampler, ShardError>
    where
        F: Fn(u64) -> Result<Box<dyn JoinSampler + Send>, String> + Send + 'static,
    {
        Self::with_policy(
            query,
            k,
            seed,
            shards,
            None,
            SupervisorPolicy::default(),
            build,
        )
    }

    /// Like [`ShardedSampler::new`], with an explicit partition attribute
    /// (`None` keeps the most-shared/smallest-id default). The cost-based
    /// planner's `partition_attr` flows in here through the `Engine`
    /// factory.
    pub fn with_partition<F>(
        query: &Query,
        k: usize,
        seed: u64,
        shards: usize,
        partition_attr: Option<usize>,
        build: F,
    ) -> Result<ShardedSampler, ShardError>
    where
        F: Fn(u64) -> Result<Box<dyn JoinSampler + Send>, String> + Send + 'static,
    {
        Self::with_policy(
            query,
            k,
            seed,
            shards,
            partition_attr,
            SupervisorPolicy::default(),
            build,
        )
    }

    /// The fully explicit constructor: partition attribute and supervisor
    /// policy.
    pub fn with_policy<F>(
        query: &Query,
        k: usize,
        seed: u64,
        shards: usize,
        partition_attr: Option<usize>,
        policy: SupervisorPolicy,
        build: F,
    ) -> Result<ShardedSampler, ShardError>
    where
        F: Fn(u64) -> Result<Box<dyn JoinSampler + Send>, String> + Send + 'static,
    {
        let plan = match partition_attr {
            Some(a) => ShardPlan::with_partition_attr(query, shards, a)?,
            None => ShardPlan::new(query, shards)?,
        };
        let build: BuildFn = Box::new(build);
        let mut slots = Vec::with_capacity(shards);
        let mut output_query = None;
        let mut inner_supports_deletes = false;
        let mut inner_supports_snapshot = false;
        for s in 0..shards {
            let sampler = build(child_seed(seed, s as u64)).map_err(ShardError::Build)?;
            if output_query.is_none() {
                output_query = Some(sampler.output_query().clone());
                inner_supports_deletes = sampler.supports_deletes();
                inner_supports_snapshot = sampler.supports_snapshot();
            }
            let counter = JoinCounter::new(query.clone());
            let (tx, rx) = mpsc::channel();
            let handle = spawn_worker(s, sampler, counter, rx)?;
            slots.push(Slot {
                tx,
                handle: Some(handle),
                buf: Vec::new(),
                image: None,
                replay: Vec::new(),
                replay_ops: 0,
                restarts: 0,
                dead: false,
                unhealable: false,
            });
        }
        Ok(ShardedSampler {
            output_query: output_query.expect("shards >= 1"),
            k,
            merge_seed: child_seed(seed, shards as u64),
            inner_supports_deletes,
            inner_supports_snapshot,
            plan,
            state: RefCell::new(State {
                slots,
                tuples_routed: 0,
                lost_ops: 0,
                query: query.clone(),
                seed,
                policy,
                snapshot_capable: inner_supports_snapshot,
                build,
            }),
        })
    }

    /// The partitioning scheme in use.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Liveness of the worker pool: [`ShardHealth::Healthy`] when every
    /// shard is live (restarted-and-healed shards count as healthy),
    /// [`ShardHealth::Degraded`] once any shard died past its budget.
    pub fn health(&self) -> ShardHealth {
        let st = self.state.borrow();
        let dead_shards: Vec<usize> = st
            .slots
            .iter()
            .enumerate()
            .filter_map(|(s, slot)| slot.dead.then_some(s))
            .collect();
        if dead_shards.is_empty() {
            ShardHealth::Healthy
        } else {
            ShardHealth::Degraded {
                dead_shards,
                lost_ops: st.lost_ops,
            }
        }
    }

    /// Delivers a deterministic fault to one worker (chaos harness).
    /// Pending ops routed to the shard are flushed first, so the fault
    /// lands after exactly the ops routed so far — reproducible regardless
    /// of thread scheduling.
    pub fn inject_fault(&mut self, shard: usize, fault: ShardFault) {
        let st = self.state.get_mut();
        if !st.flush(shard) {
            return;
        }
        let _ = st.slots[shard].tx.send(Msg::Chaos(fault));
    }

    /// Routes one op to its owning shard (or every shard for broadcast
    /// relations).
    fn route_op(&mut self, op: StreamOp) {
        let shards = self.plan.shards();
        let route = {
            let t = op.tuple();
            self.plan.route(t.relation, &t.values)
        };
        let st = self.state.get_mut();
        st.tuples_routed += 1;
        match route {
            Some(shard) => st.push(shard, op),
            None => {
                for shard in 0..shards {
                    st.push(shard, op.clone());
                }
            }
        }
    }

    /// Flushes every buffer and snapshots every shard (samples, exact
    /// population, stats) — the synchronization point with the workers.
    /// Degraded shards yield `None`.
    fn snapshots(&self) -> (Vec<Option<Snapshot>>, u64) {
        let mut st = self.state.borrow_mut();
        let snaps = st.request_all(&Msg::Read);
        (snaps, st.tuples_routed)
    }

    /// Restores from a [`snapshot_state`](JoinSampler::snapshot_state)
    /// image taken with a **different** shard count or partition attribute
    /// — the split/merge path of a shard rebalance. The old per-shard
    /// engine images do not transfer across topologies, so the live tuples
    /// recorded by the old shard counters are deduplicated (broadcast
    /// relations register on every old shard), sorted, and replayed through
    /// the new routing as ordinary inserts. The rebuilt sampler has the
    /// exact live `|Q(R)|` and a uniform sample, but not the byte image of
    /// the old run — contrast [`restore_state`](JoinSampler::restore_state),
    /// which is byte-exact and requires an identical topology.
    ///
    /// Call this on a freshly built sampler: replay adds to whatever was
    /// already routed.
    pub fn restore_rebalanced(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut dec = Decoder::new(bytes);
        let shards = dec.seq_len(1)?;
        let _partition_attr = dec.usize()?;
        let _tuples_routed = dec.u64()?;
        let num_relations = self.plan.positions.len();
        let mut union: FxHashSet<(usize, Vec<Value>)> = FxHashSet::default();
        for _ in 0..shards {
            let _engine = dec.bytes()?;
            let counter = dec.bytes()?;
            let mut cdec = Decoder::new(counter);
            let seen = JoinCounter::decode_live(&mut cdec, num_relations)?;
            cdec.finish()?;
            for (rel, side) in seen.into_iter().enumerate() {
                for t in side {
                    union.insert((rel, t));
                }
            }
        }
        dec.finish()?;
        let mut tuples: Vec<(usize, Vec<Value>)> = union.into_iter().collect();
        tuples.sort_unstable();
        for (rel, t) in tuples {
            self.route_op(StreamOp::insert(rel, t));
        }
        Ok(())
    }
}

impl Drop for ShardedSampler {
    fn drop(&mut self) {
        let st = self.state.get_mut();
        // Closing each channel ends its worker loop; join to avoid leaking
        // threads past the sampler's lifetime. Nothing here panics — a
        // worker that died of a panic shows up as `Err` from `join`, which
        // is discarded — so dropping mid-unwind cannot double-panic.
        for slot in st.slots.drain(..) {
            let Slot { tx, handle, .. } = slot;
            drop(tx);
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }
}

impl JoinSampler for ShardedSampler {
    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn output_query(&self) -> &Query {
        &self.output_query
    }

    fn process(&mut self, rel: usize, tuple: &[Value]) {
        self.route_op(StreamOp::insert(rel, tuple.to_vec()));
    }

    /// Routes a whole columnar batch in one pass: every partitioned
    /// relation's partition column is hashed in bulk with
    /// [`fx_hash_words`] — bit-identical to the per-tuple digest
    /// [`ShardPlan::route`] computes — the arrivals are split into
    /// per-shard columnar sub-batches in arrival order, and each non-empty
    /// sub-batch ships over the channel behind the shard's pending row
    /// buffer, so per-shard arrival order matches tuple-at-a-time routing
    /// exactly. The routed-tuple count advances as on the row path, so the
    /// merge RNG (seeded per stream position) is unaffected by which
    /// ingest shape delivered the tuples.
    fn process_columnar(&mut self, batch: &ColumnarBatch) {
        let shards = self.plan.shards();
        // Bulk-hash each partitioned relation's partition column once; a
        // broadcast relation keeps an empty digest column.
        let mut owners: Vec<Vec<u64>> = Vec::with_capacity(batch.num_relations());
        for rel in 0..batch.num_relations() {
            let mut hs = Vec::new();
            if let Some(&Some(pos)) = self.plan.positions.get(rel) {
                fx_hash_words(batch.relation(rel).column(pos), &mut hs);
            }
            owners.push(hs);
        }
        let mut subs: Vec<ColumnarBatch> = (0..shards).map(|_| ColumnarBatch::new()).collect();
        let mut row = Vec::new();
        for &(rel, r) in batch.arrivals() {
            let (rel, r) = (rel as usize, r as usize);
            row.clear();
            batch.relation(rel).write_row(r, &mut row);
            match owners[rel].get(r) {
                Some(&h) => subs[(h % shards as u64) as usize].push(rel, &row),
                None => {
                    for sub in &mut subs {
                        sub.push(rel, &row);
                    }
                }
            }
        }
        let st = self.state.get_mut();
        st.tuples_routed += batch.len() as u64;
        for (shard, sub) in subs.into_iter().enumerate() {
            if !sub.is_empty() {
                st.send_columnar(shard, sub);
            }
        }
    }

    /// The sharded executor is fully dynamic exactly when its inner engine
    /// is: a delete routes like the matching insert (same partition
    /// attribute, same broadcast set), so it reaches precisely the shards
    /// holding the tuple.
    fn supports_deletes(&self) -> bool {
        self.inner_supports_deletes
    }

    fn process_op(&mut self, op: &StreamOp) -> Result<(), DeleteUnsupported> {
        if op.is_delete() && !self.inner_supports_deletes {
            return Err(DeleteUnsupported {
                engine: self.name(),
            });
        }
        self.route_op(op.clone());
        Ok(())
    }

    /// Forwards the re-planning request to every shard's inner engine
    /// (after flushing pending batches, so each worker plans against
    /// everything routed so far). Each shard adapts to *its* partition's
    /// statistics independently; `true` if any shard changed its plan.
    fn replan(&mut self) -> bool {
        let st = self.state.get_mut();
        st.request_all(&Msg::Replan)
            .into_iter()
            .flatten()
            .fold(false, |acc, changed| acc | changed)
    }

    /// The merged sample: a weighted reservoir union of the per-shard
    /// reservoirs (each slot drawn from shard `i` with probability
    /// proportional to its remaining population — see the
    /// [module docs](self)). Degraded shards contribute an empty
    /// population: the draw stays uniform over the surviving shards'
    /// results.
    fn samples(&self) -> Vec<Vec<Value>> {
        let (snaps, routed) = self.snapshots();
        let total: u128 = snaps
            .iter()
            .flatten()
            .fold(0u128, |acc, s| acc.saturating_add(s.population));
        let target = (self.k as u128).min(total) as usize;
        // Deterministic per (seed, stream position); stable across repeated
        // reads at the same position.
        let mut rng = RsjRng::seed_from_u64(child_seed(self.merge_seed, routed));
        let mut remaining: Vec<u128> = snaps
            .iter()
            .map(|s| s.as_ref().map_or(0, |s| s.population))
            .collect();
        let mut avail: Vec<Vec<Vec<Value>>> = snaps
            .into_iter()
            .map(|s| s.map(|s| s.samples).unwrap_or_default())
            .collect();
        let mut out = Vec::with_capacity(target);
        while out.len() < target {
            let live: u128 = remaining.iter().sum();
            if live == 0 {
                break;
            }
            let mut x = rng.below_u128(live);
            let mut i = 0;
            while x >= remaining[i] {
                x -= remaining[i];
                i += 1;
            }
            if avail[i].is_empty() {
                // Only reachable when an inner engine under-fills its
                // reservoir (with-replacement samplers): stop drawing from
                // this shard rather than hand out duplicates.
                remaining[i] = 0;
                continue;
            }
            let j = rng.index(avail[i].len());
            out.push(avail[i].swap_remove(j));
            remaining[i] -= 1;
        }
        out
    }

    fn k(&self) -> usize {
        self.k
    }

    fn supports_snapshot(&self) -> bool {
        self.inner_supports_snapshot
    }

    /// Serializes the sharded topology (shard count, partition attribute,
    /// routed-tuple count) plus each worker's engine snapshot and counter
    /// state — a canonical byte image when the inner engine's own snapshot
    /// is canonical. A degraded sampler has no canonical image and returns
    /// `None`.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        if !self.inner_supports_snapshot {
            return None;
        }
        let mut st = self.state.borrow_mut();
        if st.slots.iter().any(|s| s.dead) {
            return None;
        }
        let imgs = st.request_all(&Msg::Snapshot);
        let mut enc = Encoder::new();
        enc.put_usize(self.plan.shards());
        enc.put_usize(self.plan.partition_attr());
        enc.put_u64(st.tuples_routed);
        for img in imgs {
            let (engine, counter) = img.flatten()?;
            enc.put_bytes(&engine);
            enc.put_bytes(&counter);
        }
        Some(enc.into_bytes())
    }

    /// Byte-exact restore into an identical topology (same shard count and
    /// partition attribute — a rebalance goes through
    /// [`ShardedSampler::restore_rebalanced`] instead). On error the
    /// receiver may be partially overwritten and must be discarded. The
    /// restored pairs double as each shard's `ShardImage`, so the
    /// supervisor can heal from them without a fresh snapshot.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut dec = Decoder::new(bytes);
        let shards = dec.seq_len(1)?;
        let partition_attr = dec.usize()?;
        let routed = dec.u64()?;
        if shards != self.plan.shards() || partition_attr != self.plan.partition_attr() {
            return Err(CodecError::Corrupt(
                "snapshot topology differs; use restore_rebalanced for split/merge",
            ));
        }
        let mut pairs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let engine = dec.bytes()?.to_vec();
            let counter = dec.bytes()?.to_vec();
            pairs.push((engine, counter));
        }
        dec.finish()?;
        let st = self.state.get_mut();
        for (s, (engine, counter)) in pairs.into_iter().enumerate() {
            st.flush(s);
            loop {
                if st.slots[s].dead {
                    return Err(CodecError::Corrupt(
                        "cannot restore into a degraded sharded sampler",
                    ));
                }
                let (rtx, rrx) = mpsc::channel();
                if st.slots[s]
                    .tx
                    .send(Msg::Restore(engine.clone(), counter.clone(), rtx))
                    .is_err()
                {
                    st.on_dead(s);
                    continue;
                }
                match rrx.recv() {
                    Ok(res) => {
                        res?;
                        break;
                    }
                    Err(_) => {
                        st.on_dead(s);
                    }
                }
            }
            let slot = &mut st.slots[s];
            slot.image = Some((engine, counter));
            slot.replay.clear();
            slot.replay_ops = 0;
        }
        st.tuples_routed = routed;
        Ok(())
    }

    /// Aggregated instrumentation: sums across surviving shards (broadcast
    /// tuples are counted once per shard that processed them), plus the
    /// exact result count `Σ |Q_i| = |Q(R)|` the merge maintains anyway,
    /// and the supervisor's restart / degradation counters.
    fn stats(&self) -> SamplerStats {
        let (snaps, _) = self.snapshots();
        let (restarts, dead) = {
            let st = self.state.borrow();
            (
                st.slots.iter().map(|s| s.restarts).sum::<u64>(),
                st.slots.iter().filter(|s| s.dead).count() as u64,
            )
        };
        let alive: Vec<&Snapshot> = snaps.iter().flatten().collect();
        let sum_opt = |f: &dyn Fn(&SamplerStats) -> Option<u64>| {
            alive
                .iter()
                .filter_map(|s| f(&s.stats))
                .fold(None, |acc: Option<u64>, v| {
                    Some(acc.unwrap_or(0).saturating_add(v))
                })
        };
        SamplerStats {
            inserts: sum_opt(&|s| s.inserts),
            deletes: sum_opt(&|s| s.deletes),
            reservoir_stops: sum_opt(&|s| s.reservoir_stops),
            heap_bytes: alive
                .iter()
                .filter_map(|s| s.stats.heap_bytes)
                .fold(None, |acc: Option<usize>, v| {
                    Some(acc.unwrap_or(0).saturating_add(v))
                }),
            exact_results: Some(
                alive
                    .iter()
                    .fold(0u128, |acc, s| acc.saturating_add(s.population)),
            ),
            restarts: Some(restarts),
            retries: None,
            degraded: Some(dead),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservoir_join::ReservoirJoin;
    use rsj_common::{FxHashMap, FxHashSet};
    use rsj_query::QueryBuilder;
    use rsj_storage::TupleStream;

    fn two_table() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        qb.build().unwrap()
    }

    fn line3() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("G1", &["A", "B"]);
        qb.relation("G2", &["B", "C"]);
        qb.relation("G3", &["C", "D"]);
        qb.build().unwrap()
    }

    fn triangle() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("R1", &["X", "Y"]);
        qb.relation("R2", &["Y", "Z"]);
        qb.relation("R3", &["Z", "X"]);
        qb.build().unwrap()
    }

    fn sharded_with_policy(
        query: &Query,
        k: usize,
        seed: u64,
        shards: usize,
        policy: SupervisorPolicy,
    ) -> ShardedSampler {
        let q = query.clone();
        ShardedSampler::with_policy(query, k, seed, shards, None, policy, move |s| {
            ReservoirJoin::new(q.clone(), k, s)
                .map(|e| Box::new(e) as Box<dyn JoinSampler + Send>)
                .map_err(|e| e.to_string())
        })
        .unwrap()
    }

    fn sharded_rsjoin(query: &Query, k: usize, seed: u64, shards: usize) -> ShardedSampler {
        sharded_with_policy(query, k, seed, shards, SupervisorPolicy::default())
    }

    fn random_stream(rels: usize, n: usize, dom: u64, seed: u64) -> TupleStream {
        let mut rng = RsjRng::seed_from_u64(seed);
        let mut s = TupleStream::new();
        for _ in 0..n {
            s.push(
                rng.index(rels),
                vec![rng.below_u64(dom), rng.below_u64(dom)],
            );
        }
        s
    }

    /// Replaces the default panic hook with one that stays silent for
    /// injected chaos faults, so supervision tests don't spray backtraces.
    fn quiet_injected_panics() {
        use std::sync::Once;
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains(INJECTED_FAULT));
                if !injected {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn plan_prefers_the_most_shared_attribute() {
        // Two-table: Y is in both relations; nothing is broadcast.
        let plan = ShardPlan::new(&two_table(), 4).unwrap();
        assert!(!plan.is_broadcast(0));
        assert!(!plan.is_broadcast(1));
        // Line-3: B and C tie at two relations each; the smaller attr id
        // (B) wins, G3 is broadcast.
        let plan = ShardPlan::new(&line3(), 4).unwrap();
        assert_eq!(plan.partition_attr(), 1, "B");
        assert!(!plan.is_broadcast(0));
        assert!(!plan.is_broadcast(1));
        assert!(plan.is_broadcast(2));
    }

    #[test]
    fn routing_is_consistent_on_the_partition_attribute() {
        let plan = ShardPlan::new(&two_table(), 7).unwrap();
        for y in 0..50u64 {
            // R(X,Y) routes on position 1, S(Y,Z) on position 0: same Y
            // must land on the same shard.
            let a = plan.route(0, &[123, y]).unwrap();
            let b = plan.route(1, &[y, 456]).unwrap();
            assert_eq!(a, b, "y={y}");
            assert!(a < 7);
        }
    }

    #[test]
    fn construction_errors_are_typed() {
        let q = two_table();
        assert_eq!(ShardPlan::new(&q, 0).unwrap_err(), ShardError::NoShards);
        assert_eq!(
            ShardPlan::with_partition_attr(&q, 2, 99).unwrap_err(),
            ShardError::PartitionAttrOutOfRange {
                attr: 99,
                num_attrs: q.num_attrs()
            }
        );
        let e = ShardedSampler::new(&q, 2, 1, 0, |_| Err("unused".to_string()))
            .err()
            .unwrap();
        assert_eq!(e, ShardError::NoShards);
        assert_eq!(e.to_string(), "sharded execution needs at least one shard");
        let e = ShardedSampler::new(&q, 2, 1, 2, |_| Err("inner boom".to_string()))
            .err()
            .unwrap();
        assert_eq!(e, ShardError::Build("inner boom".to_string()));
    }

    #[test]
    fn counter_matches_brute_force_on_line3() {
        let mut counter = JoinCounter::new(line3());
        let mut rng = RsjRng::seed_from_u64(3);
        let mut naive = NaiveCount::new(line3());
        for _ in 0..200 {
            let rel = rng.index(3);
            let t = vec![rng.below_u64(5), rng.below_u64(5)];
            counter.insert(rel, t.clone());
            naive.insert(rel, t);
        }
        assert_eq!(counter.count(), naive.count());
        assert!(counter.count() > 0, "degenerate instance");
    }

    #[test]
    fn counter_matches_brute_force_on_triangle() {
        let mut counter = JoinCounter::new(triangle());
        let mut rng = RsjRng::seed_from_u64(5);
        let mut naive = NaiveCount::new(triangle());
        for _ in 0..150 {
            let rel = rng.index(3);
            let t = vec![rng.below_u64(6), rng.below_u64(6)];
            counter.insert(rel, t.clone());
            naive.insert(rel, t);
        }
        assert_eq!(counter.count(), naive.count());
        assert!(counter.count() > 0, "degenerate instance");
    }

    #[test]
    fn counter_deduplicates() {
        let mut counter = JoinCounter::new(two_table());
        counter.insert(0, vec![1, 2]);
        counter.insert(0, vec![1, 2]);
        counter.insert(1, vec![2, 3]);
        assert_eq!(counter.count(), 1);
    }

    #[test]
    fn counter_handles_single_relation_queries() {
        // Degenerate join tree with no edges: the count is the relation's
        // cardinality.
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["A", "B"]);
        let mut counter = JoinCounter::new(qb.build().unwrap());
        for v in 0..7u64 {
            counter.insert(0, vec![v, v + 100]);
        }
        assert_eq!(counter.count(), 7);
    }

    #[test]
    fn sharded_collects_the_full_result_set_when_k_is_large() {
        for shards in [1, 2, 3, 5] {
            let stream = random_stream(2, 200, 8, 11);
            let mut sharded = sharded_rsjoin(&two_table(), 1 << 20, 4, shards);
            let mut reference = ReservoirJoin::new(two_table(), 1 << 20, 4).unwrap();
            for t in stream.iter() {
                JoinSampler::process(&mut sharded, t.relation, &t.values);
                reference.process(t.relation, &t.values);
            }
            let mut got = JoinSampler::samples(&sharded);
            let mut expect = reference.samples().to_vec();
            got.sort();
            expect.sort();
            assert_eq!(got, expect, "shards={shards}");
            assert_eq!(
                sharded.stats().exact_results,
                Some(expect.len() as u128),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_runs_are_seed_deterministic() {
        let stream = random_stream(2, 300, 6, 21);
        let run = |seed: u64| {
            let mut s = sharded_rsjoin(&two_table(), 5, seed, 4);
            for t in stream.iter() {
                JoinSampler::process(&mut s, t.relation, &t.values);
            }
            // Two reads at the same position must agree with each other.
            let first = JoinSampler::samples(&s);
            assert_eq!(first, JoinSampler::samples(&s));
            first
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds should differ");
    }

    #[test]
    fn sharded_sample_size_tracks_population() {
        let mut s = sharded_rsjoin(&two_table(), 4, 1, 3);
        assert!(JoinSampler::samples(&s).is_empty());
        JoinSampler::process(&mut s, 0, &[1, 2]);
        JoinSampler::process(&mut s, 1, &[2, 3]);
        assert_eq!(JoinSampler::samples(&s).len(), 1, "|Q|=1 < k");
        for z in 10..20u64 {
            JoinSampler::process(&mut s, 1, &[2, z]);
        }
        assert_eq!(JoinSampler::samples(&s).len(), 4, "|Q|=11 >= k");
    }

    #[test]
    fn columnar_routing_is_byte_identical_to_row_routing() {
        // Line-3 exercises both routing modes: G1/G2 partition on B, G3 is
        // broadcast. Interleaving row-shaped ops with columnar chunks on
        // the columnar side checks that pending row buffers flush ahead of
        // every sub-batch (per-shard arrival order is preserved).
        let stream = random_stream(3, 400, 6, 33);
        for shards in [1, 3] {
            let mut rows = sharded_rsjoin(&line3(), 8, 7, shards);
            let mut cols = sharded_rsjoin(&line3(), 8, 7, shards);
            for t in stream.iter() {
                JoinSampler::process(&mut rows, t.relation, &t.values);
            }
            for (i, chunk) in stream.tuples().chunks(90).enumerate() {
                if i % 2 == 0 {
                    for t in chunk {
                        JoinSampler::process(&mut cols, t.relation, &t.values);
                    }
                } else {
                    cols.process_columnar(&rsj_storage::ColumnarBatch::from_rows(chunk));
                }
            }
            assert_eq!(
                JoinSampler::samples(&rows),
                JoinSampler::samples(&cols),
                "shards={shards}"
            );
            assert_eq!(rows.stats(), cols.stats(), "shards={shards}");
        }
    }

    #[test]
    fn sharded_snapshot_restores_byte_identical_behavior() {
        let stream = random_stream(3, 400, 6, 55);
        let mut s = sharded_rsjoin(&line3(), 6, 13, 3);
        for t in stream.iter().take(250) {
            JoinSampler::process(&mut s, t.relation, &t.values);
        }
        let bytes = s.snapshot_state().unwrap();

        // Restore into a fresh sampler built with the same configuration
        // (the merge seed and shard topology are construction parameters).
        // Heap estimates legitimately differ after a restore (Vec
        // capacities are not part of the logical state); everything else
        // must match exactly.
        let logical = |st: SamplerStats| SamplerStats {
            heap_bytes: None,
            ..st
        };
        let mut restored = sharded_rsjoin(&line3(), 6, 13, 3);
        restored.restore_state(&bytes).unwrap();
        assert_eq!(JoinSampler::samples(&restored), JoinSampler::samples(&s));
        assert_eq!(logical(restored.stats()), logical(s.stats()));

        // Lockstep continuation.
        for t in stream.iter().skip(250) {
            JoinSampler::process(&mut s, t.relation, &t.values);
            JoinSampler::process(&mut restored, t.relation, &t.values);
        }
        assert_eq!(JoinSampler::samples(&restored), JoinSampler::samples(&s));
        assert_eq!(logical(restored.stats()), logical(s.stats()));

        // A different topology is rejected on the byte-exact path.
        let mut wrong = sharded_rsjoin(&line3(), 6, 13, 4);
        assert!(wrong.restore_state(&bytes).is_err());
    }

    #[test]
    fn rebalance_split_and_merge_preserve_exact_population() {
        // Turnstile stream so the counters carry real live sets, not just
        // cumulative inserts.
        let mut rng = RsjRng::seed_from_u64(77);
        let mut s = sharded_rsjoin(&line3(), 6, 3, 2);
        let mut live: Vec<(usize, Vec<Value>)> = Vec::new();
        for i in 0..400u64 {
            if i % 5 == 4 && !live.is_empty() {
                let (rel, t) = live.swap_remove(rng.index(live.len()));
                s.process_op(&StreamOp::delete(rel, t)).unwrap();
            } else {
                let rel = rng.index(3);
                let t = vec![rng.below_u64(6), rng.below_u64(6)];
                JoinSampler::process(&mut s, rel, &t);
                live.push((rel, t));
            }
        }
        let population = s.stats().exact_results.unwrap();
        assert!(population > 6, "degenerate instance");
        let bytes = s.snapshot_state().unwrap();

        // Split 2 -> 4: exact population and full sample survive replay.
        let mut split = sharded_rsjoin(&line3(), 6, 91, 4);
        split.restore_rebalanced(&bytes).unwrap();
        assert_eq!(split.stats().exact_results, Some(population));
        assert_eq!(
            JoinSampler::samples(&split).len(),
            JoinSampler::samples(&s).len()
        );

        // Merge 4 -> 1 from the split sampler's own snapshot.
        let split_bytes = split.snapshot_state().unwrap();
        let mut merged = sharded_rsjoin(&line3(), 6, 17, 1);
        merged.restore_rebalanced(&split_bytes).unwrap();
        assert_eq!(merged.stats().exact_results, Some(population));
        assert_eq!(
            JoinSampler::samples(&merged).len(),
            JoinSampler::samples(&s).len()
        );

        // The replayed engines keep answering turnstile ops correctly.
        for (rel, t) in live.iter().take(20) {
            s.process_op(&StreamOp::delete(*rel, t.clone())).unwrap();
            split
                .process_op(&StreamOp::delete(*rel, t.clone()))
                .unwrap();
            merged
                .process_op(&StreamOp::delete(*rel, t.clone()))
                .unwrap();
        }
        let after = s.stats().exact_results;
        assert_eq!(split.stats().exact_results, after);
        assert_eq!(merged.stats().exact_results, after);
    }

    #[test]
    fn rebalanced_samples_stay_uniform() {
        use rsj_common::stats::{chi_square_critical, chi_square_uniform};
        // Fixed instance with exactly 6 results (see sjoin_uniformity):
        // split a 1-shard run into 2 shards and chi-square the merged
        // sample over many seeds.
        let stream: Vec<(usize, [u64; 2])> = vec![
            (0, [1, 10]),
            (2, [20, 5]),
            (1, [10, 20]),
            (0, [2, 10]),
            (2, [20, 6]),
            (0, [3, 10]),
        ];
        let trials = 1500u64;
        let mut counts: FxHashMap<Vec<Value>, u64> = FxHashMap::default();
        for seed in 0..trials {
            let mut one = sharded_rsjoin(&line3(), 2, seed, 1);
            for (rel, t) in &stream {
                JoinSampler::process(&mut one, *rel, t);
            }
            let bytes = one.snapshot_state().unwrap();
            let mut two = sharded_rsjoin(&line3(), 2, child_seed(seed, 999), 2);
            two.restore_rebalanced(&bytes).unwrap();
            for s in JoinSampler::samples(&two) {
                *counts.entry(s).or_default() += 1;
            }
        }
        assert_eq!(counts.len(), 6);
        let obs: Vec<u64> = counts.values().copied().collect();
        let (stat, df) = chi_square_uniform(&obs);
        assert!(stat < chi_square_critical(df, 0.0001), "chi2={stat}");
    }

    #[test]
    fn broadcast_relations_reach_every_shard() {
        // Line-3 with all data on one B value but many C values: G3 is
        // broadcast, so every shard must see its tuples and the single
        // owning shard must assemble every result.
        let mut s = sharded_rsjoin(&line3(), 1 << 16, 2, 4);
        JoinSampler::process(&mut s, 0, &[7, 1]);
        for c in 0..10u64 {
            JoinSampler::process(&mut s, 1, &[1, c]);
            JoinSampler::process(&mut s, 2, &[c, 100 + c]);
        }
        assert_eq!(JoinSampler::samples(&s).len(), 10);
    }

    #[test]
    fn worker_panic_heals_to_a_byte_identical_run() {
        quiet_injected_panics();
        let stream = random_stream(3, 400, 6, 91);
        let logical = |st: SamplerStats| SamplerStats {
            heap_bytes: None,
            restarts: None,
            ..st
        };
        let mut clean = sharded_rsjoin(&line3(), 6, 13, 3);
        let mut faulted = sharded_rsjoin(&line3(), 6, 13, 3);
        for (i, t) in stream.iter().enumerate() {
            JoinSampler::process(&mut clean, t.relation, &t.values);
            JoinSampler::process(&mut faulted, t.relation, &t.values);
            if i == 120 {
                faulted.inject_fault(0, ShardFault::Panic);
                faulted.inject_fault(1, ShardFault::Stall(5));
            }
            if i == 250 {
                // Mid-stream read while the kill is outstanding: detection,
                // restart, replay and the read itself all happen here.
                assert_eq!(
                    JoinSampler::samples(&faulted),
                    JoinSampler::samples(&clean),
                    "mid-stream"
                );
            }
        }
        assert_eq!(JoinSampler::samples(&faulted), JoinSampler::samples(&clean));
        assert_eq!(logical(faulted.stats()), logical(clean.stats()));
        assert_eq!(faulted.health(), ShardHealth::Healthy);
        assert!(faulted.stats().restarts.unwrap() >= 1, "a restart happened");
        assert_eq!(clean.stats().restarts, Some(0));
    }

    #[test]
    fn restart_from_snapshot_image_matches_full_replay() {
        quiet_injected_panics();
        // Tight snapshot cadence: the shard has a recent image when it is
        // killed, so healing goes through Restore + short replay instead of
        // replay-from-scratch — and must land on the same bytes.
        let policy = SupervisorPolicy {
            snapshot_every: 64,
            ..SupervisorPolicy::default()
        };
        let stream = random_stream(3, 500, 6, 17);
        let mut clean = sharded_rsjoin(&line3(), 6, 29, 2);
        let mut snap = sharded_with_policy(&line3(), 6, 29, 2, policy);
        for (i, t) in stream.iter().enumerate() {
            JoinSampler::process(&mut clean, t.relation, &t.values);
            JoinSampler::process(&mut snap, t.relation, &t.values);
            if i % 180 == 150 {
                snap.inject_fault(i % 2, ShardFault::Panic);
            }
        }
        assert_eq!(JoinSampler::samples(&snap), JoinSampler::samples(&clean));
        assert_eq!(snap.health(), ShardHealth::Healthy);
        assert!(snap.stats().restarts.unwrap() >= 1);
    }

    #[test]
    fn budget_exhaustion_degrades_to_surviving_shards() {
        quiet_injected_panics();
        let policy = SupervisorPolicy {
            max_restarts: 0,
            ..SupervisorPolicy::default()
        };
        let mut s = sharded_with_policy(&line3(), 1 << 16, 2, 2, policy);
        let stream = random_stream(3, 300, 6, 43);
        for t in stream.iter().take(150) {
            JoinSampler::process(&mut s, t.relation, &t.values);
        }
        let before = JoinSampler::samples(&s).len();
        assert!(before > 0, "degenerate instance");
        s.inject_fault(0, ShardFault::Panic);
        // The next read detects the death; with a zero budget the shard
        // degrades instead of healing.
        let survivors = JoinSampler::samples(&s).len();
        assert!(survivors <= before);
        match s.health() {
            ShardHealth::Degraded { dead_shards, .. } => assert_eq!(dead_shards, vec![0]),
            h => panic!("expected degraded health, got {h:?}"),
        }
        // Routing keeps working; broadcast ops to the dead shard count as
        // lost, reads keep serving from the survivor.
        for t in stream.iter().skip(150) {
            JoinSampler::process(&mut s, t.relation, &t.values);
        }
        let _ = JoinSampler::samples(&s);
        match s.health() {
            ShardHealth::Degraded {
                dead_shards,
                lost_ops,
            } => {
                assert_eq!(dead_shards, vec![0]);
                assert!(lost_ops > 0, "broadcast ops to the dead shard are lost");
            }
            h => panic!("expected degraded health, got {h:?}"),
        }
        let st = s.stats();
        assert_eq!(st.degraded, Some(1));
        assert_eq!(st.restarts, Some(0));
        // A degraded sampler has no canonical image.
        assert!(s.snapshot_state().is_none());
    }

    #[test]
    fn drop_mid_unwind_joins_workers_without_double_panic() {
        quiet_injected_panics();
        // A panic while a ShardedSampler with a dead worker is in scope
        // must unwind cleanly: Drop joins the corpses without panicking
        // again (a double panic would abort the whole test process).
        let result = std::panic::catch_unwind(|| {
            let mut s = sharded_rsjoin(&two_table(), 4, 1, 3);
            JoinSampler::process(&mut s, 0, &[1, 2]);
            s.inject_fault(1, ShardFault::Panic);
            JoinSampler::process(&mut s, 1, &[2, 3]);
            std::panic::panic_any(INJECTED_FAULT);
        });
        assert!(result.is_err(), "the outer panic must surface as Err");
    }

    /// Brute-force recount used to pin `JoinCounter`.
    struct NaiveCount {
        query: Query,
        seen: Vec<FxHashSet<Vec<Value>>>,
    }

    impl NaiveCount {
        fn new(query: Query) -> NaiveCount {
            let seen = vec![FxHashSet::default(); query.num_relations()];
            NaiveCount { query, seen }
        }

        fn insert(&mut self, rel: usize, t: Vec<Value>) {
            self.seen[rel].insert(t);
        }

        fn count(&self) -> u128 {
            let mut total = 0u128;
            let mut partial = vec![None; self.query.num_attrs()];
            self.recurse(0, &mut partial, &mut total);
            total
        }

        fn recurse(&self, rel: usize, partial: &mut Vec<Option<Value>>, total: &mut u128) {
            if rel == self.query.num_relations() {
                *total += 1;
                return;
            }
            let schema = &self.query.relation(rel).attrs;
            'tuples: for t in &self.seen[rel] {
                let mut bound = Vec::new();
                for (pos, &attr) in schema.iter().enumerate() {
                    match partial[attr] {
                        Some(v) if v != t[pos] => {
                            for &a in &bound {
                                partial[a] = None;
                            }
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => {
                            partial[attr] = Some(t[pos]);
                            bound.push(attr);
                        }
                    }
                }
                self.recurse(rel + 1, partial, total);
                for &a in &bound {
                    partial[a] = None;
                }
            }
        }
    }
}
