//! Foreign-key combination runtime (§4.4) — the `_opt` variants.
//!
//! The static rewrite ([`rsj_query::CombinePlan`]) decides which relations
//! merge; this module executes it on the stream. Each combined relation is
//! a fact plus an ordered list of dimension joins, every one on the
//! dimension's primary key (at most one match). A fact tuple walks the
//! dimension chain, parking in a waiting list at the first missing
//! dimension; a dimension arrival releases its waiters. Every combined
//! tuple is emitted exactly once, as soon as its last constituent arrives —
//! matching the paper: "when a tuple t_j is inserted into R_j, we need to
//! identify all tuples in R_i that can join with t_j".
//!
//! Since PR 10 the combiner is a *signed* delta pipeline: each original
//! relation routes to its own pipeline (the fact pipeline or one
//! dimension-step pipeline), and both directions flow through the same
//! registry of fact records. [`FkCombiner::process`] emits `+1` combined
//! tuples; [`FkCombiner::retract`] emits the `-1` mirror — a deleted fact
//! withdraws its combined tuple, a deleted dimension tuple withdraws every
//! combined tuple routed through it and re-parks the affected facts at the
//! now-missing step, exactly the state they held before that dimension
//! arrived. Feeding the `+` side to an engine's insert path and the `-`
//! side to its delete path keeps the engine's view identical to running
//! the rewritten query over the live (post-delete) database.

use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::{FxHashMap, Key, Value};
use rsj_query::foreign_key::{CombinePlan, Routing};
use rsj_query::Query;

/// One registered fact tuple of a combined relation.
#[derive(Clone, Debug)]
struct FactRec {
    /// Accumulated tuple: the full combined width once emitted, truncated
    /// to the prefix entering `parked_at` while parked.
    acc: Vec<Value>,
    /// The dimension step this fact waits at; `None` once fully combined
    /// (and therefore emitted).
    parked_at: Option<usize>,
}

/// Per-combined-relation streaming state.
#[derive(Clone, Debug, Default)]
struct CombinedState {
    /// Per dimension step: PK value -> dimension tuple.
    dim_maps: Vec<FxHashMap<Key, Vec<Value>>>,
    /// Per dimension step: FK value -> fact ids parked there, in arrival
    /// order (list order fixes the release order, hence emission order).
    waiting: Vec<FxHashMap<Key, Vec<u32>>>,
    /// Per dimension step: FK value -> fact ids that consumed the
    /// dimension tuple at that key (advanced past the step), in arrival
    /// order — the reverse index a dimension delete walks.
    passed: Vec<FxHashMap<Key, Vec<u32>>>,
    /// Original fact tuple -> slab id (set semantics on the fact stream).
    fact_ids: FxHashMap<Vec<Value>, u32>,
    /// Fact slab; freed slots are recycled through `free`.
    facts: Vec<Option<FactRec>>,
    free: Vec<u32>,
    /// `prefix_lens[s]` is the accumulated-tuple length entering step `s`;
    /// the last entry is the full combined width.
    prefix_lens: Vec<usize>,
}

/// Executes a [`CombinePlan`] over the input stream, emitting signed
/// tuples of the rewritten query's relations.
#[derive(Clone, Debug)]
pub struct FkCombiner {
    plan: CombinePlan,
    states: Vec<CombinedState>,
    inserts: u64,
    deletes: u64,
}

/// Removes `id` from the list at `key`, preserving the order of the
/// remaining entries (order fixes future emission order) and dropping the
/// entry when the list empties.
fn unregister(map: &mut FxHashMap<Key, Vec<u32>>, key: &Key, id: u32) {
    let list = map.get_mut(key).expect("fact registered under this key");
    let pos = list
        .iter()
        .position(|&x| x == id)
        .expect("fact present in its registry list");
    list.remove(pos);
    if list.is_empty() {
        map.remove(key);
    }
}

impl FkCombiner {
    /// Creates a combiner for a plan.
    pub fn new(plan: CombinePlan) -> FkCombiner {
        let states = plan
            .combined
            .iter()
            .map(|c| {
                let mut prefix_lens = Vec::with_capacity(c.dims.len() + 1);
                let mut len = c.schema_attrs.len()
                    - c.dims
                        .iter()
                        .map(|d| d.append_positions.len())
                        .sum::<usize>();
                prefix_lens.push(len);
                for d in &c.dims {
                    len += d.append_positions.len();
                    prefix_lens.push(len);
                }
                CombinedState {
                    dim_maps: vec![FxHashMap::default(); c.dims.len()],
                    waiting: vec![FxHashMap::default(); c.dims.len()],
                    passed: vec![FxHashMap::default(); c.dims.len()],
                    fact_ids: FxHashMap::default(),
                    facts: Vec::new(),
                    free: Vec::new(),
                    prefix_lens,
                }
            })
            .collect();
        FkCombiner {
            plan,
            states,
            inserts: 0,
            deletes: 0,
        }
    }

    /// The static plan.
    pub fn plan(&self) -> &CombinePlan {
        &self.plan
    }

    /// The rewritten query the emitted tuples belong to.
    pub fn rewritten_query(&self) -> &Query {
        &self.plan.rewritten
    }

    /// Original-stream tuples accepted so far (set semantics — duplicate
    /// facts and idempotent dimension re-inserts are not counted).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Original-stream tuples deleted so far (present at deletion time).
    pub fn deletes(&self) -> u64 {
        self.deletes
    }

    /// Processes one original-stream insert; returns the emitted
    /// `(rewritten_relation, tuple)` pairs (possibly empty or many).
    pub fn process(&mut self, orig_rel: usize, tuple: &[Value]) -> Vec<(usize, Vec<Value>)> {
        match self.plan.routing[orig_rel] {
            Routing::Fact { combined } => {
                let st = &mut self.states[combined];
                if st.fact_ids.contains_key(tuple) {
                    return Vec::new(); // duplicate fact (set semantics)
                }
                let id = match st.free.pop() {
                    Some(id) => id,
                    None => {
                        st.facts.push(None);
                        (st.facts.len() - 1) as u32
                    }
                };
                st.fact_ids.insert(tuple.to_vec(), id);
                self.inserts += 1;
                Self::advance(&self.plan.combined[combined], st, id, tuple.to_vec(), 0)
                    .map(|t| vec![(combined, t)])
                    .unwrap_or_default()
            }
            Routing::Dim { combined, step } => self.on_dim(combined, step, tuple),
        }
    }

    /// Retracts one original-stream tuple; returns the *withdrawn*
    /// `(rewritten_relation, tuple)` pairs — the `-1` side of the pipeline.
    /// Deleting an absent tuple is a no-op. A retraction never emits on the
    /// `+` side: removing input can only un-complete combined tuples.
    pub fn retract(&mut self, orig_rel: usize, tuple: &[Value]) -> Vec<(usize, Vec<Value>)> {
        match self.plan.routing[orig_rel] {
            Routing::Fact { combined } => self.retract_fact(combined, tuple),
            Routing::Dim { combined, step } => self.retract_dim(combined, step, tuple),
        }
    }

    /// Walks the dimension chain from `step`, registering the fact in the
    /// `passed` reverse index at every consumed step; parks at the first
    /// missing dimension, returns the full combined tuple otherwise. The
    /// fact record is (re)written in either case.
    fn advance(
        c: &rsj_query::foreign_key::CombinedRelation,
        st: &mut CombinedState,
        id: u32,
        mut acc: Vec<Value>,
        step: usize,
    ) -> Option<Vec<Value>> {
        for (s, d) in c.dims.iter().enumerate().skip(step) {
            let fk = Key::project(&acc, &d.fk_positions_in_acc);
            match st.dim_maps[s].get(&fk) {
                Some(dim_tuple) => {
                    for &p in &d.append_positions {
                        acc.push(dim_tuple[p]);
                    }
                    st.passed[s].entry(fk).or_default().push(id);
                }
                None => {
                    st.waiting[s].entry(fk).or_default().push(id);
                    st.facts[id as usize] = Some(FactRec {
                        acc,
                        parked_at: Some(s),
                    });
                    return None;
                }
            }
        }
        st.facts[id as usize] = Some(FactRec {
            acc: acc.clone(),
            parked_at: None,
        });
        Some(acc)
    }

    /// A dimension tuple arrived: register it and release waiters.
    fn on_dim(
        &mut self,
        combined: usize,
        step: usize,
        tuple: &[Value],
    ) -> Vec<(usize, Vec<Value>)> {
        let c = &self.plan.combined[combined];
        let d = &c.dims[step];
        let pk = Key::project(tuple, &d.pk_positions_in_dim);
        let st = &mut self.states[combined];
        if let Some(prev) = st.dim_maps[step].get(&pk) {
            assert!(
                prev.as_slice() == tuple,
                "duplicate primary key {pk} in dimension {}",
                c.name
            );
            return Vec::new(); // idempotent re-insert (set semantics)
        }
        st.dim_maps[step].insert(pk, tuple.to_vec());
        self.inserts += 1;
        let waiters = st.waiting[step].remove(&pk).unwrap_or_default();
        let mut out = Vec::new();
        for id in waiters {
            let rec = st.facts[id as usize].take().expect("waiting fact exists");
            let mut acc = rec.acc;
            for &p in &d.append_positions {
                acc.push(tuple[p]);
            }
            st.passed[step].entry(pk).or_default().push(id);
            if let Some(full) = Self::advance(c, st, id, acc, step + 1) {
                out.push((combined, full));
            }
        }
        out
    }

    /// Withdraws a fact: unregister it everywhere, retract its combined
    /// tuple if it had been emitted.
    fn retract_fact(&mut self, combined: usize, tuple: &[Value]) -> Vec<(usize, Vec<Value>)> {
        let c = &self.plan.combined[combined];
        let st = &mut self.states[combined];
        let Some(id) = st.fact_ids.remove(tuple) else {
            return Vec::new(); // absent-tuple delete is a no-op
        };
        self.deletes += 1;
        let rec = st.facts[id as usize].take().expect("registered fact");
        st.free.push(id);
        let progress = rec.parked_at.unwrap_or(c.dims.len());
        for (s, d) in c.dims.iter().enumerate().take(progress) {
            let fk = Key::project(&rec.acc, &d.fk_positions_in_acc);
            unregister(&mut st.passed[s], &fk, id);
        }
        if let Some(park) = rec.parked_at {
            let fk = Key::project(&rec.acc, &c.dims[park].fk_positions_in_acc);
            unregister(&mut st.waiting[park], &fk, id);
        }
        match rec.parked_at {
            None => vec![(combined, rec.acc)],
            Some(_) => Vec::new(),
        }
    }

    /// Withdraws a dimension tuple: every fact that consumed it loses its
    /// emitted combined tuple (if any), rewinds to the state it held before
    /// this dimension arrived, and re-parks at the now-missing step.
    fn retract_dim(
        &mut self,
        combined: usize,
        step: usize,
        tuple: &[Value],
    ) -> Vec<(usize, Vec<Value>)> {
        let c = &self.plan.combined[combined];
        let st = &mut self.states[combined];
        let d = &c.dims[step];
        let pk = Key::project(tuple, &d.pk_positions_in_dim);
        match st.dim_maps[step].get(&pk) {
            Some(existing) if existing.as_slice() == tuple => {}
            _ => return Vec::new(), // absent (or a different tuple): no-op
        }
        st.dim_maps[step].remove(&pk);
        self.deletes += 1;
        let ids = st.passed[step].remove(&pk).unwrap_or_default();
        let mut out = Vec::new();
        for id in ids {
            let rec = st.facts[id as usize].take().expect("passed fact exists");
            let progress = rec.parked_at.unwrap_or(c.dims.len());
            if rec.parked_at.is_none() {
                out.push((combined, rec.acc.clone()));
            }
            for (s, ds) in c.dims.iter().enumerate().take(progress).skip(step + 1) {
                let fk = Key::project(&rec.acc, &ds.fk_positions_in_acc);
                unregister(&mut st.passed[s], &fk, id);
            }
            if let Some(park) = rec.parked_at {
                let fk = Key::project(&rec.acc, &c.dims[park].fk_positions_in_acc);
                unregister(&mut st.waiting[park], &fk, id);
            }
            let mut acc = rec.acc;
            acc.truncate(st.prefix_lens[step]);
            st.waiting[step].entry(pk).or_default().push(id);
            st.facts[id as usize] = Some(FactRec {
                acc,
                parked_at: Some(step),
            });
        }
        out
    }

    /// Serializes the combiner's complete dynamic state canonically:
    /// dimension maps as sorted tuple lists, the fact slab and free list
    /// verbatim (ids are load-bearing), the waiting/`passed` registries
    /// with keys sorted and list orders verbatim (list order fixes future
    /// emission order), and the op counters.
    pub fn snapshot_to(&self, enc: &mut Encoder) {
        enc.put_u64(self.inserts);
        enc.put_u64(self.deletes);
        for st in &self.states {
            for m in &st.dim_maps {
                let mut tuples: Vec<&Vec<Value>> = m.values().collect();
                tuples.sort_unstable();
                enc.put_usize(tuples.len());
                for t in tuples {
                    enc.put_u64s(t);
                }
            }
            enc.put_usize(st.facts.len());
            for slot in &st.facts {
                match slot {
                    Some(rec) => {
                        enc.put_bool(true);
                        enc.put_u64s(&rec.acc);
                        match rec.parked_at {
                            Some(s) => {
                                enc.put_bool(true);
                                enc.put_usize(s);
                            }
                            None => enc.put_bool(false),
                        }
                    }
                    None => enc.put_bool(false),
                }
            }
            enc.put_u32s(&st.free);
            for registry in [&st.waiting, &st.passed] {
                for m in registry {
                    let mut entries: Vec<(&Key, &Vec<u32>)> = m.iter().collect();
                    entries.sort_unstable_by(|a, b| a.0.as_slice().cmp(b.0.as_slice()));
                    enc.put_usize(entries.len());
                    for (k, ids) in entries {
                        k.encode_to(enc);
                        enc.put_u32s(ids);
                    }
                }
            }
        }
    }

    /// Restores state produced by [`FkCombiner::snapshot_to`] into a
    /// combiner built from the same plan. On error the receiver may be
    /// partially overwritten and must be discarded.
    pub fn restore_from_snapshot(&mut self, dec: &mut Decoder) -> Result<(), CodecError> {
        self.inserts = dec.u64()?;
        self.deletes = dec.u64()?;
        for (ci, c) in self.plan.combined.iter().enumerate() {
            let st = &mut self.states[ci];
            for (s, d) in c.dims.iter().enumerate() {
                let n = dec.seq_len(8)?;
                let mut m = FxHashMap::default();
                for _ in 0..n {
                    let t = dec.u64s()?;
                    let pk = Key::project(&t, &d.pk_positions_in_dim);
                    if m.insert(pk, t).is_some() {
                        return Err(CodecError::Corrupt("duplicate dimension PK in snapshot"));
                    }
                }
                st.dim_maps[s] = m;
            }
            let slots = dec.seq_len(1)?;
            let mut facts = Vec::with_capacity(slots);
            let mut fact_ids = FxHashMap::default();
            let fact_arity = st.prefix_lens[0];
            for id in 0..slots {
                if !dec.bool()? {
                    facts.push(None);
                    continue;
                }
                let acc = dec.u64s()?;
                let parked_at = if dec.bool()? {
                    let s = dec.usize()?;
                    if s >= c.dims.len() {
                        return Err(CodecError::Corrupt("parked step out of range"));
                    }
                    Some(s)
                } else {
                    None
                };
                let expect_len = st.prefix_lens[parked_at.unwrap_or(c.dims.len())];
                if acc.len() != expect_len || acc.len() < fact_arity {
                    return Err(CodecError::Corrupt("fact prefix length mismatch"));
                }
                if fact_ids
                    .insert(acc[..fact_arity].to_vec(), id as u32)
                    .is_some()
                {
                    return Err(CodecError::Corrupt("duplicate fact tuple in snapshot"));
                }
                facts.push(Some(FactRec { acc, parked_at }));
            }
            st.facts = facts;
            st.fact_ids = fact_ids;
            st.free = dec.u32s()?;
            for which in 0..2 {
                for s in 0..c.dims.len() {
                    let n = dec.seq_len(2)?;
                    let mut m: FxHashMap<Key, Vec<u32>> = FxHashMap::default();
                    for _ in 0..n {
                        let k = Key::decode_from(dec)?;
                        let ids = dec.u32s()?;
                        if ids.is_empty() {
                            return Err(CodecError::Corrupt("empty registry list"));
                        }
                        for &id in &ids {
                            if st.facts.get(id as usize).is_none_or(|f| f.is_none()) {
                                return Err(CodecError::Corrupt("registry id without a fact"));
                            }
                        }
                        if m.insert(k, ids).is_some() {
                            return Err(CodecError::Corrupt("duplicate registry key"));
                        }
                    }
                    if which == 0 {
                        st.waiting[s] = m;
                    } else {
                        st.passed[s] = m;
                    }
                }
            }
        }
        Ok(())
    }

    /// Estimated heap bytes of the combiner state (dimension maps, fact
    /// slab, registries).
    pub fn heap_size(&self) -> usize {
        self.states
            .iter()
            .map(|st| {
                let dims: usize = st
                    .dim_maps
                    .iter()
                    .map(|m| {
                        m.values()
                            .map(|v| v.capacity() * std::mem::size_of::<Value>() + 48)
                            .sum::<usize>()
                    })
                    .sum();
                let facts: usize = st
                    .facts
                    .iter()
                    .flatten()
                    .map(|r| r.acc.capacity() * std::mem::size_of::<Value>() + 48)
                    .sum();
                let lists: usize = st
                    .waiting
                    .iter()
                    .chain(st.passed.iter())
                    .map(|m| m.values().map(|ids| ids.capacity() * 4 + 48).sum::<usize>())
                    .sum();
                dims + facts + lists
            })
            .sum()
    }
}

/// How building an [`FkReservoirJoin`] can fail: the static rewrite
/// rejected the schema, or the inner acyclic driver rejected the rewritten
/// query.
#[derive(Debug)]
pub enum FkBuildError {
    /// The foreign-key rewrite failed (see [`rsj_query::CombineError`]).
    Rewrite(rsj_query::CombineError),
    /// The inner dynamic index rejected the rewritten query.
    Index(rsj_index::dynamic::IndexError),
}

impl std::fmt::Display for FkBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FkBuildError::Rewrite(e) => write!(f, "{e}"),
            FkBuildError::Index(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FkBuildError {}

impl From<rsj_query::CombineError> for FkBuildError {
    fn from(e: rsj_query::CombineError) -> FkBuildError {
        FkBuildError::Rewrite(e)
    }
}

impl From<rsj_index::dynamic::IndexError> for FkBuildError {
    fn from(e: rsj_index::dynamic::IndexError) -> FkBuildError {
        FkBuildError::Index(e)
    }
}

/// `RSJoin_opt`: a [`super::ReservoirJoin`] over the FK-rewritten query,
/// fed through an [`FkCombiner`].
pub struct FkReservoirJoin {
    combiner: FkCombiner,
    inner: super::ReservoirJoin,
}

impl FkReservoirJoin {
    /// Builds the optimized driver from the original query, its FK schema,
    /// and reservoir parameters, with the default index options.
    pub fn new(
        query: &Query,
        fks: &rsj_query::FkSchema,
        k: usize,
        seed: u64,
    ) -> Result<FkReservoirJoin, FkBuildError> {
        Self::with_options(query, fks, k, seed, rsj_index::IndexOptions::default())
    }

    /// Builds the optimized driver with explicit index options for the
    /// inner acyclic driver.
    pub fn with_options(
        query: &Query,
        fks: &rsj_query::FkSchema,
        k: usize,
        seed: u64,
        options: rsj_index::IndexOptions,
    ) -> Result<FkReservoirJoin, FkBuildError> {
        let plan = CombinePlan::build(query, fks)?;
        let inner = super::ReservoirJoin::with_options(plan.rewritten.clone(), k, seed, options)?;
        Ok(FkReservoirJoin {
            combiner: FkCombiner::new(plan),
            inner,
        })
    }

    /// Processes one original-stream tuple.
    pub fn process(&mut self, orig_rel: usize, tuple: &[Value]) {
        for (rel, t) in self.combiner.process(orig_rel, tuple) {
            self.inner.process(rel, &t);
        }
    }

    /// Deletes one original-stream tuple: the combiner's `-1` deltas route
    /// to the inner driver's delete path, which repairs its reservoir by
    /// eviction-and-backfill against the exact live count.
    pub fn delete(&mut self, orig_rel: usize, tuple: &[Value]) {
        for (rel, t) in self.combiner.retract(orig_rel, tuple) {
            self.inner.delete(rel, &t);
        }
    }

    /// Current samples, as value tuples of the *rewritten* query (attribute
    /// names are preserved; use [`Self::rewritten_query`] to interpret).
    pub fn samples(&self) -> &[Vec<Value>] {
        self.inner.samples()
    }

    /// The rewritten query.
    pub fn rewritten_query(&self) -> &Query {
        self.combiner.rewritten_query()
    }

    /// The streaming combiner.
    pub fn combiner(&self) -> &FkCombiner {
        &self.combiner
    }

    /// The inner acyclic driver.
    pub fn inner(&self) -> &super::ReservoirJoin {
        &self.inner
    }

    /// Mutable access to the inner acyclic driver (re-planning the
    /// rewritten-query orientation).
    pub fn inner_mut(&mut self) -> &mut super::ReservoirJoin {
        &mut self.inner
    }

    /// Exact live `|Q(R)|`, computed on demand from the inner driver's
    /// stored relations (`O(N)` — same walk the delete repair uses).
    pub fn exact_result_count(&self) -> u128 {
        crate::count::exact_result_count(self.inner.index().query(), self.inner.index().database())
    }

    /// Serializes the full dynamic state: combiner registries, then the
    /// inner driver's snapshot.
    pub fn snapshot_to(&self, enc: &mut Encoder) {
        self.combiner.snapshot_to(enc);
        self.inner.snapshot_to(enc);
    }

    /// Restores from a [`FkReservoirJoin::snapshot_to`] image taken by a
    /// driver built with the same `(query, fks, k, seed, options)`.
    pub fn restore_from_snapshot(&mut self, dec: &mut Decoder) -> Result<(), CodecError> {
        self.combiner.restore_from_snapshot(dec)?;
        self.inner.restore_from_snapshot(dec)
    }

    /// Estimated heap bytes (combiner state + inner driver).
    pub fn heap_size(&self) -> usize {
        self.combiner.heap_size() + self.inner.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::rng::RsjRng;
    use rsj_common::FxHashSet;
    use rsj_query::{FkSchema, QueryBuilder};

    /// fact(K, M) ⋈ dim(K, D), PK(dim) = K.
    fn simple_plan() -> CombinePlan {
        let mut qb = QueryBuilder::new();
        qb.relation("fact", &["K", "M"]);
        qb.relation("dim", &["K", "D"]);
        let q = qb.build().unwrap();
        let fks = FkSchema::none(2).with_pk(1, vec![0]);
        CombinePlan::build(&q, &fks).unwrap()
    }

    #[test]
    fn fact_after_dim_emits_immediately() {
        let mut c = FkCombiner::new(simple_plan());
        assert!(c.process(1, &[7, 100]).is_empty());
        let out = c.process(0, &[7, 1]);
        assert_eq!(out, vec![(0, vec![7, 1, 100])]);
    }

    #[test]
    fn fact_before_dim_waits_then_flushes() {
        let mut c = FkCombiner::new(simple_plan());
        assert!(c.process(0, &[7, 1]).is_empty());
        assert!(c.process(0, &[7, 2]).is_empty());
        let out = c.process(1, &[7, 100]);
        let set: FxHashSet<Vec<u64>> = out.into_iter().map(|(_, t)| t).collect();
        assert_eq!(
            set,
            [vec![7, 1, 100], vec![7, 2, 100]].into_iter().collect()
        );
    }

    #[test]
    fn unmatched_fact_never_emits() {
        let mut c = FkCombiner::new(simple_plan());
        assert!(c.process(0, &[9, 1]).is_empty());
        assert!(c.process(1, &[7, 100]).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate primary key")]
    fn duplicate_pk_asserts() {
        // Two *different* tuples under one PK violate the FkSchema
        // contract; an identical re-insert is an idempotent no-op.
        let mut c = FkCombiner::new(simple_plan());
        c.process(1, &[7, 100]);
        assert!(c.process(1, &[7, 100]).is_empty());
        c.process(1, &[7, 200]);
    }

    #[test]
    fn retracting_a_fact_withdraws_its_emission() {
        let mut c = FkCombiner::new(simple_plan());
        c.process(1, &[7, 100]);
        assert_eq!(c.process(0, &[7, 1]), vec![(0, vec![7, 1, 100])]);
        assert_eq!(c.retract(0, &[7, 1]), vec![(0, vec![7, 1, 100])]);
        // Gone: retracting again (or the dim) withdraws nothing further.
        assert!(c.retract(0, &[7, 1]).is_empty());
        assert!(c.retract(1, &[7, 100]).is_empty());
        assert_eq!(c.inserts(), 2);
        assert_eq!(c.deletes(), 2);
    }

    #[test]
    fn retracting_a_parked_fact_is_silent() {
        let mut c = FkCombiner::new(simple_plan());
        assert!(c.process(0, &[7, 1]).is_empty()); // parked at the dim
        assert!(c.retract(0, &[7, 1]).is_empty());
        // The dim arriving later releases nothing.
        assert!(c.process(1, &[7, 100]).is_empty());
    }

    #[test]
    fn retracting_a_dim_reparks_its_consumers() {
        let mut c = FkCombiner::new(simple_plan());
        c.process(1, &[7, 100]);
        assert_eq!(c.process(0, &[7, 1]), vec![(0, vec![7, 1, 100])]);
        assert!(c.process(0, &[8, 2]).is_empty()); // different key, parked
                                                   // Withdraw the dim: the emitted combined tuple comes back signed -1.
        assert_eq!(c.retract(1, &[7, 100]), vec![(0, vec![7, 1, 100])]);
        // The fact is parked again: re-inserting the dim re-emits it.
        assert_eq!(c.process(1, &[7, 100]), vec![(0, vec![7, 1, 100])]);
        // And the unrelated parked fact is still waiting for its own key.
        assert_eq!(c.process(1, &[8, 50]), vec![(0, vec![8, 2, 50])]);
    }

    /// Chain: fact(K,M) ⋈ d1(K,L) ⋈ d2(L,W); PKs d1.K, d2.L.
    fn chain_plan() -> CombinePlan {
        let mut qb = QueryBuilder::new();
        qb.relation("fact", &["K", "M"]);
        qb.relation("d1", &["K", "L"]);
        qb.relation("d2", &["L", "W"]);
        let q = qb.build().unwrap();
        let fks = FkSchema::none(3).with_pk(1, vec![0]).with_pk(2, vec![2]);
        CombinePlan::build(&q, &fks).unwrap()
    }

    #[test]
    fn chain_resolves_in_any_arrival_order() {
        // All 6 arrival orders of {fact, d1, d2} must emit the same single
        // combined tuple.
        let events: [(usize, Vec<u64>); 3] = [(0, vec![7, 1]), (1, vec![7, 3]), (2, vec![3, 9])];
        let orders: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        for order in orders {
            let mut c = FkCombiner::new(chain_plan());
            let mut emitted = Vec::new();
            for &i in &order {
                let (rel, t) = &events[i];
                emitted.extend(c.process(*rel, t));
            }
            assert_eq!(emitted, vec![(0, vec![7, 1, 3, 9])], "order {order:?}");
        }
    }

    #[test]
    fn mid_chain_dim_retraction_rewinds_to_that_step() {
        // Retracting d1 must also unregister the fact from d2's registries
        // and truncate its accumulated tuple back to the fact prefix.
        let mut c = FkCombiner::new(chain_plan());
        c.process(1, &[7, 3]); // d1: K=7 -> L=3
        c.process(2, &[3, 9]); // d2: L=3 -> W=9
        assert_eq!(c.process(0, &[7, 1]), vec![(0, vec![7, 1, 3, 9])]);
        assert_eq!(c.retract(1, &[7, 3]), vec![(0, vec![7, 1, 3, 9])]);
        // Retracting d2 now withdraws nothing (the fact rewound past it).
        assert!(c.retract(2, &[3, 9]).is_empty());
        // A different d1 binding re-routes the fact through a fresh chain.
        c.process(2, &[4, 11]);
        assert_eq!(c.process(1, &[7, 4]), vec![(0, vec![7, 1, 4, 11])]);
    }

    /// Turnstile equivalence: a shuffled insert/delete history must leave
    /// the combiner emitting exactly the live combined tuples — checked by
    /// maintaining the signed multiset of emissions against a brute-force
    /// recomputation over the live input.
    #[test]
    fn signed_emissions_track_the_live_combined_relation() {
        let mut rng = RsjRng::seed_from_u64(97);
        let mut c = FkCombiner::new(chain_plan());
        let mut live: [FxHashSet<Vec<u64>>; 3] = Default::default();
        let mut emitted: FxHashSet<Vec<u64>> = FxHashSet::default();
        for step in 0..4000 {
            let rel = rng.index(3);
            let t = match rel {
                0 => vec![rng.below_u64(6), rng.below_u64(4)],
                1 => vec![rng.below_u64(6), rng.below_u64(6)],
                _ => vec![rng.below_u64(6), rng.below_u64(8)],
            };
            // Dims: one tuple per PK (the FkSchema contract). Delete the
            // old binding before inserting a conflicting one.
            let dim_pk_conflict = (rel == 1 || rel == 2)
                && live[rel].iter().any(|u| u[0] == t[0] && u.as_slice() != t);
            if dim_pk_conflict || (rng.below_u64(4) == 0 && live[rel].contains(&t)) {
                let victim = if dim_pk_conflict {
                    live[rel].iter().find(|u| u[0] == t[0]).unwrap().clone()
                } else {
                    t.clone()
                };
                live[rel].remove(&victim);
                for (_, gone) in c.retract(rel, &victim) {
                    assert!(emitted.remove(&gone), "step {step}: unknown retraction");
                }
                if !dim_pk_conflict {
                    continue;
                }
            }
            if live[rel].insert(t.clone()) {
                for (_, new) in c.process(rel, &t) {
                    assert!(emitted.insert(new), "step {step}: duplicate emission");
                }
            }
        }
        // Brute-force the live combined relation: fact ⋈ d1 ⋈ d2.
        let mut expect: FxHashSet<Vec<u64>> = FxHashSet::default();
        for f in &live[0] {
            for d1 in live[1].iter().filter(|d| d[0] == f[0]) {
                for d2 in live[2].iter().filter(|d| d[0] == d1[1]) {
                    expect.insert(vec![f[0], f[1], d1[1], d2[1]]);
                }
            }
        }
        assert_eq!(emitted, expect);
        assert!(c.inserts() > 0 && c.deletes() > 0);
    }

    #[test]
    fn combiner_snapshot_round_trips_mid_history() {
        let mut rng = RsjRng::seed_from_u64(131);
        let mut c = FkCombiner::new(chain_plan());
        let mut live: [FxHashSet<Vec<u64>>; 3] = Default::default();
        let mut history: Vec<(bool, usize, Vec<u64>)> = Vec::new();
        for _ in 0..600 {
            let rel = rng.index(3);
            let t = vec![rng.below_u64(5), rng.below_u64(5)];
            if rel != 0 && live[rel].iter().any(|u| u[0] == t[0] && u.as_slice() != t) {
                continue; // would violate the PK contract
            }
            if rng.below_u64(4) == 0 && live[rel].contains(&t) {
                live[rel].remove(&t);
                history.push((false, rel, t));
            } else if live[rel].insert(t.clone()) {
                history.push((true, rel, t));
            }
        }
        let split = history.len() * 2 / 3;
        for (insert, rel, t) in &history[..split] {
            if *insert {
                c.process(*rel, t);
            } else {
                c.retract(*rel, t);
            }
        }
        let mut enc = Encoder::new();
        c.snapshot_to(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = FkCombiner::new(chain_plan());
        restored
            .restore_from_snapshot(&mut Decoder::new(&bytes))
            .unwrap();
        // Identical emissions (and order) on the rest of the history.
        for (insert, rel, t) in &history[split..] {
            let (a, b) = if *insert {
                (c.process(*rel, t), restored.process(*rel, t))
            } else {
                (c.retract(*rel, t), restored.retract(*rel, t))
            };
            assert_eq!(a, b);
        }
        assert_eq!(c.inserts(), restored.inserts());
        assert_eq!(c.deletes(), restored.deletes());
        // Truncated images are rejected, not mis-restored.
        let mut fresh = FkCombiner::new(chain_plan());
        assert!(fresh
            .restore_from_snapshot(&mut Decoder::new(&bytes[..bytes.len() / 2]))
            .is_err());
    }

    #[test]
    fn fk_reservoir_matches_plain_reservoir_results() {
        // QY-like query; with k >= results, RSJoin and RSJoin_opt must
        // collect the same set of value assignments.
        let build_query = || {
            let mut qb = QueryBuilder::new();
            qb.relation("ss", &["CK", "M"]);
            qb.relation("c1", &["CK", "HD1"]);
            qb.relation("d1", &["HD1", "IB"]);
            qb.relation("d2", &["HD2", "IB"]);
            qb.relation("c2", &["HD2", "M2"]);
            qb.build().unwrap()
        };
        let q = build_query();
        let fks = FkSchema::none(5)
            .with_pk(1, vec![0])
            .with_pk(2, vec![2])
            .with_pk(3, vec![4]);
        let mut rng = RsjRng::seed_from_u64(21);
        // Dimensions with unique PKs; facts with random FKs.
        let mut stream: Vec<(usize, Vec<u64>)> = Vec::new();
        for ck in 0..10u64 {
            stream.push((1, vec![ck, ck % 4]));
        }
        for hd in 0..4u64 {
            stream.push((2, vec![hd, hd % 2]));
            stream.push((3, vec![hd, hd % 2]));
        }
        for _ in 0..30 {
            stream.push((0, vec![rng.below_u64(10), rng.below_u64(100)]));
            stream.push((4, vec![rng.below_u64(4), rng.below_u64(100)]));
        }
        let mut s = stream.clone();
        let mut shuffle_rng = RsjRng::seed_from_u64(33);
        for i in (1..s.len()).rev() {
            let j = shuffle_rng.index(i + 1);
            s.swap(i, j);
        }
        // Plain driver over the original query.
        let mut plain = super::super::ReservoirJoin::new(q.clone(), 100_000, 1).unwrap();
        // Optimized driver.
        let mut opt = FkReservoirJoin::new(&q, &fks, 100_000, 2).unwrap();
        for (rel, t) in &s {
            plain.process(*rel, t);
            opt.process(*rel, t);
        }
        // Compare as sets of (attr name -> value) maps, since the rewritten
        // query orders attributes differently.
        let project = |samples: &[Vec<u64>], query: &Query| -> FxHashSet<Vec<(String, u64)>> {
            samples
                .iter()
                .map(|s| {
                    let mut kv: Vec<(String, u64)> = query
                        .attr_names()
                        .iter()
                        .cloned()
                        .zip(s.iter().copied())
                        .collect();
                    kv.sort();
                    kv
                })
                .collect()
        };
        let a = project(plain.samples(), &q);
        let b = project(opt.samples(), opt.rewritten_query());
        assert!(!a.is_empty(), "test instance produced no results");
        assert_eq!(a, b);
    }

    #[test]
    fn fk_reservoir_deletes_match_plain_reservoir_deletes() {
        // Same QY-like instance, now with a turnstile tail: both engines
        // must converge on the live result set after deletes hit facts and
        // dimensions alike.
        let mut qb = QueryBuilder::new();
        qb.relation("ss", &["CK", "M"]);
        qb.relation("c1", &["CK", "HD1"]);
        qb.relation("d1", &["HD1", "IB"]);
        let q = qb.build().unwrap();
        let fks = FkSchema::none(3).with_pk(1, vec![0]).with_pk(2, vec![2]);
        let mut plain = super::super::ReservoirJoin::new(q.clone(), 100_000, 1).unwrap();
        let mut opt = FkReservoirJoin::new(&q, &fks, 100_000, 2).unwrap();
        let mut apply = |ins: bool, rel: usize, t: &[u64]| {
            if ins {
                plain.process(rel, t);
                opt.process(rel, t);
            } else {
                plain.delete(rel, t);
                opt.delete(rel, t);
            }
        };
        for ck in 0..6u64 {
            apply(true, 1, &[ck, ck % 3]);
        }
        for hd in 0..3u64 {
            apply(true, 2, &[hd, hd * 10]);
        }
        for i in 0..24u64 {
            apply(true, 0, &[i % 6, i]);
        }
        // Delete a dimension tuple (kills every chain through CK=2), two
        // facts, and a second-level dimension tuple.
        apply(false, 1, &[2, 2]);
        apply(false, 0, &[0, 0]);
        apply(false, 0, &[3, 3]);
        apply(false, 2, &[1, 10]);
        let project = |samples: &[Vec<u64>], query: &Query| -> FxHashSet<Vec<(String, u64)>> {
            samples
                .iter()
                .map(|s| {
                    let mut kv: Vec<(String, u64)> = query
                        .attr_names()
                        .iter()
                        .cloned()
                        .zip(s.iter().copied())
                        .collect();
                    kv.sort();
                    kv
                })
                .collect()
        };
        let a = project(plain.samples(), &q);
        let b = project(opt.samples(), opt.rewritten_query());
        assert!(!a.is_empty(), "deletes emptied the test instance");
        assert_eq!(a, b);
        assert_eq!(opt.exact_result_count(), a.len() as u128);
    }
}
