//! Foreign-key combination runtime (§4.4) — the `_opt` variants.
//!
//! The static rewrite ([`rsj_query::CombinePlan`]) decides which relations
//! merge; this module executes it on the stream. Each combined relation is
//! a fact plus an ordered list of dimension joins, every one on the
//! dimension's primary key (at most one match). A fact tuple walks the
//! dimension chain, parking in a waiting list at the first missing
//! dimension; a dimension arrival releases its waiters. Every combined
//! tuple is emitted exactly once, as soon as its last constituent arrives —
//! matching the paper: "when a tuple t_j is inserted into R_j, we need to
//! identify all tuples in R_i that can join with t_j".

use rsj_common::{FxHashMap, Key, Value};
use rsj_query::foreign_key::{CombinePlan, Routing};
use rsj_query::Query;
use rsj_stream::Reservoir;

/// Per-combined-relation streaming state.
#[derive(Clone, Debug, Default)]
struct CombinedState {
    /// Per dimension step: PK value -> dimension tuple.
    dim_maps: Vec<FxHashMap<Key, Vec<Value>>>,
    /// Per dimension step: FK value -> accumulated fact tuples waiting.
    waiting: Vec<FxHashMap<Key, Vec<Vec<Value>>>>,
}

/// Executes a [`CombinePlan`] over the input stream, emitting tuples of the
/// rewritten query's relations.
#[derive(Clone, Debug)]
pub struct FkCombiner {
    plan: CombinePlan,
    states: Vec<CombinedState>,
}

impl FkCombiner {
    /// Creates a combiner for a plan.
    pub fn new(plan: CombinePlan) -> FkCombiner {
        let states = plan
            .combined
            .iter()
            .map(|c| CombinedState {
                dim_maps: vec![FxHashMap::default(); c.dims.len()],
                waiting: vec![FxHashMap::default(); c.dims.len()],
            })
            .collect();
        FkCombiner { plan, states }
    }

    /// The static plan.
    pub fn plan(&self) -> &CombinePlan {
        &self.plan
    }

    /// The rewritten query the emitted tuples belong to.
    pub fn rewritten_query(&self) -> &Query {
        &self.plan.rewritten
    }

    /// Processes one original-stream tuple; returns the emitted
    /// `(rewritten_relation, tuple)` pairs (possibly empty or many).
    pub fn process(&mut self, orig_rel: usize, tuple: &[Value]) -> Vec<(usize, Vec<Value>)> {
        match self.plan.routing[orig_rel] {
            Routing::Fact { combined } => self
                .advance(combined, tuple.to_vec(), 0)
                .map(|t| vec![(combined, t)])
                .unwrap_or_default(),
            Routing::Dim { combined, step } => self.on_dim(combined, step, tuple),
        }
    }

    /// Walks the dimension chain from `step`; parks at the first missing
    /// dimension, returns the full combined tuple otherwise.
    fn advance(&mut self, combined: usize, mut acc: Vec<Value>, step: usize) -> Option<Vec<Value>> {
        let dims = &self.plan.combined[combined].dims;
        for s in step..dims.len() {
            let d = &dims[s];
            let fk = Key::project(&acc, &d.fk_positions_in_acc);
            match self.states[combined].dim_maps[s].get(&fk) {
                Some(dim_tuple) => {
                    for &p in &d.append_positions {
                        acc.push(dim_tuple[p]);
                    }
                }
                None => {
                    self.states[combined].waiting[s]
                        .entry(fk)
                        .or_default()
                        .push(acc);
                    return None;
                }
            }
        }
        Some(acc)
    }

    /// A dimension tuple arrived: register it and release waiters.
    fn on_dim(
        &mut self,
        combined: usize,
        step: usize,
        tuple: &[Value],
    ) -> Vec<(usize, Vec<Value>)> {
        let d = &self.plan.combined[combined].dims[step];
        let pk = Key::project(tuple, &d.pk_positions_in_dim);
        let append: Vec<usize> = d.append_positions.clone();
        let prev = self.states[combined].dim_maps[step].insert(pk, tuple.to_vec());
        assert!(
            prev.is_none(),
            "duplicate primary key {pk} in dimension {}",
            self.plan.combined[combined].name
        );
        let waiters = self.states[combined].waiting[step]
            .remove(&pk)
            .unwrap_or_default();
        let mut out = Vec::new();
        for mut acc in waiters {
            for &p in &append {
                acc.push(tuple[p]);
            }
            if let Some(full) = self.advance(combined, acc, step + 1) {
                out.push((combined, full));
            }
        }
        out
    }
}

/// `RSJoin_opt`: a [`super::ReservoirJoin`] over the FK-rewritten query,
/// fed through an [`FkCombiner`].
pub struct FkReservoirJoin {
    combiner: FkCombiner,
    inner: super::ReservoirJoin,
}

impl FkReservoirJoin {
    /// Builds the optimized driver from the original query, its FK schema,
    /// and reservoir parameters, with the default index options.
    pub fn new(
        query: &Query,
        fks: &rsj_query::FkSchema,
        k: usize,
        seed: u64,
    ) -> Result<FkReservoirJoin, rsj_index::dynamic::IndexError> {
        Self::with_options(query, fks, k, seed, rsj_index::IndexOptions::default())
    }

    /// Builds the optimized driver with explicit index options for the
    /// inner acyclic driver.
    pub fn with_options(
        query: &Query,
        fks: &rsj_query::FkSchema,
        k: usize,
        seed: u64,
        options: rsj_index::IndexOptions,
    ) -> Result<FkReservoirJoin, rsj_index::dynamic::IndexError> {
        let plan = CombinePlan::build(query, fks);
        let inner = super::ReservoirJoin::with_options(plan.rewritten.clone(), k, seed, options)?;
        Ok(FkReservoirJoin {
            combiner: FkCombiner::new(plan),
            inner,
        })
    }

    /// Processes one original-stream tuple.
    pub fn process(&mut self, orig_rel: usize, tuple: &[Value]) {
        for (rel, t) in self.combiner.process(orig_rel, tuple) {
            self.inner.process(rel, &t);
        }
    }

    /// Current samples, as value tuples of the *rewritten* query (attribute
    /// names are preserved; use [`Self::rewritten_query`] to interpret).
    pub fn samples(&self) -> &[Vec<Value>] {
        self.inner.samples()
    }

    /// The rewritten query.
    pub fn rewritten_query(&self) -> &Query {
        self.combiner.rewritten_query()
    }

    /// The inner acyclic driver.
    pub fn inner(&self) -> &super::ReservoirJoin {
        &self.inner
    }

    /// Mutable access to the inner acyclic driver (re-planning the
    /// rewritten-query orientation).
    pub fn inner_mut(&mut self) -> &mut super::ReservoirJoin {
        &mut self.inner
    }

    /// Estimated heap bytes (combiner state + inner driver).
    pub fn heap_size(&self) -> usize {
        // Dimension maps and waiting lists dominated by stored tuples.
        let combiner: usize = self
            .combiner
            .states
            .iter()
            .map(|s| {
                s.dim_maps
                    .iter()
                    .map(|m| {
                        m.values()
                            .map(|v| v.capacity() * std::mem::size_of::<Value>() + 48)
                            .sum::<usize>()
                    })
                    .sum::<usize>()
                    + s.waiting
                        .iter()
                        .map(|m| {
                            m.values()
                                .flat_map(|vs| vs.iter())
                                .map(|v| v.capacity() * std::mem::size_of::<Value>() + 48)
                                .sum::<usize>()
                        })
                        .sum::<usize>()
            })
            .sum();
        combiner + self.inner.heap_size()
    }
}

/// `RS_opt` building block used by benches: classic reservoir over combined
/// tuples when the rewritten query is a single relation (degenerate case).
pub type CombinedReservoir = Reservoir<Vec<Value>>;

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::rng::RsjRng;
    use rsj_common::FxHashSet;
    use rsj_query::{FkSchema, QueryBuilder};

    /// fact(K, M) ⋈ dim(K, D), PK(dim) = K.
    fn simple_plan() -> CombinePlan {
        let mut qb = QueryBuilder::new();
        qb.relation("fact", &["K", "M"]);
        qb.relation("dim", &["K", "D"]);
        let q = qb.build().unwrap();
        let fks = FkSchema::none(2).with_pk(1, vec![0]);
        CombinePlan::build(&q, &fks)
    }

    #[test]
    fn fact_after_dim_emits_immediately() {
        let mut c = FkCombiner::new(simple_plan());
        assert!(c.process(1, &[7, 100]).is_empty());
        let out = c.process(0, &[7, 1]);
        assert_eq!(out, vec![(0, vec![7, 1, 100])]);
    }

    #[test]
    fn fact_before_dim_waits_then_flushes() {
        let mut c = FkCombiner::new(simple_plan());
        assert!(c.process(0, &[7, 1]).is_empty());
        assert!(c.process(0, &[7, 2]).is_empty());
        let out = c.process(1, &[7, 100]);
        let set: FxHashSet<Vec<u64>> = out.into_iter().map(|(_, t)| t).collect();
        assert_eq!(
            set,
            [vec![7, 1, 100], vec![7, 2, 100]].into_iter().collect()
        );
    }

    #[test]
    fn unmatched_fact_never_emits() {
        let mut c = FkCombiner::new(simple_plan());
        assert!(c.process(0, &[9, 1]).is_empty());
        assert!(c.process(1, &[7, 100]).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate primary key")]
    fn duplicate_pk_asserts() {
        let mut c = FkCombiner::new(simple_plan());
        c.process(1, &[7, 100]);
        c.process(1, &[7, 200]);
    }

    /// Chain: fact(K,M) ⋈ d1(K,L) ⋈ d2(L,W); PKs d1.K, d2.L.
    fn chain_plan() -> CombinePlan {
        let mut qb = QueryBuilder::new();
        qb.relation("fact", &["K", "M"]);
        qb.relation("d1", &["K", "L"]);
        qb.relation("d2", &["L", "W"]);
        let q = qb.build().unwrap();
        let fks = FkSchema::none(3).with_pk(1, vec![0]).with_pk(2, vec![2]);
        CombinePlan::build(&q, &fks)
    }

    #[test]
    fn chain_resolves_in_any_arrival_order() {
        // All 6 arrival orders of {fact, d1, d2} must emit the same single
        // combined tuple.
        let events: [(usize, Vec<u64>); 3] = [(0, vec![7, 1]), (1, vec![7, 3]), (2, vec![3, 9])];
        let orders: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        for order in orders {
            let mut c = FkCombiner::new(chain_plan());
            let mut emitted = Vec::new();
            for &i in &order {
                let (rel, t) = &events[i];
                emitted.extend(c.process(*rel, t));
            }
            assert_eq!(emitted, vec![(0, vec![7, 1, 3, 9])], "order {order:?}");
        }
    }

    #[test]
    fn fk_reservoir_matches_plain_reservoir_results() {
        // QY-like query; with k >= results, RSJoin and RSJoin_opt must
        // collect the same set of value assignments.
        let build_query = || {
            let mut qb = QueryBuilder::new();
            qb.relation("ss", &["CK", "M"]);
            qb.relation("c1", &["CK", "HD1"]);
            qb.relation("d1", &["HD1", "IB"]);
            qb.relation("d2", &["HD2", "IB"]);
            qb.relation("c2", &["HD2", "M2"]);
            qb.build().unwrap()
        };
        let q = build_query();
        let fks = FkSchema::none(5)
            .with_pk(1, vec![0])
            .with_pk(2, vec![2])
            .with_pk(3, vec![4]);
        let mut rng = RsjRng::seed_from_u64(21);
        // Dimensions with unique PKs; facts with random FKs.
        let mut stream: Vec<(usize, Vec<u64>)> = Vec::new();
        for ck in 0..10u64 {
            stream.push((1, vec![ck, ck % 4]));
        }
        for hd in 0..4u64 {
            stream.push((2, vec![hd, hd % 2]));
            stream.push((3, vec![hd, hd % 2]));
        }
        for _ in 0..30 {
            stream.push((0, vec![rng.below_u64(10), rng.below_u64(100)]));
            stream.push((4, vec![rng.below_u64(4), rng.below_u64(100)]));
        }
        let mut s = stream.clone();
        let mut shuffle_rng = RsjRng::seed_from_u64(33);
        for i in (1..s.len()).rev() {
            let j = shuffle_rng.index(i + 1);
            s.swap(i, j);
        }
        // Plain driver over the original query.
        let mut plain = super::super::ReservoirJoin::new(q.clone(), 100_000, 1).unwrap();
        // Optimized driver.
        let mut opt = FkReservoirJoin::new(&q, &fks, 100_000, 2).unwrap();
        for (rel, t) in &s {
            plain.process(*rel, t);
            opt.process(*rel, t);
        }
        // Compare as sets of (attr name -> value) maps, since the rewritten
        // query orders attributes differently.
        let project = |samples: &[Vec<u64>], query: &Query| -> FxHashSet<Vec<(String, u64)>> {
            samples
                .iter()
                .map(|s| {
                    let mut kv: Vec<(String, u64)> = query
                        .attr_names()
                        .iter()
                        .cloned()
                        .zip(s.iter().copied())
                        .collect();
                    kv.sort();
                    kv
                })
                .collect()
        };
        let a = project(plain.samples(), &q);
        let b = project(opt.samples(), opt.rewritten_query());
        assert!(!a.is_empty(), "test instance produced no results");
        assert_eq!(a, b);
    }
}
