//! `SamplerService` — a resident sampler: one op stream in, many
//! registered queries, many concurrent snapshot readers.
//!
//! The paper's driver ([`ReservoirJoin`](crate::ReservoirJoin)) is
//! one-query-one-stream. A resident service inverts the ownership: the
//! service ingests the stream **once** and maintains a uniform reservoir
//! per *registered query*, where queries come and go at runtime.
//!
//! # Registration dataflow
//!
//! [`register`](SamplerService::register) validates the query against the
//! service's relation universe, pins its [`Plan`] (the service never
//! re-plans — a registered query behaves like a standalone driver with
//! `ReplanPolicy { auto: false, .. }`), and **backfills**: the retained op
//! history ([`SharedStore`]) is replayed through a fresh index driving the
//! new query's `SamplerCore`, so a query registered mid-stream ends up
//! byte-identical to one registered before the first op. Registration cost
//! is `O(history)`; ingest cost is unchanged.
//!
//! # The sharing rule
//!
//! The dynamic index maintains *every* rooted orientation of its join tree
//! at once (the shared `(node, parent)` configurations — `3n − 2` tables
//! for `n` relations), and delta batches are rooted at the inserted
//! relation itself. A query's plan root therefore only matters for repair
//! draws, never for index maintenance. So the service keeps **one
//! [`DynamicIndex`] per (canonical tree edges, [`IndexOptions`]) group**;
//! members of a group freely differ in root, `k`, and seed, and each
//! member is a plain `SamplerCore` consuming the shared index's delta
//! batches. Registering 16 same-tree queries costs one index insert per
//! op plus 16 cheap reservoir consumptions — not 16 index inserts.
//!
//! Engines other than the shared `RSJoin` core enter through
//! [`register_sampler`](SamplerService::register_sampler): resident, with
//! backfill and epoch reads, but no storage sharing (they own their state
//! behind [`JoinSampler`]). Their delete capability is probed at
//! registration; a delete op is rejected **before** it is applied to
//! anyone, so the service never half-applies an op.
//!
//! # The epoch-read invariant
//!
//! Readers never take a lock the ingest thread can block on. Each member
//! owns a single-writer seqlock [`EpochCell`]; at *publish points* (every
//! [`publish_every`](ServiceOpts::publish_every) ops, at registration, and
//! on explicit [`publish`](SamplerService::publish) calls) the service
//! writes `[lsn, |Q(R)|, samples…]` into the cell in one atomic epoch.
//! [`SampleReader::snapshot`] retries on epoch mismatch and therefore
//! always observes the state at some single published LSN — a reader can
//! never pair one epoch's reservoir with another epoch's count
//! (ARCHITECTURE.md, invariant 10). Exact `|Q(R)|` is computed once per
//! *group* per publish point and shared by all members.

use crate::count::{exact_result_count, JoinCounter};
use crate::exec::JoinSampler;
use crate::reservoir_join::{DeltaCache, SamplerCore};
use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::hash::fx_hash_columns;
use rsj_common::rng::RsjRng;
use rsj_common::{EpochCell, HeapSize, TupleId, Value};
use rsj_index::dynamic::IndexError;
use rsj_index::{DynamicIndex, IndexOptions};
use rsj_query::{JoinTree, Plan, Query};
use rsj_storage::{ColumnarBatch, OpStream, SharedStore, SharedStoreError, StreamOp};
use std::sync::Arc;

/// Service-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServiceOpts {
    /// Ops between automatic publish points (`0` = publish only on
    /// explicit [`publish`](SamplerService::publish) calls). Each publish
    /// point costs one exact `|Q(R)|` count per index group, so the
    /// cadence trades reader freshness against ingest overhead.
    pub publish_every: u64,
}

impl Default for ServiceOpts {
    fn default() -> Self {
        ServiceOpts {
            publish_every: 1024,
        }
    }
}

/// Per-registration parameters for the shared-index path.
#[derive(Clone, Debug)]
pub struct QueryOpts {
    /// Reservoir capacity.
    pub k: usize,
    /// Sampling seed (drives both the skip stream and repair draws).
    pub seed: u64,
    /// Index options; part of the sharing key — registrations only share
    /// an index when their options compare equal.
    pub index: IndexOptions,
    /// Explicit plan override; `None` pins [`Plan::canonical`]. The plan
    /// is fixed for the registration's lifetime.
    pub plan: Option<Plan>,
}

impl QueryOpts {
    /// Canonical-plan options with default index settings.
    pub fn new(k: usize, seed: u64) -> QueryOpts {
        QueryOpts {
            k,
            seed,
            index: IndexOptions::default(),
            plan: None,
        }
    }
}

/// Identifies one live registration; returned by
/// [`register`](SamplerService::register) and spent by
/// [`deregister`](SamplerService::deregister).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryHandle(u64);

impl QueryHandle {
    /// The registration's numeric id (unique for the service's lifetime).
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// Rebuilds a boxed engine from its snapshot identity `(name, k)` during
/// [`restore_from_snapshot`](SamplerService::restore_from_snapshot);
/// returning `None` rejects the snapshot.
pub type RebuildFn = dyn FnMut(&str, usize) -> Option<Box<dyn JoinSampler + Send>>;

/// A registration or ingest failure. Failed calls leave the service
/// unchanged.
#[derive(Debug)]
pub enum ServiceError {
    /// The registered query's schema differs from the service universe.
    UniverseMismatch,
    /// Reservoir capacity `k = 0`.
    ZeroCapacity,
    /// The query is cyclic — the shared path needs a join tree (cyclic
    /// queries go through [`SamplerService::register_sampler`] with the
    /// GHD engine).
    Cyclic,
    /// An explicit plan's tree or root does not fit the universe.
    PlanMismatch,
    /// Index construction rejected the plan's tree.
    Index(IndexError),
    /// The op failed shared-store validation (unknown relation, arity).
    Store(SharedStoreError),
    /// The handle names no live registration.
    UnknownHandle(u64),
    /// A delete op (or a history containing deletes, at registration)
    /// reached an insert-only boxed engine; the named engine rejected it
    /// before the op was applied to any member.
    DeleteUnsupported(&'static str),
    /// A service snapshot was requested while the named boxed engine
    /// (without snapshot support) was registered.
    SnapshotUnsupported(&'static str),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UniverseMismatch => {
                write!(f, "query schema differs from the service universe")
            }
            ServiceError::ZeroCapacity => write!(f, "reservoir capacity k must be positive"),
            ServiceError::Cyclic => {
                write!(f, "cyclic query: the shared path requires a join tree")
            }
            ServiceError::PlanMismatch => {
                write!(f, "plan tree or root does not fit the service universe")
            }
            ServiceError::Index(e) => write!(f, "index construction failed: {e}"),
            ServiceError::Store(e) => write!(f, "op rejected: {e}"),
            ServiceError::UnknownHandle(id) => write!(f, "no live registration with id {id}"),
            ServiceError::DeleteUnsupported(engine) => {
                write!(
                    f,
                    "{engine} is insert-only: delete rejected before application"
                )
            }
            ServiceError::SnapshotUnsupported(engine) => {
                write!(f, "{engine} does not support state snapshots")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// One shared-index member: a reservoir core plus its publish cell.
struct Member {
    id: u64,
    core: SamplerCore,
    cell: Arc<EpochCell>,
}

/// One index group: every registration whose (canonical tree edges,
/// options) matched shares this index.
struct Group {
    edges: Vec<(usize, usize)>,
    /// The tree *instance* the index was built over. Adjacency order
    /// changes node-state discovery order downstream, so every member's
    /// plan adopts this instance (same canonical edges, by construction).
    tree: JoinTree,
    options: IndexOptions,
    index: DynamicIndex,
    members: Vec<Member>,
    /// Per-op retrieval memo shared by the members (transient — cleared
    /// every op, never serialized). Only exercised with two or more
    /// members; a lone member keeps the standalone zero-allocation path.
    cache: DeltaCache,
}

/// One boxed-engine member: resident and backfilled, but unshared.
struct BoxedMember {
    id: u64,
    sampler: Box<dyn JoinSampler + Send>,
    /// Exact `|Q(R)|` sidecar over the universe (the trait exposes no
    /// relation access — same trade as the sharded executor's counter).
    counter: JoinCounter,
    /// Capability captured at registration, checked before any op applies.
    supports_deletes: bool,
    cell: Arc<EpochCell>,
}

/// The resident sampler service. See the [module docs](self) for the
/// registration dataflow, the sharing rule, and the epoch-read invariant.
///
/// ```
/// use rsj_core::service::{QueryOpts, SamplerService};
/// use rsj_query::QueryBuilder;
/// use rsj_storage::StreamOp;
///
/// let mut qb = QueryBuilder::new();
/// qb.relation("R", &["X", "Y"]);
/// qb.relation("S", &["Y", "Z"]);
/// let q = qb.build().unwrap();
/// let mut svc = SamplerService::new(q.clone());
/// let h = svc.register(&q, &QueryOpts::new(8, 42)).unwrap();
/// let reader = svc.reader(h).unwrap(); // clonable, usable from any thread
/// svc.process_op(&StreamOp::insert(0, vec![1, 2])).unwrap();
/// svc.process_op(&StreamOp::insert(1, vec![2, 3])).unwrap();
/// svc.publish();
/// let snap = reader.snapshot();
/// assert_eq!(snap.lsn, 2);
/// assert_eq!(snap.population, 1);
/// assert_eq!(snap.samples, vec![vec![1, 2, 3]]);
/// svc.deregister(h).unwrap();
/// ```
pub struct SamplerService {
    universe: Query,
    store: SharedStore,
    groups: Vec<Group>,
    boxed: Vec<BoxedMember>,
    next_id: u64,
    publish_every: u64,
    ops_since_publish: u64,
}

impl SamplerService {
    /// A service over `universe` with default options.
    pub fn new(universe: Query) -> SamplerService {
        Self::with_opts(universe, ServiceOpts::default())
    }

    /// A service over `universe` with explicit options.
    pub fn with_opts(universe: Query, opts: ServiceOpts) -> SamplerService {
        let schema = universe
            .relations()
            .iter()
            .map(|r| (r.name.clone(), r.attrs.len()))
            .collect();
        SamplerService {
            universe,
            store: SharedStore::new(schema),
            groups: Vec::new(),
            boxed: Vec::new(),
            next_id: 1,
            publish_every: opts.publish_every,
            ops_since_publish: 0,
        }
    }

    /// The relation universe every registration must match.
    pub fn universe(&self) -> &Query {
        &self.universe
    }

    /// The retained history and registration reference counts.
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// Ops ingested so far.
    pub fn lsn(&self) -> u64 {
        self.store.lsn()
    }

    /// Live registrations (shared and boxed).
    pub fn num_queries(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum::<usize>() + self.boxed.len()
    }

    /// Live index groups — `num_queries()` registrations share exactly
    /// this many dynamic indexes.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Handles of every live registration, in registration order per path.
    pub fn handles(&self) -> Vec<QueryHandle> {
        let mut out: Vec<QueryHandle> = self
            .groups
            .iter()
            .flat_map(|g| g.members.iter().map(|m| QueryHandle(m.id)))
            .chain(self.boxed.iter().map(|b| QueryHandle(b.id)))
            .collect();
        out.sort_by_key(|h| h.0);
        out
    }

    fn check_universe(&self, query: &Query) -> Result<(), ServiceError> {
        let u = &self.universe;
        if query.attr_names() != u.attr_names() || query.relations() != u.relations() {
            return Err(ServiceError::UniverseMismatch);
        }
        Ok(())
    }

    /// Registers a query on the shared-index path and backfills it from
    /// the retained history. See the [module docs](self).
    pub fn register(
        &mut self,
        query: &Query,
        opts: &QueryOpts,
    ) -> Result<QueryHandle, ServiceError> {
        self.check_universe(query)?;
        if opts.k == 0 {
            return Err(ServiceError::ZeroCapacity);
        }
        let nrels = self.universe.num_relations();
        let mut plan = match &opts.plan {
            Some(p) => p.clone(),
            None => Plan::canonical(query).ok_or(ServiceError::Cyclic)?,
        };
        if plan.tree.len() != nrels || plan.root >= nrels {
            return Err(ServiceError::PlanMismatch);
        }
        let edges = plan.tree.canonical_edges();
        let gi = match self
            .groups
            .iter()
            .position(|g| g.edges == edges && g.options == opts.index)
        {
            Some(gi) => {
                // Adopt the group's tree instance (same canonical edges);
                // adjacency order fixes the config discovery order shared
                // state depends on.
                plan.tree = self.groups[gi].tree.clone();
                let mut core = SamplerCore::new(plan, opts.k, opts.seed);
                // Backfill through a throwaway index: delta batches need
                // the historical index state at each op, and replaying the
                // same ops in the same order rebuilds exactly the states
                // the group index went through.
                let mut index =
                    DynamicIndex::with_tree(query.clone(), &self.groups[gi].tree, opts.index)
                        .map_err(ServiceError::Index)?;
                Self::replay(&mut index, &mut core, self.store.history());
                self.groups[gi].members.push(Member {
                    id: 0, // assigned below
                    core,
                    cell: Arc::new(EpochCell::new(0)), // replaced below
                });
                gi
            }
            None => {
                let mut index = DynamicIndex::with_tree(query.clone(), &plan.tree, opts.index)
                    .map_err(ServiceError::Index)?;
                let tree = plan.tree.clone();
                let mut core = SamplerCore::new(plan, opts.k, opts.seed);
                Self::replay(&mut index, &mut core, self.store.history());
                self.groups.push(Group {
                    edges,
                    tree,
                    options: opts.index,
                    index,
                    members: vec![Member {
                        id: 0,
                        core,
                        cell: Arc::new(EpochCell::new(0)),
                    }],
                    cache: DeltaCache::default(),
                });
                self.groups.len() - 1
            }
        };
        for rel in 0..nrels {
            self.store
                .acquire(rel)
                .expect("universe relations are in range");
        }
        let id = self.next_id;
        self.next_id += 1;
        let cell = Arc::new(EpochCell::new(4 + opts.k * self.universe.num_attrs()));
        let m = self.groups[gi].members.last_mut().expect("just pushed");
        m.id = id;
        m.cell = cell;
        self.publish();
        Ok(QueryHandle(id))
    }

    /// Registers an arbitrary engine (any [`JoinSampler`] built over the
    /// service universe) as a resident member: backfilled from the
    /// retained history and published to its own epoch cell, but with no
    /// storage sharing. The engine's delete capability is captured here;
    /// a history already containing deletes rejects an insert-only engine
    /// immediately.
    pub fn register_sampler(
        &mut self,
        mut sampler: Box<dyn JoinSampler + Send>,
    ) -> Result<QueryHandle, ServiceError> {
        let supports_deletes = sampler.supports_deletes();
        if !supports_deletes && self.store.history().num_deletes() > 0 {
            return Err(ServiceError::DeleteUnsupported(sampler.name()));
        }
        if sampler.k() == 0 {
            return Err(ServiceError::ZeroCapacity);
        }
        let mut counter = JoinCounter::new(self.universe.clone());
        for op in self.store.history().iter() {
            sampler
                .process_op(op)
                .expect("delete capability checked against the history");
            match op {
                StreamOp::Insert(t) => counter.insert(t.relation, t.values.clone()),
                StreamOp::Delete(t) => counter.remove(t.relation, &t.values),
            }
        }
        for rel in 0..self.universe.num_relations() {
            self.store
                .acquire(rel)
                .expect("universe relations are in range");
        }
        let id = self.next_id;
        self.next_id += 1;
        let arity = sampler.output_query().num_attrs();
        let cell = Arc::new(EpochCell::new(4 + sampler.k() * arity));
        self.boxed.push(BoxedMember {
            id,
            sampler,
            counter,
            supports_deletes,
            cell,
        });
        self.publish();
        Ok(QueryHandle(id))
    }

    /// Replays the retained history through a fresh `(index, core)` pair —
    /// the backfill loop. Identical op sequence ⇒ identical accept/reject
    /// decisions, tuple ids, and delta batches, so the resulting core is
    /// byte-identical to one that had been registered before the first op.
    fn replay(index: &mut DynamicIndex, core: &mut SamplerCore, history: &OpStream) {
        for op in history.iter() {
            let t = op.tuple();
            if op.is_delete() {
                if index.delete(t.relation, &t.values).is_some() {
                    core.apply_delete(index, t.relation, &t.values);
                }
            } else if let Some(tid) = index.insert(t.relation, &t.values) {
                core.consume_delta(index, t.relation, tid);
            }
        }
    }

    /// Feeds one accepted insert's delta batch to every member of a
    /// group. A lone member runs the standalone (buffer-reusing) path; two
    /// or more share retrievals through the group's [`DeltaCache`], which
    /// is byte-identical per member (see `consume_delta_cached`) but pays
    /// each batch position's `O(log N)` retrieval once instead of once per
    /// member.
    fn consume_group(
        index: &DynamicIndex,
        members: &mut [Member],
        cache: &mut DeltaCache,
        rel: usize,
        tid: TupleId,
    ) {
        if let [m] = members {
            m.core.consume_delta(index, rel, tid);
        } else {
            cache.begin_op();
            let batch = index.delta_batch(rel, tid);
            for m in members.iter_mut() {
                m.core.consume_delta_cached(index, &batch, cache);
            }
        }
    }

    /// Removes a registration, releasing its store references; the last
    /// member out of an index group drops the group's index with it.
    pub fn deregister(&mut self, handle: QueryHandle) -> Result<(), ServiceError> {
        let nrels = self.universe.num_relations();
        if let Some((gi, mi)) = self.find_shared(handle.0) {
            self.groups[gi].members.remove(mi);
            if self.groups[gi].members.is_empty() {
                self.groups.remove(gi);
            }
        } else if let Some(bi) = self.find_boxed(handle.0) {
            self.boxed.remove(bi);
        } else {
            return Err(ServiceError::UnknownHandle(handle.0));
        }
        for rel in 0..nrels {
            self.store
                .release(rel)
                .expect("registration held one reference per relation");
        }
        Ok(())
    }

    /// Whether `handle` names a live registration.
    pub fn registered(&self, handle: QueryHandle) -> bool {
        self.find_shared(handle.0).is_some() || self.find_boxed(handle.0).is_some()
    }

    fn find_shared(&self, id: u64) -> Option<(usize, usize)> {
        self.groups
            .iter()
            .enumerate()
            .find_map(|(gi, g)| g.members.iter().position(|m| m.id == id).map(|mi| (gi, mi)))
    }

    fn find_boxed(&self, id: u64) -> Option<usize> {
        self.boxed.iter().position(|b| b.id == id)
    }

    /// The engine that would reject a delete, if any — probed before an
    /// op is applied to anyone.
    fn delete_blocker(&self) -> Option<&'static str> {
        self.boxed
            .iter()
            .find(|b| !b.supports_deletes)
            .map(|b| b.sampler.name())
    }

    /// The checks [`process_op`](SamplerService::process_op) performs
    /// before any mutation, without applying anything — what the
    /// durability wrapper runs before logging an op, so nothing ever
    /// reaches the WAL that replay would reject.
    pub fn validate_op(&self, op: &StreamOp) -> Result<(), ServiceError> {
        if op.is_delete() {
            if let Some(engine) = self.delete_blocker() {
                return Err(ServiceError::DeleteUnsupported(engine));
            }
        }
        let t = op.tuple();
        let Some(schema) = self.universe.relations().get(t.relation) else {
            return Err(ServiceError::Store(SharedStoreError::UnknownRelation(
                t.relation,
            )));
        };
        if t.values.len() != schema.attrs.len() {
            return Err(ServiceError::Store(SharedStoreError::ArityMismatch {
                relation: t.relation,
                expected: schema.attrs.len(),
                got: t.values.len(),
            }));
        }
        Ok(())
    }

    /// Ingests one op: validate, retain, apply to every registration,
    /// publish if the cadence elapsed. Returns the op's LSN (0-based).
    ///
    /// A delete is rejected **before** application when any registered
    /// engine is insert-only, so no op is ever half-applied.
    pub fn process_op(&mut self, op: &StreamOp) -> Result<u64, ServiceError> {
        self.process_owned(op.clone())
    }

    /// [`process_op`](SamplerService::process_op) by move: the op is
    /// retained as the history entry itself and applied through a borrow
    /// of that entry, so per-op ingest performs exactly one values
    /// allocation (building the op).
    fn process_owned(&mut self, op: StreamOp) -> Result<u64, ServiceError> {
        self.validate_op(&op)?;
        let lsn = self.store.append_owned(op).map_err(ServiceError::Store)?;
        let op = &self.store.history().ops()[lsn as usize];
        let t = op.tuple();
        for g in &mut self.groups {
            let Group {
                index,
                members,
                cache,
                ..
            } = g;
            if op.is_delete() {
                if index.delete(t.relation, &t.values).is_some() {
                    for m in members.iter_mut() {
                        m.core.apply_delete(index, t.relation, &t.values);
                    }
                }
            } else if let Some(tid) = index.insert(t.relation, &t.values) {
                Self::consume_group(index, members, cache, t.relation, tid);
            }
        }
        for b in &mut self.boxed {
            b.sampler
                .process_op(op)
                .expect("delete capability probed before application");
            match op {
                StreamOp::Insert(t) => b.counter.insert(t.relation, t.values.clone()),
                StreamOp::Delete(t) => b.counter.remove(t.relation, &t.values),
            }
        }
        self.ops_since_publish += 1;
        self.maybe_publish();
        Ok(lsn)
    }

    /// Convenience: ingests one insert.
    pub fn process(&mut self, rel: usize, tuple: &[Value]) -> Result<u64, ServiceError> {
        self.process_owned(StreamOp::insert(rel, tuple.to_vec()))
    }

    /// Convenience: ingests one delete.
    pub fn delete(&mut self, rel: usize, tuple: &[Value]) -> Result<u64, ServiceError> {
        self.process_owned(StreamOp::delete(rel, tuple.to_vec()))
    }

    /// Ingests an entire op stream in arrival order.
    pub fn process_op_stream(&mut self, ops: &OpStream) -> Result<(), ServiceError> {
        for op in ops.iter() {
            self.process_op(op)?;
        }
        Ok(())
    }

    /// Ingests a columnar batch: each row's relation dedup hash is
    /// computed once by the vectorized column kernel and shared by every
    /// index group, so the batch amortization compounds with the storage
    /// sharing. Byte-identical per member to feeding the batch's rows
    /// through [`process_op`](SamplerService::process_op) in arrival
    /// order. The batch is atomic with respect to publish points: the
    /// cadence check runs once, after the whole batch.
    pub fn process_columnar(&mut self, batch: &ColumnarBatch) -> Result<(), ServiceError> {
        let nrels = batch.num_relations();
        if nrels > self.universe.num_relations() {
            return Err(ServiceError::Store(SharedStoreError::UnknownRelation(
                nrels - 1,
            )));
        }
        for rel in 0..nrels {
            let rc = batch.relation(rel);
            let expected = self.universe.relation(rel).attrs.len();
            if rc.rows() > 0 && rc.arity() != expected {
                return Err(ServiceError::Store(SharedStoreError::ArityMismatch {
                    relation: rel,
                    expected,
                    got: rc.arity(),
                }));
            }
        }
        // Retain first (the store is the authority every backfill and
        // restore replays), then apply.
        let mut row = Vec::new();
        for &(rel, r) in batch.arrivals() {
            row.clear();
            batch.relation(rel as usize).write_row(r as usize, &mut row);
            self.store
                .append_owned(StreamOp::insert(rel as usize, row.clone()))
                .expect("batch validated against the universe");
        }
        // One hash pass per relation, shared across all index groups.
        let mut hashes: Vec<Vec<u64>> = Vec::with_capacity(nrels);
        let mut flat: Vec<Value> = Vec::new();
        for rel in 0..nrels {
            let rc = batch.relation(rel);
            let mut h = Vec::new();
            if rc.rows() > 0 {
                flat.clear();
                rc.gather_rows(&mut flat);
                fx_hash_columns(rc.arity() as u64, rc.arity(), &flat, &mut h);
            }
            hashes.push(h);
        }
        for g in &mut self.groups {
            let Group {
                index,
                members,
                cache,
                ..
            } = g;
            for &(rel, r) in batch.arrivals() {
                row.clear();
                batch.relation(rel as usize).write_row(r as usize, &mut row);
                if let Some(tid) =
                    index.insert_hashed(rel as usize, &row, hashes[rel as usize][r as usize])
                {
                    Self::consume_group(index, members, cache, rel as usize, tid);
                }
            }
        }
        for b in &mut self.boxed {
            b.sampler.process_columnar(batch);
            for &(rel, r) in batch.arrivals() {
                row.clear();
                batch.relation(rel as usize).write_row(r as usize, &mut row);
                b.counter.insert(rel as usize, row.clone());
            }
        }
        self.ops_since_publish += batch.arrivals().len() as u64;
        self.maybe_publish();
        Ok(())
    }

    fn maybe_publish(&mut self) {
        if self.publish_every > 0 && self.ops_since_publish >= self.publish_every {
            self.publish();
        }
    }

    /// Publishes every member's `(lsn, |Q(R)|, samples)` to its epoch
    /// cell — the only write side of the reader path. Exact counts are
    /// computed once per index group and shared by its members.
    pub fn publish(&mut self) {
        self.ops_since_publish = 0;
        let lsn = self.store.lsn();
        for g in &self.groups {
            let population = exact_result_count(g.index.query(), g.index.database());
            for m in &g.members {
                Self::publish_cell(&m.cell, lsn, population, m.core.samples());
            }
        }
        for b in &self.boxed {
            let samples = b.sampler.samples();
            Self::publish_cell(&b.cell, lsn, b.counter.count(), &samples);
        }
    }

    fn publish_cell(cell: &EpochCell, lsn: u64, population: u128, samples: &[Vec<Value>]) {
        let mut words = Vec::with_capacity(cell.capacity());
        words.push(lsn);
        words.push(population as u64);
        words.push((population >> 64) as u64);
        words.push(samples.len() as u64);
        for s in samples {
            words.extend_from_slice(s);
        }
        cell.publish(&words);
    }

    /// A clonable, thread-safe reader over the registration's epoch cell.
    /// Readers stay valid (serving the last published epoch) after the
    /// registration is deregistered.
    pub fn reader(&self, handle: QueryHandle) -> Result<SampleReader, ServiceError> {
        if let Some((gi, mi)) = self.find_shared(handle.0) {
            let m = &self.groups[gi].members[mi];
            Ok(SampleReader {
                cell: Arc::clone(&m.cell),
                arity: self.universe.num_attrs(),
                k: m.core.reservoir.capacity(),
            })
        } else if let Some(bi) = self.find_boxed(handle.0) {
            let b = &self.boxed[bi];
            Ok(SampleReader {
                cell: Arc::clone(&b.cell),
                arity: b.sampler.output_query().num_attrs(),
                k: b.sampler.k(),
            })
        } else {
            Err(ServiceError::UnknownHandle(handle.0))
        }
    }

    /// The registration's current samples (owner-side read; readers use
    /// [`reader`](SamplerService::reader)).
    pub fn samples(&self, handle: QueryHandle) -> Result<Vec<Vec<Value>>, ServiceError> {
        if let Some((gi, mi)) = self.find_shared(handle.0) {
            Ok(self.groups[gi].members[mi].core.samples().to_vec())
        } else if let Some(bi) = self.find_boxed(handle.0) {
            Ok(self.boxed[bi].sampler.samples())
        } else {
            Err(ServiceError::UnknownHandle(handle.0))
        }
    }

    /// Exact live `|Q(R)|` for the registration (an `O(N)` count).
    pub fn exact_count(&self, handle: QueryHandle) -> Result<u128, ServiceError> {
        if let Some((gi, _)) = self.find_shared(handle.0) {
            let g = &self.groups[gi];
            Ok(exact_result_count(g.index.query(), g.index.database()))
        } else if let Some(bi) = self.find_boxed(handle.0) {
            Ok(self.boxed[bi].counter.count())
        } else {
            Err(ServiceError::UnknownHandle(handle.0))
        }
    }

    /// Structural heap bytes: retained store + shared indexes + per-member
    /// reservoirs and cells + boxed engines. With zero registrations this
    /// is exactly `store().heap_size()` — the baseline the leak property
    /// test measures against.
    pub fn heap_size(&self) -> usize {
        let mut total = self.store.heap_size();
        for g in &self.groups {
            total += g.index.heap_size();
            for m in &g.members {
                total += m.core.sample_heap_size() + m.cell.heap_size();
            }
        }
        for b in &self.boxed {
            total += b.sampler.stats().heap_bytes.unwrap_or(0)
                + b.counter.heap_size()
                + b.cell.heap_size();
        }
        total
    }

    /// Serializes the whole service: store, groups (options, tree, index
    /// state, member cores), and boxed members (engine state bytes).
    /// Fails with [`ServiceError::SnapshotUnsupported`] if any boxed
    /// engine lacks snapshot support.
    pub fn snapshot_to(&self, enc: &mut Encoder) -> Result<(), ServiceError> {
        if let Some(b) = self.boxed.iter().find(|b| !b.sampler.supports_snapshot()) {
            return Err(ServiceError::SnapshotUnsupported(b.sampler.name()));
        }
        self.store.snapshot_to(enc);
        enc.put_u64(self.next_id);
        enc.put_u64(self.publish_every);
        enc.put_u64(self.ops_since_publish);
        enc.put_usize(self.groups.len());
        for g in &self.groups {
            enc.put_bool(g.options.grouping);
            g.tree.snapshot_to(enc);
            g.index.snapshot_state_to(enc);
            enc.put_usize(g.members.len());
            for m in &g.members {
                enc.put_u64(m.id);
                m.core.snapshot_to(enc);
            }
        }
        enc.put_usize(self.boxed.len());
        for b in &self.boxed {
            enc.put_u64(b.id);
            enc.put_str(b.sampler.name());
            enc.put_usize(b.sampler.k());
            let state = b
                .sampler
                .snapshot_state()
                .expect("snapshot support checked above");
            enc.put_bytes(&state);
        }
        Ok(())
    }

    /// Restores a service written by
    /// [`snapshot_to`](SamplerService::snapshot_to) into `self`, which
    /// must have been built over the same universe; any prior
    /// registrations of `self` are discarded. Boxed members are rebuilt
    /// through `rebuild(engine_name, k)`, which must construct each engine
    /// with the same parameters it was originally registered with
    /// (returning `None` rejects the snapshot). A fresh epoch is published
    /// for every member, so readers attached afterwards see the restored
    /// state immediately.
    pub fn restore_from_snapshot(
        &mut self,
        dec: &mut Decoder,
        rebuild: &mut RebuildFn,
    ) -> Result<(), CodecError> {
        let store = SharedStore::restore_from(dec)?;
        let expected: Vec<(String, usize)> = self
            .universe
            .relations()
            .iter()
            .map(|r| (r.name.clone(), r.attrs.len()))
            .collect();
        if store.schema() != expected.as_slice() {
            return Err(CodecError::Corrupt(
                "service snapshot is for another universe",
            ));
        }
        let next_id = dec.u64()?;
        let publish_every = dec.u64()?;
        let ops_since_publish = dec.u64()?;
        let nrels = self.universe.num_relations();
        let num_attrs = self.universe.num_attrs();
        let ngroups = dec.seq_len(1)?;
        let mut groups = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            let options = IndexOptions {
                grouping: dec.bool()?,
            };
            let tree = JoinTree::restore_from(dec)?;
            if tree.len() != nrels {
                return Err(CodecError::Corrupt("group tree is for another universe"));
            }
            let mut index = DynamicIndex::with_tree(self.universe.clone(), &tree, options)
                .map_err(|_| CodecError::Corrupt("group tree is not a join tree"))?;
            index.restore_state_from(dec)?;
            let nmembers = dec.seq_len(1)?;
            if nmembers == 0 {
                return Err(CodecError::Corrupt("empty index group in snapshot"));
            }
            let mut members = Vec::with_capacity(nmembers);
            for _ in 0..nmembers {
                let id = dec.u64()?;
                let core = SamplerCore::restore_from(dec, nrels)?;
                let cell = Arc::new(EpochCell::new(4 + core.reservoir.capacity() * num_attrs));
                members.push(Member { id, core, cell });
            }
            groups.push(Group {
                edges: tree.canonical_edges(),
                tree,
                options,
                index,
                members,
                cache: DeltaCache::default(),
            });
        }
        let nboxed = dec.seq_len(1)?;
        let mut boxed = Vec::with_capacity(nboxed);
        for _ in 0..nboxed {
            let id = dec.u64()?;
            let name = dec.str()?.to_string();
            let k = dec.usize()?;
            let state = dec.bytes()?.to_vec();
            let mut sampler = rebuild(&name, k).ok_or(CodecError::Corrupt(
                "no builder for boxed engine in snapshot",
            ))?;
            if sampler.name() != name || sampler.k() != k {
                return Err(CodecError::Corrupt(
                    "rebuilt engine does not match snapshot",
                ));
            }
            sampler.restore_state(&state)?;
            let mut counter = JoinCounter::new(self.universe.clone());
            for op in store.history().iter() {
                match op {
                    StreamOp::Insert(t) => counter.insert(t.relation, t.values.clone()),
                    StreamOp::Delete(t) => counter.remove(t.relation, &t.values),
                }
            }
            let supports_deletes = sampler.supports_deletes();
            let arity = sampler.output_query().num_attrs();
            let cell = Arc::new(EpochCell::new(4 + k * arity));
            boxed.push(BoxedMember {
                id,
                sampler,
                counter,
                supports_deletes,
                cell,
            });
        }
        self.store = store;
        self.groups = groups;
        self.boxed = boxed;
        self.next_id = next_id;
        self.publish_every = publish_every;
        self.ops_since_publish = ops_since_publish;
        self.publish();
        Ok(())
    }
}

/// A clonable, `Send + Sync` handle to one registration's epoch cell:
/// the never-blocking read side of the service. See the [module
/// docs](self), "The epoch-read invariant".
#[derive(Clone)]
pub struct SampleReader {
    cell: Arc<EpochCell>,
    arity: usize,
    k: usize,
}

impl SampleReader {
    /// Reservoir capacity of the registration this reader observes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Width (in values) of each sample tuple.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The last published epoch's snapshot, spinning through in-flight
    /// publishes (bounded: the writer's publish is wait-free).
    pub fn snapshot(&self) -> SampleSnapshot {
        let mut words = Vec::new();
        let epoch = self.cell.read_into(&mut words);
        self.decode(epoch, &words)
    }

    /// One read attempt; `None` when a publish was in flight (the caller
    /// may retry — the interleaving tests count these).
    pub fn try_snapshot(&self) -> Option<SampleSnapshot> {
        let mut words = Vec::new();
        let epoch = self.cell.try_read_into(&mut words)?;
        Some(self.decode(epoch, &words))
    }

    fn decode(&self, epoch: u64, words: &[u64]) -> SampleSnapshot {
        if words.len() < 4 {
            return SampleSnapshot {
                epoch,
                lsn: 0,
                population: 0,
                samples: Vec::new(),
            };
        }
        let lsn = words[0];
        let population = (words[1] as u128) | ((words[2] as u128) << 64);
        let n = words[3] as usize;
        debug_assert_eq!(words.len(), 4 + n * self.arity, "torn payload shape");
        let samples = words[4..]
            .chunks_exact(self.arity.max(1))
            .take(n)
            .map(|c| c.to_vec())
            .collect();
        SampleSnapshot {
            epoch,
            lsn,
            population,
            samples,
        }
    }
}

/// One consistent published state: the reservoir and the exact count a
/// single publish point wrote together — never a mix of two epochs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleSnapshot {
    /// The cell's epoch (even; monotonically increasing per publish).
    pub epoch: u64,
    /// The LSN the publish point observed (ops ingested before it).
    pub lsn: u64,
    /// Exact `|Q(R)|` at that LSN.
    pub population: u128,
    /// The registration's reservoir at that LSN: uniform without
    /// replacement over `Q(R)`, fewer than `k` while `|Q(R)| < k`.
    pub samples: Vec<Vec<Value>>,
}

impl SampleSnapshot {
    /// Draws `n` samples uniformly without replacement from the snapshot's
    /// reservoir (all of them when `n >= samples.len()`). A uniform
    /// subsample of a uniform sample is uniform over `Q(R)` — the property
    /// the service's chi-square test checks.
    pub fn sample(&self, n: usize, rng: &mut RsjRng) -> Vec<Vec<Value>> {
        let mut idx: Vec<usize> = (0..self.samples.len()).collect();
        let take = n.min(idx.len());
        let mut out = Vec::with_capacity(take);
        for i in 0..take {
            let j = i + rng.index(idx.len() - i);
            idx.swap(i, j);
            out.push(self.samples[idx[i]].clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservoir_join::{ReplanPolicy, ReservoirJoin};
    use rsj_query::QueryBuilder;

    fn line3() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("G1", &["A", "B"]);
        qb.relation("G2", &["B", "C"]);
        qb.relation("G3", &["C", "D"]);
        qb.build().unwrap()
    }

    fn turnstile_ops(n: usize, seed: u64) -> OpStream {
        let mut rng = RsjRng::seed_from_u64(seed);
        let mut live: Vec<(usize, Vec<Value>)> = Vec::new();
        let mut ops = OpStream::new();
        for step in 0..n {
            if step % 5 == 4 && !live.is_empty() {
                let (rel, t) = live.swap_remove(rng.index(live.len()));
                ops.push_delete(rel, t);
            } else {
                let rel = rng.index(3);
                let t = vec![rng.below_u64(6), rng.below_u64(6)];
                live.push((rel, t.clone()));
                ops.push_insert(rel, t);
            }
        }
        ops
    }

    fn standalone(q: &Query, k: usize, seed: u64) -> ReservoirJoin {
        let mut rj = ReservoirJoin::new(q.clone(), k, seed).unwrap();
        rj.set_replan_policy(ReplanPolicy {
            auto: false,
            min_inserts: u64::MAX,
        });
        rj
    }

    #[test]
    fn members_share_one_index_and_match_standalone() {
        let q = line3();
        let mut svc = SamplerService::new(q.clone());
        let handles: Vec<QueryHandle> = (0..4)
            .map(|i| {
                svc.register(&q, &QueryOpts::new(4 + i, 100 + i as u64))
                    .unwrap()
            })
            .collect();
        assert_eq!(svc.num_queries(), 4);
        assert_eq!(svc.num_groups(), 1, "same tree, same options: one index");
        let ops = turnstile_ops(300, 7);
        svc.process_op_stream(&ops).unwrap();
        for (i, h) in handles.iter().enumerate() {
            let mut rj = standalone(&q, 4 + i, 100 + i as u64);
            rj.process_op_stream(&ops).unwrap();
            assert_eq!(
                svc.samples(*h).unwrap(),
                crate::exec::JoinSampler::samples(&rj),
                "member {i} diverged from its standalone twin"
            );
        }
    }

    #[test]
    fn late_registration_backfills_to_byte_identity() {
        let q = line3();
        let mut svc = SamplerService::new(q.clone());
        let early = svc.register(&q, &QueryOpts::new(8, 1)).unwrap();
        let ops = turnstile_ops(200, 9);
        for op in ops.iter().take(120) {
            svc.process_op(op).unwrap();
        }
        let late = svc.register(&q, &QueryOpts::new(8, 1)).unwrap();
        assert_eq!(
            svc.samples(early).unwrap(),
            svc.samples(late).unwrap(),
            "backfill must reproduce the full history"
        );
        for op in ops.iter().skip(120) {
            svc.process_op(op).unwrap();
        }
        assert_eq!(svc.samples(early).unwrap(), svc.samples(late).unwrap());
    }

    #[test]
    fn distinct_options_get_distinct_groups() {
        let q = line3();
        let mut svc = SamplerService::new(q.clone());
        let a = QueryOpts::new(4, 1);
        let mut b = QueryOpts::new(4, 2);
        b.index = IndexOptions { grouping: false };
        svc.register(&q, &a).unwrap();
        svc.register(&q, &b).unwrap();
        assert_eq!(svc.num_groups(), 2);
    }

    #[test]
    fn deregister_releases_everything() {
        let q = line3();
        let mut svc = SamplerService::new(q.clone());
        svc.process(0, &[1, 2]).unwrap();
        let baseline = svc.heap_size();
        assert_eq!(baseline, svc.store().heap_size());
        let h1 = svc.register(&q, &QueryOpts::new(4, 1)).unwrap();
        let h2 = svc.register(&q, &QueryOpts::new(4, 2)).unwrap();
        assert_eq!(svc.store().live_refs(), 6);
        assert!(svc.heap_size() > baseline);
        svc.deregister(h1).unwrap();
        assert!(svc.registered(h2) && !svc.registered(h1));
        svc.deregister(h2).unwrap();
        assert_eq!(svc.store().live_refs(), 0);
        assert_eq!(svc.num_groups(), 0);
        assert_eq!(svc.heap_size(), svc.store().heap_size());
        assert!(matches!(
            svc.deregister(h2),
            Err(ServiceError::UnknownHandle(_))
        ));
    }

    #[test]
    fn boxed_member_is_resident_and_counted() {
        let q = line3();
        let mut svc = SamplerService::new(q.clone());
        svc.process(0, &[1, 10]).unwrap();
        let h = svc
            .register_sampler(Box::new(ReservoirJoin::new(q.clone(), 8, 3).unwrap()))
            .unwrap();
        svc.process(1, &[10, 20]).unwrap();
        svc.process(2, &[20, 30]).unwrap();
        assert_eq!(svc.exact_count(h).unwrap(), 1);
        assert_eq!(svc.samples(h).unwrap(), vec![vec![1, 10, 20, 30]]);
        svc.delete(1, &[10, 20]).unwrap();
        assert_eq!(svc.exact_count(h).unwrap(), 0);
        svc.deregister(h).unwrap();
        assert_eq!(svc.store().live_refs(), 0);
    }

    #[test]
    fn reader_snapshot_decodes_published_state() {
        let q = line3();
        let mut svc = SamplerService::new(q.clone());
        let h = svc.register(&q, &QueryOpts::new(8, 42)).unwrap();
        let reader = svc.reader(h).unwrap();
        let empty = reader.snapshot();
        assert_eq!((empty.lsn, empty.population), (0, 0));
        svc.process(0, &[1, 10]).unwrap();
        svc.process(1, &[10, 20]).unwrap();
        svc.process(2, &[20, 5]).unwrap();
        svc.process(2, &[20, 6]).unwrap();
        svc.publish();
        let snap = reader.snapshot();
        assert_eq!(snap.lsn, 4);
        assert_eq!(snap.population, 2);
        assert_eq!(snap.samples.len(), 2);
        assert!(snap.epoch > empty.epoch);
        let mut rng = RsjRng::seed_from_u64(1);
        assert_eq!(snap.sample(1, &mut rng).len(), 1);
        assert_eq!(snap.sample(10, &mut rng).len(), 2);
    }

    #[test]
    fn snapshot_restore_round_trips_and_continues_identically() {
        let q = line3();
        let mut svc = SamplerService::new(q.clone());
        svc.register(&q, &QueryOpts::new(6, 5)).unwrap();
        let ops = turnstile_ops(250, 11);
        for op in ops.iter().take(150) {
            svc.process_op(op).unwrap();
        }
        svc.register(&q, &QueryOpts::new(3, 9)).unwrap();
        svc.register_sampler(Box::new(ReservoirJoin::new(q.clone(), 4, 7).unwrap()))
            .unwrap();
        let mut enc = Encoder::new();
        svc.snapshot_to(&mut enc).unwrap();
        let bytes = enc.into_bytes();
        let mut back = SamplerService::new(q.clone());
        let mut dec = Decoder::new(&bytes);
        back.restore_from_snapshot(&mut dec, &mut |name, k| {
            (name == "RSJoin").then(|| {
                Box::new(ReservoirJoin::new(line3(), k, 7).unwrap()) as Box<dyn JoinSampler + Send>
            })
        })
        .unwrap();
        dec.finish().unwrap();
        assert_eq!(back.num_queries(), 3);
        assert_eq!(back.lsn(), svc.lsn());
        for op in ops.iter().skip(150) {
            svc.process_op(op).unwrap();
            back.process_op(op).unwrap();
        }
        for h in svc.handles() {
            assert_eq!(svc.samples(h).unwrap(), back.samples(h).unwrap());
            assert_eq!(svc.exact_count(h).unwrap(), back.exact_count(h).unwrap());
        }
    }

    #[test]
    fn registration_errors_are_loud_and_harmless() {
        let q = line3();
        let mut other = QueryBuilder::new();
        other.relation("R", &["X", "Y"]);
        let other = other.build().unwrap();
        let mut svc = SamplerService::new(q.clone());
        assert!(matches!(
            svc.register(&other, &QueryOpts::new(4, 1)),
            Err(ServiceError::UniverseMismatch)
        ));
        assert!(matches!(
            svc.register(&q, &QueryOpts::new(0, 1)),
            Err(ServiceError::ZeroCapacity)
        ));
        // Insert-only boxed member + a later delete: rejected before any
        // member sees the op. Every real engine is fully dynamic now, so
        // the blocker is a stub that keeps the trait's insert-only
        // defaults.
        struct InsertOnlyStub {
            query: Query,
        }
        impl JoinSampler for InsertOnlyStub {
            fn name(&self) -> &'static str {
                "InsertOnlyStub"
            }
            fn output_query(&self) -> &Query {
                &self.query
            }
            fn process(&mut self, _rel: usize, _tuple: &[Value]) {}
            fn samples(&self) -> Vec<Vec<Value>> {
                Vec::new()
            }
            fn k(&self) -> usize {
                1
            }
        }
        let mut svc2 = SamplerService::new(q.clone());
        svc2.register_sampler(Box::new(InsertOnlyStub { query: q.clone() }))
            .unwrap();
        let h = svc2.register(&q, &QueryOpts::new(4, 2)).unwrap();
        svc2.process(0, &[1, 2]).unwrap();
        let before = svc2.samples(h).unwrap();
        assert!(matches!(
            svc2.delete(0, &[1, 2]),
            Err(ServiceError::DeleteUnsupported("InsertOnlyStub"))
        ));
        assert_eq!(svc2.samples(h).unwrap(), before, "no half-applied op");
        assert_eq!(svc2.lsn(), 1, "rejected op is not retained");
        svc2.deregister(h).unwrap();
        svc2.delete(0, &[1, 2]).unwrap_err(); // blocker still registered
    }

    #[test]
    fn columnar_ingest_matches_row_ingest_per_member() {
        let q = line3();
        let mut rng = RsjRng::seed_from_u64(21);
        let mut ops = Vec::new();
        for _ in 0..240 {
            ops.push(StreamOp::insert(
                rng.index(3),
                vec![rng.below_u64(6), rng.below_u64(6)],
            ));
        }
        let mut by_rows = SamplerService::new(q.clone());
        let mut by_cols = SamplerService::new(q.clone());
        for svc in [&mut by_rows, &mut by_cols] {
            svc.register(&q, &QueryOpts::new(5, 3)).unwrap();
            svc.register(&q, &QueryOpts::new(9, 4)).unwrap();
        }
        for op in &ops {
            by_rows.process_op(op).unwrap();
        }
        for chunk in ops.chunks(64) {
            let batch = ColumnarBatch::from_insert_ops(chunk).expect("insert-only");
            by_cols.process_columnar(&batch).unwrap();
        }
        assert_eq!(by_rows.lsn(), by_cols.lsn());
        for (a, b) in by_rows.handles().into_iter().zip(by_cols.handles()) {
            assert_eq!(by_rows.samples(a).unwrap(), by_cols.samples(b).unwrap());
        }
    }
}
