//! `ReservoirJoin` — Algorithm 6, the paper's headline driver.
//!
//! Per input tuple: update the dynamic index (`O(log N)` amortized), ask it
//! for the implicit delta batch `ΔJ ⊇ ΔQ(R, t)`, and feed that batch to the
//! batched predicate reservoir. The reservoir's `skip` jumps over batch
//! positions without touching them; only its `O(Σ min(1, k/(r+1)))` stops
//! perform an `O(log N)` positional retrieve, and a retrieve that lands on
//! rounding slack is exactly a falsified predicate.
//!
//! # Turnstile streams
//!
//! [`ReservoirJoin::delete`] opens the stream to deletions. The index side
//! is the exact mirror of insertion (cascading count decrements). The
//! reservoir side follows the eviction-and-backfill protocol:
//!
//! 1. **Evict** every sample that used the deleted tuple (set semantics
//!    make the test a projection comparison).
//! 2. **Backfill** the vacated slots with fresh uniform draws from the
//!    index's full-query sampler, rejected to distinctness — sequential
//!    simple random sampling, so the sample set is exactly uniform without
//!    replacement over the post-delete `Q(R)`.
//! 3. **Recalibrate** the skip state `(w, q)` against the *exact* live
//!    `|Q(R)|` (one `O(N)` message-passing count), so subsequent inserts
//!    are weighted as if the reservoir had run over the live population
//!    from the start.
//!
//! Step 3 is the expensive one and runs only at *repair points*: deletes
//! that evicted a sample, plus a forced refresh every `~|Q(R)|/4k`
//! deletes (every delete while `|Q(R)| <= 4k`). Between repair points the
//! sample stays a uniform subset of the live results; only the inclusion
//! probability of results inserted since the last repair drifts (bounded
//! by the fraction deleted since then, `< 1/4k`), until the next repair
//! resets it exactly. Engines with `O(1)` exact counts (`SJoin`,
//! `SymmetricHashJoin`) afford recalibration on *every* delete and carry
//! no such drift; see ARCHITECTURE.md, "Update model".

use crate::count::exact_result_count;
use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::hash::fx_hash_columns;
use rsj_common::rng::{child_seed, RsjRng};
use rsj_common::{FxHashMap, TupleId, Value};
use rsj_index::{DeltaBatch, DynamicIndex, FullSampler, IndexOptions, IndexStats};
use rsj_query::{Plan, Planner, Query};
use rsj_storage::{ColumnarBatch, InputTuple, TableStatistics, TupleStream};
use rsj_stream::{FnBatch, Reservoir};

/// The root with the smallest observed implicit array `|J_root|` —
/// measured rejection slack, one O(1) lookup per root. `proposed` (the
/// cost model's choice) wins ties, then the smallest id.
fn best_observed_root(index: &DynamicIndex, proposed: usize) -> usize {
    let mut best = proposed;
    let mut best_size = FullSampler {
        root: proposed,
        ..FullSampler::default()
    }
    .implicit_size(index);
    for root in 0..index.query().num_relations() {
        if root == proposed {
            continue;
        }
        let size = FullSampler {
            root,
            ..FullSampler::default()
        }
        .implicit_size(index);
        if size < best_size || (size == best_size && root < best && best != proposed) {
            best = root;
            best_size = size;
        }
    }
    best
}

/// When the driver re-evaluates its plan against observed statistics.
///
/// Checks happen at power-of-two accepted-insert counts (so the planning
/// pass — an `O(N)` statistics scan plus candidate scoring — amortizes to
/// `O(1)` per insert), starting at [`min_inserts`](ReplanPolicy::min_inserts).
/// An actual index rebuild only happens when the challenger plan clears the
/// planner's hold margin; a mere sampling-root switch is free and taken
/// whenever the model prefers it.
#[derive(Clone, Copy, Debug)]
pub struct ReplanPolicy {
    /// Re-evaluate automatically during [`ReservoirJoin::process`]. With
    /// `false`, plans only change through explicit
    /// [`ReservoirJoin::replan`] calls.
    pub auto: bool,
    /// First accepted-insert count at which an automatic check may fire.
    pub min_inserts: u64,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        ReplanPolicy {
            auto: true,
            min_inserts: 4096,
        }
    }
}

/// Maintains `k` uniform samples without replacement of the join results of
/// an acyclic query over a fully-dynamic (insert + delete) tuple stream.
///
/// Samples are materialized full-width value tuples (indexed by the query's
/// attribute ids), so they stay valid as the stream continues.
///
/// ```
/// use rsj_query::QueryBuilder;
/// use rsj_core::ReservoirJoin;
///
/// let mut qb = QueryBuilder::new();
/// qb.relation("R", &["X", "Y"]);
/// qb.relation("S", &["Y", "Z"]);
/// let mut rj = ReservoirJoin::new(qb.build().unwrap(), 10, 42).unwrap();
/// rj.process(0, &[1, 2]);
/// rj.process(1, &[2, 3]);
/// assert_eq!(rj.samples(), &[vec![1, 2, 3]]);
/// rj.delete(1, &[2, 3]);
/// assert!(rj.samples().is_empty());
/// ```
pub struct ReservoirJoin {
    index: DynamicIndex,
    /// The read path: reservoir, repair state, and the plan metadata —
    /// everything that consumes the index without owning it.
    core: SamplerCore,
    planner: Planner,
    replan_policy: ReplanPolicy,
    /// Index rebuilds performed by [`replan`](ReservoirJoin::replan).
    rebuilds: u64,
    /// Accepted-insert count at which the last automatic replan check
    /// fired (guards against duplicate arrivals re-firing a checkpoint).
    replan_checked_at: u64,
}

/// Memoizes one op's delta-batch retrievals across the members of a
/// service index group. Within one op every member walks the *same*
/// implicit batch (same index state, same generating tuple), so the first
/// member to touch position `z` pays the `O(log N)` retrieval and
/// materialization; the rest clone the cached row. The win concentrates
/// in the fill phase, where every still-filling member scans the batch
/// prefix position by position.
///
/// Cleared per op ([`begin_op`](DeltaCache::begin_op)); the map's
/// allocation is retained, so steady-state ingest stays allocation-free
/// on the cache side.
#[derive(Default)]
pub(crate) struct DeltaCache {
    rows: FxHashMap<u128, Option<Vec<Value>>>,
}

impl DeltaCache {
    /// Forgets the previous op's rows (the batch they came from is gone).
    pub(crate) fn begin_op(&mut self) {
        self.rows.clear();
    }

    /// The materialized row at batch position `z`, or `None` for a dummy —
    /// retrieved on first touch, cloned out on every later one.
    fn row(&mut self, index: &DynamicIndex, batch: &DeltaBatch<'_>, z: u128) -> Option<Vec<Value>> {
        self.rows
            .entry(z)
            .or_insert_with(|| batch.retrieve(z).map(|r| index.materialize(&r)))
            .clone()
    }
}

/// The reservoir-side half of the driver: everything of [`ReservoirJoin`]
/// that *reads* a [`DynamicIndex`] without owning it — the reservoir and
/// its skip state, the eviction/backfill/recalibration repair protocol,
/// the repair RNG, and the plan whose root repair sampling descends.
///
/// The split is what makes index sharing possible: the sampler service
/// (`crate::service`) runs many `SamplerCore`s — one per registered query,
/// each with its own `k`, seed and sampling root — over **one** shared
/// index, and each core behaves byte-identically to a standalone
/// [`ReservoirJoin`] fed the same op sequence, because this is the same
/// code `ReservoirJoin` itself runs.
pub(crate) struct SamplerCore {
    /// The orientation the index is materialized over, plus the preferred
    /// sampling root repair draws go through.
    pub(crate) plan: Plan,
    pub(crate) reservoir: Reservoir<Vec<Value>>,
    /// Reusable materialization buffer for the in-place reservoir path:
    /// an evicted sample's allocation becomes the next retrieve's scratch,
    /// so steady-state sampling performs no per-sample allocations.
    pub(crate) scratch: Vec<Value>,
    /// RNG for repair backfill draws, independent of the reservoir's skip
    /// stream (insert-only runs never touch it, keeping their reservoirs
    /// byte-identical across this feature).
    pub(crate) repair_rng: RsjRng,
    pub(crate) inserts: u64,
    pub(crate) deletes: u64,
    /// Exact `|Q(R)|` measured at the last repair point (0 before any).
    pub(crate) last_population: u128,
    /// Deletes since the last repair point; forces a refresh when it
    /// reaches [`repair_period`](SamplerCore::repair_period).
    pub(crate) deletes_since_repair: u64,
}

impl SamplerCore {
    /// A fresh core over `plan` with reservoir capacity `k` and the given
    /// seed — exactly the reservoir-side state [`ReservoirJoin::with_plan`]
    /// starts from.
    pub(crate) fn new(plan: Plan, k: usize, seed: u64) -> SamplerCore {
        SamplerCore {
            plan,
            reservoir: Reservoir::new(k, seed),
            scratch: Vec::new(),
            repair_rng: RsjRng::seed_from_u64(child_seed(seed, u64::from_le_bytes(*b"turnstil"))),
            inserts: 0,
            deletes: 0,
            last_population: 0,
            deletes_since_repair: 0,
        }
    }

    /// Feeds an accepted insert's implicit delta batch to the reservoir
    /// (Algorithm 6 lines 5–7). `index` must have already accepted the
    /// tuple as `tid` into relation `rel`.
    pub(crate) fn consume_delta(&mut self, index: &DynamicIndex, rel: usize, tid: TupleId) {
        self.inserts += 1;
        let batch = index.delta_batch(rel, tid);
        if batch.size() > 0 && !self.reservoir.try_skip(batch.size()) {
            let mut fb = FnBatch::new(batch.size(), |z| batch.retrieve(z));
            self.reservoir.process_batch_in_place(
                &mut fb,
                |item, buf| match item {
                    Some(r) => {
                        index.materialize_into(&r, buf);
                        true
                    }
                    None => false,
                },
                &mut self.scratch,
            );
        }
    }

    /// [`consume_delta`](SamplerCore::consume_delta) against a delta batch
    /// the caller already built, with retrievals shared through `cache` —
    /// the many-members-one-index ingest path of `crate::service`.
    ///
    /// Byte-identical to the uncached method: the reservoir sees the same
    /// batch size and stops at the same positions (its RNG never touches
    /// the cache), and a cached row equals a fresh retrieval because
    /// retrieval is a pure function of the index state. The sharing win is
    /// in the fill phase, where every still-filling member scans the same
    /// batch prefix: the first member pays the `O(log N)` retrieval per
    /// position, the rest clone the cached row.
    pub(crate) fn consume_delta_cached(
        &mut self,
        index: &DynamicIndex,
        batch: &DeltaBatch<'_>,
        cache: &mut DeltaCache,
    ) {
        self.inserts += 1;
        if batch.size() > 0 && !self.reservoir.try_skip(batch.size()) {
            let mut fb = FnBatch::new(batch.size(), |z| cache.row(index, batch, z));
            self.reservoir.process_batch_in_place(
                &mut fb,
                |item, buf| match item {
                    Some(row) => {
                        *buf = row;
                        true
                    }
                    None => false,
                },
                &mut self.scratch,
            );
        }
    }

    /// The reservoir side of a deletion `index` has already applied:
    /// evict samples using the tuple, then repair if the eviction damaged
    /// the sample or the repair period elapsed (see the [module
    /// docs](self)).
    pub(crate) fn apply_delete(&mut self, index: &DynamicIndex, rel: usize, tuple: &[Value]) {
        self.deletes += 1;
        self.deletes_since_repair += 1;
        // A materialized sample used the deleted tuple iff its projection
        // onto the relation's schema equals the deleted values (set
        // semantics: values identify the tuple).
        let attrs = &index.query().relation(rel).attrs;
        let evicted = self
            .reservoir
            .evict_where(|s| attrs.iter().enumerate().all(|(pos, &a)| s[a] == tuple[pos]));
        if evicted > 0 || self.deletes_since_repair >= self.repair_period() {
            self.repair(index);
        }
    }

    /// Deletes between forced repairs: `|Q(R)| / 4k` (last measured), so
    /// the deleted-since-repair fraction — which bounds the calibration
    /// drift on results inserted between repair points — stays below
    /// `~1/4k`. When the population is small (`<= 4k`) the period is 1 and
    /// every delete is a repair point, making the sample exactly uniform
    /// in precisely the regime where a single delete matters; for large
    /// populations the `O(N)` count amortizes to `O(k)` per delete.
    pub(crate) fn repair_period(&self) -> u64 {
        1u64.max(
            (self.last_population / (4 * self.reservoir.capacity().max(1) as u128))
                .min(u64::MAX as u128) as u64,
        )
    }

    /// A repair point: exact live count, sample backfill to
    /// `min(k, |Q(R)|)` distinct uniform results, skip-state
    /// recalibration.
    pub(crate) fn repair(&mut self, index: &DynamicIndex) {
        let population = exact_result_count(index.query(), index.database());
        self.last_population = population;
        self.deletes_since_repair = 0;
        let target = (self.reservoir.capacity() as u128).min(population) as usize;
        let full = FullSampler {
            root: self.plan.root,
            ..FullSampler::default()
        };
        let rng = &mut self.repair_rng;
        // Rejection sampling to distinctness: each accepted draw is
        // uniform over the live results not yet in the sample, which is
        // exactly sequential SRS. The per-slot budget covers the two
        // rejection sources — dummy positions, bounded by the density
        // invariant at (1/2)^(2|T|-2), and duplicate hits, worst around
        // O(k) when the population barely exceeds the sample.
        let nrels = index.query().num_relations();
        let per_slot = (4096 + 256 * self.reservoir.capacity())
            .saturating_mul(1usize << (2 * (nrels.max(1) - 1)).min(16))
            .min(1 << 24);
        let filled = self.reservoir.backfill_distinct(target, per_slot, || {
            full.try_sample(index, rng).map(|r| index.materialize(&r))
        });
        debug_assert!(filled, "backfill exhausted its rejection cap");
        self.reservoir.recalibrate(population);
    }

    /// The current samples (uniform without replacement over `Q(R)`).
    pub(crate) fn samples(&self) -> &[Vec<Value>] {
        self.reservoir.samples()
    }

    /// Heap bytes held by the materialized sample slots.
    pub(crate) fn sample_heap_size(&self) -> usize {
        self.samples()
            .iter()
            .map(|s| s.capacity() * std::mem::size_of::<Value>())
            .sum::<usize>()
    }

    /// Serializes the core: plan, reservoir (slots, skip state, RNG),
    /// repair RNG, and counters — the per-query half of a service
    /// snapshot. [`ReservoirJoin::snapshot_to`] keeps its own historical
    /// field order and does not call this.
    pub(crate) fn snapshot_to(&self, enc: &mut Encoder) {
        self.plan.snapshot_to(enc);
        self.reservoir.snapshot_to(enc, |e, s| e.put_u64s(s));
        for w in self.repair_rng.state() {
            enc.put_u64(w);
        }
        enc.put_u64(self.inserts);
        enc.put_u64(self.deletes);
        enc.put_u128(self.last_population);
        enc.put_u64(self.deletes_since_repair);
    }

    /// Restores a core written by [`snapshot_to`](SamplerCore::snapshot_to).
    /// `num_relations` guards the plan against cross-query snapshots.
    pub(crate) fn restore_from(
        dec: &mut Decoder,
        num_relations: usize,
    ) -> Result<SamplerCore, CodecError> {
        let plan = Plan::restore_from(dec)?;
        if plan.tree.len() != num_relations {
            return Err(CodecError::Corrupt(
                "core snapshot plan is for another query",
            ));
        }
        let reservoir = Reservoir::restore_from(dec, |d| d.u64s())?;
        let s = [dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?];
        let repair_rng = RsjRng::restore_state(s)
            .ok_or(CodecError::Corrupt("rng state is the zero fixed point"))?;
        Ok(SamplerCore {
            plan,
            reservoir,
            scratch: Vec::new(),
            repair_rng,
            inserts: dec.u64()?,
            deletes: dec.u64()?,
            last_population: dec.u128()?,
            deletes_since_repair: dec.u64()?,
        })
    }
}

impl ReservoirJoin {
    /// Creates a driver with the default index options (grouping on).
    pub fn new(
        query: Query,
        k: usize,
        seed: u64,
    ) -> Result<ReservoirJoin, rsj_index::dynamic::IndexError> {
        Self::with_options(query, k, seed, IndexOptions::default())
    }

    /// Creates a driver with explicit index options over the canonical
    /// plan (GYO tree, root 0) — byte-identical to the historical
    /// hard-coded orientation until observed statistics justify a change.
    pub fn with_options(
        query: Query,
        k: usize,
        seed: u64,
        options: IndexOptions,
    ) -> Result<ReservoirJoin, rsj_index::dynamic::IndexError> {
        let plan = Plan::canonical(&query).ok_or(rsj_index::dynamic::IndexError::Cyclic)?;
        Self::with_plan(query, k, seed, options, plan)
    }

    /// Creates a driver over an explicit [`Plan`] — the planner's output,
    /// or a hand-rooted override. The plan's tree must be a join tree of
    /// `query` (anything [`Planner::plan`] emitted for it is).
    pub fn with_plan(
        query: Query,
        k: usize,
        seed: u64,
        options: IndexOptions,
        plan: Plan,
    ) -> Result<ReservoirJoin, rsj_index::dynamic::IndexError> {
        Ok(ReservoirJoin {
            index: DynamicIndex::with_tree(query, &plan.tree, options)?,
            core: SamplerCore::new(plan, k, seed),
            planner: Planner::default(),
            replan_policy: ReplanPolicy::default(),
            rebuilds: 0,
            replan_checked_at: 0,
        })
    }

    /// Processes one input tuple (Algorithm 6 lines 5–7).
    ///
    /// Returns the tuple's id, or `None` if it was a duplicate (no effect).
    pub fn process(&mut self, rel: usize, tuple: &[Value]) -> Option<TupleId> {
        self.maybe_auto_replan();
        let tid = self.index.insert(rel, tuple)?;
        self.core.consume_delta(&self.index, rel, tid);
        Some(tid)
    }

    /// [`process`](ReservoirJoin::process) with the relation's dedup hash
    /// precomputed (by the columnar batch front end).
    fn process_hashed(&mut self, rel: usize, tuple: &[Value], hash: u64) -> Option<TupleId> {
        self.maybe_auto_replan();
        let tid = self.index.insert_hashed(rel, tuple, hash)?;
        self.core.consume_delta(&self.index, rel, tid);
        Some(tid)
    }

    /// Auto-replan fires *between* tuples, never between an insert and
    /// the consumption of its delta batch: a rebuild reassigns tuple
    /// ids (tombstones compact away) and runs a repair point, so an
    /// in-flight tid/batch would be stale — a panic after deletes, a
    /// double-counted delta batch otherwise. The `checked_at` marker
    /// keeps duplicate (no-op) arrivals from re-triggering the same
    /// power-of-two checkpoint.
    fn maybe_auto_replan(&mut self) {
        if self.replan_policy.auto
            && self.core.inserts >= self.replan_policy.min_inserts
            && self.core.inserts.is_power_of_two()
            && self.replan_checked_at != self.core.inserts
        {
            self.replan_checked_at = self.core.inserts;
            self.replan();
        }
    }

    /// Processes a delta batch of input tuples in arrival order. Same
    /// samples as per-tuple [`process`](ReservoirJoin::process) calls; the
    /// index's projection scratch and the reservoir's materialization
    /// buffer stay hot across the batch.
    pub fn process_batch(&mut self, batch: &[InputTuple]) {
        for t in batch {
            self.process(t.relation, &t.values);
        }
    }

    /// Processes an entire stream in arrival order.
    pub fn process_stream(&mut self, stream: &TupleStream) {
        self.process_batch(stream.tuples());
    }

    /// Processes a columnar batch, byte-identically to shredding it
    /// through [`process`](ReservoirJoin::process) in arrival order (the
    /// golden-digest suite pins this).
    ///
    /// Reservoir skips, replan checkpoints, and delta batches are all
    /// order-sensitive, so tuples still apply one at a time; the work
    /// hoisted out of the loop is the plan-independent part — every row's
    /// relation dedup hash, computed column-wise by the vectorized
    /// [`fx_hash_columns`] kernel. Index-only pipelines that can accept
    /// physical reordering use `DynamicIndex::insert_columnar` instead.
    pub fn process_columnar(&mut self, batch: &ColumnarBatch) {
        let nrels = batch.num_relations();
        let mut hashes: Vec<Vec<u64>> = Vec::with_capacity(nrels);
        let mut flat: Vec<Value> = Vec::new();
        for rel in 0..nrels {
            let rc = batch.relation(rel);
            let mut h = Vec::new();
            if rc.rows() > 0 {
                flat.clear();
                rc.gather_rows(&mut flat);
                fx_hash_columns(rc.arity() as u64, rc.arity(), &flat, &mut h);
            }
            hashes.push(h);
        }
        let mut row = Vec::new();
        for &(rel, r) in batch.arrivals() {
            row.clear();
            batch.relation(rel as usize).write_row(r as usize, &mut row);
            self.process_hashed(rel as usize, &row, hashes[rel as usize][r as usize]);
        }
    }

    /// Deletes one input tuple (turnstile streams — see the [module
    /// docs](self) for the repair protocol).
    ///
    /// Returns the id the tuple occupied, or `None` if it was not present
    /// (set semantics — no effect).
    pub fn delete(&mut self, rel: usize, tuple: &[Value]) -> Option<TupleId> {
        let tid = self.index.delete(rel, tuple)?;
        self.core.apply_delete(&self.index, rel, tuple);
        Some(tid)
    }

    /// Forces a repair point now: exact live count, sample backfill to
    /// `min(k, |Q(R)|)` distinct uniform results, skip-state
    /// recalibration. Called automatically on damaging deletes and every
    /// repair-period deletes (see the [module docs](self)); exposed so
    /// turnstile pipelines can buy back exactness before a read.
    pub fn refresh(&mut self) {
        self.core.repair(&self.index);
    }

    /// Re-evaluates the plan against statistics observed from the stored
    /// relations and adapts the orientation — the adaptive re-rooting hook.
    ///
    /// Statistics are snapshotted from the live database
    /// ([`TableStatistics::from_database`]); the planner scores every
    /// candidate tree × root against them. Three outcomes:
    ///
    /// * the current plan stands (challenger within the hold margin) —
    ///   nothing changes, returns `false`;
    /// * only the preferred **sampling root** moved — the cost model
    ///   proposes, then the *observed* per-root implicit-array sizes
    ///   (exact rejection slack, one O(1) lookup per root) get the final
    ///   say — and the root is switched in place (free: every rooted view
    ///   is already maintained), returns `true`;
    /// * a different **tree** wins — the dynamic index is rebuilt in the
    ///   new orientation by re-inserting the stored live relations (the
    ///   reservoir's materialized samples stay valid — `Q(R)` itself is
    ///   unchanged — and a repair point recalibrates the skip state against
    ///   the exact live `|Q(R)|` and backfills any shortfall), returns
    ///   `true`.
    ///
    /// Called automatically at power-of-two insert counts per
    /// [`ReplanPolicy`]; call it directly to force a re-evaluation (e.g.
    /// after a bulk load).
    pub fn replan(&mut self) -> bool {
        let stats = TableStatistics::from_database(self.index.database());
        let Some(mut challenger) = self.planner.plan(self.index.query(), &stats) else {
            return false;
        };
        let same_tree = challenger.tree.canonical_edges() == self.core.plan.tree.canonical_edges();
        if same_tree {
            // The model proposes a root; the live index can *measure* each
            // root's rejection slack exactly — the implicit array size
            // |J_root| is one O(1) group lookup per root — so observation
            // overrides the estimate. Ties keep the model's proposal.
            // After an override, the plan's metadata must describe the
            // root actually chosen (re-scored cost, recomputed canonical
            // flag), not the model's proposal.
            let observed = best_observed_root(&self.index, challenger.root);
            if observed != challenger.root {
                self.fixup_plan_root(&mut challenger, observed, &stats);
            }
            if challenger.root == self.core.plan.root {
                self.core.plan.cost = challenger.cost;
                return false;
            }
            // Root-only move: every rooted view is already maintained, so
            // switching which one repair sampling descends is free.
            self.core.plan = challenger;
            return true;
        }
        // The planner's hold margin is measured against the canonical
        // anchor; when the incumbent is already non-canonical, hold again
        // unless the challenger also clears the margin over the incumbent
        // re-scored on today's statistics.
        if let Some(current) = self.planner.score(
            self.index.query(),
            &self.core.plan.tree,
            self.core.plan.root,
            &stats,
        ) {
            if challenger.cost.total >= current.total * (1.0 - self.planner.hold_margin) {
                self.core.plan.cost = current;
                return false;
            }
        }
        let mut fresh = match DynamicIndex::with_tree(
            self.index.query().clone(),
            &challenger.tree,
            self.index.options(),
        ) {
            Ok(idx) => idx,
            Err(_) => return false,
        };
        for rel in 0..self.index.query().num_relations() {
            for (_, t) in self.index.database().relation(rel).iter() {
                fresh.insert(rel, t);
            }
        }
        self.index = fresh;
        // The rebuilt index has fresh per-root slack; measure it.
        let observed = best_observed_root(&self.index, challenger.root);
        if observed != challenger.root {
            self.fixup_plan_root(&mut challenger, observed, &stats);
        }
        self.core.plan = challenger;
        self.rebuilds += 1;
        // Repopulate exactly: exact live count, backfill to min(k, |Q|),
        // recalibrate the skip state — the reservoir continues as if it had
        // sampled the live population through the new orientation all
        // along.
        self.core.repair(&self.index);
        true
    }

    /// Moves `plan` onto the observation-chosen `root`, keeping its
    /// metadata truthful: the cost is re-scored for the actual root and
    /// the canonical flag recomputed against the GYO tree + root 0.
    fn fixup_plan_root(&self, plan: &mut Plan, root: usize, stats: &TableStatistics) {
        plan.root = root;
        if let Some(cost) = self
            .planner
            .score(self.index.query(), &plan.tree, root, stats)
        {
            plan.cost = cost;
        }
        let gyo = rsj_query::JoinTree::build(self.index.query()).map(|t| t.canonical_edges());
        plan.is_canonical = root == 0 && gyo.as_deref() == Some(&plan.tree.canonical_edges()[..]);
    }

    /// The active plan (orientation, sampling root, scores).
    pub fn plan(&self) -> &Plan {
        &self.core.plan
    }

    /// The automatic re-planning policy.
    pub fn replan_policy(&self) -> ReplanPolicy {
        self.replan_policy
    }

    /// Replaces the planner [`replan`](ReservoirJoin::replan) consults
    /// (weights, enumeration cap, hold margin). A zero hold margin makes
    /// re-planning follow the cost model greedily — useful in tests that
    /// must exercise a rebuild deterministically.
    pub fn set_planner(&mut self, planner: Planner) {
        self.planner = planner;
    }

    /// Replaces the automatic re-planning policy (e.g. to disable
    /// mid-stream checks in a byte-stability harness).
    pub fn set_replan_policy(&mut self, policy: ReplanPolicy) {
        self.replan_policy = policy;
    }

    /// Number of orientation rebuilds [`replan`](ReservoirJoin::replan)
    /// has performed.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The current samples: uniform without replacement over `Q(R)`, fewer
    /// than `k` while `|Q(R)| < k`.
    pub fn samples(&self) -> &[Vec<Value>] {
        self.core.samples()
    }

    /// Reservoir capacity `k`.
    pub fn k(&self) -> usize {
        self.core.reservoir.capacity()
    }

    /// The underlying index (for sizes, stats, full-query sampling).
    pub fn index(&self) -> &DynamicIndex {
        &self.index
    }

    /// Index instrumentation counters.
    pub fn index_stats(&self) -> IndexStats {
        self.index.stats()
    }

    /// Number of predicate-evaluating stops the reservoir performed (each
    /// costing one `O(log N)` retrieve).
    pub fn reservoir_stops(&self) -> u64 {
        self.core.reservoir.stops()
    }

    /// Tuples accepted so far (on insert-only streams, the paper's `N`).
    pub fn inserts(&self) -> u64 {
        self.core.inserts
    }

    /// Tuples deleted so far (present at deletion time).
    pub fn deletes(&self) -> u64 {
        self.core.deletes
    }

    /// Serializes the driver's complete dynamic state into `enc`: the
    /// active plan (the index may have been re-rooted or rebuilt since
    /// construction), the index's dynamic state (physical layout
    /// included), the reservoir (sample slots, skip parameters `(w, q)`,
    /// RNG position, counters), the repair RNG, and the driver counters.
    ///
    /// Construction parameters — query, `k`, seed, index options — are
    /// *not* written; a snapshot restores into a driver built with
    /// identical ones (the durability layer's `Checkpoint` tags the
    /// engine name so cross-engine restores fail loudly). Everything
    /// future behavior depends on is captured, so a restored driver
    /// reproduces the original byte-for-byte on any further stream.
    pub fn snapshot_to(&self, enc: &mut Encoder) {
        self.core.plan.snapshot_to(enc);
        self.index.snapshot_state_to(enc);
        self.core.reservoir.snapshot_to(enc, |e, s| e.put_u64s(s));
        for w in self.core.repair_rng.state() {
            enc.put_u64(w);
        }
        enc.put_u64(self.rebuilds);
        enc.put_u64(self.replan_checked_at);
        enc.put_u64(self.core.inserts);
        enc.put_u64(self.core.deletes);
        enc.put_u128(self.core.last_population);
        enc.put_u64(self.core.deletes_since_repair);
    }

    /// Restores state written by [`snapshot_to`](ReservoirJoin::snapshot_to)
    /// into `self`, which must have been built with the same construction
    /// parameters. The index is rebuilt over the snapshot's join tree (the
    /// snapshot may have re-rooted or re-oriented since construction) and
    /// its dynamic state overlaid; shape mismatches (wrong query, wrong
    /// `k`) reject the snapshot. The planner and replan policy are
    /// configuration, not state — they keep `self`'s current values.
    pub fn restore_from_snapshot(&mut self, dec: &mut Decoder) -> Result<(), CodecError> {
        let plan = Plan::restore_from(dec)?;
        if plan.tree.len() != self.index.query().num_relations() {
            return Err(CodecError::Corrupt("snapshot plan is for another query"));
        }
        let mut index =
            DynamicIndex::with_tree(self.index.query().clone(), &plan.tree, self.index.options())
                .map_err(|_| CodecError::Corrupt("snapshot plan tree is not a join tree"))?;
        index.restore_state_from(dec)?;
        let reservoir = Reservoir::restore_from(dec, |d| d.u64s())?;
        if reservoir.capacity() != self.core.reservoir.capacity() {
            return Err(CodecError::Corrupt("snapshot reservoir capacity mismatch"));
        }
        let s = [dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?];
        let repair_rng = RsjRng::restore_state(s)
            .ok_or(CodecError::Corrupt("rng state is the zero fixed point"))?;
        let rebuilds = dec.u64()?;
        let replan_checked_at = dec.u64()?;
        let inserts = dec.u64()?;
        let deletes = dec.u64()?;
        let last_population = dec.u128()?;
        let deletes_since_repair = dec.u64()?;
        self.index = index;
        self.core.plan = plan;
        self.core.reservoir = reservoir;
        self.core.repair_rng = repair_rng;
        self.rebuilds = rebuilds;
        self.replan_checked_at = replan_checked_at;
        self.core.inserts = inserts;
        self.core.deletes = deletes;
        self.core.last_population = last_population;
        self.core.deletes_since_repair = deletes_since_repair;
        Ok(())
    }

    /// Estimated heap bytes of index + reservoir.
    pub fn heap_size(&self) -> usize {
        self.index.heap_size() + self.core.sample_heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::rng::RsjRng;
    use rsj_common::stats::{chi_square_critical, chi_square_uniform};
    use rsj_common::{FxHashMap, FxHashSet};
    use rsj_query::QueryBuilder;

    fn line3() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("G1", &["A", "B"]);
        qb.relation("G2", &["B", "C"]);
        qb.relation("G3", &["C", "D"]);
        qb.build().unwrap()
    }

    /// Brute-force all line-3 join results of a tuple multiset.
    fn brute_line3(tuples: &[(usize, [u64; 2])]) -> FxHashSet<Vec<u64>> {
        let mut out = FxHashSet::default();
        for &(r1, t1) in tuples.iter().filter(|(r, _)| *r == 0) {
            for &(r2, t2) in tuples.iter().filter(|(r, _)| *r == 1) {
                for &(r3, t3) in tuples.iter().filter(|(r, _)| *r == 2) {
                    let _ = (r1, r2, r3);
                    if t1[1] == t2[0] && t2[1] == t3[0] {
                        out.insert(vec![t1[0], t1[1], t2[1], t3[1]]);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn collects_all_when_k_exceeds_results() {
        let mut rj = ReservoirJoin::new(line3(), 1000, 1).unwrap();
        let mut rng = RsjRng::seed_from_u64(2);
        let mut tuples = Vec::new();
        for _ in 0..120 {
            let rel = rng.index(3);
            let t = [rng.below_u64(5), rng.below_u64(5)];
            if rj.process(rel, &t).is_some() {
                tuples.push((rel, t));
            }
        }
        let expect = brute_line3(&tuples);
        let got: FxHashSet<Vec<u64>> = rj.samples().iter().cloned().collect();
        assert_eq!(got.len(), rj.samples().len(), "duplicates in reservoir");
        assert_eq!(got, expect);
    }

    #[test]
    fn samples_always_valid_join_results() {
        let mut rj = ReservoirJoin::new(line3(), 20, 3).unwrap();
        let mut rng = RsjRng::seed_from_u64(4);
        let mut tuples = Vec::new();
        for step in 0..400 {
            let rel = rng.index(3);
            let t = [rng.below_u64(6), rng.below_u64(6)];
            if rj.process(rel, &t).is_some() {
                tuples.push((rel, t));
            }
            if step % 50 == 49 {
                let valid = brute_line3(&tuples);
                for s in rj.samples() {
                    assert!(valid.contains(s), "invalid sample {s:?} at {step}");
                }
            }
        }
    }

    #[test]
    fn reservoir_is_uniform_over_join_results() {
        // Small instance with 12 join results; run many seeds, count
        // inclusion per result, chi-square for uniformity.
        let stream: Vec<(usize, [u64; 2])> = vec![
            (0, [1, 10]),
            (2, [20, 5]),
            (1, [10, 20]),
            (0, [2, 10]),
            (2, [20, 6]),
            (0, [3, 10]),
            (1, [10, 21]),
            (2, [21, 7]),
            (2, [21, 8]),
        ];
        let expect = brute_line3(&stream);
        // G1: 3 tuples on B=10; G2: (10,20),(10,21); G3: 20->{5,6}, 21->{7,8}
        // Results: 3 * (2 + 2) = 12.
        assert_eq!(expect.len(), 12);
        let k = 3;
        let trials = 6000u64;
        let mut counts: FxHashMap<Vec<u64>, u64> = FxHashMap::default();
        for seed in 0..trials {
            let mut rj = ReservoirJoin::new(line3(), k, seed).unwrap();
            for (rel, t) in &stream {
                rj.process(*rel, t);
            }
            assert_eq!(rj.samples().len(), k);
            for s in rj.samples() {
                *counts.entry(s.clone()).or_default() += 1;
            }
        }
        assert_eq!(counts.len(), 12);
        let observed: Vec<u64> = counts.values().copied().collect();
        let (stat, df) = chi_square_uniform(&observed);
        assert!(
            stat < chi_square_critical(df, 0.0001),
            "chi2={stat} df={df}"
        );
    }

    #[test]
    fn uniform_at_intermediate_timestamps() {
        // The reservoir must be uniform over Q(R_i) at *every* i. Check a
        // specific prefix: after 5 tuples there are 2 results; with k=1 each
        // must be sampled ~half the time.
        let stream: Vec<(usize, [u64; 2])> = vec![
            (0, [1, 10]),
            (1, [10, 20]),
            (2, [20, 5]),
            (2, [20, 6]),
            (0, [9, 9]), // irrelevant
            (2, [20, 7]),
        ];
        let trials = 4000;
        let mut first_hits = 0u64;
        for seed in 0..trials {
            let mut rj = ReservoirJoin::new(line3(), 1, 70_000 + seed).unwrap();
            for (rel, t) in &stream[..5] {
                rj.process(*rel, t);
            }
            assert_eq!(rj.samples().len(), 1);
            if rj.samples()[0] == vec![1, 10, 20, 5] {
                first_hits += 1;
            }
        }
        let f = first_hits as f64 / trials as f64;
        assert!((f - 0.5).abs() < 0.05, "f={f}");
    }

    #[test]
    fn duplicate_tuples_do_not_skew() {
        let mut rj = ReservoirJoin::new(line3(), 100, 5).unwrap();
        rj.process(0, &[1, 10]);
        rj.process(1, &[10, 20]);
        rj.process(2, &[20, 30]);
        for _ in 0..10 {
            assert!(rj.process(0, &[1, 10]).is_none());
        }
        assert_eq!(rj.samples().len(), 1);
        assert_eq!(rj.inserts(), 3);
    }

    #[test]
    fn empty_stream_no_samples() {
        let rj = ReservoirJoin::new(line3(), 10, 0).unwrap();
        assert!(rj.samples().is_empty());
    }

    #[test]
    fn two_table_doc_example() {
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        let mut rj = ReservoirJoin::new(qb.build().unwrap(), 10, 42).unwrap();
        rj.process(0, &[1, 2]);
        rj.process(1, &[2, 3]);
        assert_eq!(rj.samples(), &[vec![1, 2, 3]]);
    }

    #[test]
    fn grouping_on_off_same_distribution() {
        // Distribution equality smoke test: same stream, k >= results, both
        // variants must collect the identical full set.
        let mut rng = RsjRng::seed_from_u64(8);
        let mut stream = Vec::new();
        for _ in 0..150 {
            stream.push((rng.index(3), [rng.below_u64(5), rng.below_u64(5)]));
        }
        let run = |grouping: bool| {
            let mut rj =
                ReservoirJoin::with_options(line3(), 10_000, 9, IndexOptions { grouping }).unwrap();
            for (rel, t) in &stream {
                rj.process(*rel, t);
            }
            let mut s: Vec<Vec<u64>> = rj.samples().to_vec();
            s.sort();
            s
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn replan_on_canonical_plan_is_a_noop() {
        let mut rj = ReservoirJoin::new(line3(), 100, 1).unwrap();
        let mut rng = RsjRng::seed_from_u64(2);
        for _ in 0..200 {
            rj.process(rng.index(3), &[rng.below_u64(5), rng.below_u64(5)]);
        }
        let before: Vec<Vec<u64>> = rj.samples().to_vec();
        let edges = rj.plan().tree.canonical_edges();
        // Line-3 has a unique tree, so replan can at most move the root —
        // never rebuild — and the reservoir must be byte-identical.
        rj.replan();
        assert_eq!(rj.rebuilds(), 0);
        assert_eq!(rj.plan().tree.canonical_edges(), edges);
        assert_eq!(rj.samples(), before.as_slice());
    }

    #[test]
    fn replan_rebuild_preserves_the_result_set() {
        // Star-4 sharing HUB: 16 candidate trees. Start from a non-GYO
        // tree, zero the hold margin, and force a greedy replan; whatever
        // orientation wins, the maintained sample set (k >= |Q|) must be
        // exactly the live result set before and after.
        let mut qb = QueryBuilder::new();
        for i in 1..=4 {
            qb.relation(&format!("G{i}"), &["HUB", &format!("B{i}")]);
        }
        let q = qb.build().unwrap();
        let trees = rsj_query::all_join_trees(&q, 32);
        assert_eq!(trees.len(), 16);
        let greedy = rsj_query::Planner {
            hold_margin: 0.0,
            ..rsj_query::Planner::default()
        };
        // Mild hub skew so the cost model has something to chew on while
        // |Q| stays well under k.
        let stream: Vec<(usize, [u64; 2])> = {
            let mut rng = RsjRng::seed_from_u64(4);
            (0..120)
                .map(|_| {
                    let rel = rng.index(4);
                    let hub = if rng.below_u64(3) == 0 {
                        0
                    } else {
                        rng.below_u64(8)
                    };
                    (rel, [hub, rng.below_u64(40)])
                })
                .collect()
        };
        // Scout which tree the greedy planner settles on for this data,
        // then deliberately start from a different one so replan is
        // guaranteed to rebuild.
        let winner_edges = {
            let mut scout = ReservoirJoin::new(q.clone(), 4, 0).unwrap();
            for (rel, t) in &stream {
                scout.process(*rel, t);
            }
            scout.set_planner(greedy);
            scout.replan();
            scout.plan().tree.canonical_edges()
        };
        let alt = trees
            .iter()
            .find(|t| t.canonical_edges() != winner_edges)
            .expect("16 trees, one winner")
            .clone();
        let plan = {
            let mut p = rsj_query::Plan::canonical(&q).unwrap();
            p.tree = alt;
            p.is_canonical = false;
            p
        };
        let mut rj =
            ReservoirJoin::with_plan(q, 1 << 16, 3, rsj_index::IndexOptions::default(), plan)
                .unwrap();
        for (rel, t) in &stream {
            rj.process(*rel, t);
        }
        let before: FxHashSet<Vec<u64>> = rj.samples().iter().cloned().collect();
        let live = crate::count::exact_result_count(rj.index().query(), rj.index().database());
        assert_eq!(before.len() as u128, live, "k >= |Q| collects everything");
        rj.set_planner(rsj_query::Planner {
            hold_margin: 0.0,
            ..rsj_query::Planner::default()
        });
        let changed = rj.replan();
        assert!(changed, "greedy replan must leave the degenerate start");
        assert_eq!(rj.rebuilds(), 1, "tree change rebuilds the index");
        let after: FxHashSet<Vec<u64>> = rj.samples().iter().cloned().collect();
        assert_eq!(after, before, "replan altered Q(R)");
        assert_eq!(
            crate::count::exact_result_count(rj.index().query(), rj.index().database()),
            live
        );
        // The index still accepts updates and stays consistent post-swap.
        assert!(rj.process(0, &[999, 999]).is_some());
        assert_eq!(
            crate::count::exact_result_count(rj.index().query(), rj.index().database()),
            live
        );
    }

    #[test]
    fn auto_replan_rebuild_is_safe_mid_stream() {
        // Regression: the automatic replan check must never fire between
        // an index insert and the consumption of its delta batch — a
        // rebuild reassigns tuple ids (tombstones compact), which used to
        // panic in delta_batch on turnstile streams. Force frequent
        // checks with a greedy planner on a multi-tree query with
        // interleaved deletes and verify exactness end to end.
        let mut qb = QueryBuilder::new();
        for i in 1..=4 {
            qb.relation(&format!("G{i}"), &["HUB", &format!("B{i}")]);
        }
        let q = qb.build().unwrap();
        let mut rj = ReservoirJoin::new(q.clone(), 1 << 16, 9).unwrap();
        rj.set_planner(rsj_query::Planner {
            hold_margin: 0.0,
            ..rsj_query::Planner::default()
        });
        rj.set_replan_policy(ReplanPolicy {
            auto: true,
            min_inserts: 4,
        });
        let mut rng = RsjRng::seed_from_u64(77);
        let mut live: Vec<(usize, [u64; 2])> = Vec::new();
        for step in 0..600 {
            if step % 5 == 4 && !live.is_empty() {
                let (rel, t) = live.swap_remove(rng.index(live.len()));
                assert!(rj.delete(rel, &t).is_some());
            } else {
                let rel = rng.index(4);
                let t = [rng.below_u64(6), rng.below_u64(12)];
                if rj.process(rel, &t).is_some() {
                    live.push((rel, t));
                }
            }
        }
        let got: FxHashSet<Vec<u64>> = rj.samples().iter().cloned().collect();
        let population =
            crate::count::exact_result_count(rj.index().query(), rj.index().database());
        assert_eq!(
            got.len() as u128,
            population,
            "k >= |Q| collects everything"
        );
    }

    #[test]
    fn with_plan_rejects_a_tree_that_is_not_a_join_tree() {
        // Spanning, but attribute-connectedness violated: G1-G3-G2 breaks
        // B's subtree (B lives in G1 and G2 only).
        let q = line3();
        let bad = rsj_query::JoinTree::from_edges(3, &[(0, 2), (1, 2)]);
        let plan = {
            let mut p = rsj_query::Plan::canonical(&q).unwrap();
            p.tree = bad;
            p
        };
        let Err(err) = ReservoirJoin::with_plan(q, 8, 1, rsj_index::IndexOptions::default(), plan)
        else {
            panic!("invalid tree accepted");
        };
        assert!(err.to_string().contains("join-tree property"), "got: {err}");
    }

    #[test]
    fn snapshot_restores_byte_identical_turnstile_behavior() {
        // Durability contract at the driver level: a restored driver's
        // reservoir, counters, and *future* behavior — including repair
        // draws after deletes — match the original exactly.
        let mut rj = ReservoirJoin::new(line3(), 8, 42).unwrap();
        let mut rng = RsjRng::seed_from_u64(5);
        let mut live: Vec<(usize, [u64; 2])> = Vec::new();
        for step in 0..400 {
            if step % 4 == 3 && !live.is_empty() {
                let (rel, t) = live.swap_remove(rng.index(live.len()));
                rj.delete(rel, &t);
            } else {
                let rel = rng.index(3);
                let t = [rng.below_u64(6), rng.below_u64(6)];
                if rj.process(rel, &t).is_some() {
                    live.push((rel, t));
                }
            }
        }
        let mut enc = Encoder::new();
        rj.snapshot_to(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = ReservoirJoin::new(line3(), 8, 42).unwrap();
        let mut dec = Decoder::new(&bytes);
        restored.restore_from_snapshot(&mut dec).unwrap();
        assert_eq!(rj.samples(), restored.samples());
        assert_eq!(rj.inserts(), restored.inserts());
        assert_eq!(rj.deletes(), restored.deletes());
        // Identical continuation, checked lockstep (deletes hit the
        // repair path, so the repair RNG position must have survived).
        for step in 0..300 {
            if step % 3 == 2 && !live.is_empty() {
                let (rel, t) = live.swap_remove(rng.index(live.len()));
                assert_eq!(rj.delete(rel, &t), restored.delete(rel, &t));
            } else {
                let rel = rng.index(3);
                let t = [rng.below_u64(6), rng.below_u64(6)];
                let tid = rj.process(rel, &t);
                assert_eq!(tid, restored.process(rel, &t));
                if tid.is_some() {
                    live.push((rel, t));
                }
            }
            assert_eq!(rj.samples(), restored.samples(), "diverged at {step}");
        }
        // A wrong-k target rejects the snapshot.
        let mut wrong_k = ReservoirJoin::new(line3(), 9, 42).unwrap();
        assert!(wrong_k
            .restore_from_snapshot(&mut Decoder::new(&bytes))
            .is_err());
    }

    #[test]
    fn stops_stay_near_linear() {
        // On a dense random line-3 stream, reservoir stops must be far
        // below the total join size.
        let mut rj = ReservoirJoin::new(line3(), 50, 10).unwrap();
        let mut rng = RsjRng::seed_from_u64(11);
        for _ in 0..3000 {
            let rel = rng.index(3);
            rj.process(rel, &[rng.below_u64(40), rng.below_u64(40)]);
        }
        let size = rsj_index::FullSampler::default().implicit_size(rj.index());
        assert!(size > 10_000, "want a large join, got {size}");
        // Stops ≈ N (fill) + k log(total/k) — must be way below total.
        assert!(
            (rj.reservoir_stops() as u128) < size / 4,
            "stops={} size={size}",
            rj.reservoir_stops()
        );
    }
}
