//! A minimal, dependency-free stand-in for the real `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small subset of proptest's API its property tests actually use:
//! the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! inner attribute), [`Strategy`] implementations for integer ranges,
//! tuples and [`collection::vec`], [`any`] for [`Arbitrary`] types, and
//! the `prop_assert*` macros.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: generation is a pure function of the test's module path and
//! name, so every run (and every CI machine) replays the identical case
//! sequence. For these tests — statistical and structural invariants at
//! fixed seeds — that is exactly the behavior the suite wants.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic splitmix64 generator seeded from the test name.
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator whose stream is a function of `name` only.
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Per-block configuration; only the case count is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A value generator: the proptest core abstraction, minus shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-range generator, used via [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing vectors of `element` draws with a length drawn
    /// uniformly from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of `element` values, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Discards the current generated case when its precondition fails (the
/// real crate resamples; here the case is simply skipped — with
/// deterministic generation the retained subsequence is still identical
/// across runs). Only usable directly inside a [`proptest!`] body, which
/// runs each case in its own closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts a condition inside a property (panics with the case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    // Each case runs in its own closure so `prop_assume!`
                    // can skip it with an early return.
                    #[allow(clippy::redundant_closure_call)]
                    (|| { $body })();
                }
            }
        )*
    };
}

/// The glob-import surface test files expect.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, v in crate::collection::vec(0usize..5, 1..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn tuples_compose(t in (0u8..4, (any::<bool>(), 1usize..3))) {
            let (a, (_b, c)) = t;
            prop_assert!(a < 4);
            prop_assert!((1..3).contains(&c));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
