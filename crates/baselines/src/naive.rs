//! The rebuild-and-redraw strawman (paper §1).
//!
//! After every insert *or delete*, recompute the full join from scratch
//! and draw a fresh uniform sample of size `k` without replacement.
//! Trivially correct — and trivially fully dynamic — and catastrophically
//! slow (`Ω(N · |Q(R)|)`); it exists as ground truth for the statistical
//! tests and as the lower anchor in benchmark plots.

use rsj_common::rng::RsjRng;
use rsj_common::Value;
use rsj_query::Query;
use rsj_storage::Database;

/// Naive baseline: full recompute per step.
pub struct NaiveRebuild {
    query: Query,
    db: Database,
    k: usize,
    rng: RsjRng,
    samples: Vec<Vec<Value>>,
}

impl NaiveRebuild {
    /// Creates the baseline.
    pub fn new(query: Query, k: usize, seed: u64) -> NaiveRebuild {
        let mut db = Database::new();
        for r in query.relations() {
            db.add_relation(r.name.clone(), r.attrs.len());
        }
        NaiveRebuild {
            query,
            db,
            k,
            rng: RsjRng::seed_from_u64(seed),
            samples: Vec::new(),
        }
    }

    /// Inserts a tuple, recomputes the join, redraws the sample.
    pub fn process(&mut self, rel: usize, tuple: &[Value]) {
        if self.db.relation_mut(rel).insert(tuple).is_none() {
            return;
        }
        let results = self.enumerate_join();
        self.samples = sample_without_replacement(&results, self.k, &mut self.rng);
    }

    /// Deletes a tuple, recomputes the join, redraws the sample — the
    /// rebuild strawman is trivially fully dynamic.
    pub fn delete(&mut self, rel: usize, tuple: &[Value]) {
        if self.db.relation_mut(rel).remove(tuple).is_none() {
            return;
        }
        let results = self.enumerate_join();
        self.samples = sample_without_replacement(&results, self.k, &mut self.rng);
    }

    /// Enumerates the full current join result (exponential; small inputs
    /// only).
    pub fn enumerate_join(&self) -> Vec<Vec<Value>> {
        let q = &self.query;
        let mut out = Vec::new();
        let mut partial: Vec<Option<Value>> = vec![None; q.num_attrs()];
        self.recurse(0, &mut partial, &mut out);
        out
    }

    fn recurse(&self, rel: usize, partial: &mut Vec<Option<Value>>, out: &mut Vec<Vec<Value>>) {
        if rel == self.query.num_relations() {
            out.push(
                partial
                    .iter()
                    .map(|v| v.expect("all attrs bound"))
                    .collect(),
            );
            return;
        }
        let schema = &self.query.relation(rel).attrs;
        'tuples: for (_, t) in self.db.relation(rel).iter() {
            let mut newly_bound = Vec::new();
            for (pos, &attr) in schema.iter().enumerate() {
                match partial[attr] {
                    Some(v) if v != t[pos] => {
                        for &a in &newly_bound {
                            partial[a] = None;
                        }
                        continue 'tuples;
                    }
                    Some(_) => {}
                    None => {
                        partial[attr] = Some(t[pos]);
                        newly_bound.push(attr);
                    }
                }
            }
            self.recurse(rel + 1, partial, out);
            for &a in &newly_bound {
                partial[a] = None;
            }
        }
    }

    /// Current samples.
    pub fn samples(&self) -> &[Vec<Value>] {
        &self.samples
    }

    /// The query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Sample capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Uniform sample of `min(k, n)` items without replacement (partial
/// Fisher–Yates).
pub fn sample_without_replacement<T: Clone>(items: &[T], k: usize, rng: &mut RsjRng) -> Vec<T> {
    let n = items.len();
    if n <= k {
        return items.to_vec();
    }
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.index(n - i);
        idx.swap(i, j);
    }
    idx[..k].iter().map(|&i| items[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::FxHashSet;
    use rsj_query::QueryBuilder;

    fn two_table() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        qb.build().unwrap()
    }

    #[test]
    fn enumerates_join_correctly() {
        let mut nb = NaiveRebuild::new(two_table(), 100, 1);
        nb.process(0, &[1, 2]);
        nb.process(0, &[3, 2]);
        nb.process(1, &[2, 9]);
        let got: FxHashSet<Vec<u64>> = nb.samples().iter().cloned().collect();
        let expect: FxHashSet<Vec<u64>> = [vec![1, 2, 9], vec![3, 2, 9]].into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn sample_without_replacement_is_exact_when_small() {
        let mut rng = RsjRng::seed_from_u64(4);
        let items = [1, 2, 3];
        assert_eq!(
            sample_without_replacement(&items, 10, &mut rng),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut rng = RsjRng::seed_from_u64(5);
        let items: Vec<u32> = (0..100).collect();
        for _ in 0..50 {
            let s = sample_without_replacement(&items, 10, &mut rng);
            let set: FxHashSet<u32> = s.iter().copied().collect();
            assert_eq!(set.len(), 10);
        }
    }

    #[test]
    fn duplicate_insert_keeps_sample() {
        let mut nb = NaiveRebuild::new(two_table(), 10, 2);
        nb.process(0, &[1, 2]);
        nb.process(1, &[2, 3]);
        let before = nb.samples().to_vec();
        nb.process(0, &[1, 2]);
        assert_eq!(nb.samples(), &before[..]);
    }
}
