//! The rebuild-and-redraw strawman (paper §1).
//!
//! After every insert *or delete*, recompute the full join from scratch
//! and draw a fresh uniform sample of size `k` without replacement.
//! Trivially correct — and trivially fully dynamic — and catastrophically
//! slow (`Ω(N · |Q(R)|)`); it exists as ground truth for the statistical
//! tests and as the lower anchor in benchmark plots.

use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::rng::RsjRng;
use rsj_common::Value;
use rsj_query::Query;
use rsj_storage::Database;

/// Naive baseline: full recompute per step.
pub struct NaiveRebuild {
    query: Query,
    db: Database,
    k: usize,
    rng: RsjRng,
    samples: Vec<Vec<Value>>,
}

impl NaiveRebuild {
    /// Creates the baseline.
    pub fn new(query: Query, k: usize, seed: u64) -> NaiveRebuild {
        let mut db = Database::new();
        for r in query.relations() {
            db.add_relation(r.name.clone(), r.attrs.len());
        }
        NaiveRebuild {
            query,
            db,
            k,
            rng: RsjRng::seed_from_u64(seed),
            samples: Vec::new(),
        }
    }

    /// Inserts a tuple, recomputes the join, redraws the sample.
    pub fn process(&mut self, rel: usize, tuple: &[Value]) {
        if self.db.relation_mut(rel).insert(tuple).is_none() {
            return;
        }
        let results = self.enumerate_join();
        self.samples = sample_without_replacement(&results, self.k, &mut self.rng);
    }

    /// Deletes a tuple, recomputes the join, redraws the sample — the
    /// rebuild strawman is trivially fully dynamic.
    pub fn delete(&mut self, rel: usize, tuple: &[Value]) {
        if self.db.relation_mut(rel).remove(tuple).is_none() {
            return;
        }
        let results = self.enumerate_join();
        self.samples = sample_without_replacement(&results, self.k, &mut self.rng);
    }

    /// Enumerates the full current join result (exponential; small inputs
    /// only).
    pub fn enumerate_join(&self) -> Vec<Vec<Value>> {
        let q = &self.query;
        let mut out = Vec::new();
        let mut partial: Vec<Option<Value>> = vec![None; q.num_attrs()];
        self.recurse(0, &mut partial, &mut out);
        out
    }

    fn recurse(&self, rel: usize, partial: &mut Vec<Option<Value>>, out: &mut Vec<Vec<Value>>) {
        if rel == self.query.num_relations() {
            out.push(
                partial
                    .iter()
                    .map(|v| v.expect("all attrs bound"))
                    .collect(),
            );
            return;
        }
        let schema = &self.query.relation(rel).attrs;
        'tuples: for (_, t) in self.db.relation(rel).iter() {
            let mut newly_bound = Vec::new();
            for (pos, &attr) in schema.iter().enumerate() {
                match partial[attr] {
                    Some(v) if v != t[pos] => {
                        for &a in &newly_bound {
                            partial[a] = None;
                        }
                        continue 'tuples;
                    }
                    Some(_) => {}
                    None => {
                        partial[attr] = Some(t[pos]);
                        newly_bound.push(attr);
                    }
                }
            }
            self.recurse(rel + 1, partial, out);
            for &a in &newly_bound {
                partial[a] = None;
            }
        }
    }

    /// Current samples.
    pub fn samples(&self) -> &[Vec<Value>] {
        &self.samples
    }

    /// The query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Sample capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Serializes the full dynamic state: database, RNG position, and the
    /// current sample set. `query` and `k` are construction parameters and
    /// are only validated on restore.
    pub fn snapshot_to(&self, enc: &mut Encoder) {
        self.db.snapshot_to(enc);
        for w in self.rng.state() {
            enc.put_u64(w);
        }
        enc.put_usize(self.samples.len());
        for s in &self.samples {
            enc.put_u64s(s);
        }
    }

    /// Restores from a [`NaiveRebuild::snapshot_to`] image taken by an
    /// engine built with the same `(query, k)`. On error the receiver is
    /// unchanged.
    pub fn restore_from_snapshot(&mut self, dec: &mut Decoder) -> Result<(), CodecError> {
        let db = Database::restore_from(dec)?;
        if db.len() != self.query.num_relations() {
            return Err(CodecError::Corrupt("snapshot relation count mismatch"));
        }
        for rel in 0..db.len() {
            if db.relation(rel).arity() != self.query.relation(rel).attrs.len() {
                return Err(CodecError::Corrupt("snapshot relation arity mismatch"));
            }
        }
        let s = [dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?];
        let rng = RsjRng::restore_state(s)
            .ok_or(CodecError::Corrupt("rng state is the zero fixed point"))?;
        let n = dec.seq_len(1)?;
        if n > self.k {
            return Err(CodecError::Corrupt("snapshot holds more samples than k"));
        }
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(dec.u64s()?);
        }
        self.db = db;
        self.rng = rng;
        self.samples = samples;
        Ok(())
    }
}

/// Uniform sample of `min(k, n)` items without replacement (partial
/// Fisher–Yates).
pub fn sample_without_replacement<T: Clone>(items: &[T], k: usize, rng: &mut RsjRng) -> Vec<T> {
    let n = items.len();
    if n <= k {
        return items.to_vec();
    }
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.index(n - i);
        idx.swap(i, j);
    }
    idx[..k].iter().map(|&i| items[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::FxHashSet;
    use rsj_query::QueryBuilder;

    fn two_table() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        qb.build().unwrap()
    }

    #[test]
    fn enumerates_join_correctly() {
        let mut nb = NaiveRebuild::new(two_table(), 100, 1);
        nb.process(0, &[1, 2]);
        nb.process(0, &[3, 2]);
        nb.process(1, &[2, 9]);
        let got: FxHashSet<Vec<u64>> = nb.samples().iter().cloned().collect();
        let expect: FxHashSet<Vec<u64>> = [vec![1, 2, 9], vec![3, 2, 9]].into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn sample_without_replacement_is_exact_when_small() {
        let mut rng = RsjRng::seed_from_u64(4);
        let items = [1, 2, 3];
        assert_eq!(
            sample_without_replacement(&items, 10, &mut rng),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut rng = RsjRng::seed_from_u64(5);
        let items: Vec<u32> = (0..100).collect();
        for _ in 0..50 {
            let s = sample_without_replacement(&items, 10, &mut rng);
            let set: FxHashSet<u32> = s.iter().copied().collect();
            assert_eq!(set.len(), 10);
        }
    }

    #[test]
    fn snapshot_restores_byte_identical_behavior() {
        let mut nb = NaiveRebuild::new(two_table(), 6, 17);
        let mut rng = RsjRng::seed_from_u64(90);
        for i in 0..80u64 {
            let rel = (i % 2) as usize;
            let t = [rng.below_u64(8), rng.below_u64(8)];
            if i % 5 == 4 {
                nb.delete(rel, &t);
            } else {
                nb.process(rel, &t);
            }
        }
        let mut e = Encoder::new();
        nb.snapshot_to(&mut e);
        let bytes = e.into_bytes();

        let mut restored = NaiveRebuild::new(two_table(), 6, 0);
        let mut d = Decoder::new(&bytes);
        restored.restore_from_snapshot(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(restored.samples(), nb.samples());

        // Continue both in lockstep — identical draws step for step.
        for i in 0..60u64 {
            let rel = (i % 2) as usize;
            let t = [rng.below_u64(8), rng.below_u64(8)];
            if i % 4 == 3 {
                nb.delete(rel, &t);
                restored.delete(rel, &t);
            } else {
                nb.process(rel, &t);
                restored.process(rel, &t);
            }
            assert_eq!(restored.samples(), nb.samples());
        }

        // A mismatched k is rejected.
        let mut wrong = NaiveRebuild::new(two_table(), 1, 0);
        let mut d = Decoder::new(&bytes);
        assert!(wrong.restore_from_snapshot(&mut d).is_err());
    }

    #[test]
    fn duplicate_insert_keeps_sample() {
        let mut nb = NaiveRebuild::new(two_table(), 10, 2);
        nb.process(0, &[1, 2]);
        nb.process(1, &[2, 3]);
        let before = nb.samples().to_vec();
        nb.process(0, &[1, 2]);
        assert_eq!(nb.samples(), &before[..]);
    }
}
