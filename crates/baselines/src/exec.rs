//! [`JoinSampler`] implementations for the baseline engines, plus the
//! [`SymmetricSampler`] adapter that gives the two-table symmetric hash
//! join the same full-width-tuple interface as every other engine.

use crate::naive::NaiveRebuild;
use crate::sjoin::{SJoin, SJoinOpt};
use crate::symmetric::SymmetricHashJoin;
use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::{FxHashSet, Value};
use rsj_core::exec::{DeleteUnsupported, JoinSampler, SamplerStats};
use rsj_query::Query;
use rsj_storage::StreamOp;

impl JoinSampler for NaiveRebuild {
    fn name(&self) -> &'static str {
        "NaiveRebuild"
    }

    fn output_query(&self) -> &Query {
        self.query()
    }

    fn process(&mut self, rel: usize, tuple: &[Value]) {
        NaiveRebuild::process(self, rel, tuple);
    }

    /// Trivially fully dynamic: every op rebuilds and redraws.
    fn supports_deletes(&self) -> bool {
        true
    }

    fn process_op(&mut self, op: &StreamOp) -> Result<(), DeleteUnsupported> {
        match op {
            StreamOp::Insert(t) => NaiveRebuild::process(self, t.relation, &t.values),
            StreamOp::Delete(t) => NaiveRebuild::delete(self, t.relation, &t.values),
        }
        Ok(())
    }

    fn samples(&self) -> Vec<Vec<Value>> {
        NaiveRebuild::samples(self).to_vec()
    }

    fn k(&self) -> usize {
        NaiveRebuild::k(self)
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut enc = Encoder::new();
        NaiveRebuild::snapshot_to(self, &mut enc);
        Some(enc.into_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut dec = Decoder::new(bytes);
        NaiveRebuild::restore_from_snapshot(self, &mut dec)?;
        dec.finish()
    }
}

impl JoinSampler for SJoin {
    fn name(&self) -> &'static str {
        "SJoin"
    }

    fn output_query(&self) -> &Query {
        self.index().query()
    }

    fn process(&mut self, rel: usize, tuple: &[Value]) {
        SJoin::process(self, rel, tuple);
    }

    /// Fully dynamic with exact per-delete recalibration (the exact index
    /// maintains `|Q(R)|` in `O(1)`).
    fn supports_deletes(&self) -> bool {
        true
    }

    fn process_op(&mut self, op: &StreamOp) -> Result<(), DeleteUnsupported> {
        match op {
            StreamOp::Insert(t) => {
                SJoin::process(self, t.relation, &t.values);
            }
            StreamOp::Delete(t) => {
                SJoin::delete(self, t.relation, &t.values);
            }
        }
        Ok(())
    }

    fn samples(&self) -> Vec<Vec<Value>> {
        SJoin::samples(self).to_vec()
    }

    fn k(&self) -> usize {
        SJoin::k(self)
    }

    fn stats(&self) -> SamplerStats {
        SamplerStats {
            inserts: Some(self.index().stats().inserts),
            deletes: Some(self.index().stats().deletes),
            reservoir_stops: Some(self.reservoir_stops()),
            heap_bytes: Some(self.heap_size()),
            exact_results: Some(self.index().total_results()),
            ..SamplerStats::default()
        }
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut enc = Encoder::new();
        SJoin::snapshot_to(self, &mut enc);
        Some(enc.into_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut dec = Decoder::new(bytes);
        SJoin::restore_from_snapshot(self, &mut dec)?;
        dec.finish()
    }
}

impl JoinSampler for SJoinOpt {
    fn name(&self) -> &'static str {
        "SJoin_opt"
    }

    fn output_query(&self) -> &Query {
        self.rewritten_query()
    }

    fn process(&mut self, rel: usize, tuple: &[Value]) {
        SJoinOpt::process(self, rel, tuple);
    }

    fn samples(&self) -> Vec<Vec<Value>> {
        SJoinOpt::samples(self).to_vec()
    }

    fn k(&self) -> usize {
        SJoinOpt::k(self)
    }

    /// Fully dynamic since PR 10: the foreign-key combiner retracts
    /// combined tuples as signed deltas and the inner SJoin repairs its
    /// reservoir against the exact live count.
    fn supports_deletes(&self) -> bool {
        true
    }

    fn process_op(&mut self, op: &StreamOp) -> Result<(), DeleteUnsupported> {
        match op {
            StreamOp::Insert(t) => {
                SJoinOpt::process(self, t.relation, &t.values);
            }
            StreamOp::Delete(t) => {
                SJoinOpt::delete(self, t.relation, &t.values);
            }
        }
        Ok(())
    }

    fn stats(&self) -> SamplerStats {
        SamplerStats {
            inserts: Some(self.combiner().inserts()),
            deletes: Some(self.combiner().deletes()),
            reservoir_stops: Some(self.inner().reservoir_stops()),
            heap_bytes: Some(self.inner().heap_size() + self.combiner().heap_size()),
            exact_results: Some(self.inner().index().total_results()),
            ..SamplerStats::default()
        }
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut enc = Encoder::new();
        SJoinOpt::snapshot_to(self, &mut enc);
        Some(enc.into_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut dec = Decoder::new(bytes);
        SJoinOpt::restore_from_snapshot(self, &mut dec)?;
        dec.finish()
    }
}

/// [`SymmetricHashJoin`] behind the executor interface.
///
/// The raw operator exposes `insert_left` / `insert_right` and pair-shaped
/// samples; this adapter derives the join-key positions from the query's
/// shared attributes, routes `process(rel, ..)` to the correct side,
/// enforces the workspace-wide set semantics (duplicate tuples are
/// no-ops — the raw operator would double-count them), and materializes
/// samples into full-width value tuples of the query.
pub struct SymmetricSampler {
    query: Query,
    inner: SymmetricHashJoin,
    k: usize,
    seen: [FxHashSet<Vec<Value>>; 2],
    inserts: u64,
    deletes: u64,
}

impl SymmetricSampler {
    /// Builds the adapter for a two-relation natural-join query.
    pub fn new(query: Query, k: usize, seed: u64) -> Result<SymmetricSampler, String> {
        if query.num_relations() != 2 {
            return Err(format!(
                "SymmetricHashJoin supports exactly 2 relations, query has {}",
                query.num_relations()
            ));
        }
        let left_attrs = &query.relation(0).attrs;
        let right_attrs = &query.relation(1).attrs;
        let mut left_key = Vec::new();
        let mut right_key = Vec::new();
        for (i, a) in left_attrs.iter().enumerate() {
            if let Some(j) = right_attrs.iter().position(|b| b == a) {
                left_key.push(i);
                right_key.push(j);
            }
        }
        Ok(SymmetricSampler {
            inner: SymmetricHashJoin::new(left_key, right_key, k, seed),
            query,
            k,
            seen: [FxHashSet::default(), FxHashSet::default()],
            inserts: 0,
            deletes: 0,
        })
    }

    /// The underlying operator.
    pub fn inner(&self) -> &SymmetricHashJoin {
        &self.inner
    }
}

impl JoinSampler for SymmetricSampler {
    fn name(&self) -> &'static str {
        "SymmetricHashJoin"
    }

    fn output_query(&self) -> &Query {
        &self.query
    }

    fn process(&mut self, rel: usize, tuple: &[Value]) {
        assert!(
            rel < 2,
            "relation index {rel} out of range for 2-table join"
        );
        if !self.seen[rel].insert(tuple.to_vec()) {
            return;
        }
        self.inserts += 1;
        if rel == 0 {
            self.inner.insert_left(tuple);
        } else {
            self.inner.insert_right(tuple);
        }
    }

    /// Fully dynamic and exact: the operator maintains the exact live
    /// result count, so the classic reservoir recalibrates on every
    /// delete.
    fn supports_deletes(&self) -> bool {
        true
    }

    fn process_op(&mut self, op: &StreamOp) -> Result<(), DeleteUnsupported> {
        match op {
            StreamOp::Insert(t) => JoinSampler::process(self, t.relation, &t.values),
            StreamOp::Delete(t) => {
                let rel = t.relation;
                assert!(
                    rel < 2,
                    "relation index {rel} out of range for 2-table join"
                );
                if !self.seen[rel].remove(&t.values) {
                    return Ok(());
                }
                self.deletes += 1;
                if rel == 0 {
                    self.inner.delete_left(&t.values);
                } else {
                    self.inner.delete_right(&t.values);
                }
            }
        }
        Ok(())
    }

    fn samples(&self) -> Vec<Vec<Value>> {
        self.inner
            .samples()
            .iter()
            .map(|(l, r)| {
                let mut out = vec![0; self.query.num_attrs()];
                for (pos, &attr) in self.query.relation(0).attrs.iter().enumerate() {
                    out[attr] = l[pos];
                }
                for (pos, &attr) in self.query.relation(1).attrs.iter().enumerate() {
                    out[attr] = r[pos];
                }
                out
            })
            .collect()
    }

    fn k(&self) -> usize {
        self.k
    }

    fn stats(&self) -> SamplerStats {
        SamplerStats {
            inserts: Some(self.inserts),
            deletes: Some(self.deletes),
            reservoir_stops: None,
            heap_bytes: None,
            exact_results: Some(self.inner.live_results()),
            ..SamplerStats::default()
        }
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut enc = Encoder::new();
        self.inner.snapshot_to(&mut enc);
        // The dedup sets are unordered; emit them sorted for a canonical
        // image.
        for side in &self.seen {
            let mut tuples: Vec<&Vec<Value>> = side.iter().collect();
            tuples.sort_unstable();
            enc.put_usize(tuples.len());
            for t in tuples {
                enc.put_u64s(t);
            }
        }
        enc.put_u64(self.inserts);
        enc.put_u64(self.deletes);
        Some(enc.into_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut dec = Decoder::new(bytes);
        self.inner.restore_from_snapshot(&mut dec)?;
        let mut seen = [FxHashSet::default(), FxHashSet::default()];
        for side in &mut seen {
            let n = dec.seq_len(1)?;
            for _ in 0..n {
                if !side.insert(dec.u64s()?) {
                    return Err(CodecError::Corrupt("duplicate tuple in dedup-set snapshot"));
                }
            }
        }
        self.seen = seen;
        self.inserts = dec.u64()?;
        self.deletes = dec.u64()?;
        dec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_query::QueryBuilder;

    fn two_table() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("R", &["X", "Y"]);
        qb.relation("S", &["Y", "Z"]);
        qb.build().unwrap()
    }

    #[test]
    fn symmetric_adapter_materializes_full_width() {
        let mut s = SymmetricSampler::new(two_table(), 10, 1).unwrap();
        JoinSampler::process(&mut s, 0, &[1, 2]);
        JoinSampler::process(&mut s, 1, &[2, 3]);
        assert_eq!(JoinSampler::samples(&s), vec![vec![1, 2, 3]]);
        assert_eq!(s.stats().exact_results, Some(1));
    }

    #[test]
    fn symmetric_adapter_deduplicates() {
        let mut s = SymmetricSampler::new(two_table(), 10, 1).unwrap();
        JoinSampler::process(&mut s, 0, &[1, 2]);
        JoinSampler::process(&mut s, 0, &[1, 2]);
        JoinSampler::process(&mut s, 1, &[2, 3]);
        assert_eq!(s.stats().inserts, Some(2));
        assert_eq!(s.stats().exact_results, Some(1));
    }

    #[test]
    fn symmetric_adapter_rejects_non_binary_queries() {
        let mut qb = QueryBuilder::new();
        qb.relation("A", &["X", "Y"]);
        qb.relation("B", &["Y", "Z"]);
        qb.relation("C", &["Z", "W"]);
        assert!(SymmetricSampler::new(qb.build().unwrap(), 10, 1).is_err());
    }

    #[test]
    fn trait_level_snapshots_round_trip_for_all_baselines() {
        use rsj_common::rng::RsjRng;
        use rsj_storage::InputTuple;
        let q = two_table();
        let build = |which: usize| -> Box<dyn JoinSampler> {
            match which {
                0 => Box::new(NaiveRebuild::new(q.clone(), 5, 3)),
                1 => Box::new(SJoin::new(q.clone(), 5, 3).unwrap()),
                2 => Box::new(SymmetricSampler::new(q.clone(), 5, 3).unwrap()),
                _ => Box::new(SJoinOpt::new(&q, &rsj_query::FkSchema::none(2), 5, 3).unwrap()),
            }
        };
        for which in 0..4 {
            let mut engine = build(which);
            assert!(engine.supports_snapshot(), "{}", engine.name());
            let mut rng = RsjRng::seed_from_u64(61);
            let mut ops = Vec::new();
            for i in 0..120u64 {
                let t = InputTuple {
                    relation: (i % 2) as usize,
                    values: vec![rng.below_u64(5), rng.below_u64(5)],
                };
                ops.push(if i % 5 == 4 {
                    StreamOp::Delete(t)
                } else {
                    StreamOp::Insert(t)
                });
            }
            for op in &ops[..80] {
                engine.process_op(op).unwrap();
            }
            let bytes = engine.snapshot_state().unwrap();
            let mut restored = build(which);
            restored.restore_state(&bytes).unwrap();
            for op in &ops[80..] {
                engine.process_op(op).unwrap();
                restored.process_op(op).unwrap();
            }
            assert_eq!(
                restored.samples_named(),
                engine.samples_named(),
                "{}",
                engine.name()
            );
            // Garbage is rejected, not mis-restored.
            let mut fresh = build(which);
            assert!(fresh.restore_state(&bytes[..bytes.len() / 2]).is_err());
        }
    }

    #[test]
    fn baselines_work_as_trait_objects() {
        let q = two_table();
        let mut engines: Vec<Box<dyn JoinSampler>> = vec![
            Box::new(NaiveRebuild::new(q.clone(), 100, 1)),
            Box::new(SJoin::new(q.clone(), 100, 1).unwrap()),
            Box::new(SymmetricSampler::new(q.clone(), 100, 1).unwrap()),
            Box::new(SJoinOpt::new(&q, &rsj_query::FkSchema::none(2), 100, 1).unwrap()),
        ];
        for e in &mut engines {
            e.process(0, &[1, 2]);
            e.process(1, &[2, 3]);
            assert_eq!(e.samples_named().len(), 1, "{}", e.name());
        }
    }
}
