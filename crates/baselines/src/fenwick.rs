//! A growable Fenwick (binary indexed) tree over `u128` weights.
//!
//! SJoin needs positional access into groups whose items carry *exact*
//! weights: "find the item owning prefix position `z`" and "re-weight item
//! `i`". Both are `O(log n)` here. Weights move in both directions —
//! insertions grow them, turnstile deletions shrink them (possibly to
//! zero; zero-weight items are skipped by [`Fenwick::search`]).

use rsj_common::codec::{CodecError, Decoder, Encoder};

/// Growable binary indexed tree with prefix-sum search.
#[derive(Clone, Debug, Default)]
pub struct Fenwick {
    /// 1-based BIT array; `tree[i]` covers `(i - lowbit(i), i]`.
    tree: Vec<u128>,
    /// Raw weights (0-based), kept for appends and direct reads.
    weights: Vec<u128>,
}

#[inline]
fn lowbit(i: usize) -> usize {
    i & i.wrapping_neg()
}

impl Fenwick {
    /// Creates an empty tree.
    pub fn new() -> Fenwick {
        Fenwick::default()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Appends an item with the given weight; returns its index.
    pub fn push(&mut self, weight: u128) -> usize {
        let idx = self.weights.len();
        self.weights.push(weight);
        // tree[i] (1-based i = idx+1) = sum of weights[(i - lowbit(i))..i].
        let i = idx + 1;
        let lb = lowbit(i);
        let mut node = weight;
        // Fold in the already-complete subtrees this node covers.
        let mut j = i - 1;
        while j > i - lb {
            node += self.tree[j - 1];
            j -= lowbit(j);
        }
        self.tree.push(node);
        idx
    }

    /// Increases item `idx`'s weight by `delta`.
    pub fn add(&mut self, idx: usize, delta: u128) {
        self.weights[idx] += delta;
        let mut i = idx + 1;
        while i <= self.tree.len() {
            self.tree[i - 1] += delta;
            i += lowbit(i);
        }
    }

    /// Current weight of item `idx`.
    pub fn weight(&self, idx: usize) -> u128 {
        self.weights[idx]
    }

    /// Decreases item `idx`'s weight by `delta`.
    ///
    /// # Panics
    /// Panics (in debug) if `delta` exceeds the item's current weight.
    pub fn sub(&mut self, idx: usize, delta: u128) {
        debug_assert!(delta <= self.weights[idx], "Fenwick weight underflow");
        self.weights[idx] -= delta;
        let mut i = idx + 1;
        while i <= self.tree.len() {
            self.tree[i - 1] -= delta;
            i += lowbit(i);
        }
    }

    /// Sets item `idx`'s weight (in either direction).
    pub fn set(&mut self, idx: usize, weight: u128) {
        let old = self.weights[idx];
        if weight >= old {
            self.add(idx, weight - old);
        } else {
            self.sub(idx, old - weight);
        }
    }

    /// Total weight.
    pub fn total(&self) -> u128 {
        self.prefix(self.len())
    }

    /// Sum of weights of items `0..n`.
    pub fn prefix(&self, n: usize) -> u128 {
        let mut s = 0u128;
        let mut i = n;
        while i > 0 {
            s += self.tree[i - 1];
            i -= lowbit(i);
        }
        s
    }

    /// Finds the item owning global position `z < total()`: returns
    /// `(index, z - prefix(index))`, i.e. the offset within that item.
    pub fn search(&self, z: u128) -> (usize, u128) {
        debug_assert!(z < self.total(), "search past total");
        let mut idx = 0usize; // 1-based node walked so far
        let mut rem = z;
        let mut mask = self.tree.len().next_power_of_two();
        while mask > 0 {
            let next = idx + mask;
            if next <= self.tree.len() && self.tree[next - 1] <= rem {
                rem -= self.tree[next - 1];
                idx = next;
            }
            mask >>= 1;
        }
        // idx items have total weight <= z; item `idx` (0-based) owns it,
        // but zero-weight items must be skipped forward.
        let mut i = idx;
        while self.weights[i] == 0 {
            i += 1;
        }
        (i, rem)
    }

    /// Estimated heap bytes.
    pub fn heap_size(&self) -> usize {
        (self.tree.capacity() + self.weights.capacity()) * std::mem::size_of::<u128>()
    }

    /// Serializes the raw weights. The BIT array is a pure function of
    /// them and is rebuilt on [`Fenwick::restore_from`].
    pub fn snapshot_to(&self, enc: &mut Encoder) {
        enc.put_u128s(&self.weights);
    }

    /// Rebuilds a tree from a [`Fenwick::snapshot_to`] image.
    pub fn restore_from(dec: &mut Decoder) -> Result<Fenwick, CodecError> {
        let weights = dec.u128s()?;
        let mut f = Fenwick::new();
        f.tree.reserve_exact(weights.len());
        for &w in &weights {
            f.push(w);
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_prefix() {
        let mut f = Fenwick::new();
        for w in [3u128, 0, 5, 2] {
            f.push(w);
        }
        assert_eq!(f.total(), 10);
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.prefix(1), 3);
        assert_eq!(f.prefix(2), 3);
        assert_eq!(f.prefix(3), 8);
        assert_eq!(f.prefix(4), 10);
    }

    #[test]
    fn search_maps_positions_to_items() {
        let mut f = Fenwick::new();
        for w in [3u128, 0, 5, 2] {
            f.push(w);
        }
        assert_eq!(f.search(0), (0, 0));
        assert_eq!(f.search(2), (0, 2));
        assert_eq!(f.search(3), (2, 0)); // item 1 has weight 0 — skipped
        assert_eq!(f.search(7), (2, 4));
        assert_eq!(f.search(8), (3, 0));
        assert_eq!(f.search(9), (3, 1));
    }

    #[test]
    fn add_and_set_update_sums() {
        let mut f = Fenwick::new();
        f.push(1);
        f.push(1);
        f.add(0, 4);
        assert_eq!(f.weight(0), 5);
        assert_eq!(f.total(), 6);
        f.set(1, 10);
        assert_eq!(f.total(), 15);
        assert_eq!(f.search(5), (1, 0));
    }

    #[test]
    fn shrinking_set_and_sub() {
        let mut f = Fenwick::new();
        f.push(5);
        f.push(7);
        f.set(0, 3);
        assert_eq!(f.weight(0), 3);
        assert_eq!(f.total(), 10);
        f.sub(1, 7);
        assert_eq!(f.weight(1), 0);
        assert_eq!(f.total(), 3);
        // Zero-weight items are skipped by positional search.
        f.push(2);
        assert_eq!(f.search(3), (2, 0));
        assert_eq!(f.search(0), (0, 0));
    }

    #[test]
    fn randomized_against_naive() {
        use rsj_common::rng::RsjRng;
        let mut rng = RsjRng::seed_from_u64(9);
        let mut f = Fenwick::new();
        let mut naive: Vec<u128> = Vec::new();
        for _ in 0..2000 {
            if naive.is_empty() || rng.index(3) == 0 {
                let w = rng.below_u64(5) as u128;
                f.push(w);
                naive.push(w);
            } else {
                let i = rng.index(naive.len());
                let d = rng.below_u64(7) as u128;
                f.add(i, d);
                naive[i] += d;
            }
        }
        let total: u128 = naive.iter().sum();
        assert_eq!(f.total(), total);
        // Check every prefix and a sweep of searches.
        let mut acc = 0u128;
        for (i, &w) in naive.iter().enumerate() {
            assert_eq!(f.prefix(i), acc, "prefix {i}");
            acc += w;
        }
        if total > 0 {
            let mut rng2 = RsjRng::seed_from_u64(10);
            for _ in 0..200 {
                let z = rng2.below_u128(total);
                let (idx, rem) = f.search(z);
                assert!(rem < naive[idx]);
                assert_eq!(f.prefix(idx) + rem, z);
            }
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let mut f = Fenwick::new();
        for w in [3u128, 0, 1u128 << 90, 2, 7] {
            f.push(w);
        }
        f.set(1, 4);
        f.sub(3, 2);
        let mut e = Encoder::new();
        f.snapshot_to(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let g = Fenwick::restore_from(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(g.len(), f.len());
        assert_eq!(g.total(), f.total());
        for i in 0..f.len() {
            assert_eq!(g.weight(i), f.weight(i));
            assert_eq!(g.prefix(i), f.prefix(i));
        }
        // Re-serialization is byte-identical.
        let mut e2 = Encoder::new();
        g.snapshot_to(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn large_weights() {
        let mut f = Fenwick::new();
        f.push(1u128 << 100);
        f.push(1u128 << 101);
        assert_eq!(f.total(), (1u128 << 100) + (1u128 << 101));
        let (i, rem) = f.search(1u128 << 100);
        assert_eq!((i, rem), (1, 0));
    }
}
