//! `SJoin` — re-implementation of Zhao et al. \[31\], the state of the art
//! the paper compares against.
//!
//! Same architecture as `RSJoin` (Figure 1): per-tuple delta batches fed to
//! a skip-based reservoir. The difference is the index: SJoin maintains
//! **exact** sub-join counts, so its batches are exactly `ΔQ(R,t)` —
//! 1-dense, no dummies, and the reservoir never wastes a stop. The price is
//! update cost: exact counts change on *every* insert, so every insert
//! re-weights all matching ancestor items all the way to the root — `O(N)`
//! per update in the worst case (degenerate skew), the `O(N²)` total the
//! paper's experiments exhibit on line-5 and QZ.
//!
//! Positional access into exact groups uses a growable [`Fenwick`] tree per
//! group (`O(log n)` locate and re-weight).

use crate::fenwick::Fenwick;
use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::{FxHashMap, Key, TupleId, Value};
use rsj_query::{Query, RootedTree};
use rsj_storage::{Database, TupleStream};
use rsj_stream::{FnBatch, Reservoir};

/// Instrumentation counters for SJoin.
#[derive(Clone, Copy, Debug, Default)]
pub struct SJoinStats {
    /// Tuples accepted.
    pub inserts: u64,
    /// Tuples deleted (present at deletion time).
    pub deletes: u64,
    /// Ancestor item re-weights performed (the update-cost driver).
    pub item_updates: u64,
}

struct ExactGroup {
    items: Vec<TupleId>,
    weights: Fenwick,
}

impl ExactGroup {
    fn new() -> ExactGroup {
        ExactGroup {
            items: Vec::new(),
            weights: Fenwick::new(),
        }
    }

    #[inline]
    fn cnt(&self) -> u128 {
        self.weights.total()
    }
}

struct ExactNode {
    groups: FxHashMap<Key, u32>,
    group_keys: Vec<Key>,
    arena: Vec<ExactGroup>,
    /// Per tuple: (group, position within group).
    item_loc: Vec<(u32, u32)>,
    /// Per child: key(c) value -> matching tuples of this node.
    child_indexes: Vec<FxHashMap<Key, Vec<TupleId>>>,
}

impl ExactNode {
    fn new(num_children: usize) -> ExactNode {
        ExactNode {
            groups: FxHashMap::default(),
            group_keys: Vec::new(),
            arena: Vec::new(),
            item_loc: Vec::new(),
            child_indexes: vec![FxHashMap::default(); num_children],
        }
    }

    fn group_for(&mut self, key: Key) -> u32 {
        if let Some(&g) = self.groups.get(&key) {
            return g;
        }
        let g = self.arena.len() as u32;
        self.groups.insert(key, g);
        self.group_keys.push(key);
        self.arena.push(ExactGroup::new());
        g
    }

    #[inline]
    fn cnt_of(&self, key: &Key) -> u128 {
        self.groups
            .get(key)
            .map_or(0, |&g| self.arena[g as usize].cnt())
    }

    /// Serializes the node's exact physical layout. Group ids and item
    /// positions are positional (retrieval walks `arena[g].items[pos]`), so
    /// `group_keys` and the per-group item vectors go out in storage order.
    /// `child_indexes` maps are never iterated for behavior (propagation
    /// re-weights each listed tuple from final child state, order-free), so
    /// their entries are emitted sorted by key for a canonical byte image.
    fn snapshot_to(&self, enc: &mut Encoder) {
        enc.put_usize(self.group_keys.len());
        for k in &self.group_keys {
            k.encode_to(enc);
        }
        for g in &self.arena {
            enc.put_u32s(&g.items);
            g.weights.snapshot_to(enc);
        }
        enc.put_usize(self.item_loc.len());
        for &(g, pos) in &self.item_loc {
            enc.put_u32(g);
            enc.put_u32(pos);
        }
        enc.put_usize(self.child_indexes.len());
        for m in self.child_indexes.iter() {
            let mut entries: Vec<(&Key, &Vec<TupleId>)> = m.iter().collect();
            entries.sort_unstable_by(|a, b| a.0.as_slice().cmp(b.0.as_slice()));
            enc.put_usize(entries.len());
            for (k, list) in entries {
                k.encode_to(enc);
                enc.put_u32s(list);
            }
        }
    }

    /// Rebuilds a node from a [`ExactNode::snapshot_to`] image. The
    /// `groups` map is reconstructed from `group_keys` (group ids are the
    /// storage positions).
    fn restore_from(dec: &mut Decoder) -> Result<ExactNode, CodecError> {
        let ng = dec.seq_len(1)?;
        let mut group_keys = Vec::with_capacity(ng);
        let mut groups = FxHashMap::default();
        for g in 0..ng {
            let k = Key::decode_from(dec)?;
            if groups.insert(k, g as u32).is_some() {
                return Err(CodecError::Corrupt("duplicate group key in node snapshot"));
            }
            group_keys.push(k);
        }
        let mut arena = Vec::with_capacity(ng);
        for _ in 0..ng {
            let items = dec.u32s()?;
            let weights = Fenwick::restore_from(dec)?;
            if weights.len() != items.len() {
                return Err(CodecError::Corrupt("group item/weight length mismatch"));
            }
            arena.push(ExactGroup { items, weights });
        }
        let nloc = dec.seq_len(8)?;
        let mut item_loc = Vec::with_capacity(nloc);
        for _ in 0..nloc {
            let g = dec.u32()?;
            let pos = dec.u32()?;
            let valid = arena
                .get(g as usize)
                .is_some_and(|grp| (pos as usize) < grp.items.len());
            if !valid {
                return Err(CodecError::Corrupt("item location out of range"));
            }
            item_loc.push((g, pos));
        }
        let nc = dec.seq_len(1)?;
        let mut child_indexes = Vec::with_capacity(nc);
        for _ in 0..nc {
            let ne = dec.seq_len(1)?;
            let mut m: FxHashMap<Key, Vec<TupleId>> = FxHashMap::default();
            for _ in 0..ne {
                let k = Key::decode_from(dec)?;
                let list = dec.u32s()?;
                if m.insert(k, list).is_some() {
                    return Err(CodecError::Corrupt("duplicate child-index key"));
                }
            }
            child_indexes.push(m);
        }
        Ok(ExactNode {
            groups,
            group_keys,
            arena,
            item_loc,
            child_indexes,
        })
    }

    fn heap_size(&self) -> usize {
        use rsj_common::HeapSize;
        self.groups.heap_size()
            + self.group_keys.heap_size()
            + self
                .arena
                .iter()
                .map(|g| g.items.heap_size() + g.weights.heap_size())
                .sum::<usize>()
            + self.item_loc.heap_size()
            + self
                .child_indexes
                .iter()
                .map(|m| m.heap_size() + m.values().map(HeapSize::heap_size).sum::<usize>())
                .sum::<usize>()
    }
}

struct ExactTree {
    tree: RootedTree,
    nodes: Vec<ExactNode>,
}

/// The exact-count index behind SJoin.
pub struct SJoinIndex {
    query: Query,
    db: Database,
    trees: Vec<ExactTree>,
    stats: SJoinStats,
}

impl SJoinIndex {
    /// Builds an empty exact index for an acyclic query.
    pub fn new(query: Query) -> Result<SJoinIndex, String> {
        let jt = rsj_query::JoinTree::build(&query).ok_or("query is cyclic")?;
        let rooted = rsj_query::rooted::all_rooted_trees(&query, &jt).map_err(|e| e.to_string())?;
        let mut db = Database::new();
        for r in query.relations() {
            db.add_relation(r.name.clone(), r.attrs.len());
        }
        let trees = rooted
            .into_iter()
            .map(|tree| {
                let nodes = (0..query.num_relations())
                    .map(|rel| ExactNode::new(tree.node(rel).children.len()))
                    .collect();
                ExactTree { tree, nodes }
            })
            .collect();
        Ok(SJoinIndex {
            query,
            db,
            trees,
            stats: SJoinStats::default(),
        })
    }

    /// The query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Tuple storage.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Counters.
    pub fn stats(&self) -> SJoinStats {
        self.stats
    }

    /// Exact `|Q(R)|` (root-group total of the first rooted tree).
    pub fn total_results(&self) -> u128 {
        let ts = &self.trees[0];
        ts.nodes[ts.tree.root()].cnt_of(&Key::EMPTY)
    }

    /// Inserts a tuple; `None` for duplicates.
    pub fn insert(&mut self, rel: usize, tuple: &[Value]) -> Option<TupleId> {
        let tid = self.db.relation_mut(rel).insert(tuple)?;
        self.stats.inserts += 1;
        for ti in 0..self.trees.len() {
            let mut updates = 0u64;
            exact_insert(&mut self.trees[ti], &self.db, rel, tid, &mut updates);
            self.stats.item_updates += updates;
        }
        Some(tid)
    }

    /// Deletes a tuple; `None` if absent (set semantics). The exact mirror
    /// of [`insert`](SJoinIndex::insert): the tuple's weight drops to zero
    /// in every rooted tree and exact count decreases propagate
    /// unconditionally — the same `O(N)`-worst-case cost profile as
    /// insertion. The slot stays in its group as a permanent zero
    /// (positional search skips zero weights).
    pub fn delete(&mut self, rel: usize, tuple: &[Value]) -> Option<TupleId> {
        let tid = self.db.relation_mut(rel).remove(tuple)?;
        self.stats.deletes += 1;
        for ti in 0..self.trees.len() {
            let mut updates = 0u64;
            exact_delete(&mut self.trees[ti], &self.db, rel, tid, &mut updates);
            self.stats.item_updates += updates;
        }
        Some(tid)
    }

    /// The join result at position `z < total_results()` of the full
    /// current result array — exact positional access, no dummies, so one
    /// uniform draw of `z` is one uniform join result (the turnstile
    /// repair path).
    pub fn result_at(&self, z: u128) -> Vec<(usize, TupleId)> {
        let ts = &self.trees[0];
        exact_retrieve_group(ts, &self.db, ts.tree.root(), &Key::EMPTY, z)
    }

    /// Exact delta size of the tuple just inserted into `rel`.
    pub fn delta_size(&self, rel: usize, tid: TupleId) -> u128 {
        let ts = &self.trees[rel];
        let (g, pos) = ts.nodes[rel].item_loc[tid as usize];
        ts.nodes[rel].arena[g as usize].weights.weight(pos as usize)
    }

    /// The join result at position `z` of the exact delta batch of
    /// `(rel, tid)`. Always a real result (`z < delta_size`).
    pub fn delta_retrieve(&self, rel: usize, tid: TupleId, z: u128) -> Vec<(usize, TupleId)> {
        let ts = &self.trees[rel];
        exact_retrieve_tuple(ts, &self.db, rel, tid, z)
    }

    /// Materializes a result into a full-width value tuple.
    pub fn materialize(&self, result: &[(usize, TupleId)]) -> Vec<Value> {
        let mut out = Vec::new();
        self.materialize_into(result, &mut out);
        out
    }

    /// Materializes a result into a caller-provided buffer (cleared and
    /// refilled), avoiding a fresh allocation per retrieved sample.
    pub fn materialize_into(&self, result: &[(usize, TupleId)], out: &mut Vec<Value>) {
        out.clear();
        out.resize(self.query.num_attrs(), 0);
        for &(rel, tid) in result {
            let tuple = self.db.tuple(rel, tid);
            for (pos, &attr) in self.query.relation(rel).attrs.iter().enumerate() {
                out[attr] = tuple[pos];
            }
        }
    }

    /// Estimated heap bytes.
    pub fn heap_size(&self) -> usize {
        use rsj_common::HeapSize;
        self.db.heap_size()
            + self
                .trees
                .iter()
                .map(|t| t.nodes.iter().map(ExactNode::heap_size).sum::<usize>())
                .sum::<usize>()
    }

    /// Serializes the full dynamic state: database, every rooted tree's
    /// exact nodes, and counters. The rooted-tree topology is a pure
    /// function of the query and is rebuilt on restore.
    pub fn snapshot_to(&self, enc: &mut Encoder) {
        self.db.snapshot_to(enc);
        enc.put_usize(self.trees.len());
        for t in &self.trees {
            for n in &t.nodes {
                n.snapshot_to(enc);
            }
        }
        enc.put_u64(self.stats.inserts);
        enc.put_u64(self.stats.deletes);
        enc.put_u64(self.stats.item_updates);
    }

    /// Restores from a [`SJoinIndex::snapshot_to`] image taken by an index
    /// built over the same query. The receiver is unchanged on error.
    pub fn restore_from_snapshot(&mut self, dec: &mut Decoder) -> Result<(), CodecError> {
        let db = Database::restore_from(dec)?;
        if db.len() != self.query.num_relations() {
            return Err(CodecError::Corrupt("snapshot relation count mismatch"));
        }
        for rel in 0..db.len() {
            if db.relation(rel).arity() != self.query.relation(rel).attrs.len() {
                return Err(CodecError::Corrupt("snapshot relation arity mismatch"));
            }
        }
        let nt = dec.seq_len(1)?;
        if nt != self.trees.len() {
            return Err(CodecError::Corrupt("snapshot rooted-tree count mismatch"));
        }
        let mut restored: Vec<Vec<ExactNode>> = Vec::with_capacity(nt);
        for t in &self.trees {
            let mut nodes = Vec::with_capacity(self.query.num_relations());
            for rel in 0..self.query.num_relations() {
                let n = ExactNode::restore_from(dec)?;
                if n.child_indexes.len() != t.tree.node(rel).children.len() {
                    return Err(CodecError::Corrupt("snapshot node child-count mismatch"));
                }
                nodes.push(n);
            }
            restored.push(nodes);
        }
        let stats = SJoinStats {
            inserts: dec.u64()?,
            deletes: dec.u64()?,
            item_updates: dec.u64()?,
        };
        self.db = db;
        for (t, nodes) in self.trees.iter_mut().zip(restored) {
            t.nodes = nodes;
        }
        self.stats = stats;
        Ok(())
    }
}

/// Small helper so `materialize` reads cleanly.
trait TupleAccess {
    fn tuple(&self, rel: usize, tid: TupleId) -> &[Value];
}

impl TupleAccess for Database {
    fn tuple(&self, rel: usize, tid: TupleId) -> &[Value] {
        self.relation(rel).tuple(tid)
    }
}

fn exact_insert(ts: &mut ExactTree, db: &Database, rel: usize, tid: TupleId, updates: &mut u64) {
    let tuple = db.relation(rel).tuple(tid);
    let info = ts.tree.node(rel);
    let group_key = Key::project(tuple, &info.key_positions);
    let child_keys: Vec<Key> = info
        .child_key_positions
        .iter()
        .map(|ps| Key::project(tuple, ps))
        .collect();
    let weight = exact_weight(ts, rel, &child_keys);
    let node = &mut ts.nodes[rel];
    for (ci, k) in child_keys.iter().enumerate() {
        node.child_indexes[ci].entry(*k).or_default().push(tid);
    }
    let g = node.group_for(group_key);
    let grp = &mut node.arena[g as usize];
    let pos = grp.items.len() as u32;
    grp.items.push(tid);
    grp.weights.push(weight);
    node.item_loc.push((g, pos));
    if weight > 0 {
        // Exact counts changed: propagate unconditionally (the SJoin cost).
        exact_propagate(ts, db, rel, group_key, updates);
    }
}

fn exact_delete(ts: &mut ExactTree, db: &Database, rel: usize, tid: TupleId, updates: &mut u64) {
    // The tombstoned slot keeps its values readable — project them to find
    // every registration.
    let tuple = db.relation(rel).tuple(tid);
    let info = ts.tree.node(rel);
    let group_key = Key::project(tuple, &info.key_positions);
    let child_keys: Vec<Key> = info
        .child_key_positions
        .iter()
        .map(|ps| Key::project(tuple, ps))
        .collect();
    let node = &mut ts.nodes[rel];
    for (ci, k) in child_keys.iter().enumerate() {
        let list = node.child_indexes[ci]
            .get_mut(k)
            .expect("deleted tuple's child key must be indexed");
        let pos = list
            .iter()
            .position(|&t| t == tid)
            .expect("deleted tuple must be listed under its child key");
        list.swap_remove(pos);
    }
    let (g, pos) = node.item_loc[tid as usize];
    let grp = &mut node.arena[g as usize];
    let had_weight = grp.weights.weight(pos as usize) > 0;
    grp.weights.set(pos as usize, 0);
    if had_weight {
        // Exact counts changed: propagate unconditionally (the SJoin cost).
        exact_propagate(ts, db, rel, group_key, updates);
    }
}

fn exact_weight(ts: &ExactTree, rel: usize, child_keys: &[Key]) -> u128 {
    let info = ts.tree.node(rel);
    let mut w = 1u128;
    for (ci, k) in child_keys.iter().enumerate() {
        let c = info.children[ci];
        let cnt = ts.nodes[c].cnt_of(k);
        if cnt == 0 {
            return 0;
        }
        w = w.saturating_mul(cnt);
    }
    w
}

fn exact_propagate(
    ts: &mut ExactTree,
    db: &Database,
    child_rel: usize,
    key: Key,
    updates: &mut u64,
) {
    let Some(parent) = ts.tree.node(child_rel).parent else {
        return;
    };
    let ci = ts
        .tree
        .node(parent)
        .children
        .iter()
        .position(|&c| c == child_rel)
        .expect("child index");
    let items: Vec<TupleId> = match ts.nodes[parent].child_indexes[ci].get(&key) {
        Some(v) => v.clone(),
        None => return,
    };
    let mut changed_groups: Vec<(u32, Key)> = Vec::new();
    for tid in items {
        *updates += 1;
        let tuple = db.relation(parent).tuple(tid);
        let info = ts.tree.node(parent);
        let child_keys: Vec<Key> = info
            .child_key_positions
            .iter()
            .map(|ps| Key::project(tuple, ps))
            .collect();
        let new_w = exact_weight(ts, parent, &child_keys);
        let (g, pos) = ts.nodes[parent].item_loc[tid as usize];
        let grp = &mut ts.nodes[parent].arena[g as usize];
        if grp.weights.weight(pos as usize) != new_w {
            grp.weights.set(pos as usize, new_w);
            if !changed_groups.iter().any(|(cg, _)| *cg == g) {
                let gkey = ts.nodes[parent].group_keys[g as usize];
                changed_groups.push((g, gkey));
            }
        }
    }
    for (_, gkey) in changed_groups {
        exact_propagate(ts, db, parent, gkey, updates);
    }
}

fn exact_retrieve_tuple(
    ts: &ExactTree,
    db: &Database,
    rel: usize,
    tid: TupleId,
    z: u128,
) -> Vec<(usize, TupleId)> {
    let info = ts.tree.node(rel);
    let mut out = vec![(rel, tid)];
    if info.children.is_empty() {
        debug_assert_eq!(z, 0);
        return out;
    }
    let tuple = db.relation(rel).tuple(tid);
    // Row-major decomposition with exact radices.
    let mut coords = vec![0u128; info.children.len()];
    let mut rest = z;
    for (ci, positions) in info.child_key_positions.iter().enumerate().rev() {
        let key = Key::project(tuple, positions);
        let c = info.children[ci];
        let radix = ts.nodes[c].cnt_of(&key);
        debug_assert!(radix > 0);
        coords[ci] = rest % radix;
        rest /= radix;
    }
    debug_assert_eq!(rest, 0);
    for (ci, positions) in info.child_key_positions.iter().enumerate() {
        let key = Key::project(tuple, positions);
        let c = info.children[ci];
        out.extend(exact_retrieve_group(ts, db, c, &key, coords[ci]));
    }
    out
}

fn exact_retrieve_group(
    ts: &ExactTree,
    db: &Database,
    rel: usize,
    key: &Key,
    z: u128,
) -> Vec<(usize, TupleId)> {
    let node = &ts.nodes[rel];
    let g = node.groups.get(key).expect("group exists for z < cnt");
    let grp = &node.arena[*g as usize];
    let (pos, rem) = grp.weights.search(z);
    exact_retrieve_tuple(ts, db, rel, grp.items[pos], rem)
}

/// The complete SJoin driver: exact index + skip-based reservoir.
///
/// Fully dynamic, and — unlike `RSJoin` — *exactly* calibrated on every
/// delete: the exact index hands over `|Q(R)|` in `O(1)`, so the
/// reservoir's skip state is re-drawn against the live population at each
/// deletion (eviction-and-backfill uses exact positional draws, which
/// never hit a dummy).
pub struct SJoin {
    index: SJoinIndex,
    reservoir: Reservoir<Vec<Value>>,
    /// Reusable materialization buffer (see the in-place reservoir path).
    scratch: Vec<Value>,
    /// RNG for turnstile backfill draws (untouched on insert-only runs).
    repair_rng: rsj_common::rng::RsjRng,
}

impl SJoin {
    /// Creates the driver.
    pub fn new(query: Query, k: usize, seed: u64) -> Result<SJoin, String> {
        Ok(SJoin {
            index: SJoinIndex::new(query)?,
            reservoir: Reservoir::new(k, seed),
            scratch: Vec::new(),
            repair_rng: rsj_common::rng::RsjRng::seed_from_u64(rsj_common::rng::child_seed(
                seed,
                u64::from_le_bytes(*b"turnstil"),
            )),
        })
    }

    /// Processes one input tuple.
    pub fn process(&mut self, rel: usize, tuple: &[Value]) -> Option<TupleId> {
        let tid = self.index.insert(rel, tuple)?;
        let size = self.index.delta_size(rel, tid);
        if size > 0 {
            let index = &self.index;
            let mut fb = FnBatch::new(size, |z| index.delta_retrieve(rel, tid, z));
            self.reservoir.process_batch_in_place(
                &mut fb,
                |r, buf| {
                    index.materialize_into(&r, buf);
                    true
                },
                &mut self.scratch,
            );
        }
        Some(tid)
    }

    /// Processes a whole stream.
    pub fn process_stream(&mut self, stream: &TupleStream) {
        for t in stream.iter() {
            self.process(t.relation, &t.values);
        }
    }

    /// Deletes one input tuple; `None` if absent. Exact turnstile repair:
    /// evict dead samples, backfill with distinct exact positional draws,
    /// re-draw the skip state against the exact live `|Q(R)|`.
    pub fn delete(&mut self, rel: usize, tuple: &[Value]) -> Option<TupleId> {
        let tid = self.index.delete(rel, tuple)?;
        let attrs = &self.index.query().relation(rel).attrs;
        self.reservoir
            .evict_where(|s| attrs.iter().enumerate().all(|(pos, &a)| s[a] == tuple[pos]));
        let population = self.index.total_results();
        let target = (self.reservoir.capacity() as u128).min(population) as usize;
        let index = &self.index;
        let rng = &mut self.repair_rng;
        // Positional draws are 1-dense (no dummies); the per-slot budget
        // only covers distinctness rejection, worst around O(k) when the
        // population barely exceeds the sample.
        let per_slot = (4096 + 256 * self.reservoir.capacity()).min(1 << 24);
        let filled = self.reservoir.backfill_distinct(target, per_slot, || {
            let z = rng.below_u128(population);
            Some(index.materialize(&index.result_at(z)))
        });
        debug_assert!(filled, "backfill exhausted its rejection cap");
        self.reservoir.recalibrate(population);
        Some(tid)
    }

    /// Current samples.
    pub fn samples(&self) -> &[Vec<Value>] {
        self.reservoir.samples()
    }

    /// Reservoir capacity `k`.
    pub fn k(&self) -> usize {
        self.reservoir.capacity()
    }

    /// Predicate-evaluating stops the reservoir performed.
    pub fn reservoir_stops(&self) -> u64 {
        self.reservoir.stops()
    }

    /// The exact index.
    pub fn index(&self) -> &SJoinIndex {
        &self.index
    }

    /// Estimated heap bytes.
    pub fn heap_size(&self) -> usize {
        self.index.heap_size()
            + self
                .samples()
                .iter()
                .map(|s| s.capacity() * 8)
                .sum::<usize>()
    }

    /// Serializes the full dynamic state: exact index, reservoir (samples,
    /// skip state, RNG), and the turnstile repair RNG.
    pub fn snapshot_to(&self, enc: &mut Encoder) {
        self.index.snapshot_to(enc);
        self.reservoir.snapshot_to(enc, |e, s| e.put_u64s(s));
        for w in self.repair_rng.state() {
            enc.put_u64(w);
        }
    }

    /// Restores from a [`SJoin::snapshot_to`] image taken by a driver built
    /// with the same `(query, k)`. On error the receiver may be partially
    /// overwritten and must be discarded.
    pub fn restore_from_snapshot(&mut self, dec: &mut Decoder) -> Result<(), CodecError> {
        self.index.restore_from_snapshot(dec)?;
        let reservoir = Reservoir::restore_from(dec, |d| d.u64s())?;
        if reservoir.capacity() != self.reservoir.capacity() {
            return Err(CodecError::Corrupt("snapshot reservoir capacity mismatch"));
        }
        let s = [dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?];
        let repair_rng = rsj_common::rng::RsjRng::restore_state(s)
            .ok_or(CodecError::Corrupt("rng state is the zero fixed point"))?;
        self.reservoir = reservoir;
        self.repair_rng = repair_rng;
        Ok(())
    }
}

/// `SJoin_opt`: SJoin behind the foreign-key combination rewrite.
pub struct SJoinOpt {
    combiner: rsj_core::FkCombiner,
    inner: SJoin,
}

impl SJoinOpt {
    /// Builds the optimized baseline.
    pub fn new(
        query: &Query,
        fks: &rsj_query::FkSchema,
        k: usize,
        seed: u64,
    ) -> Result<SJoinOpt, String> {
        let plan = rsj_query::CombinePlan::build(query, fks).map_err(|e| e.to_string())?;
        let inner = SJoin::new(plan.rewritten.clone(), k, seed)?;
        Ok(SJoinOpt {
            combiner: rsj_core::FkCombiner::new(plan),
            inner,
        })
    }

    /// Processes one original-stream tuple.
    pub fn process(&mut self, orig_rel: usize, tuple: &[Value]) {
        for (rel, t) in self.combiner.process(orig_rel, tuple) {
            self.inner.process(rel, &t);
        }
    }

    /// Deletes one original-stream tuple: the combiner's `-1` deltas route
    /// to the inner SJoin's delete path (exact eviction + backfill repair).
    pub fn delete(&mut self, orig_rel: usize, tuple: &[Value]) {
        for (rel, t) in self.combiner.retract(orig_rel, tuple) {
            self.inner.delete(rel, &t);
        }
    }

    /// The streaming combiner (op counters, heap accounting).
    pub fn combiner(&self) -> &rsj_core::FkCombiner {
        &self.combiner
    }

    /// Serializes the full dynamic state: combiner registries, then the
    /// inner SJoin snapshot.
    pub fn snapshot_to(&self, enc: &mut Encoder) {
        self.combiner.snapshot_to(enc);
        self.inner.snapshot_to(enc);
    }

    /// Restores from a [`SJoinOpt::snapshot_to`] image taken by a driver
    /// built with the same `(query, fks, k, seed)`. On error the receiver
    /// may be partially overwritten and must be discarded.
    pub fn restore_from_snapshot(&mut self, dec: &mut Decoder) -> Result<(), CodecError> {
        self.combiner.restore_from_snapshot(dec)?;
        self.inner.restore_from_snapshot(dec)
    }

    /// Current samples (rewritten-query attribute order).
    pub fn samples(&self) -> &[Vec<Value>] {
        self.inner.samples()
    }

    /// The rewritten query.
    pub fn rewritten_query(&self) -> &Query {
        self.combiner.rewritten_query()
    }

    /// The inner driver.
    pub fn inner(&self) -> &SJoin {
        &self.inner
    }

    /// Reservoir capacity `k`.
    pub fn k(&self) -> usize {
        self.inner.k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::rng::RsjRng;
    use rsj_common::stats::{chi_square_critical, chi_square_uniform};
    use rsj_common::{FxHashMap, FxHashSet};
    use rsj_query::QueryBuilder;

    fn line3() -> Query {
        let mut qb = QueryBuilder::new();
        qb.relation("G1", &["A", "B"]);
        qb.relation("G2", &["B", "C"]);
        qb.relation("G3", &["C", "D"]);
        qb.build().unwrap()
    }

    fn brute_line3(tuples: &[(usize, [u64; 2])]) -> FxHashSet<Vec<u64>> {
        let mut out = FxHashSet::default();
        for &(r1, t1) in tuples.iter().filter(|(r, _)| *r == 0) {
            for &(r2, t2) in tuples.iter().filter(|(r, _)| *r == 1) {
                for &(r3, t3) in tuples.iter().filter(|(r, _)| *r == 2) {
                    let _ = (r1, r2, r3);
                    if t1[1] == t2[0] && t2[1] == t3[0] {
                        out.insert(vec![t1[0], t1[1], t2[1], t3[1]]);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn exact_total_matches_brute_force() {
        let mut rng = RsjRng::seed_from_u64(41);
        let mut idx = SJoinIndex::new(line3()).unwrap();
        let mut tuples = Vec::new();
        for _ in 0..300 {
            let rel = rng.index(3);
            let t = [rng.below_u64(7), rng.below_u64(7)];
            if idx.insert(rel, &t).is_some() {
                tuples.push((rel, t));
            }
        }
        assert_eq!(idx.total_results(), brute_line3(&tuples).len() as u128);
    }

    #[test]
    fn delta_sizes_sum_to_total() {
        let mut rng = RsjRng::seed_from_u64(43);
        let mut idx = SJoinIndex::new(line3()).unwrap();
        let mut sum = 0u128;
        for _ in 0..300 {
            let rel = rng.index(3);
            let t = [rng.below_u64(6), rng.below_u64(6)];
            if let Some(tid) = idx.insert(rel, &t) {
                sum += idx.delta_size(rel, tid);
            }
        }
        assert_eq!(sum, idx.total_results());
    }

    #[test]
    fn delta_retrieval_enumerates_exact_results() {
        let mut idx = SJoinIndex::new(line3()).unwrap();
        for a in 0..3u64 {
            idx.insert(0, &[a, 1]);
        }
        for d in 0..2u64 {
            idx.insert(2, &[2, d]);
        }
        let tid = idx.insert(1, &[1, 2]).unwrap();
        assert_eq!(idx.delta_size(1, tid), 6);
        let mut seen = FxHashSet::default();
        for z in 0..6u128 {
            let r = idx.delta_retrieve(1, tid, z);
            assert!(seen.insert(idx.materialize(&r)), "dup at {z}");
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn sjoin_collects_all_with_large_k() {
        let mut rng = RsjRng::seed_from_u64(47);
        let mut sj = SJoin::new(line3(), 100_000, 1).unwrap();
        let mut tuples = Vec::new();
        for _ in 0..200 {
            let rel = rng.index(3);
            let t = [rng.below_u64(5), rng.below_u64(5)];
            if sj.process(rel, &t).is_some() {
                tuples.push((rel, t));
            }
        }
        let got: FxHashSet<Vec<u64>> = sj.samples().iter().cloned().collect();
        assert_eq!(got, brute_line3(&tuples));
    }

    #[test]
    fn sjoin_uniformity() {
        let stream: Vec<(usize, [u64; 2])> = vec![
            (0, [1, 10]),
            (2, [20, 5]),
            (1, [10, 20]),
            (0, [2, 10]),
            (2, [20, 6]),
            (0, [3, 10]),
        ];
        // 3 G1-tuples × 1 G2 × 2 G3 = 6 results.
        let trials = 5000u64;
        let mut counts: FxHashMap<Vec<u64>, u64> = FxHashMap::default();
        for seed in 0..trials {
            let mut sj = SJoin::new(line3(), 2, seed).unwrap();
            for (rel, t) in &stream {
                sj.process(*rel, t);
            }
            for s in sj.samples() {
                *counts.entry(s.clone()).or_default() += 1;
            }
        }
        assert_eq!(counts.len(), 6);
        let obs: Vec<u64> = counts.values().copied().collect();
        let (stat, df) = chi_square_uniform(&obs);
        assert!(stat < chi_square_critical(df, 0.0001), "chi2={stat}");
    }

    #[test]
    fn snapshot_restores_byte_identical_turnstile_behavior() {
        let mut sj = SJoin::new(line3(), 8, 42).unwrap();
        let mut rng = RsjRng::seed_from_u64(7);
        let mut live: Vec<(usize, [u64; 2])> = Vec::new();
        for i in 0..350u64 {
            if i % 4 == 3 && !live.is_empty() {
                let (rel, t) = live.swap_remove(rng.index(live.len()));
                sj.delete(rel, &t);
            } else {
                let rel = rng.index(3);
                let t = [rng.below_u64(6), rng.below_u64(6)];
                if sj.process(rel, &t).is_some() {
                    live.push((rel, t));
                }
            }
        }
        let mut e = Encoder::new();
        sj.snapshot_to(&mut e);
        let bytes = e.into_bytes();

        let mut restored = SJoin::new(line3(), 8, 0).unwrap();
        let mut d = Decoder::new(&bytes);
        restored.restore_from_snapshot(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(restored.samples(), sj.samples());
        assert_eq!(restored.index().total_results(), sj.index().total_results());

        // Re-serialization is byte-identical (canonical image).
        let mut e2 = Encoder::new();
        restored.snapshot_to(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);

        // Lockstep continuation with mixed inserts/deletes.
        for i in 0..250u64 {
            if i % 4 == 3 && !live.is_empty() {
                let (rel, t) = live.swap_remove(rng.index(live.len()));
                assert_eq!(sj.delete(rel, &t), restored.delete(rel, &t));
            } else {
                let rel = rng.index(3);
                let t = [rng.below_u64(6), rng.below_u64(6)];
                let tid = sj.process(rel, &t);
                assert_eq!(tid, restored.process(rel, &t));
                if tid.is_some() {
                    live.push((rel, t));
                }
            }
            assert_eq!(restored.samples(), sj.samples());
        }

        // A mismatched k is rejected.
        let mut wrong = SJoin::new(line3(), 9, 0).unwrap();
        let mut d = Decoder::new(&bytes);
        assert!(wrong.restore_from_snapshot(&mut d).is_err());
    }

    #[test]
    fn update_cost_explodes_on_skew() {
        // Degenerate line-3: all G2 tuples share one key on both sides;
        // every G1/G3 insert re-weights all of them. RSJoin's rounding
        // makes this O(log) amortized; SJoin must show Ω(N²)-style growth.
        let n = 200u64;
        let mut sj = SJoinIndex::new(line3()).unwrap();
        for i in 0..n {
            sj.insert(1, &[1, i % 4]); // G2: B=1, few C values
        }
        for i in 0..n {
            sj.insert(0, &[i, 1]); // G1 hits B=1 every time
            sj.insert(2, &[i % 4, i]); // G3 grows each C bucket
        }
        let sjoin_updates = sj.stats().item_updates;
        // Equivalent RSJoin.
        let mut rj =
            rsj_index::DynamicIndex::new(line3(), rsj_index::IndexOptions::default()).unwrap();
        for i in 0..n {
            rj.insert(1, &[1, i % 4]);
        }
        for i in 0..n {
            rj.insert(0, &[i, 1]);
            rj.insert(2, &[i % 4, i]);
        }
        let rsjoin_loops = rj.stats().propagation_loops;
        assert!(
            sjoin_updates > 10 * rsjoin_loops,
            "sjoin={sjoin_updates} rsjoin={rsjoin_loops}"
        );
    }

    #[test]
    fn sjoin_opt_matches_plain_on_fk_query() {
        use rsj_query::FkSchema;
        let mut qb = QueryBuilder::new();
        qb.relation("fact", &["K", "M"]);
        qb.relation("dim", &["K", "D"]);
        let q = qb.build().unwrap();
        let fks = FkSchema::none(2).with_pk(1, vec![0]);
        let mut rng = RsjRng::seed_from_u64(51);
        let mut stream: Vec<(usize, Vec<u64>)> = Vec::new();
        for k in 0..8u64 {
            stream.push((1, vec![k, 100 + k]));
        }
        for _ in 0..40 {
            stream.push((0, vec![rng.below_u64(8), rng.below_u64(50)]));
        }
        let mut plain = SJoin::new(q.clone(), 100_000, 1).unwrap();
        let mut opt = SJoinOpt::new(&q, &fks, 100_000, 2).unwrap();
        for (rel, t) in &stream {
            plain.process(*rel, t);
            opt.process(*rel, t);
        }
        let norm = |samples: &[Vec<u64>], query: &Query| -> FxHashSet<Vec<(String, u64)>> {
            samples
                .iter()
                .map(|s| {
                    let mut kv: Vec<(String, u64)> = query
                        .attr_names()
                        .iter()
                        .cloned()
                        .zip(s.iter().copied())
                        .collect();
                    kv.sort();
                    kv
                })
                .collect()
        };
        assert_eq!(
            norm(plain.samples(), plain.index().query()),
            norm(opt.samples(), opt.rewritten_query())
        );
    }

    #[test]
    fn sjoin_opt_deletes_match_plain_on_fk_query() {
        // Turnstile tail over a fact ⋈ dim schema: deletes hit facts and
        // the dimension alike, and SJoin_opt must track plain SJoin's live
        // result set exactly (k >= |Q|), with matching exact totals.
        use rsj_query::FkSchema;
        let mut qb = QueryBuilder::new();
        qb.relation("fact", &["K", "M"]);
        qb.relation("dim", &["K", "D"]);
        let q = qb.build().unwrap();
        let fks = FkSchema::none(2).with_pk(1, vec![0]);
        let mut plain = SJoin::new(q.clone(), 100_000, 1).unwrap();
        let mut opt = SJoinOpt::new(&q, &fks, 100_000, 2).unwrap();
        let mut apply = |ins: bool, rel: usize, t: &[u64]| {
            if ins {
                plain.process(rel, t);
                opt.process(rel, t);
            } else {
                plain.delete(rel, t);
                opt.delete(rel, t);
            }
        };
        for k in 0..6u64 {
            apply(true, 1, &[k, 100 + k]);
        }
        for i in 0..30u64 {
            apply(true, 0, &[i % 6, i]);
        }
        // Delete a dimension tuple (kills every K=2 chain), two facts,
        // then re-insert the dimension under a fresh attribute value.
        apply(false, 1, &[2, 102]);
        apply(false, 0, &[0, 0]);
        apply(false, 0, &[3, 3]);
        apply(true, 1, &[2, 202]);
        let norm = |samples: &[Vec<u64>], query: &Query| -> FxHashSet<Vec<(String, u64)>> {
            samples
                .iter()
                .map(|s| {
                    let mut kv: Vec<(String, u64)> = query
                        .attr_names()
                        .iter()
                        .cloned()
                        .zip(s.iter().copied())
                        .collect();
                    kv.sort();
                    kv
                })
                .collect()
        };
        let a = norm(plain.samples(), plain.index().query());
        let b = norm(opt.samples(), opt.rewritten_query());
        assert!(!a.is_empty());
        assert_eq!(a, b);
        assert_eq!(
            plain.index().total_results(),
            opt.inner().index().total_results()
        );
        assert_eq!(opt.combiner().deletes(), 3);
    }
}
