//! Symmetric hash join + classic reservoir: the simplest streaming
//! two-table baseline (paper §6.1, \[2\]).
//!
//! Both inputs are hashed on the join key as they arrive; each arrival
//! probes the opposite table and offers every new join result to a classic
//! reservoir. Total time is proportional to the number of join results —
//! fine when the join is small, hopeless when it is polynomially larger
//! than the input, which is exactly the gap RSJoin closes.
//!
//! The operator is naturally symmetric under deletions too: removing a
//! tuple kills exactly its matches in the opposite table, the live result
//! count `Σ_key |L_key|·|R_key|` updates in `O(matches)`, and the classic
//! reservoir repairs exactly — its acceptance probability is driven by an
//! explicit counter, which simply tracks the live population.

use rsj_common::rng::{child_seed, RsjRng};
use rsj_common::{FxHashMap, Key, Value};
use rsj_stream::ClassicReservoir;

/// Streaming two-table natural join with reservoir sampling.
pub struct SymmetricHashJoin {
    /// Join-key positions in the left / right schemas.
    left_key: Vec<usize>,
    right_key: Vec<usize>,
    left: FxHashMap<Key, Vec<Vec<Value>>>,
    right: FxHashMap<Key, Vec<Vec<Value>>>,
    reservoir: ClassicReservoir<(Vec<Value>, Vec<Value>)>,
    /// Exact current `|Q(R)| = Σ_key |L_key|·|R_key|`.
    results_live: u128,
    /// RNG for turnstile backfill draws (untouched on insert-only runs).
    repair_rng: RsjRng,
}

impl SymmetricHashJoin {
    /// Creates the operator. `left_key[i]` must join with `right_key[i]`.
    pub fn new(
        left_key: Vec<usize>,
        right_key: Vec<usize>,
        k: usize,
        seed: u64,
    ) -> SymmetricHashJoin {
        assert_eq!(left_key.len(), right_key.len());
        SymmetricHashJoin {
            left_key,
            right_key,
            left: FxHashMap::default(),
            right: FxHashMap::default(),
            reservoir: ClassicReservoir::new(k, seed),
            results_live: 0,
            repair_rng: RsjRng::seed_from_u64(child_seed(seed, u64::from_le_bytes(*b"turnstil"))),
        }
    }

    /// Inserts a left tuple, offering all new matches to the reservoir.
    pub fn insert_left(&mut self, tuple: &[Value]) {
        let key = Key::project(tuple, &self.left_key);
        for r in self.right.get(&key).into_iter().flatten() {
            self.results_live += 1;
            self.reservoir.offer((tuple.to_vec(), r.clone()));
        }
        self.left.entry(key).or_default().push(tuple.to_vec());
    }

    /// Inserts a right tuple, offering all new matches to the reservoir.
    pub fn insert_right(&mut self, tuple: &[Value]) {
        let key = Key::project(tuple, &self.right_key);
        for l in self.left.get(&key).into_iter().flatten() {
            self.results_live += 1;
            self.reservoir.offer((l.clone(), tuple.to_vec()));
        }
        self.right.entry(key).or_default().push(tuple.to_vec());
    }

    /// Deletes one occurrence of a left tuple; returns whether it was
    /// present. Kills its matches, repairs the reservoir, and re-points
    /// the classic acceptance counter at the live population — all exact.
    pub fn delete_left(&mut self, tuple: &[Value]) -> bool {
        let key = Key::project(tuple, &self.left_key);
        if !remove_one(&mut self.left, &key, tuple) {
            return false;
        }
        let dead = self.right.get(&key).map_or(0, |v| v.len()) as u128;
        self.results_live -= dead;
        self.reservoir.evict_where(|(l, _)| l == tuple);
        self.repair();
        true
    }

    /// Deletes one occurrence of a right tuple; returns whether it was
    /// present. Mirror of [`delete_left`](SymmetricHashJoin::delete_left).
    pub fn delete_right(&mut self, tuple: &[Value]) -> bool {
        let key = Key::project(tuple, &self.right_key);
        if !remove_one(&mut self.right, &key, tuple) {
            return false;
        }
        let dead = self.left.get(&key).map_or(0, |v| v.len()) as u128;
        self.results_live -= dead;
        self.reservoir.evict_where(|(_, r)| r == tuple);
        self.repair();
        true
    }

    /// Backfills vacated reservoir slots with uniform distinct draws from
    /// the live result set and recalibrates the acceptance counter.
    fn repair(&mut self) {
        let target = (self.reservoir.capacity() as u128).min(self.results_live) as usize;
        // Draws are 1-dense; the per-slot budget only covers distinctness
        // rejection, worst around O(k) when the population barely exceeds
        // the sample.
        let per_slot = (4096 + 256 * self.reservoir.capacity()).min(1 << 24);
        let (left, right, live) = (&self.left, &self.right, self.results_live);
        let rng = &mut self.repair_rng;
        let filled = self
            .reservoir
            .backfill_distinct(target, per_slot, || draw_uniform(left, right, live, rng));
        debug_assert!(filled, "backfill exhausted its rejection cap");
        self.reservoir.set_population(self.results_live);
    }

    /// Samples: `(left_tuple, right_tuple)` pairs.
    pub fn samples(&self) -> &[(Vec<Value>, Vec<Value>)] {
        self.reservoir.samples()
    }

    /// Exact number of currently-live join results (equals the cumulative
    /// count on insert-only streams).
    pub fn live_results(&self) -> u128 {
        self.results_live
    }
}

/// One uniform draw over the live results: pick a global position in
/// `Σ_key |L_key|·|R_key|` and decode it. `O(#distinct keys)`.
fn draw_uniform(
    left: &FxHashMap<Key, Vec<Vec<Value>>>,
    right: &FxHashMap<Key, Vec<Vec<Value>>>,
    live: u128,
    rng: &mut RsjRng,
) -> Option<(Vec<Value>, Vec<Value>)> {
    if live == 0 {
        return None;
    }
    let mut z = rng.below_u128(live);
    for (key, ls) in left {
        let rs = match right.get(key) {
            Some(rs) if !ls.is_empty() => rs,
            _ => continue,
        };
        let block = (ls.len() as u128) * (rs.len() as u128);
        if z < block {
            let i = (z / rs.len() as u128) as usize;
            let j = (z % rs.len() as u128) as usize;
            return Some((ls[i].clone(), rs[j].clone()));
        }
        z -= block;
    }
    unreachable!("z < results_live must land in a key block");
}

/// Removes one occurrence of `tuple` from the bucket at `key`, dropping
/// emptied buckets. Returns whether anything was removed.
fn remove_one(side: &mut FxHashMap<Key, Vec<Vec<Value>>>, key: &Key, tuple: &[Value]) -> bool {
    let Some(bucket) = side.get_mut(key) else {
        return false;
    };
    let Some(pos) = bucket.iter().position(|t| t == tuple) else {
        return false;
    };
    bucket.swap_remove(pos);
    if bucket.is_empty() {
        side.remove(key);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::FxHashSet;

    #[test]
    fn join_results_complete() {
        let mut shj = SymmetricHashJoin::new(vec![1], vec![0], 100, 1);
        shj.insert_left(&[1, 10]);
        shj.insert_right(&[10, 5]);
        shj.insert_right(&[10, 6]);
        shj.insert_left(&[2, 10]); // matches both rights
        shj.insert_left(&[3, 99]); // no match
        assert_eq!(shj.live_results(), 4);
        let got: FxHashSet<(Vec<u64>, Vec<u64>)> = shj.samples().iter().cloned().collect();
        let expect: FxHashSet<(Vec<u64>, Vec<u64>)> = [
            (vec![1, 10], vec![10, 5]),
            (vec![1, 10], vec![10, 6]),
            (vec![2, 10], vec![10, 5]),
            (vec![2, 10], vec![10, 6]),
        ]
        .into_iter()
        .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn arrival_order_irrelevant_for_results() {
        let run = |order: &[(bool, [u64; 2])]| -> u128 {
            let mut shj = SymmetricHashJoin::new(vec![1], vec![0], 10, 2);
            for &(is_left, t) in order {
                if is_left {
                    shj.insert_left(&t);
                } else {
                    shj.insert_right(&t);
                }
            }
            shj.live_results()
        };
        let a = run(&[(true, [1, 7]), (false, [7, 2]), (true, [3, 7])]);
        let b = run(&[(false, [7, 2]), (true, [3, 7]), (true, [1, 7])]);
        assert_eq!(a, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn composite_keys_join() {
        let mut shj = SymmetricHashJoin::new(vec![0, 1], vec![1, 2], 10, 3);
        shj.insert_left(&[1, 2, 77]);
        shj.insert_right(&[88, 1, 2]);
        shj.insert_right(&[88, 1, 3]); // second key differs
        assert_eq!(shj.live_results(), 1);
    }
}
