//! Symmetric hash join + classic reservoir: the simplest streaming
//! two-table baseline (paper §6.1, \[2\]).
//!
//! Both inputs are hashed on the join key as they arrive; each arrival
//! probes the opposite table and offers every new join result to a classic
//! reservoir. Total time is proportional to the number of join results —
//! fine when the join is small, hopeless when it is polynomially larger
//! than the input, which is exactly the gap RSJoin closes.

use rsj_common::{FxHashMap, Key, Value};
use rsj_stream::ClassicReservoir;

/// Streaming two-table natural join with reservoir sampling.
pub struct SymmetricHashJoin {
    /// Join-key positions in the left / right schemas.
    left_key: Vec<usize>,
    right_key: Vec<usize>,
    left: FxHashMap<Key, Vec<Vec<Value>>>,
    right: FxHashMap<Key, Vec<Vec<Value>>>,
    reservoir: ClassicReservoir<(Vec<Value>, Vec<Value>)>,
    results_seen: u128,
}

impl SymmetricHashJoin {
    /// Creates the operator. `left_key[i]` must join with `right_key[i]`.
    pub fn new(
        left_key: Vec<usize>,
        right_key: Vec<usize>,
        k: usize,
        seed: u64,
    ) -> SymmetricHashJoin {
        assert_eq!(left_key.len(), right_key.len());
        SymmetricHashJoin {
            left_key,
            right_key,
            left: FxHashMap::default(),
            right: FxHashMap::default(),
            reservoir: ClassicReservoir::new(k, seed),
            results_seen: 0,
        }
    }

    /// Inserts a left tuple, offering all new matches to the reservoir.
    pub fn insert_left(&mut self, tuple: &[Value]) {
        let key = Key::project(tuple, &self.left_key);
        for r in self.right.get(&key).into_iter().flatten() {
            self.results_seen += 1;
            self.reservoir.offer((tuple.to_vec(), r.clone()));
        }
        self.left.entry(key).or_default().push(tuple.to_vec());
    }

    /// Inserts a right tuple, offering all new matches to the reservoir.
    pub fn insert_right(&mut self, tuple: &[Value]) {
        let key = Key::project(tuple, &self.right_key);
        for l in self.left.get(&key).into_iter().flatten() {
            self.results_seen += 1;
            self.reservoir.offer((l.clone(), tuple.to_vec()));
        }
        self.right.entry(key).or_default().push(tuple.to_vec());
    }

    /// Samples: `(left_tuple, right_tuple)` pairs.
    pub fn samples(&self) -> &[(Vec<Value>, Vec<Value>)] {
        self.reservoir.samples()
    }

    /// Exact number of join results produced so far.
    pub fn results_seen(&self) -> u128 {
        self.results_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::FxHashSet;

    #[test]
    fn join_results_complete() {
        let mut shj = SymmetricHashJoin::new(vec![1], vec![0], 100, 1);
        shj.insert_left(&[1, 10]);
        shj.insert_right(&[10, 5]);
        shj.insert_right(&[10, 6]);
        shj.insert_left(&[2, 10]); // matches both rights
        shj.insert_left(&[3, 99]); // no match
        assert_eq!(shj.results_seen(), 4);
        let got: FxHashSet<(Vec<u64>, Vec<u64>)> = shj.samples().iter().cloned().collect();
        let expect: FxHashSet<(Vec<u64>, Vec<u64>)> = [
            (vec![1, 10], vec![10, 5]),
            (vec![1, 10], vec![10, 6]),
            (vec![2, 10], vec![10, 5]),
            (vec![2, 10], vec![10, 6]),
        ]
        .into_iter()
        .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn arrival_order_irrelevant_for_results() {
        let run = |order: &[(bool, [u64; 2])]| -> u128 {
            let mut shj = SymmetricHashJoin::new(vec![1], vec![0], 10, 2);
            for &(is_left, t) in order {
                if is_left {
                    shj.insert_left(&t);
                } else {
                    shj.insert_right(&t);
                }
            }
            shj.results_seen()
        };
        let a = run(&[(true, [1, 7]), (false, [7, 2]), (true, [3, 7])]);
        let b = run(&[(false, [7, 2]), (true, [3, 7]), (true, [1, 7])]);
        assert_eq!(a, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn composite_keys_join() {
        let mut shj = SymmetricHashJoin::new(vec![0, 1], vec![1, 2], 10, 3);
        shj.insert_left(&[1, 2, 77]);
        shj.insert_right(&[88, 1, 2]);
        shj.insert_right(&[88, 1, 3]); // second key differs
        assert_eq!(shj.results_seen(), 1);
    }
}
