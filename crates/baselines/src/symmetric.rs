//! Symmetric hash join + classic reservoir: the simplest streaming
//! two-table baseline (paper §6.1, \[2\]).
//!
//! Both inputs are hashed on the join key as they arrive; each arrival
//! probes the opposite table and offers every new join result to a classic
//! reservoir. Total time is proportional to the number of join results —
//! fine when the join is small, hopeless when it is polynomially larger
//! than the input, which is exactly the gap RSJoin closes.
//!
//! The operator is naturally symmetric under deletions too: removing a
//! tuple kills exactly its matches in the opposite table, the live result
//! count `Σ_key |L_key|·|R_key|` updates in `O(matches)`, and the classic
//! reservoir repairs exactly — its acceptance probability is driven by an
//! explicit counter, which simply tracks the live population.

use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::rng::{child_seed, RsjRng};
use rsj_common::{FxHashMap, Key, Value};
use rsj_stream::ClassicReservoir;

/// Streaming two-table natural join with reservoir sampling.
pub struct SymmetricHashJoin {
    /// Join-key positions in the left / right schemas.
    left_key: Vec<usize>,
    right_key: Vec<usize>,
    left: FxHashMap<Key, Vec<Vec<Value>>>,
    right: FxHashMap<Key, Vec<Vec<Value>>>,
    reservoir: ClassicReservoir<(Vec<Value>, Vec<Value>)>,
    /// Exact current `|Q(R)| = Σ_key |L_key|·|R_key|`.
    results_live: u128,
    /// RNG for turnstile backfill draws (untouched on insert-only runs).
    repair_rng: RsjRng,
}

impl SymmetricHashJoin {
    /// Creates the operator. `left_key[i]` must join with `right_key[i]`.
    pub fn new(
        left_key: Vec<usize>,
        right_key: Vec<usize>,
        k: usize,
        seed: u64,
    ) -> SymmetricHashJoin {
        assert_eq!(left_key.len(), right_key.len());
        SymmetricHashJoin {
            left_key,
            right_key,
            left: FxHashMap::default(),
            right: FxHashMap::default(),
            reservoir: ClassicReservoir::new(k, seed),
            results_live: 0,
            repair_rng: RsjRng::seed_from_u64(child_seed(seed, u64::from_le_bytes(*b"turnstil"))),
        }
    }

    /// Inserts a left tuple, offering all new matches to the reservoir.
    pub fn insert_left(&mut self, tuple: &[Value]) {
        let key = Key::project(tuple, &self.left_key);
        for r in self.right.get(&key).into_iter().flatten() {
            self.results_live += 1;
            self.reservoir.offer((tuple.to_vec(), r.clone()));
        }
        self.left.entry(key).or_default().push(tuple.to_vec());
    }

    /// Inserts a right tuple, offering all new matches to the reservoir.
    pub fn insert_right(&mut self, tuple: &[Value]) {
        let key = Key::project(tuple, &self.right_key);
        for l in self.left.get(&key).into_iter().flatten() {
            self.results_live += 1;
            self.reservoir.offer((l.clone(), tuple.to_vec()));
        }
        self.right.entry(key).or_default().push(tuple.to_vec());
    }

    /// Deletes one occurrence of a left tuple; returns whether it was
    /// present. Kills its matches, repairs the reservoir, and re-points
    /// the classic acceptance counter at the live population — all exact.
    pub fn delete_left(&mut self, tuple: &[Value]) -> bool {
        let key = Key::project(tuple, &self.left_key);
        if !remove_one(&mut self.left, &key, tuple) {
            return false;
        }
        let dead = self.right.get(&key).map_or(0, |v| v.len()) as u128;
        self.results_live -= dead;
        self.reservoir.evict_where(|(l, _)| l == tuple);
        self.repair();
        true
    }

    /// Deletes one occurrence of a right tuple; returns whether it was
    /// present. Mirror of [`delete_left`](SymmetricHashJoin::delete_left).
    pub fn delete_right(&mut self, tuple: &[Value]) -> bool {
        let key = Key::project(tuple, &self.right_key);
        if !remove_one(&mut self.right, &key, tuple) {
            return false;
        }
        let dead = self.left.get(&key).map_or(0, |v| v.len()) as u128;
        self.results_live -= dead;
        self.reservoir.evict_where(|(_, r)| r == tuple);
        self.repair();
        true
    }

    /// Backfills vacated reservoir slots with uniform distinct draws from
    /// the live result set and recalibrates the acceptance counter.
    fn repair(&mut self) {
        let target = (self.reservoir.capacity() as u128).min(self.results_live) as usize;
        // Draws are 1-dense; the per-slot budget only covers distinctness
        // rejection, worst around O(k) when the population barely exceeds
        // the sample.
        let per_slot = (4096 + 256 * self.reservoir.capacity()).min(1 << 24);
        let (left, right, live) = (&self.left, &self.right, self.results_live);
        // Walk key blocks in sorted order so draws depend only on logical
        // state, never on hash-map iteration order — required for
        // byte-identical replay after a snapshot restore.
        let mut keys: Vec<Key> = left.keys().copied().collect();
        keys.sort_unstable_by(|a, b| a.as_slice().cmp(b.as_slice()));
        let rng = &mut self.repair_rng;
        let filled = self.reservoir.backfill_distinct(target, per_slot, || {
            draw_uniform(&keys, left, right, live, rng)
        });
        debug_assert!(filled, "backfill exhausted its rejection cap");
        self.reservoir.set_population(self.results_live);
    }

    /// Samples: `(left_tuple, right_tuple)` pairs.
    pub fn samples(&self) -> &[(Vec<Value>, Vec<Value>)] {
        self.reservoir.samples()
    }

    /// Exact number of currently-live join results (equals the cumulative
    /// count on insert-only streams).
    pub fn live_results(&self) -> u128 {
        self.results_live
    }

    /// Serializes the full dynamic state. Hash-table entries go out sorted
    /// by key (canonical image); bucket order within a key is positional
    /// (draws index `ls[i]`/`rs[j]`) and is preserved verbatim.
    pub fn snapshot_to(&self, enc: &mut Encoder) {
        enc.put_usize(self.left_key.len());
        for &p in &self.left_key {
            enc.put_usize(p);
        }
        for &p in &self.right_key {
            enc.put_usize(p);
        }
        put_side(enc, &self.left);
        put_side(enc, &self.right);
        self.reservoir.snapshot_to(enc, |e, (l, r)| {
            e.put_u64s(l);
            e.put_u64s(r);
        });
        enc.put_u128(self.results_live);
        for w in self.repair_rng.state() {
            enc.put_u64(w);
        }
    }

    /// Restores from a [`SymmetricHashJoin::snapshot_to`] image taken by an
    /// operator built with the same key positions and `k`. The receiver is
    /// unchanged on error.
    pub fn restore_from_snapshot(&mut self, dec: &mut Decoder) -> Result<(), CodecError> {
        let nk = dec.seq_len(1)?;
        if nk != self.left_key.len() {
            return Err(CodecError::Corrupt("snapshot join-key width mismatch"));
        }
        for i in 0..nk {
            if dec.usize()? != self.left_key[i] {
                return Err(CodecError::Corrupt("snapshot left key positions differ"));
            }
        }
        for i in 0..nk {
            if dec.usize()? != self.right_key[i] {
                return Err(CodecError::Corrupt("snapshot right key positions differ"));
            }
        }
        let left = read_side(dec)?;
        let right = read_side(dec)?;
        let reservoir = ClassicReservoir::restore_from(dec, |d| Ok((d.u64s()?, d.u64s()?)))?;
        if reservoir.capacity() != self.reservoir.capacity() {
            return Err(CodecError::Corrupt("snapshot reservoir capacity mismatch"));
        }
        let results_live = dec.u128()?;
        let computed: u128 = left
            .iter()
            .map(|(k, ls)| {
                let rs = right.get(k).map_or(0, Vec::len);
                (ls.len() as u128) * (rs as u128)
            })
            .sum();
        if computed != results_live {
            return Err(CodecError::Corrupt("snapshot live-result count mismatch"));
        }
        let s = [dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?];
        let repair_rng = RsjRng::restore_state(s)
            .ok_or(CodecError::Corrupt("rng state is the zero fixed point"))?;
        self.left = left;
        self.right = right;
        self.reservoir = reservoir;
        self.results_live = results_live;
        self.repair_rng = repair_rng;
        Ok(())
    }
}

/// Serializes one hash side sorted by key; buckets keep their stored order.
fn put_side(enc: &mut Encoder, side: &FxHashMap<Key, Vec<Vec<Value>>>) {
    let mut entries: Vec<(&Key, &Vec<Vec<Value>>)> = side.iter().collect();
    entries.sort_unstable_by(|a, b| a.0.as_slice().cmp(b.0.as_slice()));
    enc.put_usize(entries.len());
    for (k, bucket) in entries {
        k.encode_to(enc);
        enc.put_usize(bucket.len());
        for t in bucket {
            enc.put_u64s(t);
        }
    }
}

/// Reads back one hash side written by [`put_side`].
fn read_side(dec: &mut Decoder) -> Result<FxHashMap<Key, Vec<Vec<Value>>>, CodecError> {
    let n = dec.seq_len(2)?;
    let mut side = FxHashMap::default();
    for _ in 0..n {
        let k = Key::decode_from(dec)?;
        let nb = dec.seq_len(1)?;
        if nb == 0 {
            return Err(CodecError::Corrupt("empty bucket in snapshot"));
        }
        let mut bucket = Vec::with_capacity(nb);
        for _ in 0..nb {
            bucket.push(dec.u64s()?);
        }
        if side.insert(k, bucket).is_some() {
            return Err(CodecError::Corrupt("duplicate key in side snapshot"));
        }
    }
    Ok(side)
}

/// One uniform draw over the live results: pick a global position in
/// `Σ_key |L_key|·|R_key|` and decode it against the key blocks in the
/// caller-fixed (sorted) order. `O(#distinct keys)`.
fn draw_uniform(
    keys: &[Key],
    left: &FxHashMap<Key, Vec<Vec<Value>>>,
    right: &FxHashMap<Key, Vec<Vec<Value>>>,
    live: u128,
    rng: &mut RsjRng,
) -> Option<(Vec<Value>, Vec<Value>)> {
    if live == 0 {
        return None;
    }
    let mut z = rng.below_u128(live);
    for key in keys {
        let ls = &left[key];
        let rs = match right.get(key) {
            Some(rs) if !ls.is_empty() => rs,
            _ => continue,
        };
        let block = (ls.len() as u128) * (rs.len() as u128);
        if z < block {
            let i = (z / rs.len() as u128) as usize;
            let j = (z % rs.len() as u128) as usize;
            return Some((ls[i].clone(), rs[j].clone()));
        }
        z -= block;
    }
    unreachable!("z < results_live must land in a key block");
}

/// Removes one occurrence of `tuple` from the bucket at `key`, dropping
/// emptied buckets. Returns whether anything was removed.
fn remove_one(side: &mut FxHashMap<Key, Vec<Vec<Value>>>, key: &Key, tuple: &[Value]) -> bool {
    let Some(bucket) = side.get_mut(key) else {
        return false;
    };
    let Some(pos) = bucket.iter().position(|t| t == tuple) else {
        return false;
    };
    bucket.swap_remove(pos);
    if bucket.is_empty() {
        side.remove(key);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_common::FxHashSet;

    #[test]
    fn join_results_complete() {
        let mut shj = SymmetricHashJoin::new(vec![1], vec![0], 100, 1);
        shj.insert_left(&[1, 10]);
        shj.insert_right(&[10, 5]);
        shj.insert_right(&[10, 6]);
        shj.insert_left(&[2, 10]); // matches both rights
        shj.insert_left(&[3, 99]); // no match
        assert_eq!(shj.live_results(), 4);
        let got: FxHashSet<(Vec<u64>, Vec<u64>)> = shj.samples().iter().cloned().collect();
        let expect: FxHashSet<(Vec<u64>, Vec<u64>)> = [
            (vec![1, 10], vec![10, 5]),
            (vec![1, 10], vec![10, 6]),
            (vec![2, 10], vec![10, 5]),
            (vec![2, 10], vec![10, 6]),
        ]
        .into_iter()
        .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn arrival_order_irrelevant_for_results() {
        let run = |order: &[(bool, [u64; 2])]| -> u128 {
            let mut shj = SymmetricHashJoin::new(vec![1], vec![0], 10, 2);
            for &(is_left, t) in order {
                if is_left {
                    shj.insert_left(&t);
                } else {
                    shj.insert_right(&t);
                }
            }
            shj.live_results()
        };
        let a = run(&[(true, [1, 7]), (false, [7, 2]), (true, [3, 7])]);
        let b = run(&[(false, [7, 2]), (true, [3, 7]), (true, [1, 7])]);
        assert_eq!(a, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_restores_byte_identical_turnstile_behavior() {
        let mut shj = SymmetricHashJoin::new(vec![1], vec![0], 4, 11);
        let mut rng = RsjRng::seed_from_u64(23);
        let mut live: Vec<(bool, [u64; 2])> = Vec::new();
        for i in 0..300u64 {
            if i % 4 == 3 && !live.is_empty() {
                let (is_left, t) = live.swap_remove(rng.index(live.len()));
                if is_left {
                    shj.delete_left(&t);
                } else {
                    shj.delete_right(&t);
                }
            } else {
                let is_left = rng.index(2) == 0;
                let t = [rng.below_u64(5), rng.below_u64(5)];
                if is_left {
                    shj.insert_left(&t);
                } else {
                    shj.insert_right(&t);
                }
                live.push((is_left, t));
            }
        }
        let mut e = Encoder::new();
        shj.snapshot_to(&mut e);
        let bytes = e.into_bytes();

        let mut restored = SymmetricHashJoin::new(vec![1], vec![0], 4, 0);
        let mut d = Decoder::new(&bytes);
        restored.restore_from_snapshot(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(restored.samples(), shj.samples());
        assert_eq!(restored.live_results(), shj.live_results());

        // Re-serialization is byte-identical (canonical image).
        let mut e2 = Encoder::new();
        restored.snapshot_to(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);

        // Lockstep continuation; deletes exercise the sorted-key repair
        // draws, which must match step for step.
        for i in 0..200u64 {
            if i % 3 == 2 && !live.is_empty() {
                let (is_left, t) = live.swap_remove(rng.index(live.len()));
                if is_left {
                    assert_eq!(shj.delete_left(&t), restored.delete_left(&t));
                } else {
                    assert_eq!(shj.delete_right(&t), restored.delete_right(&t));
                }
            } else {
                let is_left = rng.index(2) == 0;
                let t = [rng.below_u64(5), rng.below_u64(5)];
                if is_left {
                    shj.insert_left(&t);
                    restored.insert_left(&t);
                } else {
                    shj.insert_right(&t);
                    restored.insert_right(&t);
                }
                live.push((is_left, t));
            }
            assert_eq!(restored.samples(), shj.samples());
            assert_eq!(restored.live_results(), shj.live_results());
        }

        // Mismatched key positions are rejected.
        let mut wrong = SymmetricHashJoin::new(vec![0], vec![1], 4, 0);
        let mut d = Decoder::new(&bytes);
        assert!(wrong.restore_from_snapshot(&mut d).is_err());
    }

    #[test]
    fn composite_keys_join() {
        let mut shj = SymmetricHashJoin::new(vec![0, 1], vec![1, 2], 10, 3);
        shj.insert_left(&[1, 2, 77]);
        shj.insert_right(&[88, 1, 2]);
        shj.insert_right(&[88, 1, 3]); // second key differs
        assert_eq!(shj.live_results(), 1);
    }
}
