#![warn(missing_docs)]

//! Baselines the paper compares against (§6.1).
//!
//! * [`sjoin::SJoin`] — a re-implementation of Zhao et al. \[31\]
//!   ("Efficient join synopsis maintenance for data warehouse", SIGMOD'20),
//!   the state of the art the paper beats. Same framework as `RSJoin`
//!   (per-tuple delta batches fed to a skip-based reservoir), but the index
//!   maintains *exact* delta sizes: every insert recomputes the exact
//!   weights of all matching ancestor items, which is `O(N)` per update in
//!   the worst case — the quadratic blow-up the paper's rounding avoids.
//!   Exact batches contain no dummies, so its reservoir never wastes a stop.
//! * [`sjoin::SJoinOpt`] — SJoin behind the same foreign-key combination
//!   rewrite (`SJoin_opt`).
//! * [`symmetric::SymmetricHashJoin`] — the classical streaming two-table
//!   join \[2\] paired with a classic reservoir; dominated by SJoin in \[31\]
//!   but kept as the simplest correct comparator.
//! * [`naive::NaiveRebuild`] — recompute `Q(R_i)` and redraw the sample at
//!   every step; the `O(N²)`-and-worse strawman of §1, used as ground truth
//!   in tests.
//! * [`fenwick::Fenwick`] — growable binary indexed tree over `u128`
//!   weights with prefix search, SJoin's positional-access workhorse.
//!
//! Every baseline implements the [`rsj_core::JoinSampler`] executor
//! interface (see [`exec`]), so tests, benches and examples drive them
//! through the same loop as the paper's engines.

pub mod exec;
pub mod fenwick;
pub mod naive;
pub mod sjoin;
pub mod symmetric;

pub use exec::SymmetricSampler;
pub use fenwick::Fenwick;
pub use naive::NaiveRebuild;
pub use sjoin::{SJoin, SJoinIndex, SJoinOpt};
pub use symmetric::SymmetricHashJoin;
