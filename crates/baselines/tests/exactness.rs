//! SJoin exactness at depth: counts, delta sizes and positional retrieval
//! over 4-relation chains and stars, with composite keys — the structures
//! QX exercises.

use rsj_baselines::{SJoin, SJoinIndex};
use rsj_common::rng::RsjRng;
use rsj_common::{FxHashSet, Value};
use rsj_query::{Query, QueryBuilder};

fn line4() -> Query {
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["A", "B"]);
    qb.relation("G2", &["B", "C"]);
    qb.relation("G3", &["C", "D"]);
    qb.relation("G4", &["D", "E"]);
    qb.build().unwrap()
}

fn brute_line4(tuples: &[(usize, [Value; 2])]) -> FxHashSet<Vec<Value>> {
    let mut out = FxHashSet::default();
    let by_rel = |r: usize| tuples.iter().filter(move |(rr, _)| *rr == r);
    for (_, t1) in by_rel(0) {
        for (_, t2) in by_rel(1) {
            if t1[1] != t2[0] {
                continue;
            }
            for (_, t3) in by_rel(2) {
                if t2[1] != t3[0] {
                    continue;
                }
                for (_, t4) in by_rel(3) {
                    if t3[1] == t4[0] {
                        out.insert(vec![t1[0], t1[1], t2[1], t3[1], t4[1]]);
                    }
                }
            }
        }
    }
    out
}

#[test]
fn line4_total_and_delta_enumeration_exact() {
    let mut rng = RsjRng::seed_from_u64(1);
    let mut idx = SJoinIndex::new(line4()).unwrap();
    let mut tuples = Vec::new();
    let mut enumerated: FxHashSet<Vec<Value>> = FxHashSet::default();
    for _ in 0..250 {
        let rel = rng.index(4);
        let t = [rng.below_u64(4), rng.below_u64(4)];
        if let Some(tid) = idx.insert(rel, &t) {
            tuples.push((rel, t));
            let size = idx.delta_size(rel, tid);
            for z in 0..size {
                let r = idx.delta_retrieve(rel, tid, z);
                assert!(
                    enumerated.insert(idx.materialize(&r)),
                    "duplicate across deltas"
                );
            }
        }
    }
    let truth = brute_line4(&tuples);
    assert_eq!(enumerated, truth);
    assert_eq!(idx.total_results(), truth.len() as u128);
}

#[test]
fn composite_key_join_exact() {
    // QX-style: R(I, T, M) ⋈ S(I, T, C) on the composite (I, T).
    let mut qb = QueryBuilder::new();
    qb.relation("R", &["I", "T", "M"]);
    qb.relation("S", &["I", "T", "C"]);
    let q = qb.build().unwrap();
    let mut idx = SJoinIndex::new(q).unwrap();
    let mut rng = RsjRng::seed_from_u64(3);
    let mut rs: Vec<[Value; 3]> = Vec::new();
    let mut ss: Vec<[Value; 3]> = Vec::new();
    for _ in 0..200 {
        let t = [rng.below_u64(4), rng.below_u64(4), rng.below_u64(50)];
        if rng.index(2) == 0 {
            if idx.insert(0, &t).is_some() {
                rs.push(t);
            }
        } else if idx.insert(1, &t).is_some() {
            ss.push(t);
        }
    }
    let mut truth = 0u128;
    for a in &rs {
        for b in &ss {
            if a[0] == b[0] && a[1] == b[1] {
                truth += 1;
            }
        }
    }
    assert_eq!(idx.total_results(), truth);
}

#[test]
fn sjoin_reservoir_prefix_validity() {
    let q = line4();
    let mut rng = RsjRng::seed_from_u64(5);
    let mut sj = SJoin::new(q, 1 << 22, 1).unwrap();
    let mut tuples = Vec::new();
    for step in 0..200 {
        let rel = rng.index(4);
        let t = [rng.below_u64(3), rng.below_u64(3)];
        if sj.process(rel, &t).is_some() {
            tuples.push((rel, t));
        }
        if step % 40 == 39 {
            let truth = brute_line4(&tuples);
            let got: FxHashSet<Vec<Value>> = sj.samples().iter().cloned().collect();
            assert_eq!(got, truth, "prefix at {step}");
        }
    }
}

#[test]
fn star3_hub_explosion_exact() {
    // One hub with n tuples per arm: join size n^3 plus per-arm products —
    // exact counters must keep up with u128 magnitudes.
    let mut qb = QueryBuilder::new();
    qb.relation("G1", &["H", "B1"]);
    qb.relation("G2", &["H", "B2"]);
    qb.relation("G3", &["H", "B3"]);
    let q = qb.build().unwrap();
    let mut idx = SJoinIndex::new(q).unwrap();
    let n = 40u64;
    for i in 0..n {
        idx.insert(0, &[7, i]);
        idx.insert(1, &[7, i]);
        idx.insert(2, &[7, i]);
    }
    assert_eq!(idx.total_results(), (n as u128).pow(3));
}
