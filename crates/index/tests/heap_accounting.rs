//! Pins the index's structural heap accounting to the *allocator's* view.
//!
//! `fig11_memory` reports `heap_size()` instead of RSS, so the numbers are
//! only honest if the capacity-based estimates track what the structures
//! actually allocate. This test swaps in a counting global allocator and
//! asserts that the growth `heap_size()` reports between two stream
//! checkpoints matches the net bytes the allocator handed out, within 10%.
//!
//! Growth (not absolute size) is compared so one-time construction state —
//! query metadata, rooted trees, projection plans, test scaffolding — and
//! small unaccounted scratch (propagation pools) cancel out.

use rsj_index::{DynamicIndex, IndexOptions};
use rsj_query::QueryBuilder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};

static NET_BYTES: AtomicIsize = AtomicIsize::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`, only adding bookkeeping.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        NET_BYTES.fetch_add(
            new_size as isize - layout.size() as isize,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Deterministic pseudo-random stream without touching the allocator.
struct Lcg(u64);

impl Lcg {
    fn next_below(&mut self, n: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % n
    }
}

#[test]
fn reported_heap_growth_tracks_allocator_within_10_percent() {
    let mut qb = QueryBuilder::new();
    qb.relation("Ra", &["X", "Y"]);
    qb.relation("Rb", &["Y", "Z", "W"]); // groupable middle: grouped arena on the path
    qb.relation("Rc", &["W", "U"]);
    let mut idx = DynamicIndex::new(qb.build().unwrap(), IndexOptions::default()).unwrap();

    let mut rng = Lcg(0xFEED_F00D);
    let feed = |idx: &mut DynamicIndex, n: usize, rng: &mut Lcg| {
        for _ in 0..n {
            let rel = rng.next_below(3) as usize;
            let (a, b, c) = (
                rng.next_below(5000),
                rng.next_below(5000),
                rng.next_below(200),
            );
            match rel {
                1 => idx.insert(1, &[c, a, b % 200]),
                r => idx.insert(r, &[a, c]),
            };
        }
    };

    // Warm up: let every map/arena/pool get past its tiny-size regime.
    feed(&mut idx, 20_000, &mut rng);

    let m1 = NET_BYTES.load(Ordering::Relaxed);
    let h1 = idx.heap_size() as isize;
    feed(&mut idx, 60_000, &mut rng);
    let m2 = NET_BYTES.load(Ordering::Relaxed);
    let h2 = idx.heap_size() as isize;

    let actual = m2 - m1;
    let reported = h2 - h1;
    assert!(actual > 0, "stream should grow the heap (actual {actual})");
    let err = (reported - actual).abs() as f64 / actual as f64;
    assert!(
        err <= 0.10,
        "heap accounting drifted {:.1}% from the allocator: reported growth {reported}, actual {actual}",
        err * 100.0
    );
}
