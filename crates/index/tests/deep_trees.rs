//! Deeper-tree index tests: line-4/line-5 and star-4 exercise multi-level
//! propagation cascades and multi-child radix decomposition harder than
//! the in-module line-3 tests.

use rsj_common::rng::RsjRng;
use rsj_common::{FxHashSet, Value};
use rsj_index::{DynamicIndex, FullSampler, IndexOptions};
use rsj_query::{Query, QueryBuilder};

fn line_query(k: usize) -> Query {
    let mut qb = QueryBuilder::new();
    for i in 0..k {
        qb.relation(
            &format!("G{i}"),
            &[&format!("A{i}"), &format!("A{}", i + 1)],
        );
    }
    qb.build().unwrap()
}

fn star_query(k: usize) -> Query {
    let mut qb = QueryBuilder::new();
    for i in 0..k {
        qb.relation(&format!("G{i}"), &["HUB", &format!("B{i}")]);
    }
    qb.build().unwrap()
}

/// Brute-force join over binary relations described by (rel, [a, b]).
fn brute_join(q: &Query, tuples: &[(usize, [Value; 2])]) -> FxHashSet<Vec<Value>> {
    let mut out = FxHashSet::default();
    let nrel = q.num_relations();
    let mut stack: Vec<(usize, Vec<Option<Value>>)> = vec![(0, vec![None; q.num_attrs()])];
    while let Some((rel, partial)) = stack.pop() {
        if rel == nrel {
            out.insert(partial.into_iter().map(Option::unwrap).collect());
            continue;
        }
        let attrs = &q.relation(rel).attrs;
        't: for &(r, t) in tuples.iter().filter(|(r, _)| *r == rel) {
            let _ = r;
            let mut next = partial.clone();
            for (pos, &a) in attrs.iter().enumerate() {
                match next[a] {
                    Some(v) if v != t[pos] => continue 't,
                    _ => next[a] = Some(t[pos]),
                }
            }
            stack.push((rel + 1, next));
        }
    }
    out
}

fn check_full_enumeration(q: &Query, tuples: &[(usize, [Value; 2])], grouping: bool) {
    let mut idx = DynamicIndex::new(q.clone(), IndexOptions { grouping }).unwrap();
    let mut accepted = Vec::new();
    let mut delta_reals = 0usize;
    for &(rel, t) in tuples {
        if let Some(tid) = idx.insert(rel, &t) {
            accepted.push((rel, t));
            let b = idx.delta_batch(rel, tid);
            for z in 0..b.size() {
                if b.retrieve(z).is_some() {
                    delta_reals += 1;
                }
            }
        }
    }
    let truth = brute_join(q, &accepted);
    assert_eq!(delta_reals, truth.len(), "delta partition");
    // Full-array enumeration through the sampler's tree must also match.
    let sampler = FullSampler::default();
    let size = sampler.implicit_size(&idx);
    assert!(size >= truth.len() as u128);
    let mut rng = RsjRng::seed_from_u64(1);
    if !truth.is_empty() {
        // Sampling repeatedly covers the support.
        let mut seen: FxHashSet<Vec<Value>> = FxHashSet::default();
        for _ in 0..truth.len() * 60 {
            if let Some(r) = sampler.sample(&idx, &mut rng) {
                seen.insert(idx.materialize(&r));
            }
        }
        assert_eq!(seen, truth, "sampler support");
    }
}

#[test]
fn line4_random_instances() {
    let q = line_query(4);
    for seed in 0..4 {
        let mut rng = RsjRng::seed_from_u64(seed);
        let tuples: Vec<(usize, [Value; 2])> = (0..120)
            .map(|_| (rng.index(4), [rng.below_u64(4), rng.below_u64(4)]))
            .collect();
        check_full_enumeration(&q, &tuples, seed % 2 == 0);
    }
}

#[test]
fn line5_random_instances() {
    let q = line_query(5);
    let mut rng = RsjRng::seed_from_u64(9);
    let tuples: Vec<(usize, [Value; 2])> = (0..140)
        .map(|_| (rng.index(5), [rng.below_u64(3), rng.below_u64(3)]))
        .collect();
    check_full_enumeration(&q, &tuples, false);
}

#[test]
fn star4_random_instances() {
    let q = star_query(4);
    for seed in 0..3 {
        let mut rng = RsjRng::seed_from_u64(20 + seed);
        let tuples: Vec<(usize, [Value; 2])> = (0..100)
            .map(|_| (rng.index(4), [rng.below_u64(3), rng.below_u64(6)]))
            .collect();
        check_full_enumeration(&q, &tuples, false);
    }
}

#[test]
fn doubling_cascade_stays_consistent() {
    // Adversarial: one hub key whose counts double many times, forcing
    // repeated propagation through a 4-node chain.
    let q = line_query(4);
    let mut idx = DynamicIndex::new(q.clone(), IndexOptions::default()).unwrap();
    let mut tuples = Vec::new();
    // Chain skeleton: G1(x,0) G2(0,0) G3(0,0) G4(0,y).
    for i in 0..64u64 {
        for (rel, t) in [(0, [i, 0]), (3, [0, i])] {
            if idx.insert(rel, &t).is_some() {
                tuples.push((rel, t));
            }
        }
    }
    for (rel, t) in [(1usize, [0u64, 0u64]), (2, [0, 0])] {
        if idx.insert(rel, &t).is_some() {
            tuples.push((rel, t));
        }
    }
    let truth = brute_join(&q, &tuples);
    assert_eq!(truth.len(), 64 * 64);
    let bound = FullSampler::default().implicit_size(&idx);
    assert!(bound >= truth.len() as u128);
    assert!(bound <= truth.len() as u128 * 32, "bound {bound}");
    // Amortized propagation: total loops must be O(N log N)-ish, far from
    // quadratic (N=130, quadratic would be ~17k per tree).
    let loops = idx.stats().propagation_loops;
    assert!(loops < 8_000, "propagation loops {loops}");
}

#[test]
fn update_cost_logarithmic_amortized_on_skew() {
    // Paper Theorem 4.2(1): amortized O(log N). Feed N tuples hitting one
    // hot key; propagation loop total must grow ~N log N, not N^2.
    let q = line_query(3);
    let mut idx = DynamicIndex::new(q, IndexOptions::default()).unwrap();
    let n = 3000u64;
    for i in 0..n {
        idx.insert(0, &[i, 0]);
        idx.insert(1, &[0, 0]);
        idx.insert(2, &[0, i]);
    }
    let loops = idx.stats().propagation_loops;
    let nlogn = (3 * n) as f64 * (3.0 * n as f64).log2();
    assert!(
        (loops as f64) < 12.0 * nlogn,
        "loops {loops} vs N log N {nlogn}"
    );
}
