//! The dynamic index: insertion and upward propagation (Algorithms 7, 10).
//!
//! One `TreeState` per rooted view of the join tree (the paper maintains
//! "all the rooted trees where r ranges over all nodes"; the tree rooted at
//! `r` serves the delta batches of tuples inserted into `R_r`). A tuple
//! insert touches every tree: it registers the tuple (or its `ē` group
//! tuple) in its node's key group and child indexes, computes its weight
//! level from the children's rounded counts, and — only when its group's
//! rounded count `cnt~` doubles — re-levels the matching items of the parent
//! node, recursing upward. The number of executions of that re-leveling
//! loop is the quantity reported in the paper's optimization table
//! (Figure 9); [`IndexStats::propagation_loops`] counts it.

use crate::state::{ItemId, NodeState};
use rsj_common::pow2::level_of;
use rsj_common::{HeapSize, Key, TupleId, Value};
use rsj_query::{Query, RootedTree};
use rsj_storage::Database;

/// Construction options.
#[derive(Clone, Copy, Debug)]
pub struct IndexOptions {
    /// Enable the §4.4 grouping optimization on groupable nodes.
    pub grouping: bool,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions { grouping: true }
    }
}

/// Instrumentation counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexStats {
    /// Tuples inserted (accepted; duplicates excluded).
    pub inserts: u64,
    /// Executions of the propagation loop body (Algorithm 7 lines 9–11 /
    /// Algorithm 10 lines 11–15) — the Figure 9 metric.
    pub propagation_loops: u64,
    /// Number of `cnt~` doublings observed.
    pub tilde_changes: u64,
}

/// One rooted tree's worth of index state.
#[derive(Clone, Debug)]
pub(crate) struct TreeState {
    pub tree: RootedTree,
    /// Indexed by relation id.
    pub nodes: Vec<NodeState>,
}

/// The dynamic sampling index over an acyclic join (Theorem 4.2).
#[derive(Clone, Debug)]
pub struct DynamicIndex {
    query: Query,
    db: Database,
    pub(crate) trees: Vec<TreeState>,
    options: IndexOptions,
    stats: IndexStats,
}

/// Errors from index construction.
#[derive(Clone, Debug)]
pub enum IndexError {
    /// The query is cyclic; use the GHD driver in `rsj-core`.
    Cyclic,
    /// Key or `ē` arity exceeded [`rsj_common::value::MAX_KEY_ARITY`].
    KeyTooWide(String),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Cyclic => write!(f, "query is cyclic; decompose it with a GHD first"),
            IndexError::KeyTooWide(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl DynamicIndex {
    /// Builds an (empty) index for an acyclic query.
    pub fn new(query: Query, options: IndexOptions) -> Result<DynamicIndex, IndexError> {
        let jt = rsj_query::JoinTree::build(&query).ok_or(IndexError::Cyclic)?;
        let rooted = rsj_query::rooted::all_rooted_trees(&query, &jt)
            .map_err(|e| IndexError::KeyTooWide(e.to_string()))?;
        let mut db = Database::new();
        for r in query.relations() {
            db.add_relation(r.name.clone(), r.attrs.len());
        }
        let trees = rooted
            .into_iter()
            .map(|tree| {
                let nodes = (0..query.num_relations())
                    .map(|rel| {
                        let info = tree.node(rel);
                        let grouped = options.grouping && info.groupable;
                        if grouped && info.ebar_positions.len() > rsj_common::value::MAX_KEY_ARITY {
                            // Fall back to ungrouped rather than failing:
                            // grouping is an optimization.
                            return NodeState::new(info.children.len(), false);
                        }
                        NodeState::new(info.children.len(), grouped)
                    })
                    .collect();
                TreeState { tree, nodes }
            })
            .collect();
        Ok(DynamicIndex {
            query,
            db,
            trees,
            options,
            stats: IndexStats::default(),
        })
    }

    /// The query this index serves.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The underlying tuple storage.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Construction options.
    pub fn options(&self) -> IndexOptions {
        self.options
    }

    /// Inserts a tuple into relation `rel`; returns its id, or `None` for a
    /// duplicate (set semantics — no index work happens).
    ///
    /// This is the paper's `IndexUpdate` entry point: `O(log N)` amortized.
    pub fn insert(&mut self, rel: usize, tuple: &[Value]) -> Option<TupleId> {
        let tid = self.db.relation_mut(rel).insert(tuple)?;
        self.stats.inserts += 1;
        for ti in 0..self.trees.len() {
            let (stats_pl, stats_tc) = {
                let ts = &mut self.trees[ti];
                let mut pl = 0u64;
                let mut tc = 0u64;
                tree_insert(ts, &self.db, rel, tid, &mut pl, &mut tc);
                (pl, tc)
            };
            self.stats.propagation_loops += stats_pl;
            self.stats.tilde_changes += stats_tc;
        }
        Some(tid)
    }

    /// Estimated heap bytes of the whole index (structures + storage).
    pub fn heap_size(&self) -> usize {
        self.db.heap_size()
            + self
                .trees
                .iter()
                .map(|t| {
                    t.nodes.iter().map(HeapSize::heap_size).sum::<usize>()
                        + t.nodes.capacity() * std::mem::size_of::<NodeState>()
                })
                .sum::<usize>()
    }
}

/// Inserts tuple `tid` of relation `rel` into one tree's state.
fn tree_insert(
    ts: &mut TreeState,
    db: &Database,
    rel: usize,
    tid: TupleId,
    pl: &mut u64,
    tc: &mut u64,
) {
    let grouped = ts.nodes[rel].grouped;
    if grouped {
        grouped_insert(ts, db, rel, tid, pl, tc);
    } else {
        plain_insert(ts, db, rel, tid, pl, tc);
    }
}

fn plain_insert(
    ts: &mut TreeState,
    db: &Database,
    rel: usize,
    tid: TupleId,
    pl: &mut u64,
    tc: &mut u64,
) {
    let tuple = db.relation(rel).tuple(tid);
    let info = ts.tree.node(rel);
    let group_key = Key::project(tuple, &info.key_positions);
    let child_keys: Vec<Key> = info
        .child_key_positions
        .iter()
        .map(|ps| Key::project(tuple, ps))
        .collect();
    // Weight level = Σ child tilde levels (None if any child group empty).
    let level = sum_child_levels(ts, rel, &child_keys);
    let ns = &mut ts.nodes[rel];
    for (ci, k) in child_keys.iter().enumerate() {
        ns.child_indexes[ci].entry(*k).or_default().push(tid);
    }
    let g = ns.group_for(group_key);
    let old_tilde = ns.group(g).tilde_level();
    ns.place_new_item(tid, g, level);
    let new_tilde = ns.group(g).tilde_level();
    if old_tilde != new_tilde {
        *tc += 1;
        propagate(ts, db, rel, group_key, pl, tc);
    }
}

fn grouped_insert(
    ts: &mut TreeState,
    db: &Database,
    rel: usize,
    tid: TupleId,
    pl: &mut u64,
    tc: &mut u64,
) {
    let ebar = {
        let tuple = db.relation(rel).tuple(tid);
        let info = ts.tree.node(rel);
        Key::project(tuple, &info.ebar_positions)
    };
    let (gt, created) = ts.nodes[rel].grouped_data.intern(ebar);
    ts.nodes[rel].grouped_data.feq[gt as usize] += 1;
    ts.nodes[rel].grouped_data.base[gt as usize].push(tid);

    let info = ts.tree.node(rel);
    let group_key = Key::project(ebar.as_slice(), &info.key_positions_in_ebar);
    let child_keys: Vec<Key> = info
        .child_key_positions_in_ebar
        .iter()
        .map(|ps| Key::project(ebar.as_slice(), ps))
        .collect();
    let feq = ts.nodes[rel].grouped_data.feq[gt as usize];
    let feq_level = level_of(feq as u128).expect("feq >= 1");
    let level = sum_child_levels(ts, rel, &child_keys).map(|cl| cl + feq_level);

    let ns = &mut ts.nodes[rel];
    if created {
        for (ci, k) in child_keys.iter().enumerate() {
            ns.child_indexes[ci].entry(*k).or_default().push(gt);
        }
        let g = ns.group_for(group_key);
        let old_tilde = ns.group(g).tilde_level();
        ns.place_new_item(gt, g, level);
        let new_tilde = ns.group(g).tilde_level();
        if old_tilde != new_tilde {
            *tc += 1;
            propagate(ts, db, rel, group_key, pl, tc);
        }
    } else {
        // feq grew; re-level only if feq~ changed the total.
        let g = ns.item_pos[gt as usize].group;
        if ns.item_pos[gt as usize].level != level {
            let old_tilde = ns.group(g).tilde_level();
            ns.move_item(gt, level);
            let new_tilde = ns.group(g).tilde_level();
            if old_tilde != new_tilde {
                *tc += 1;
                propagate(ts, db, rel, group_key, pl, tc);
            }
        }
    }
}

/// Sum of the children's `cnt~` levels for an item's child keys;
/// `None` when any child group is missing or empty (weight 0).
fn sum_child_levels(ts: &TreeState, rel: usize, child_keys: &[Key]) -> Option<u32> {
    let info = ts.tree.node(rel);
    let mut sum = 0u32;
    for (ci, k) in child_keys.iter().enumerate() {
        let child_rel = info.children[ci];
        sum += ts.nodes[child_rel].tilde_level_of(k)?;
    }
    Some(sum)
}

/// Recomputes the weight level of an existing item of node `rel`.
fn compute_item_level(ts: &TreeState, db: &Database, rel: usize, item: ItemId) -> Option<u32> {
    let info = ts.tree.node(rel);
    let ns = &ts.nodes[rel];
    if ns.grouped {
        let ebar = ns.grouped_data.ebar_vals[item as usize];
        let child_keys: Vec<Key> = info
            .child_key_positions_in_ebar
            .iter()
            .map(|ps| Key::project(ebar.as_slice(), ps))
            .collect();
        let feq = ns.grouped_data.feq[item as usize];
        let feq_level = level_of(feq as u128)?;
        sum_child_levels(ts, rel, &child_keys).map(|cl| cl + feq_level)
    } else {
        let tuple = db.relation(rel).tuple(item);
        let child_keys: Vec<Key> = info
            .child_key_positions
            .iter()
            .map(|ps| Key::project(tuple, ps))
            .collect();
        sum_child_levels(ts, rel, &child_keys)
    }
}

/// The group of `(child_rel, key)` changed its `cnt~`: re-level every item
/// of the parent whose child projection matches, and recurse on parent
/// groups whose own `cnt~` changed (Algorithm 7 lines 8–11).
fn propagate(
    ts: &mut TreeState,
    db: &Database,
    child_rel: usize,
    key: Key,
    pl: &mut u64,
    tc: &mut u64,
) {
    let Some(parent) = ts.tree.node(child_rel).parent else {
        return; // root: full-query count updated, nothing above
    };
    let ci = ts
        .tree
        .node(parent)
        .children
        .iter()
        .position(|&c| c == child_rel)
        .expect("child registered in parent");
    // Clone the matching item list: we mutate the parent's buckets while
    // walking it. Cost is proportional to the work done anyway.
    let items: Vec<ItemId> = match ts.nodes[parent].child_indexes[ci].get(&key) {
        Some(v) => v.clone(),
        None => return,
    };
    // Lazily capture each touched group's cnt~ before this batch.
    let mut touched: Vec<(u32, Key, Option<u32>)> = Vec::new();
    for item in items {
        *pl += 1;
        let new_level = compute_item_level(ts, db, parent, item);
        let pos = ts.nodes[parent].item_pos[item as usize];
        if pos.level != new_level {
            if !touched.iter().any(|(g, _, _)| *g == pos.group) {
                let old_tilde = ts.nodes[parent].group(pos.group).tilde_level();
                let gkey = group_key_of(ts, db, parent, item);
                touched.push((pos.group, gkey, old_tilde));
            }
            ts.nodes[parent].move_item(item, new_level);
        }
    }
    for (g, gkey, old_tilde) in touched {
        let new_tilde = ts.nodes[parent].group(g).tilde_level();
        if new_tilde != old_tilde {
            *tc += 1;
            propagate(ts, db, parent, gkey, pl, tc);
        }
    }
}

/// The `key(e)` value of an item's group.
fn group_key_of(ts: &TreeState, db: &Database, rel: usize, item: ItemId) -> Key {
    let info = ts.tree.node(rel);
    let ns = &ts.nodes[rel];
    if ns.grouped {
        let ebar = ns.grouped_data.ebar_vals[item as usize];
        Key::project(ebar.as_slice(), &info.key_positions_in_ebar)
    } else {
        Key::project(db.relation(rel).tuple(item), &info.key_positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_query::QueryBuilder;

    fn line3_index(grouping: bool) -> DynamicIndex {
        let mut qb = QueryBuilder::new();
        qb.relation("G1", &["A", "B"]);
        qb.relation("G2", &["B", "C"]);
        qb.relation("G3", &["C", "D"]);
        DynamicIndex::new(qb.build().unwrap(), IndexOptions { grouping }).unwrap()
    }

    /// Exhaustively verify one tree's counts against brute-force recomputed
    /// sub-join counts.
    fn check_tree_counts(idx: &DynamicIndex, root: usize) {
        let ts = &idx.trees[root];
        let db = idx.database();
        // For each node and each group key, cnt must equal the sum over
        // items of Π child cnt~ (· feq~ for grouped nodes).
        for rel in 0..idx.query().num_relations() {
            let ns = &ts.nodes[rel];
            for (key, &g) in ns.groups.iter() {
                let group = ns.group(g);
                let mut expect = 0u128;
                let mut count_item = |item: ItemId| {
                    let lvl = compute_item_level(ts, db, rel, item);
                    if let Some(l) = lvl {
                        let w = 1u128 << l;
                        let fw = if ns.grouped {
                            // weight must include feq~ — already in level
                            w
                        } else {
                            w
                        };
                        expect += fw;
                    }
                };
                for b in &group.buckets {
                    for &it in &b.items {
                        count_item(it);
                        // Stored level must match recomputed level.
                        assert_eq!(
                            ts.nodes[rel].item_pos[it as usize].level,
                            compute_item_level(ts, db, rel, it),
                            "stale level rel={rel} item={it} key={key}"
                        );
                    }
                }
                for &it in &group.zero {
                    count_item(it);
                    assert_eq!(
                        compute_item_level(ts, db, rel, it),
                        None,
                        "zero-list item has weight rel={rel} item={it}"
                    );
                }
                assert_eq!(group.cnt, expect, "cnt mismatch rel={rel} key={key}");
            }
        }
    }

    #[test]
    fn single_inserts_build_consistent_counts() {
        let mut idx = line3_index(false);
        idx.insert(0, &[1, 10]);
        idx.insert(1, &[10, 20]);
        idx.insert(2, &[20, 30]);
        for root in 0..3 {
            check_tree_counts(&idx, root);
        }
        // Tree rooted at G1: its single tuple's level = cnt~ of G2 subtree.
        // G2's group for B=10 has one tuple whose level = cnt~ of G3's C=20
        // group = 1 (level 0). So G1's item level = 0 (weight 1): one join
        // result, no dummies.
        let ts = &idx.trees[0];
        let root_group = ts.nodes[0].group(0);
        assert_eq!(root_group.cnt, 1);
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut idx = line3_index(false);
        assert!(idx.insert(0, &[1, 2]).is_some());
        assert!(idx.insert(0, &[1, 2]).is_none());
        assert_eq!(idx.stats().inserts, 1);
    }

    #[test]
    fn random_inserts_keep_invariants() {
        use rsj_common::rng::RsjRng;
        let mut rng = RsjRng::seed_from_u64(42);
        for grouping in [false, true] {
            let mut idx = line3_index(grouping);
            for _ in 0..600 {
                let rel = rng.index(3);
                let a = rng.below_u64(12);
                let b = rng.below_u64(12);
                idx.insert(rel, &[a, b]);
            }
            for root in 0..3 {
                check_tree_counts(&idx, root);
            }
        }
    }

    #[test]
    fn root_group_counts_bound_join_size() {
        // Root group cnt must be >= true join size (it's cnt with children
        // rounded up) for every rooted tree.
        use rsj_common::rng::RsjRng;
        let mut rng = RsjRng::seed_from_u64(7);
        let mut idx = line3_index(false);
        let mut tuples: Vec<(usize, Vec<u64>)> = Vec::new();
        for _ in 0..300 {
            let rel = rng.index(3);
            let t = vec![rng.below_u64(8), rng.below_u64(8)];
            if idx.insert(rel, &t).is_some() {
                tuples.push((rel, t));
            }
        }
        // Brute-force join size.
        let mut true_size = 0u128;
        for (r1, t1) in tuples.iter().filter(|(r, _)| *r == 0) {
            for (r2, t2) in tuples.iter().filter(|(r, _)| *r == 1) {
                for (r3, t3) in tuples.iter().filter(|(r, _)| *r == 2) {
                    let _ = (r1, r2, r3);
                    if t1[1] == t2[0] && t2[1] == t3[0] {
                        true_size += 1;
                    }
                }
            }
        }
        for root in 0..3 {
            let ts = &idx.trees[root];
            let ns = &ts.nodes[root];
            if let Some(g) = ns.group_id(&Key::EMPTY) {
                let cnt = ns.group(g).cnt;
                assert!(
                    cnt >= true_size,
                    "root {root}: cnt {cnt} < true {true_size}"
                );
                // Lemma 4.4-style bound: cnt <= 2^{2|T|} * true (loose).
                if true_size > 0 {
                    assert!(
                        cnt <= true_size * 64,
                        "root {root}: cnt {cnt} too loose vs {true_size}"
                    );
                }
            } else {
                assert_eq!(true_size, 0);
            }
        }
    }

    #[test]
    fn grouping_reduces_propagation() {
        // Example 4.5 shape: Ra(X,Y) ⋈ Rb(Y,Z,W) ⋈ Rc(W,U). Rb is
        // groupable; inserting many Ra tuples with one Y value must
        // propagate through groups, not base tuples.
        let build = |grouping: bool| {
            let mut qb = QueryBuilder::new();
            qb.relation("Ra", &["X", "Y"]);
            qb.relation("Rb", &["Y", "Z", "W"]);
            qb.relation("Rc", &["W", "U"]);
            DynamicIndex::new(qb.build().unwrap(), IndexOptions { grouping }).unwrap()
        };
        let feed = |idx: &mut DynamicIndex| {
            // Many Rb tuples sharing (Y=1, W=2) with distinct Z.
            for z in 0..50u64 {
                idx.insert(1, &[1, z, 2]);
            }
            idx.insert(2, &[2, 7]);
            // Ra degree doubling on Y=1 forces repeated propagation.
            for x in 0..64u64 {
                idx.insert(0, &[x, 1]);
            }
            idx.stats().propagation_loops
        };
        let mut plain = build(false);
        let mut grouped = build(true);
        let loops_plain = feed(&mut plain);
        let loops_grouped = feed(&mut grouped);
        assert!(
            loops_grouped < loops_plain,
            "grouped {loops_grouped} !< plain {loops_plain}"
        );
    }

    #[test]
    fn cyclic_query_rejected() {
        let mut qb = QueryBuilder::new();
        qb.relation("R1", &["X", "Y"]);
        qb.relation("R2", &["Y", "Z"]);
        qb.relation("R3", &["Z", "X"]);
        assert!(matches!(
            DynamicIndex::new(qb.build().unwrap(), IndexOptions::default()),
            Err(IndexError::Cyclic)
        ));
    }

    #[test]
    fn heap_size_monotone() {
        let mut idx = line3_index(true);
        let before = idx.heap_size();
        for i in 0..200u64 {
            idx.insert(0, &[i, i % 5]);
            idx.insert(1, &[i % 5, i % 7]);
            idx.insert(2, &[i % 7, i]);
        }
        assert!(idx.heap_size() > before);
    }

    #[test]
    fn star_query_counts() {
        // Star-3: G1(A,B1), G2(A,B2), G3(A,B3); root-group cnt of the tree
        // rooted at G1 must be Π cnt~ per hub value summed over G1 tuples.
        let mut qb = QueryBuilder::new();
        qb.relation("G1", &["A", "B1"]);
        qb.relation("G2", &["A", "B2"]);
        qb.relation("G3", &["A", "B3"]);
        let mut idx = DynamicIndex::new(qb.build().unwrap(), IndexOptions::default()).unwrap();
        // Hub 5: 3 G2 tuples (cnt~ 4), 2 G3 tuples (cnt~ 2), 1 G1 tuple.
        for b in 0..3u64 {
            idx.insert(1, &[5, b]);
        }
        for b in 0..2u64 {
            idx.insert(2, &[5, b]);
        }
        idx.insert(0, &[5, 0]);
        for root in 0..3 {
            check_tree_counts(&idx, root);
        }
        // Depending on the join-tree shape GYO picked, the root group count
        // is a product of rounded counts along the tree — at least the true
        // join size 6, at most 8*2 = 16 for any shape.
        let ts = &idx.trees[0];
        let cnt = ts.nodes[0]
            .group(ts.nodes[0].group_id(&Key::EMPTY).unwrap())
            .cnt;
        assert!((6..=16).contains(&cnt), "cnt={cnt}");
    }
}
