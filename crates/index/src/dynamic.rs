//! The dynamic index: insertion and upward propagation (Algorithms 7, 10).
//!
//! The paper maintains "all the rooted trees where r ranges over all
//! nodes"; the tree rooted at `r` serves the delta batches of tuples
//! inserted into `R_r`. The key structural observation this implementation
//! exploits: a node's per-tree state — its `key(e)` groups, weight
//! buckets, child indexes — depends only on **which neighbor is its
//! parent**, not on which relation the tree is rooted at. Two rooted trees
//! that orient node `e` the same way hold byte-identical copies of `e`'s
//! state. So instead of `n` trees × `n` nodes, the index keeps one
//! [`NodeState`] per distinct *(node, parent)* orientation — `deg(e) + 1`
//! configurations per node, `3n - 2` in total — and each rooted tree is
//! just a view (`rel → config`) over the shared pool. An insert updates
//! `deg(rel) + 1` configurations instead of `n` tree copies, and a
//! propagation cascade runs once instead of once per tree that shares the
//! orientation.
//!
//! A tuple insert registers the tuple (or its `ē` group tuple) in each of
//! its relation's configurations, computes its weight level from the
//! children's rounded counts, and — only when its group's rounded count
//! `cnt~` doubles — re-levels the matching items of every parent
//! configuration, recursing upward. The number of executions of that
//! re-leveling loop is the quantity reported in the paper's optimization
//! table (Figure 9); [`IndexStats::propagation_loops`] counts it (once
//! per shared configuration, not once per rooted tree).
//!
//! # Hash-once inserts
//!
//! The same tuple is projected onto only a handful of *distinct*
//! attribute sets across all configurations (a `key(e)` of one
//! orientation is a `key(c)` of another; grouped nodes' key/child
//! projections factor through `ē`). At construction, a projection plan
//! deduplicates those position sets per relation; per insert, a reusable
//! scratch computes each distinct projection's [`Key`] and fx hash
//! exactly once, and every table touched afterwards — child indexes,
//! group tables, intern tables, `cnt~` lookups — probes a
//! [`KeyMap`](rsj_common::KeyMap) with the precomputed digest.
//! Steady-state inserts are also allocation-free: all posting storage
//! lives in per-configuration
//! [`PostingArena`](rsj_common::PostingArena)s, and propagation reuses
//! pooled scratch buffers.

use crate::state::{GroupId, ItemId, NodeState};
use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::hash::fx_hash_columns;
use rsj_common::pow2::level_of;
use rsj_common::{fx_hash_one, FxHashMap, FxHashSet, HeapSize, Key, TupleId, Value};
use rsj_query::{NodeInfo, Query};
use rsj_storage::{ColumnarBatch, Database};
use std::collections::hash_map::Entry;

/// Construction options.
///
/// `PartialEq` is part of the contract: the sampler service groups
/// registrations by (join tree, options), so two option values compare
/// equal exactly when the indexes they build are interchangeable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexOptions {
    /// Enable the §4.4 grouping optimization on groupable nodes.
    pub grouping: bool,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions { grouping: true }
    }
}

/// Instrumentation counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexStats {
    /// Tuples inserted (accepted; duplicates excluded).
    pub inserts: u64,
    /// Tuples deleted (present; absent-tuple deletes excluded).
    pub deletes: u64,
    /// Executions of the propagation loop body (Algorithm 7 lines 9–11 /
    /// Algorithm 10 lines 11–15) — the Figure 9 metric, counted once per
    /// shared (node, parent) configuration. Deletion cascades count here
    /// too.
    pub propagation_loops: u64,
    /// Number of `cnt~` level changes observed (doublings on insert,
    /// halvings on delete).
    pub tilde_changes: u64,
}

/// One rooted tree's view over the shared configuration pool.
#[derive(Clone, Debug)]
pub(crate) struct TreeView {
    /// Per relation: index of its (relation, parent-in-this-tree)
    /// configuration in [`DynamicIndex::configs`].
    pub cfg: Vec<u32>,
}

/// Slot sentinel for "this configuration is not grouped".
const NO_SLOT: u32 = u32::MAX;

/// Where one configuration's projections of a relation's tuple live inside
/// the per-relation scratch (indexes into [`Projections::keys`]).
#[derive(Clone, Debug)]
struct CfgSlots {
    /// `key(e)` projection.
    key: u32,
    /// Per child: `key(c)` projection.
    children: Vec<u32>,
    /// `ē` projection when this configuration is grouped, else [`NO_SLOT`].
    ebar: u32,
}

/// Per-relation deduplicated projection sets plus each configuration's
/// slot map.
#[derive(Clone, Debug)]
struct RelProjections {
    /// Distinct attribute-position sets this relation is projected onto.
    sets: Vec<Vec<usize>>,
    /// Parallel to the relation's configuration list.
    cfgs: Vec<CfgSlots>,
}

/// The deduplicated projection schedule of the whole index.
#[derive(Clone, Debug)]
struct ProjectionPlan {
    rels: Vec<RelProjections>,
}

/// Reusable per-insert scratch: one `(Key, fx hash)` per distinct
/// projection of the inserted tuple.
#[derive(Clone, Debug, Default)]
struct Projections {
    keys: Vec<(Key, u64)>,
}

impl Projections {
    fn fill(&mut self, tuple: &[Value], sets: &[Vec<usize>]) {
        self.keys.clear();
        for set in sets {
            let k = Key::project(tuple, set);
            self.keys.push((k, fx_hash_one(&k)));
        }
    }

    #[inline]
    fn get(&self, slot: u32) -> (Key, u64) {
        self.keys[slot as usize]
    }
}

/// A touched parent group awaiting its post-batch `cnt~` check:
/// `(group, group key, cnt~ level before the batch)`.
type TouchedGroup = (u32, Key, Option<u32>);

/// Recycled scratch buffers for [`propagate`] (one pair per recursion
/// depth), so re-leveling performs no per-call allocations once warm.
#[derive(Clone, Debug, Default)]
struct Pools {
    items: Vec<Vec<ItemId>>,
    touched: Vec<Vec<TouchedGroup>>,
}

impl Pools {
    fn pop_items(&mut self) -> Vec<ItemId> {
        self.items.pop().unwrap_or_default()
    }

    fn push_items(&mut self, mut v: Vec<ItemId>) {
        v.clear();
        self.items.push(v);
    }

    fn pop_touched(&mut self) -> Vec<TouchedGroup> {
        self.touched.pop().unwrap_or_default()
    }

    fn push_touched(&mut self, mut v: Vec<TouchedGroup>) {
        v.clear();
        self.touched.push(v);
    }
}

/// One configuration's *net* `cnt~` change at a group key over a whole
/// columnar batch: recorded once when the batch is finalized for that
/// configuration, consumed by every parent configuration's re-level pass.
/// The per-tuple path would have cascaded each intermediate doubling
/// separately; the net change subsumes them all (levels are pure functions
/// of the final counts).
#[derive(Clone, Copy, Debug)]
struct TildeChange {
    key: Key,
    hash: u64,
    old: Option<u32>,
    new: Option<u32>,
}

/// One relation's accepted arrivals of a columnar batch: tuple ids plus,
/// for each distinct projection set of the relation, the projected key
/// column and its bulk-hashed digests (both parallel to `tids`). Empty
/// `tids` marks a relation absent from (or fully deduplicated out of) the
/// current batch.
#[derive(Clone, Debug, Default)]
struct RelBatch {
    tids: Vec<TupleId>,
    proj_keys: Vec<Vec<Key>>,
    proj_hashes: Vec<Vec<u64>>,
}

/// Reusable scratch of the columnar ingest path, persisted in the index so
/// repeated batch calls reallocate nothing once warm — the sort buffers,
/// per-configuration net-change vectors and per-relation key/hash columns
/// all keep their high-water capacity between batches. The `topo` and
/// `cfg_slot_row` entries are static per index and computed on first use.
#[derive(Clone, Debug, Default)]
struct ColumnarScratch {
    rel_batches: Vec<RelBatch>,
    flat: Vec<Value>,
    hashes: Vec<u64>,
    rows: Vec<Value>,
    proj_flat: Vec<Value>,
    topo: Vec<u32>,
    cfg_slot_row: Vec<usize>,
    out_changes: Vec<Vec<TildeChange>>,
    probes: Vec<(u32, TildeChange)>,
    items_buf: Vec<ItemId>,
    order_buf: Vec<(u64, u32)>,
    recomputed: FxHashSet<ItemId>,
    touched: FxHashMap<GroupId, (Key, u64, Option<u32>)>,
    levels: Vec<Option<u32>>,
    gids: Vec<GroupId>,
}

/// Children-first topological order of the shared-configuration DAG: every
/// configuration appears after everything reachable through its
/// `child_cfgs` edges, so a columnar pass over the order reads only
/// finalized child `cnt~` values. The DAG is acyclic by construction (a
/// configuration's children are oriented *away* from it in every rooted
/// tree), so the iterative post-order DFS below visits each configuration
/// exactly once.
fn topo_children_first(child_cfgs: &[Vec<u32>]) -> Vec<u32> {
    let n = child_cfgs.len();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if seen[root as usize] {
            continue;
        }
        seen[root as usize] = true;
        stack.push((root, 0));
        while let Some(&(c, next)) = stack.last() {
            let kids = &child_cfgs[c as usize];
            if next < kids.len() {
                stack.last_mut().expect("stack nonempty").1 += 1;
                let d = kids[next];
                if !seen[d as usize] {
                    seen[d as usize] = true;
                    stack.push((d, 0));
                }
            } else {
                order.push(c);
                stack.pop();
            }
        }
    }
    order
}

/// The dynamic sampling index over an acyclic join (Theorem 4.2).
#[derive(Clone, Debug)]
pub struct DynamicIndex {
    query: Query,
    db: Database,
    /// One [`NodeState`] per distinct (relation, parent) orientation.
    pub(crate) configs: Vec<NodeState>,
    /// Rooted-tree metadata of each configuration (key/child positions,
    /// grouping layout), parallel to `configs`.
    pub(crate) infos: Vec<NodeInfo>,
    /// Per configuration: the configurations of its children (child `c`
    /// parented by this relation), parallel to `infos[cfg].children`.
    child_cfgs: Vec<Vec<u32>>,
    /// Per configuration `(e, p)`: the parent configurations its `cnt~`
    /// changes propagate into — every configuration of `p` not parented
    /// by `e`, with the child index of `e` inside it.
    prop_targets: Vec<Vec<(u32, u32)>>,
    /// Per relation: its configurations, in deterministic discovery order.
    rel_cfgs: Vec<Vec<u32>>,
    /// Per root relation: the view used for delta batches and sampling.
    pub(crate) trees: Vec<TreeView>,
    plan: ProjectionPlan,
    scratch: Projections,
    pools: Pools,
    columnar: ColumnarScratch,
    options: IndexOptions,
    stats: IndexStats,
}

/// Errors from index construction.
#[derive(Clone, Debug)]
pub enum IndexError {
    /// The query is cyclic; use the GHD driver in `rsj-core`.
    Cyclic,
    /// Key or `ē` arity exceeded [`rsj_common::value::MAX_KEY_ARITY`].
    KeyTooWide(String),
    /// An explicitly supplied tree is not a join tree for the query
    /// (wrong node count, or per-attribute connectedness violated).
    InvalidTree(String),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Cyclic => write!(f, "query is cyclic; decompose it with a GHD first"),
            IndexError::KeyTooWide(m) => write!(f, "{m}"),
            IndexError::InvalidTree(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl DynamicIndex {
    /// Builds an (empty) index for an acyclic query over the canonical GYO
    /// join tree.
    pub fn new(query: Query, options: IndexOptions) -> Result<DynamicIndex, IndexError> {
        let jt = rsj_query::JoinTree::build(&query).ok_or(IndexError::Cyclic)?;
        Self::with_tree(query, &jt, options)
    }

    /// Builds an (empty) index over an explicit join tree — the entry point
    /// the cost-based planner (`rsj_query::plan`) uses to materialize a
    /// non-canonical orientation. The tree is validated to actually be a
    /// join tree for `query` (everything the planner emits is; a
    /// hand-rolled `EngineOpts::plan` might not be — a silently accepted
    /// invalid tree would produce wrong join results, so the check is a
    /// real error, not a debug assertion). All rooted views are derived
    /// from it exactly as [`DynamicIndex::new`] derives them from the GYO
    /// tree.
    pub fn with_tree(
        query: Query,
        jt: &rsj_query::JoinTree,
        options: IndexOptions,
    ) -> Result<DynamicIndex, IndexError> {
        if jt.len() != query.num_relations() {
            return Err(IndexError::InvalidTree(format!(
                "tree spans {} relations but the query has {}",
                jt.len(),
                query.num_relations()
            )));
        }
        if !jt.satisfies_connectedness(&query) {
            return Err(IndexError::InvalidTree(format!(
                "edges {:?} violate the join-tree property (some attribute's \
                 relations are not connected)",
                jt.canonical_edges()
            )));
        }
        let rooted = rsj_query::rooted::all_rooted_trees(&query, jt)
            .map_err(|e| IndexError::KeyTooWide(e.to_string()))?;
        let mut db = Database::new();
        for r in query.relations() {
            db.add_relation(r.name.clone(), r.attrs.len());
        }
        let n = query.num_relations();

        // Intern one configuration per distinct (relation, parent)
        // orientation; trees become views over the pool. Discovery order
        // (tree 0 first) is deterministic.
        let mut cfg_of: FxHashMap<(usize, Option<usize>), u32> = FxHashMap::default();
        let mut configs: Vec<NodeState> = Vec::new();
        let mut infos: Vec<NodeInfo> = Vec::new();
        let mut trees = Vec::with_capacity(n);
        for tree in &rooted {
            let cfg = (0..n)
                .map(|rel| {
                    let info = tree.node(rel);
                    *cfg_of.entry((rel, info.parent)).or_insert_with(|| {
                        let grouped = options.grouping
                            && info.groupable
                            // Fall back to ungrouped rather than failing:
                            // grouping is an optimization.
                            && info.ebar_positions.len() <= rsj_common::value::MAX_KEY_ARITY;
                        configs.push(NodeState::new(info.children.len(), grouped));
                        infos.push(info.clone());
                        (configs.len() - 1) as u32
                    })
                })
                .collect();
            trees.push(TreeView { cfg });
        }
        let mut rel_cfgs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (c, info) in infos.iter().enumerate() {
            rel_cfgs[info.relation].push(c as u32);
        }
        let child_cfgs: Vec<Vec<u32>> = infos
            .iter()
            .map(|info| {
                info.children
                    .iter()
                    .map(|&c| cfg_of[&(c, Some(info.relation))])
                    .collect()
            })
            .collect();
        let prop_targets: Vec<Vec<(u32, u32)>> = infos
            .iter()
            .map(|info| match info.parent {
                None => Vec::new(),
                Some(p) => rel_cfgs[p]
                    .iter()
                    .filter_map(|&y| {
                        let yi = &infos[y as usize];
                        if yi.parent == Some(info.relation) {
                            return None;
                        }
                        let ci = yi
                            .children
                            .iter()
                            .position(|&c| c == info.relation)
                            .expect("child of every other orientation");
                        Some((y, ci as u32))
                    })
                    .collect(),
            })
            .collect();

        let plan = ProjectionPlan {
            rels: (0..n)
                .map(|rel| {
                    let mut sets: Vec<Vec<usize>> = Vec::new();
                    let slot = |positions: &[usize], sets: &mut Vec<Vec<usize>>| -> u32 {
                        match sets.iter().position(|s| s == positions) {
                            Some(i) => i as u32,
                            None => {
                                sets.push(positions.to_vec());
                                (sets.len() - 1) as u32
                            }
                        }
                    };
                    let cfgs = rel_cfgs[rel]
                        .iter()
                        .map(|&c| {
                            let info = &infos[c as usize];
                            CfgSlots {
                                key: slot(&info.key_positions, &mut sets),
                                children: info
                                    .child_key_positions
                                    .iter()
                                    .map(|ps| slot(ps, &mut sets))
                                    .collect(),
                                ebar: if configs[c as usize].grouped {
                                    slot(&info.ebar_positions, &mut sets)
                                } else {
                                    NO_SLOT
                                },
                            }
                        })
                        .collect();
                    RelProjections { sets, cfgs }
                })
                .collect(),
        };

        Ok(DynamicIndex {
            query,
            db,
            configs,
            infos,
            child_cfgs,
            prop_targets,
            rel_cfgs,
            trees,
            plan,
            scratch: Projections::default(),
            pools: Pools::default(),
            columnar: ColumnarScratch::default(),
            options,
            stats: IndexStats::default(),
        })
    }

    /// The query this index serves.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The underlying tuple storage.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Construction options.
    pub fn options(&self) -> IndexOptions {
        self.options
    }

    /// Serializes the dynamic portion of the index — tuple storage, every
    /// configuration's [`NodeState`], and the instrumentation counters —
    /// into `enc`. The static topology (configuration graph, projection
    /// plan, tree views) is a pure function of `(query, tree, options)`
    /// and is *not* written: a restore target must be freshly built over
    /// the same triple (see
    /// [`restore_state_from`](DynamicIndex::restore_state_from)).
    ///
    /// The encoding captures *physical* layout — posting-list order, hash
    /// slot arrays, weight-bucket chains — so a restored index reproduces
    /// the original byte-for-byte under any further operation sequence.
    /// That exactness is what makes deterministic sampling replay (and the
    /// durability layer's byte-identical recovery guarantee) possible.
    pub fn snapshot_state_to(&self, enc: &mut Encoder) {
        self.db.snapshot_to(enc);
        enc.put_usize(self.configs.len());
        for ns in &self.configs {
            ns.snapshot_to(enc);
        }
        enc.put_u64(self.stats.inserts);
        enc.put_u64(self.stats.deletes);
        enc.put_u64(self.stats.propagation_loops);
        enc.put_u64(self.stats.tilde_changes);
    }

    /// Restores dynamic state written by
    /// [`snapshot_state_to`](DynamicIndex::snapshot_state_to) into `self`,
    /// which must be a freshly built (empty) index over the same `(query,
    /// tree, options)` triple. The configuration count, each
    /// configuration's grouping flag and child count, and every relation's
    /// arity are cross-checked against the rebuilt topology; any mismatch
    /// rejects the snapshot without modifying `self`.
    pub fn restore_state_from(&mut self, dec: &mut Decoder) -> Result<(), CodecError> {
        let db = Database::restore_from(dec)?;
        if db.len() != self.query.num_relations() {
            return Err(CodecError::Corrupt(
                "index snapshot relation count mismatch",
            ));
        }
        for rel in 0..db.len() {
            if db.relation(rel).arity() != self.db.relation(rel).arity() {
                return Err(CodecError::Corrupt(
                    "index snapshot relation arity mismatch",
                ));
            }
        }
        let ncfg = dec.seq_len(1)?;
        if ncfg != self.configs.len() {
            return Err(CodecError::Corrupt(
                "index snapshot configuration count mismatch",
            ));
        }
        let mut configs = Vec::with_capacity(ncfg);
        for cu in 0..ncfg {
            let ns = NodeState::restore_from(dec)?;
            if ns.grouped != self.configs[cu].grouped
                || ns.child_indexes.len() != self.configs[cu].child_indexes.len()
            {
                return Err(CodecError::Corrupt(
                    "index snapshot configuration shape mismatch",
                ));
            }
            configs.push(ns);
        }
        let stats = IndexStats {
            inserts: dec.u64()?,
            deletes: dec.u64()?,
            propagation_loops: dec.u64()?,
            tilde_changes: dec.u64()?,
        };
        self.db = db;
        self.configs = configs;
        self.stats = stats;
        Ok(())
    }

    /// State of node `rel` in the tree rooted at `root`.
    #[inline]
    pub(crate) fn state_at(&self, root: usize, rel: usize) -> &NodeState {
        &self.configs[self.trees[root].cfg[rel] as usize]
    }

    /// Rooted-tree metadata of node `rel` in the tree rooted at `root`.
    #[inline]
    pub(crate) fn info_at(&self, root: usize, rel: usize) -> &NodeInfo {
        &self.infos[self.trees[root].cfg[rel] as usize]
    }

    /// Inserts a tuple into relation `rel`; returns its id, or `None` for a
    /// duplicate (set semantics — no index work happens).
    ///
    /// This is the paper's `IndexUpdate` entry point: `O(log N)` amortized.
    /// Each distinct projection of the tuple is computed and hashed once,
    /// then shared across every configuration (see the [module
    /// docs](self)).
    pub fn insert(&mut self, rel: usize, tuple: &[Value]) -> Option<TupleId> {
        self.insert_hashed(rel, tuple, fx_hash_one(&tuple))
    }

    /// [`insert`](DynamicIndex::insert) with the relation's dedup hash
    /// precomputed. Byte-identical to `insert` — same cascades, same
    /// stats — it merely lets a batch driver hash whole columns up front
    /// with [`fx_hash_columns`] and then apply tuples one at a time in
    /// arrival order (the byte-exact tier of the columnar ingest path,
    /// where reservoir reproducibility forbids reordering).
    pub fn insert_hashed(&mut self, rel: usize, tuple: &[Value], hash: u64) -> Option<TupleId> {
        let tid = self.db.relation_mut(rel).insert_hashed(tuple, hash)?;
        self.stats.inserts += 1;
        self.scratch.fill(tuple, &self.plan.rels[rel].sets);
        let mut pl = 0u64;
        let mut tc = 0u64;
        for (i, &cfg) in self.rel_cfgs[rel].iter().enumerate() {
            cfg_insert(
                &mut self.configs,
                &self.infos,
                &self.child_cfgs,
                &self.prop_targets,
                &self.db,
                &self.scratch,
                &self.plan.rels[rel].cfgs[i],
                cfg,
                tid,
                &mut pl,
                &mut tc,
                &mut self.pools,
            );
        }
        self.stats.propagation_loops += pl;
        self.stats.tilde_changes += tc;
        Some(tid)
    }

    /// Inserts a delta batch of tuples in order, returning the number
    /// accepted (duplicates are skipped, exactly as [`insert`] would).
    ///
    /// Equivalent to calling [`insert`] per tuple — same ids, same index
    /// state, same propagation — packaged as the batch entry point for
    /// index-only ingest (sampling-disabled pipelines, the
    /// `DynamicSampleIndex` facade). Per-tuple work is already amortized
    /// internally: the projection scratch, propagation pools, and arena
    /// free lists live in the index and stay warm across calls.
    ///
    /// [`insert`]: DynamicIndex::insert
    pub fn insert_batch(&mut self, batch: &[rsj_storage::InputTuple]) -> u64 {
        let mut accepted = 0;
        for t in batch {
            if self.insert(t.relation, &t.values).is_some() {
                accepted += 1;
            }
        }
        accepted
    }

    /// Columnar batch ingest: the struct-of-arrays fast path for
    /// insert-only windows.
    ///
    /// Produces exactly the state [`insert`](DynamicIndex::insert) would:
    /// the same tuples accepted with the same ids, and in every
    /// configuration the same groups with the same `cnt`, `cnt~`, item
    /// levels, and (for grouped nodes) `feq` — an item's level is a pure
    /// function of the *final* tuple set, so arrival order inside the
    /// batch cannot matter. What legitimately differs from the per-tuple
    /// path is physical layout (posting-list order inside buckets,
    /// internal group/intern ids) and the
    /// [`propagation_loops`](IndexStats::propagation_loops) /
    /// [`tilde_changes`](IndexStats::tilde_changes) counters, which here
    /// count the *amortized* pass (one cascade per configuration per
    /// batch) rather than one cascade per tuple; [`IndexStats::inserts`]
    /// stays exact. Sampling pipelines that must reproduce the row path's
    /// reservoir bytes therefore drive [`insert`](DynamicIndex::insert)
    /// per tuple (see
    /// `ReservoirJoin::process_columnar` in `rsj-core`); index-only
    /// ingest — the Figure 6 update-time benchmark, `FullSampler`
    /// pre-builds — takes this entry point.
    ///
    /// Per relation, the whole dedup-hash column and every distinct
    /// projection's key/hash columns are computed by the vectorized
    /// [`fx_hash_columns`] kernel in one tight loop each. Configurations
    /// are then finalized children-first; within one configuration, probe
    /// requests are sorted by `(child, hash)` so `KeyMap` bucket lines are
    /// touched monotonically and duplicate keys coalesce into one probe
    /// per run, and the upward cascade runs once over the children's *net*
    /// `cnt~` changes (the signed per-batch generalization of the
    /// per-tuple delta shift) instead of once per inserted tuple.
    pub fn insert_columnar(&mut self, batch: &ColumnarBatch) -> u64 {
        let nrels = self.query.num_relations();
        assert!(
            batch.num_relations() <= nrels,
            "batch addresses relation {} but the query has {nrels}",
            batch.num_relations(),
        );

        // Phase A: per relation, hash the dedup column in bulk, insert
        // into storage (set semantics), and bulk-hash every distinct
        // projection of the accepted rows. Every buffer lives in the
        // persistent scratch, so steady-state batches reallocate nothing.
        let cs = &mut self.columnar;
        if cs.rel_batches.len() < nrels {
            cs.rel_batches.resize_with(nrels, RelBatch::default);
        }
        for rb in &mut cs.rel_batches {
            rb.tids.clear();
        }
        let mut accepted = 0u64;
        for rel in 0..batch.num_relations() {
            let rc = batch.relation(rel);
            if rc.rows() == 0 {
                continue;
            }
            let arity = rc.arity();
            cs.flat.clear();
            rc.gather_rows(&mut cs.flat);
            cs.hashes.clear();
            fx_hash_columns(arity as u64, arity, &cs.flat, &mut cs.hashes);
            cs.rows.clear();
            {
                let r = self.db.relation_mut(rel);
                let rb = &mut cs.rel_batches[rel];
                for (row, &h) in cs.flat.chunks_exact(arity).zip(&cs.hashes) {
                    if let Some(tid) = r.insert_hashed(row, h) {
                        rb.tids.push(tid);
                        cs.rows.extend_from_slice(row);
                    }
                }
            }
            let n = cs.rel_batches[rel].tids.len();
            if n == 0 {
                continue;
            }
            accepted += n as u64;
            let sets = &self.plan.rels[rel].sets;
            let rb = &mut cs.rel_batches[rel];
            rb.proj_keys.resize_with(sets.len(), Vec::new);
            rb.proj_hashes.resize_with(sets.len(), Vec::new);
            for (si, set) in sets.iter().enumerate() {
                rb.proj_keys[si].clear();
                rb.proj_hashes[si].clear();
                if set.is_empty() {
                    // Root group keys project onto no attributes; the
                    // kernel wants arity >= 1, so the constant digest is
                    // computed once instead.
                    rb.proj_keys[si].resize(n, Key::EMPTY);
                    rb.proj_hashes[si].resize(n, fx_hash_one(&Key::EMPTY));
                    continue;
                }
                cs.proj_flat.clear();
                cs.proj_flat.reserve(n * set.len());
                for row in cs.rows.chunks_exact(arity) {
                    for &p in set {
                        cs.proj_flat.push(row[p]);
                    }
                }
                fx_hash_columns(
                    set.len() as u64,
                    set.len(),
                    &cs.proj_flat,
                    &mut rb.proj_hashes[si],
                );
                rb.proj_keys[si].extend(cs.proj_flat.chunks_exact(set.len()).map(Key::from_slice));
            }
        }
        self.stats.inserts += accepted;
        if accepted == 0 {
            return 0;
        }

        // Phase B: finalize configurations children-first. Each pass (1)
        // re-levels pre-batch items against the children's net cnt~
        // changes, (2) registers the batch's new items with hash-grouped,
        // duplicate-coalesced probes, then (3) records its own net cnt~
        // changes for the parents.
        let ncfg = self.configs.len();
        if cs.topo.len() != ncfg {
            // The traversal order and slot-row table are pure functions of
            // the (fixed) tree topology: compute once, reuse forever.
            cs.topo = topo_children_first(&self.child_cfgs);
            cs.cfg_slot_row = vec![0usize; ncfg];
            for cfgs in &self.rel_cfgs {
                for (i, &c) in cfgs.iter().enumerate() {
                    cs.cfg_slot_row[c as usize] = i;
                }
            }
        }
        if cs.out_changes.len() != ncfg {
            cs.out_changes.resize_with(ncfg, Vec::new);
        }
        for v in &mut cs.out_changes {
            v.clear();
        }
        let mut pl = 0u64;
        let mut tc = 0u64;
        for oi in 0..ncfg {
            let c = cs.topo[oi];
            let cu = c as usize;
            let rel = self.infos[cu].relation;
            cs.recomputed.clear();
            cs.touched.clear();

            // (1) Amortized re-level of pre-batch items: one probe per
            // distinct (child, changed key), visited in (child, hash)
            // order so bucket lines are touched monotonically. Live
            // live-to-live changes shift matching items by the *net*
            // level delta; a child group coming alive recomputes from
            // scratch (once per item — the recompute reads final child
            // state, so later probes skip it).
            cs.probes.clear();
            for (ci, &d) in self.child_cfgs[cu].iter().enumerate() {
                for &ch in &cs.out_changes[d as usize] {
                    cs.probes.push((ci as u32, ch));
                }
            }
            cs.probes.sort_unstable_by(|a, b| {
                (a.0, a.1.hash)
                    .cmp(&(b.0, b.1.hash))
                    .then_with(|| a.1.key.as_slice().cmp(b.1.key.as_slice()))
            });
            for &(ci, ch) in &cs.probes {
                let shift = match (ch.old, ch.new) {
                    (Some(o), Some(n)) => {
                        debug_assert!(n >= o, "insert-only cnt~ must not shrink");
                        Some(n as i64 - o as i64)
                    }
                    _ => None,
                };
                cs.items_buf.clear();
                {
                    let ns = &self.configs[cu];
                    match ns.child_indexes[ci as usize].get(ch.hash, &ch.key) {
                        Some(&list) => ns.postings.extend_into(list, &mut cs.items_buf),
                        None => continue,
                    }
                }
                for &item in &cs.items_buf {
                    if cs.recomputed.contains(&item) {
                        continue;
                    }
                    pl += 1;
                    let pos = self.configs[cu].item_pos[item as usize];
                    let new_level = match (shift, pos.level()) {
                        (Some(d), Some(l)) => Some((l as i64 + d) as u32),
                        (Some(_), None) => None,
                        (None, _) => {
                            cs.recomputed.insert(item);
                            compute_item_level(
                                &self.configs,
                                &self.infos,
                                &self.child_cfgs,
                                &self.db,
                                c,
                                item,
                            )
                        }
                    };
                    if pos.level() != new_level {
                        if let Entry::Vacant(e) = cs.touched.entry(pos.group) {
                            let gkey = group_key_of(&self.configs, &self.infos, &self.db, c, item);
                            let old = self.configs[cu].group(pos.group).tilde_level();
                            e.insert((gkey, fx_hash_one(&gkey), old));
                        }
                        self.configs[cu].move_item(item, new_level);
                    }
                }
            }

            // (2) Register the batch's own arrivals for this relation.
            // Probe requests are sorted by (hash, key); each run of equal
            // keys costs one KeyMap probe however many rows share it.
            // Children are already final, so new levels are absolute.
            if rel < cs.rel_batches.len() && !cs.rel_batches[rel].tids.is_empty() {
                let rb = &cs.rel_batches[rel];
                let slots = &self.plan.rels[rel].cfgs[cs.cfg_slot_row[cu]];
                let n = rb.tids.len();
                if self.configs[cu].grouped {
                    let es = slots.ebar as usize;
                    let ekeys = &rb.proj_keys[es];
                    let ehs = &rb.proj_hashes[es];
                    cs.order_buf.clear();
                    cs.order_buf
                        .extend((0..n as u32).map(|j| (ehs[j as usize], j)));
                    cs.order_buf.sort_unstable_by(|a, b| {
                        a.0.cmp(&b.0)
                            .then_with(|| {
                                ekeys[a.1 as usize]
                                    .as_slice()
                                    .cmp(ekeys[b.1 as usize].as_slice())
                            })
                            .then(a.1.cmp(&b.1))
                    });
                    let mut i = 0usize;
                    while i < n {
                        let (eh, j0) = cs.order_buf[i];
                        let ebar = ekeys[j0 as usize];
                        let mut end = i + 1;
                        while end < n {
                            let (h2, j2) = cs.order_buf[end];
                            if h2 != eh || ekeys[j2 as usize] != ebar {
                                break;
                            }
                            end += 1;
                        }
                        // One intern + one feq bump per distinct ebar run.
                        let (gt, created) = {
                            let ns = &mut self.configs[cu];
                            let (gt, created) = ns.grouped_data.intern(&mut ns.postings, eh, ebar);
                            ns.grouped_data.feq[gt as usize] += (end - i) as u64;
                            let base = ns.grouped_data.base[gt as usize];
                            for &(_, j) in &cs.order_buf[i..end] {
                                ns.postings.push(base, rb.tids[j as usize]);
                            }
                            (gt, created)
                        };
                        let feq = self.configs[cu].grouped_data.feq[gt as usize];
                        let feq_level = level_of(feq as u128).expect("feq >= 1");
                        let mut level = Some(feq_level);
                        for (ci, &slot) in slots.children.iter().enumerate() {
                            let k = rb.proj_keys[slot as usize][j0 as usize];
                            let h = rb.proj_hashes[slot as usize][j0 as usize];
                            let child = self.child_cfgs[cu][ci] as usize;
                            level = match (level, self.configs[child].tilde_level_of(h, &k)) {
                                (Some(s), Some(l)) => Some(s + l),
                                _ => None,
                            };
                        }
                        let gkey = rb.proj_keys[slots.key as usize][j0 as usize];
                        let gh = rb.proj_hashes[slots.key as usize][j0 as usize];
                        if created {
                            for (ci, &slot) in slots.children.iter().enumerate() {
                                let k = rb.proj_keys[slot as usize][j0 as usize];
                                let h = rb.proj_hashes[slot as usize][j0 as usize];
                                self.configs[cu].child_index_push(ci, h, k, gt);
                            }
                            let g = self.configs[cu].group_for(gh, gkey);
                            if let Entry::Vacant(e) = cs.touched.entry(g) {
                                let old = self.configs[cu].group(g).tilde_level();
                                e.insert((gkey, gh, old));
                            }
                            self.configs[cu].place_new_item(gt, g, level);
                        } else {
                            // Existing group tuple: the absolute final
                            // level overrides any step-(1) shift.
                            let pos = self.configs[cu].item_pos[gt as usize];
                            if pos.level() != level {
                                if let Entry::Vacant(e) = cs.touched.entry(pos.group) {
                                    let old = self.configs[cu].group(pos.group).tilde_level();
                                    e.insert((gkey, gh, old));
                                }
                                self.configs[cu].move_item(gt, level);
                            }
                        }
                        i = end;
                    }
                } else {
                    // Plain configuration: per child, coalesced child-index
                    // pushes plus one cnt~ lookup per distinct key run,
                    // accumulated into per-row levels.
                    cs.levels.clear();
                    cs.levels.resize(n, Some(0));
                    for (ci, &slot) in slots.children.iter().enumerate() {
                        let keys = &rb.proj_keys[slot as usize];
                        let hs = &rb.proj_hashes[slot as usize];
                        cs.order_buf.clear();
                        cs.order_buf
                            .extend((0..n as u32).map(|j| (hs[j as usize], j)));
                        cs.order_buf.sort_unstable_by(|a, b| {
                            a.0.cmp(&b.0)
                                .then_with(|| {
                                    keys[a.1 as usize]
                                        .as_slice()
                                        .cmp(keys[b.1 as usize].as_slice())
                                })
                                .then(a.1.cmp(&b.1))
                        });
                        let child = self.child_cfgs[cu][ci] as usize;
                        let mut i = 0usize;
                        while i < n {
                            let (h, j0) = cs.order_buf[i];
                            let k = keys[j0 as usize];
                            let mut end = i + 1;
                            while end < n {
                                let (h2, j2) = cs.order_buf[end];
                                if h2 != h || keys[j2 as usize] != k {
                                    break;
                                }
                                end += 1;
                            }
                            {
                                let ns = &mut self.configs[cu];
                                let list = {
                                    let NodeState {
                                        child_indexes,
                                        postings,
                                        ..
                                    } = ns;
                                    *child_indexes[ci]
                                        .get_or_insert_with(h, k, || postings.new_list())
                                        .0
                                };
                                // Within a run, j ascends (sort tiebreak),
                                // so posting order stays tuple-id order.
                                for &(_, j) in &cs.order_buf[i..end] {
                                    ns.postings.push(list, rb.tids[j as usize]);
                                }
                            }
                            let t = self.configs[child].tilde_level_of(h, &k);
                            for &(_, j) in &cs.order_buf[i..end] {
                                cs.levels[j as usize] = match (cs.levels[j as usize], t) {
                                    (Some(s), Some(l)) => Some(s + l),
                                    _ => None,
                                };
                            }
                            i = end;
                        }
                    }
                    // Group assignment, again one probe per distinct key.
                    let gkeys = &rb.proj_keys[slots.key as usize];
                    let ghs = &rb.proj_hashes[slots.key as usize];
                    cs.order_buf.clear();
                    cs.order_buf
                        .extend((0..n as u32).map(|j| (ghs[j as usize], j)));
                    cs.order_buf.sort_unstable_by(|a, b| {
                        a.0.cmp(&b.0)
                            .then_with(|| {
                                gkeys[a.1 as usize]
                                    .as_slice()
                                    .cmp(gkeys[b.1 as usize].as_slice())
                            })
                            .then(a.1.cmp(&b.1))
                    });
                    cs.gids.clear();
                    cs.gids.resize(n, 0);
                    let mut i = 0usize;
                    while i < n {
                        let (h, j0) = cs.order_buf[i];
                        let k = gkeys[j0 as usize];
                        let mut end = i + 1;
                        while end < n {
                            let (h2, j2) = cs.order_buf[end];
                            if h2 != h || gkeys[j2 as usize] != k {
                                break;
                            }
                            end += 1;
                        }
                        let g = self.configs[cu].group_for(h, k);
                        if let Entry::Vacant(e) = cs.touched.entry(g) {
                            let old = self.configs[cu].group(g).tilde_level();
                            e.insert((k, h, old));
                        }
                        for &(_, j) in &cs.order_buf[i..end] {
                            cs.gids[j as usize] = g;
                        }
                        i = end;
                    }
                    // Plain item ids are tuple ids: place in id order.
                    for j in 0..n {
                        self.configs[cu].place_new_item(rb.tids[j], cs.gids[j], cs.levels[j]);
                    }
                }
            }

            // (3) Record this configuration's net cnt~ changes for the
            // parents' pass.
            for (&g, &(key, hash, old)) in &cs.touched {
                let new = self.configs[cu].group(g).tilde_level();
                if new != old {
                    tc += 1;
                    cs.out_changes[cu].push(TildeChange {
                        key,
                        hash,
                        old,
                        new,
                    });
                }
            }
        }
        self.stats.propagation_loops += pl;
        self.stats.tilde_changes += tc;
        accepted
    }

    /// Deletes a tuple from relation `rel`; returns the id it occupied, or
    /// `None` if it was not present (set semantics — no index work
    /// happens).
    ///
    /// The exact mirror of [`insert`](DynamicIndex::insert): the tuple is
    /// unlinked from every configuration's child indexes and weight
    /// buckets, and `cnt~` *decreases* cascade upward through the same
    /// shared-configuration propagation (delta shifts run with a negative
    /// shift). Grouped configurations decrement `feq`; a group tuple whose
    /// `feq` reaches zero parks in the zero list with weight 0 — still
    /// interned, so a later re-insert of the same `ē` projection revives
    /// it in place.
    ///
    /// Cost: `O(log N)` amortized for the cascade, plus the child-index
    /// unlink scans (`O(matching-list length)` — the term insert-only
    /// streams never pay).
    pub fn delete(&mut self, rel: usize, tuple: &[Value]) -> Option<TupleId> {
        let tid = self.db.relation_mut(rel).remove(tuple)?;
        self.stats.deletes += 1;
        self.scratch.fill(tuple, &self.plan.rels[rel].sets);
        let mut pl = 0u64;
        let mut tc = 0u64;
        for (i, &cfg) in self.rel_cfgs[rel].iter().enumerate() {
            cfg_delete(
                &mut self.configs,
                &self.infos,
                &self.child_cfgs,
                &self.prop_targets,
                &self.db,
                &self.scratch,
                &self.plan.rels[rel].cfgs[i],
                cfg,
                tid,
                &mut pl,
                &mut tc,
                &mut self.pools,
            );
        }
        self.stats.propagation_loops += pl;
        self.stats.tilde_changes += tc;
        Some(tid)
    }

    /// Estimated heap bytes of the whole index (structures + storage).
    ///
    /// Configurations are shared across rooted trees, so this is the real
    /// footprint, not `n` trees' worth of copies.
    pub fn heap_size(&self) -> usize {
        self.db.heap_size()
            + self.configs.iter().map(HeapSize::heap_size).sum::<usize>()
            + self.configs.capacity() * std::mem::size_of::<NodeState>()
    }
}

/// Inserts tuple `tid` into one (relation, parent) configuration.
#[allow(clippy::too_many_arguments)]
fn cfg_insert(
    configs: &mut [NodeState],
    infos: &[NodeInfo],
    child_cfgs: &[Vec<u32>],
    prop_targets: &[Vec<(u32, u32)>],
    db: &Database,
    proj: &Projections,
    slots: &CfgSlots,
    cfg: u32,
    tid: TupleId,
    pl: &mut u64,
    tc: &mut u64,
    pools: &mut Pools,
) {
    if configs[cfg as usize].grouped {
        grouped_insert(
            configs,
            infos,
            child_cfgs,
            prop_targets,
            db,
            proj,
            slots,
            cfg,
            tid,
            pl,
            tc,
            pools,
        );
    } else {
        plain_insert(
            configs,
            infos,
            child_cfgs,
            prop_targets,
            db,
            proj,
            slots,
            cfg,
            tid,
            pl,
            tc,
            pools,
        );
    }
}

/// Deletes tuple `tid` from one (relation, parent) configuration.
#[allow(clippy::too_many_arguments)]
fn cfg_delete(
    configs: &mut [NodeState],
    infos: &[NodeInfo],
    child_cfgs: &[Vec<u32>],
    prop_targets: &[Vec<(u32, u32)>],
    db: &Database,
    proj: &Projections,
    slots: &CfgSlots,
    cfg: u32,
    tid: TupleId,
    pl: &mut u64,
    tc: &mut u64,
    pools: &mut Pools,
) {
    if configs[cfg as usize].grouped {
        grouped_delete(
            configs,
            infos,
            child_cfgs,
            prop_targets,
            db,
            proj,
            slots,
            cfg,
            tid,
            pl,
            tc,
            pools,
        );
    } else {
        plain_delete(
            configs,
            infos,
            child_cfgs,
            prop_targets,
            db,
            proj,
            slots,
            cfg,
            tid,
            pl,
            tc,
            pools,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn plain_delete(
    configs: &mut [NodeState],
    infos: &[NodeInfo],
    child_cfgs: &[Vec<u32>],
    prop_targets: &[Vec<(u32, u32)>],
    db: &Database,
    proj: &Projections,
    slots: &CfgSlots,
    cfg: u32,
    tid: TupleId,
    pl: &mut u64,
    tc: &mut u64,
    pools: &mut Pools,
) {
    let (group_key, gk_hash) = proj.get(slots.key);
    let ns = &mut configs[cfg as usize];
    for (ci, &slot) in slots.children.iter().enumerate() {
        let (k, h) = proj.get(slot);
        ns.child_index_remove(ci, h, &k, tid);
    }
    let g = ns.item_pos[tid as usize].group;
    let old_tilde = ns.group(g).tilde_level();
    ns.remove_existing_item(tid);
    let new_tilde = ns.group(g).tilde_level();
    if old_tilde != new_tilde {
        *tc += 1;
        propagate(
            configs,
            infos,
            child_cfgs,
            prop_targets,
            db,
            cfg,
            group_key,
            gk_hash,
            old_tilde,
            new_tilde,
            pl,
            tc,
            pools,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn grouped_delete(
    configs: &mut [NodeState],
    infos: &[NodeInfo],
    child_cfgs: &[Vec<u32>],
    prop_targets: &[Vec<(u32, u32)>],
    db: &Database,
    proj: &Projections,
    slots: &CfgSlots,
    cfg: u32,
    tid: TupleId,
    pl: &mut u64,
    tc: &mut u64,
    pools: &mut Pools,
) {
    let (ebar, ebar_hash) = proj.get(slots.ebar);
    let (gt, feq) = {
        let ns = &mut configs[cfg as usize];
        let gt = *ns
            .grouped_data
            .map
            .get(ebar_hash, &ebar)
            .expect("deleted tuple's group tuple must be interned");
        let base = ns.grouped_data.base[gt as usize];
        let pos = (0..ns.postings.len(base) as u32)
            .find(|&i| ns.postings.get(base, i) == tid)
            .expect("deleted tuple must appear in its group's base list");
        ns.postings.swap_remove(base, pos);
        ns.grouped_data.feq[gt as usize] -= 1;
        (gt, ns.grouped_data.feq[gt as usize])
    };

    // New level: feq~ shrank (possibly to zero — the group tuple then
    // parks in the zero list but stays interned for revival).
    let (group_key, gk_hash) = proj.get(slots.key);
    let level = match level_of(feq as u128) {
        None => None,
        Some(feq_level) => {
            sum_child_levels_from(configs, child_cfgs, cfg, proj, slots).map(|cl| cl + feq_level)
        }
    };
    let ns = &mut configs[cfg as usize];
    if ns.item_pos[gt as usize].level() != level {
        let g = ns.item_pos[gt as usize].group;
        let old_tilde = ns.group(g).tilde_level();
        ns.move_item(gt, level);
        let new_tilde = ns.group(g).tilde_level();
        if old_tilde != new_tilde {
            *tc += 1;
            propagate(
                configs,
                infos,
                child_cfgs,
                prop_targets,
                db,
                cfg,
                group_key,
                gk_hash,
                old_tilde,
                new_tilde,
                pl,
                tc,
                pools,
            );
        }
    }
}

/// Sum of the children's `cnt~` levels over the scratch's child keys;
/// `None` when any child group is missing or empty (weight 0).
fn sum_child_levels_from(
    configs: &[NodeState],
    child_cfgs: &[Vec<u32>],
    cfg: u32,
    proj: &Projections,
    slots: &CfgSlots,
) -> Option<u32> {
    let mut sum = 0u32;
    for (ci, &slot) in slots.children.iter().enumerate() {
        let (k, h) = proj.get(slot);
        let child_cfg = child_cfgs[cfg as usize][ci];
        sum += configs[child_cfg as usize].tilde_level_of(h, &k)?;
    }
    Some(sum)
}

#[allow(clippy::too_many_arguments)]
fn plain_insert(
    configs: &mut [NodeState],
    infos: &[NodeInfo],
    child_cfgs: &[Vec<u32>],
    prop_targets: &[Vec<(u32, u32)>],
    db: &Database,
    proj: &Projections,
    slots: &CfgSlots,
    cfg: u32,
    tid: TupleId,
    pl: &mut u64,
    tc: &mut u64,
    pools: &mut Pools,
) {
    // Weight level = Σ child tilde levels (None if any child group empty).
    let level = sum_child_levels_from(configs, child_cfgs, cfg, proj, slots);
    let (group_key, gk_hash) = proj.get(slots.key);
    let ns = &mut configs[cfg as usize];
    for (ci, &slot) in slots.children.iter().enumerate() {
        let (k, h) = proj.get(slot);
        ns.child_index_push(ci, h, k, tid);
    }
    let g = ns.group_for(gk_hash, group_key);
    let old_tilde = ns.group(g).tilde_level();
    ns.place_new_item(tid, g, level);
    let new_tilde = ns.group(g).tilde_level();
    if old_tilde != new_tilde {
        *tc += 1;
        propagate(
            configs,
            infos,
            child_cfgs,
            prop_targets,
            db,
            cfg,
            group_key,
            gk_hash,
            old_tilde,
            new_tilde,
            pl,
            tc,
            pools,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn grouped_insert(
    configs: &mut [NodeState],
    infos: &[NodeInfo],
    child_cfgs: &[Vec<u32>],
    prop_targets: &[Vec<(u32, u32)>],
    db: &Database,
    proj: &Projections,
    slots: &CfgSlots,
    cfg: u32,
    tid: TupleId,
    pl: &mut u64,
    tc: &mut u64,
    pools: &mut Pools,
) {
    let (ebar, ebar_hash) = proj.get(slots.ebar);
    let (gt, created) = {
        let ns = &mut configs[cfg as usize];
        let (gt, created) = ns.grouped_data.intern(&mut ns.postings, ebar_hash, ebar);
        ns.grouped_data.feq[gt as usize] += 1;
        let base = ns.grouped_data.base[gt as usize];
        ns.postings.push(base, tid);
        (gt, created)
    };

    // The grouped node's key/child projections factor through `ē`, so the
    // tuple-level scratch entries are exactly the right keys (and hashes).
    let (group_key, gk_hash) = proj.get(slots.key);
    let feq = configs[cfg as usize].grouped_data.feq[gt as usize];
    let feq_level = level_of(feq as u128).expect("feq >= 1");
    let level =
        sum_child_levels_from(configs, child_cfgs, cfg, proj, slots).map(|cl| cl + feq_level);

    let ns = &mut configs[cfg as usize];
    if created {
        for (ci, &slot) in slots.children.iter().enumerate() {
            let (k, h) = proj.get(slot);
            ns.child_index_push(ci, h, k, gt);
        }
        let g = ns.group_for(gk_hash, group_key);
        let old_tilde = ns.group(g).tilde_level();
        ns.place_new_item(gt, g, level);
        let new_tilde = ns.group(g).tilde_level();
        if old_tilde != new_tilde {
            *tc += 1;
            propagate(
                configs,
                infos,
                child_cfgs,
                prop_targets,
                db,
                cfg,
                group_key,
                gk_hash,
                old_tilde,
                new_tilde,
                pl,
                tc,
                pools,
            );
        }
    } else {
        // feq grew; re-level only if feq~ changed the total.
        let g = ns.item_pos[gt as usize].group;
        if ns.item_pos[gt as usize].level() != level {
            let old_tilde = ns.group(g).tilde_level();
            ns.move_item(gt, level);
            let new_tilde = ns.group(g).tilde_level();
            if old_tilde != new_tilde {
                *tc += 1;
                propagate(
                    configs,
                    infos,
                    child_cfgs,
                    prop_targets,
                    db,
                    cfg,
                    group_key,
                    gk_hash,
                    old_tilde,
                    new_tilde,
                    pl,
                    tc,
                    pools,
                );
            }
        }
    }
}

/// Recomputes the weight level of an existing item of configuration `cfg`,
/// projecting and hashing the item's own values (the shared scratch only
/// covers the freshly inserted tuple).
pub(crate) fn compute_item_level(
    configs: &[NodeState],
    infos: &[NodeInfo],
    child_cfgs: &[Vec<u32>],
    db: &Database,
    cfg: u32,
    item: ItemId,
) -> Option<u32> {
    let info = &infos[cfg as usize];
    let ns = &configs[cfg as usize];
    if ns.grouped {
        let ebar = ns.grouped_data.ebar_vals[item as usize];
        let feq = ns.grouped_data.feq[item as usize];
        let feq_level = level_of(feq as u128)?;
        let mut sum = feq_level;
        for (ci, positions) in info.child_key_positions_in_ebar.iter().enumerate() {
            let k = Key::project(ebar.as_slice(), positions);
            let child_cfg = child_cfgs[cfg as usize][ci];
            sum += configs[child_cfg as usize].tilde_level_of(fx_hash_one(&k), &k)?;
        }
        Some(sum)
    } else {
        let tuple = db.relation(info.relation).tuple(item);
        let mut sum = 0u32;
        for (ci, positions) in info.child_key_positions.iter().enumerate() {
            let k = Key::project(tuple, positions);
            let child_cfg = child_cfgs[cfg as usize][ci];
            sum += configs[child_cfg as usize].tilde_level_of(fx_hash_one(&k), &k)?;
        }
        Some(sum)
    }
}

/// The group of configuration `src` at `key` changed its `cnt~` from
/// `old_ct` to `new_ct`: re-level the matching items of every parent
/// configuration, and recurse on parent groups whose own `cnt~` changed
/// (Algorithm 7 lines 8–11). Each shared configuration is updated exactly
/// once — the per-tree formulation would have repeated the identical walk
/// for every rooted tree sharing the orientation.
///
/// An item's level is the sum of its children's tilde levels (plus `feq~`
/// when grouped), and only *this* child's tilde changed, so in the common
/// `Some(o) → Some(n)` case every bucketed item simply shifts by `n - o` —
/// no re-projection, hashing, or child-map probing per item. Zero-weight
/// items are blocked by a *different* child (this one was already live)
/// and stay put. Only the `None → Some` transition (the child group just
/// came alive) needs the full per-item recompute.
#[allow(clippy::too_many_arguments)]
fn propagate(
    configs: &mut [NodeState],
    infos: &[NodeInfo],
    child_cfgs: &[Vec<u32>],
    prop_targets: &[Vec<(u32, u32)>],
    db: &Database,
    src: u32,
    key: Key,
    key_hash: u64,
    old_ct: Option<u32>,
    new_ct: Option<u32>,
    pl: &mut u64,
    tc: &mut u64,
    pools: &mut Pools,
) {
    // Signed: insertion cascades shift levels up (`n > o`), deletion
    // cascades shift them down (`n < o`).
    let shift = match (old_ct, new_ct) {
        (Some(o), Some(n)) => Some(n as i64 - o as i64),
        _ => None,
    };
    for ti in 0..prop_targets[src as usize].len() {
        let (y, ci) = prop_targets[src as usize][ti];
        // Copy the matching item list out of the arena (into a pooled
        // buffer): we mutate the target's buckets while walking it. Cost
        // is proportional to the work done anyway.
        let mut items = pools.pop_items();
        {
            let ns = &configs[y as usize];
            match ns.child_indexes[ci as usize].get(key_hash, &key) {
                Some(&list) => ns.postings.extend_into(list, &mut items),
                None => {
                    pools.push_items(items);
                    continue;
                }
            }
        }
        // Lazily capture each touched group's cnt~ before this batch.
        let mut touched = pools.pop_touched();
        for &item in &items {
            *pl += 1;
            let pos = configs[y as usize].item_pos[item as usize];
            let new_level = match (shift, pos.level()) {
                // Live item, live-to-live child change: pure arithmetic.
                // The item's level sums this child's old tilde, so it can
                // never drop below zero on a downward shift.
                (Some(d), Some(l)) => Some((l as i64 + d) as u32),
                // Zero-weight item but this child was already live:
                // another child is the blocker, nothing changes.
                (Some(_), None) => None,
                // Child group came alive (insert) or died (delete):
                // recompute from scratch.
                (None, _) => compute_item_level(configs, infos, child_cfgs, db, y, item),
            };
            debug_assert_eq!(
                new_level,
                compute_item_level(configs, infos, child_cfgs, db, y, item),
                "delta-shift disagrees with recomputed level"
            );
            if pos.level() != new_level {
                if !touched.iter().any(|(g, _, _)| *g == pos.group) {
                    let old_tilde = configs[y as usize].group(pos.group).tilde_level();
                    let gkey = group_key_of(configs, infos, db, y, item);
                    touched.push((pos.group, gkey, old_tilde));
                }
                configs[y as usize].move_item(item, new_level);
            }
        }
        pools.push_items(items);
        for i in 0..touched.len() {
            let (g, gkey, old_tilde) = touched[i];
            let new_tilde = configs[y as usize].group(g).tilde_level();
            if new_tilde != old_tilde {
                *tc += 1;
                propagate(
                    configs,
                    infos,
                    child_cfgs,
                    prop_targets,
                    db,
                    y,
                    gkey,
                    fx_hash_one(&gkey),
                    old_tilde,
                    new_tilde,
                    pl,
                    tc,
                    pools,
                );
            }
        }
        pools.push_touched(touched);
    }
}

/// The `key(e)` value of an item's group.
fn group_key_of(
    configs: &[NodeState],
    infos: &[NodeInfo],
    db: &Database,
    cfg: u32,
    item: ItemId,
) -> Key {
    let info = &infos[cfg as usize];
    let ns = &configs[cfg as usize];
    if ns.grouped {
        let ebar = ns.grouped_data.ebar_vals[item as usize];
        Key::project(ebar.as_slice(), &info.key_positions_in_ebar)
    } else {
        Key::project(db.relation(info.relation).tuple(item), &info.key_positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsj_query::QueryBuilder;

    fn line3_index(grouping: bool) -> DynamicIndex {
        let mut qb = QueryBuilder::new();
        qb.relation("G1", &["A", "B"]);
        qb.relation("G2", &["B", "C"]);
        qb.relation("G3", &["C", "D"]);
        DynamicIndex::new(qb.build().unwrap(), IndexOptions { grouping }).unwrap()
    }

    /// Exhaustively verify one tree view's counts against brute-force
    /// recomputed sub-join counts.
    fn check_tree_counts(idx: &DynamicIndex, root: usize) {
        let db = idx.database();
        // For each node and each group key, cnt must equal the sum over
        // items of Π child cnt~ (· feq~ for grouped nodes).
        for rel in 0..idx.query().num_relations() {
            let cfg = idx.trees[root].cfg[rel];
            let ns = &idx.configs[cfg as usize];
            let level_of_item = |item: ItemId| {
                compute_item_level(&idx.configs, &idx.infos, &idx.child_cfgs, db, cfg, item)
            };
            for (key, &g) in ns.groups.iter() {
                let group = ns.group(g);
                let mut expect = 0u128;
                let mut count_item = |item: ItemId| {
                    if let Some(l) = level_of_item(item) {
                        expect += 1u128 << l;
                    }
                };
                for b in &group.buckets {
                    for it in ns.postings.iter(b.list) {
                        count_item(it);
                        // Stored level must match recomputed level.
                        assert_eq!(
                            ns.item_pos[it as usize].level(),
                            level_of_item(it),
                            "stale level rel={rel} item={it} key={key}"
                        );
                    }
                }
                if group.zero != rsj_common::postings::NO_LIST {
                    for it in ns.postings.iter(group.zero) {
                        count_item(it);
                        assert_eq!(
                            level_of_item(it),
                            None,
                            "zero-list item has weight rel={rel} item={it}"
                        );
                    }
                }
                assert_eq!(group.cnt, expect, "cnt mismatch rel={rel} key={key}");
            }
        }
    }

    #[test]
    fn single_inserts_build_consistent_counts() {
        let mut idx = line3_index(false);
        idx.insert(0, &[1, 10]);
        idx.insert(1, &[10, 20]);
        idx.insert(2, &[20, 30]);
        for root in 0..3 {
            check_tree_counts(&idx, root);
        }
        // Tree rooted at G1: its single tuple's level = cnt~ of G2 subtree.
        // G2's group for B=10 has one tuple whose level = cnt~ of G3's C=20
        // group = 1 (level 0). So G1's item level = 0 (weight 1): one join
        // result, no dummies.
        let root_group = idx.state_at(0, 0).group(0);
        assert_eq!(root_group.cnt, 1);
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut idx = line3_index(false);
        assert!(idx.insert(0, &[1, 2]).is_some());
        assert!(idx.insert(0, &[1, 2]).is_none());
        assert_eq!(idx.stats().inserts, 1);
    }

    #[test]
    fn configurations_are_shared_across_trees() {
        // Line-3 has 3 trees × 3 nodes = 9 node views but only
        // Σ (deg + 1) = 2 + 3 + 2 = 7 distinct (node, parent) orientations.
        let idx = line3_index(false);
        assert_eq!(idx.configs.len(), 7);
        assert_eq!(idx.trees.len(), 3);
        // The two trees rooted at G1 and G2 orient G3 the same way
        // (parent G2), so they must share the exact configuration.
        assert_eq!(idx.trees[0].cfg[2], idx.trees[1].cfg[2]);
        // G3's own tree roots it (no parent): a different configuration.
        assert_ne!(idx.trees[2].cfg[2], idx.trees[0].cfg[2]);
    }

    #[test]
    fn insert_batch_matches_single_inserts() {
        use rsj_common::rng::RsjRng;
        use rsj_storage::InputTuple;
        let mut rng = RsjRng::seed_from_u64(31);
        let mut batch: Vec<InputTuple> = Vec::new();
        for _ in 0..400 {
            batch.push(InputTuple::new(
                rng.index(3),
                vec![rng.below_u64(9), rng.below_u64(9)],
            ));
        }
        let mut one_by_one = line3_index(true);
        let mut accepted = 0u64;
        for t in &batch {
            if one_by_one.insert(t.relation, &t.values).is_some() {
                accepted += 1;
            }
        }
        let mut batched = line3_index(true);
        assert_eq!(batched.insert_batch(&batch), accepted);
        assert_eq!(batched.stats().inserts, one_by_one.stats().inserts);
        assert_eq!(
            batched.stats().propagation_loops,
            one_by_one.stats().propagation_loops
        );
        for root in 0..3 {
            check_tree_counts(&batched, root);
        }
        // Same ids, same counts: the root group counts agree everywhere.
        for root in 0..3 {
            let a = batched.state_at(root, root);
            let b = one_by_one.state_at(root, root);
            let h = fx_hash_one(&Key::EMPTY);
            assert_eq!(
                a.group_id(h, &Key::EMPTY).map(|g| a.group(g).cnt),
                b.group_id(h, &Key::EMPTY).map(|g| b.group(g).cnt),
            );
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// Property form of `insert_batch_matches_single_inserts`, extended
        /// across the columnar path: for random batches, (a) a
        /// `ColumnarBatch` shreds back to the exact source rows, (b)
        /// tuple-at-a-time `insert_batch` and `insert_columnar` accept the
        /// same tuples and produce semantically identical index state, and
        /// (c) the brute-force count invariants hold on the columnar
        /// result.
        #[test]
        fn prop_columnar_batches_match_row_path(
            seed in 0u64..1u64 << 40,
            n in 1usize..260,
            split in 0usize..260,
            domain in 2u64..10,
            grouping in proptest::prelude::any::<bool>(),
        ) {
            use proptest::prelude::prop_assert_eq;
            use rsj_common::rng::RsjRng;
            use rsj_storage::InputTuple;
            let mut rng = RsjRng::seed_from_u64(seed);
            let rows: Vec<InputTuple> = (0..n)
                .map(|_| {
                    InputTuple::new(
                        rng.index(3),
                        vec![rng.below_u64(domain), rng.below_u64(domain)],
                    )
                })
                .collect();
            let (pre, batch) = rows.split_at(split.min(n));
            let cb = ColumnarBatch::from_rows(batch);
            prop_assert_eq!(cb.to_rows(), batch.to_vec());

            let mut row_idx = line3_index(grouping);
            let mut col_idx = line3_index(grouping);
            prop_assert_eq!(row_idx.insert_batch(pre), col_idx.insert_batch(pre));
            let accepted = row_idx.insert_batch(batch);
            prop_assert_eq!(col_idx.insert_columnar(&cb), accepted);
            prop_assert_eq!(col_idx.stats().inserts, row_idx.stats().inserts);
            for root in 0..3 {
                check_tree_counts(&col_idx, root);
            }
            assert_same_group_state(&row_idx, &col_idx);
        }
    }

    /// The columnar path's equivalence contract: every configuration holds
    /// the same groups (by key) with the same `cnt` and `cnt~`, and grouped
    /// configurations intern the same `ē` tuples with the same `feq` —
    /// internal ids and posting order may differ.
    fn assert_same_group_state(a: &DynamicIndex, b: &DynamicIndex) {
        assert_eq!(a.configs.len(), b.configs.len());
        for (cfg, (ca, cb)) in a.configs.iter().zip(&b.configs).enumerate() {
            assert_eq!(ca.groups.len(), cb.groups.len(), "group count cfg={cfg}");
            for (key, &g) in ca.groups.iter() {
                let h = fx_hash_one(key);
                let bg = cb.group_id(h, key).expect("group present in both");
                assert_eq!(
                    ca.group(g).cnt,
                    cb.group(bg).cnt,
                    "cnt mismatch cfg={cfg} key={key}"
                );
                assert_eq!(
                    ca.group(g).tilde_level(),
                    cb.group(bg).tilde_level(),
                    "cnt~ mismatch cfg={cfg} key={key}"
                );
            }
            assert_eq!(ca.grouped, cb.grouped);
            if ca.grouped {
                assert_eq!(ca.grouped_data.map.len(), cb.grouped_data.map.len());
                for (ebar, &gt) in ca.grouped_data.map.iter() {
                    let h = fx_hash_one(ebar);
                    let bgt = *cb
                        .grouped_data
                        .map
                        .get(h, ebar)
                        .expect("ebar interned in both");
                    assert_eq!(
                        ca.grouped_data.feq[gt as usize], cb.grouped_data.feq[bgt as usize],
                        "feq mismatch cfg={cfg} ebar={ebar}"
                    );
                }
            }
        }
    }

    #[test]
    fn columnar_matches_row_path_semantics() {
        use rsj_common::rng::RsjRng;
        use rsj_storage::InputTuple;
        for grouping in [false, true] {
            let mut rng = RsjRng::seed_from_u64(97);
            let mut rows: Vec<InputTuple> = Vec::new();
            for _ in 0..500 {
                rows.push(InputTuple::new(
                    rng.index(3),
                    vec![rng.below_u64(8), rng.below_u64(8)],
                ));
            }
            let mut row_idx = line3_index(grouping);
            let accepted = row_idx.insert_batch(&rows);
            let mut col_idx = line3_index(grouping);
            assert_eq!(
                col_idx.insert_columnar(&ColumnarBatch::from_rows(&rows)),
                accepted
            );
            assert_eq!(col_idx.stats().inserts, row_idx.stats().inserts);
            for root in 0..3 {
                check_tree_counts(&col_idx, root);
            }
            assert_same_group_state(&row_idx, &col_idx);
        }
        // And the trivial case: an empty batch is a no-op.
        let mut idx = line3_index(true);
        assert_eq!(idx.insert_columnar(&ColumnarBatch::new()), 0);
        assert_eq!(idx.stats().inserts, 0);
    }

    #[test]
    fn columnar_on_top_of_existing_state_matches() {
        // Batch boundaries: seed state via the row path, then layer several
        // columnar batches on top — exercising the amortized re-level pass
        // over pre-batch items (net delta shifts and came-alive recomputes).
        use rsj_common::rng::RsjRng;
        use rsj_storage::InputTuple;
        fn gen(rng: &mut RsjRng, n: usize) -> Vec<InputTuple> {
            (0..n)
                .map(|_| InputTuple::new(rng.index(3), vec![rng.below_u64(7), rng.below_u64(7)]))
                .collect()
        }
        for grouping in [false, true] {
            let mut rng = RsjRng::seed_from_u64(4242);
            let seed_rows = gen(&mut rng, 150);
            let batches: Vec<Vec<InputTuple>> = (0..4).map(|_| gen(&mut rng, 120)).collect();
            let mut row_idx = line3_index(grouping);
            row_idx.insert_batch(&seed_rows);
            let mut col_idx = line3_index(grouping);
            col_idx.insert_batch(&seed_rows);
            for b in &batches {
                row_idx.insert_batch(b);
                col_idx.insert_columnar(&ColumnarBatch::from_rows(b));
                for root in 0..3 {
                    check_tree_counts(&col_idx, root);
                }
            }
            assert_same_group_state(&row_idx, &col_idx);
        }
    }

    #[test]
    fn columnar_grouped_query_matches_row_path() {
        // Example 4.5 shape — Rb is genuinely grouped, so the columnar
        // grouped path (ebar-run interning, feq bulk bumps, absolute
        // re-levels) gets real coverage, including skewed feq doublings.
        use rsj_common::rng::RsjRng;
        use rsj_storage::InputTuple;
        let build = || {
            let mut qb = QueryBuilder::new();
            qb.relation("Ra", &["X", "Y"]);
            qb.relation("Rb", &["Y", "Z", "W"]);
            qb.relation("Rc", &["W", "U"]);
            DynamicIndex::new(qb.build().unwrap(), IndexOptions { grouping: true }).unwrap()
        };
        let mut rng = RsjRng::seed_from_u64(777);
        let mut rows: Vec<InputTuple> = Vec::new();
        for _ in 0..600 {
            let rel = rng.index(3);
            let t = if rel == 1 {
                // Skew Y and W so many Rb tuples share one ē projection.
                vec![rng.below_u64(3), rng.below_u64(40), rng.below_u64(3)]
            } else {
                vec![rng.below_u64(3), rng.below_u64(12)]
            };
            rows.push(InputTuple::new(rel, t));
        }
        let (seed_rows, batch_rows) = rows.split_at(200);
        let mut row_idx = build();
        let mut col_idx = build();
        row_idx.insert_batch(seed_rows);
        col_idx.insert_batch(seed_rows);
        row_idx.insert_batch(batch_rows);
        col_idx.insert_columnar(&ColumnarBatch::from_rows(batch_rows));
        for root in 0..3 {
            check_tree_counts(&col_idx, root);
        }
        assert_same_group_state(&row_idx, &col_idx);
    }

    #[test]
    fn random_inserts_keep_invariants() {
        use rsj_common::rng::RsjRng;
        let mut rng = RsjRng::seed_from_u64(42);
        for grouping in [false, true] {
            let mut idx = line3_index(grouping);
            for _ in 0..600 {
                let rel = rng.index(3);
                let a = rng.below_u64(12);
                let b = rng.below_u64(12);
                idx.insert(rel, &[a, b]);
            }
            for root in 0..3 {
                check_tree_counts(&idx, root);
            }
        }
    }

    #[test]
    fn root_group_counts_bound_join_size() {
        // Root group cnt must be >= true join size (it's cnt with children
        // rounded up) for every rooted tree.
        use rsj_common::rng::RsjRng;
        let mut rng = RsjRng::seed_from_u64(7);
        let mut idx = line3_index(false);
        let mut tuples: Vec<(usize, Vec<u64>)> = Vec::new();
        for _ in 0..300 {
            let rel = rng.index(3);
            let t = vec![rng.below_u64(8), rng.below_u64(8)];
            if idx.insert(rel, &t).is_some() {
                tuples.push((rel, t));
            }
        }
        // Brute-force join size.
        let mut true_size = 0u128;
        for (r1, t1) in tuples.iter().filter(|(r, _)| *r == 0) {
            for (r2, t2) in tuples.iter().filter(|(r, _)| *r == 1) {
                for (r3, t3) in tuples.iter().filter(|(r, _)| *r == 2) {
                    let _ = (r1, r2, r3);
                    if t1[1] == t2[0] && t2[1] == t3[0] {
                        true_size += 1;
                    }
                }
            }
        }
        let empty_hash = fx_hash_one(&Key::EMPTY);
        for root in 0..3 {
            let ns = idx.state_at(root, root);
            if let Some(g) = ns.group_id(empty_hash, &Key::EMPTY) {
                let cnt = ns.group(g).cnt;
                assert!(
                    cnt >= true_size,
                    "root {root}: cnt {cnt} < true {true_size}"
                );
                // Lemma 4.4-style bound: cnt <= 2^{2|T|} * true (loose).
                if true_size > 0 {
                    assert!(
                        cnt <= true_size * 64,
                        "root {root}: cnt {cnt} too loose vs {true_size}"
                    );
                }
            } else {
                assert_eq!(true_size, 0);
            }
        }
    }

    #[test]
    fn grouping_reduces_propagation() {
        // Example 4.5 shape: Ra(X,Y) ⋈ Rb(Y,Z,W) ⋈ Rc(W,U). Rb is
        // groupable; inserting many Ra tuples with one Y value must
        // propagate through groups, not base tuples.
        let build = |grouping: bool| {
            let mut qb = QueryBuilder::new();
            qb.relation("Ra", &["X", "Y"]);
            qb.relation("Rb", &["Y", "Z", "W"]);
            qb.relation("Rc", &["W", "U"]);
            DynamicIndex::new(qb.build().unwrap(), IndexOptions { grouping }).unwrap()
        };
        let feed = |idx: &mut DynamicIndex| {
            // Many Rb tuples sharing (Y=1, W=2) with distinct Z.
            for z in 0..50u64 {
                idx.insert(1, &[1, z, 2]);
            }
            idx.insert(2, &[2, 7]);
            // Ra degree doubling on Y=1 forces repeated propagation.
            for x in 0..64u64 {
                idx.insert(0, &[x, 1]);
            }
            idx.stats().propagation_loops
        };
        let mut plain = build(false);
        let mut grouped = build(true);
        let loops_plain = feed(&mut plain);
        let loops_grouped = feed(&mut grouped);
        assert!(
            loops_grouped < loops_plain,
            "grouped {loops_grouped} !< plain {loops_plain}"
        );
    }

    #[test]
    fn delete_reverses_insert_counts() {
        let mut idx = line3_index(false);
        idx.insert(0, &[1, 10]);
        idx.insert(1, &[10, 20]);
        idx.insert(2, &[20, 30]);
        assert_eq!(idx.state_at(0, 0).group(0).cnt, 1);
        // Deleting the leaf empties the root count again.
        assert!(idx.delete(2, &[20, 30]).is_some());
        assert_eq!(idx.state_at(0, 0).group(0).cnt, 0);
        assert_eq!(idx.stats().deletes, 1);
        for root in 0..3 {
            check_tree_counts(&idx, root);
        }
        // Deleting an absent tuple is a no-op.
        assert!(idx.delete(2, &[20, 30]).is_none());
        assert_eq!(idx.stats().deletes, 1);
    }

    #[test]
    fn random_interleaved_deletes_keep_invariants() {
        use rsj_common::rng::RsjRng;
        for grouping in [false, true] {
            let mut rng = RsjRng::seed_from_u64(321);
            let mut idx = line3_index(grouping);
            let mut live: Vec<(usize, Vec<Value>)> = Vec::new();
            for step in 0..800 {
                if !live.is_empty() && rng.unit() < 0.35 {
                    let v = rng.index(live.len());
                    let (rel, t) = live.swap_remove(v);
                    assert!(idx.delete(rel, &t).is_some(), "live tuple must delete");
                } else {
                    let rel = rng.index(3);
                    let t = vec![rng.below_u64(9), rng.below_u64(9)];
                    if idx.insert(rel, &t).is_some() {
                        live.push((rel, t));
                    }
                }
                if step % 100 == 99 {
                    for root in 0..3 {
                        check_tree_counts(&idx, root);
                    }
                }
            }
            for root in 0..3 {
                check_tree_counts(&idx, root);
            }
        }
    }

    #[test]
    fn delete_then_reinsert_matches_fresh_build() {
        // Round-trip: insert a set, delete half, re-insert it. Counts (the
        // sampling-relevant state) must match an index built fresh from the
        // final live set — ids differ, weights must not.
        use rsj_common::rng::RsjRng;
        for grouping in [false, true] {
            let mut rng = RsjRng::seed_from_u64(77);
            let mut tuples: Vec<(usize, Vec<Value>)> = Vec::new();
            for _ in 0..200 {
                tuples.push((rng.index(3), vec![rng.below_u64(6), rng.below_u64(6)]));
            }
            let mut idx = line3_index(grouping);
            for (rel, t) in &tuples {
                idx.insert(*rel, t);
            }
            for (rel, t) in tuples.iter().step_by(2) {
                idx.delete(*rel, t);
            }
            for (rel, t) in tuples.iter().step_by(2) {
                idx.insert(*rel, t);
            }
            let mut fresh = line3_index(grouping);
            for (rel, t) in &tuples {
                fresh.insert(*rel, t);
            }
            for root in 0..3 {
                check_tree_counts(&idx, root);
                // Per-group counts agree between round-tripped and fresh.
                for rel in 0..3 {
                    let a = idx.state_at(root, rel);
                    let b = fresh.state_at(root, rel);
                    assert_eq!(a.groups.len(), b.groups.len());
                    for (key, &g) in a.groups.iter() {
                        let h = fx_hash_one(key);
                        let bg = b.group_id(h, key).expect("group in fresh index");
                        assert_eq!(
                            a.group(g).cnt,
                            b.group(bg).cnt,
                            "cnt mismatch root={root} rel={rel} key={key}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn delete_everything_returns_to_empty_counts() {
        use rsj_common::rng::RsjRng;
        for grouping in [false, true] {
            let mut rng = RsjRng::seed_from_u64(13);
            let mut idx = line3_index(grouping);
            let mut live = Vec::new();
            for _ in 0..300 {
                let rel = rng.index(3);
                let t = vec![rng.below_u64(5), rng.below_u64(5)];
                if idx.insert(rel, &t).is_some() {
                    live.push((rel, t));
                }
            }
            for (rel, t) in &live {
                assert!(idx.delete(*rel, t).is_some());
            }
            assert_eq!(idx.database().total_tuples(), 0);
            for root in 0..3 {
                check_tree_counts(&idx, root);
                for rel in 0..3 {
                    let ns = idx.state_at(root, rel);
                    for (_, &g) in ns.groups.iter() {
                        assert_eq!(ns.group(g).cnt, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn cyclic_query_rejected() {
        let mut qb = QueryBuilder::new();
        qb.relation("R1", &["X", "Y"]);
        qb.relation("R2", &["Y", "Z"]);
        qb.relation("R3", &["Z", "X"]);
        assert!(matches!(
            DynamicIndex::new(qb.build().unwrap(), IndexOptions::default()),
            Err(IndexError::Cyclic)
        ));
    }

    #[test]
    fn heap_size_monotone() {
        let mut idx = line3_index(true);
        let before = idx.heap_size();
        for i in 0..200u64 {
            idx.insert(0, &[i, i % 5]);
            idx.insert(1, &[i % 5, i % 7]);
            idx.insert(2, &[i % 7, i]);
        }
        assert!(idx.heap_size() > before);
    }

    #[test]
    fn projection_plan_dedupes_shared_sets() {
        // In line-3, G2's key(e) in the orientation parented by G3 equals
        // its child-key projection of G1's orientation (both {B}), so the
        // plan must hold strictly fewer sets than (roles × configs).
        let idx = line3_index(false);
        for rel in 0..3 {
            let rp = &idx.plan.rels[rel];
            let roles: usize = rp
                .cfgs
                .iter()
                .map(|t| 1 + t.children.len() + usize::from(t.ebar != NO_SLOT))
                .sum();
            assert!(
                rp.sets.len() < roles,
                "rel {rel}: {} sets for {roles} roles",
                rp.sets.len()
            );
            // Every set is genuinely distinct.
            for (i, a) in rp.sets.iter().enumerate() {
                for b in rp.sets.iter().skip(i + 1) {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn star_query_counts() {
        // Star-3: G1(A,B1), G2(A,B2), G3(A,B3); root-group cnt of the tree
        // rooted at G1 must be Π cnt~ per hub value summed over G1 tuples.
        let mut qb = QueryBuilder::new();
        qb.relation("G1", &["A", "B1"]);
        qb.relation("G2", &["A", "B2"]);
        qb.relation("G3", &["A", "B3"]);
        let mut idx = DynamicIndex::new(qb.build().unwrap(), IndexOptions::default()).unwrap();
        // Hub 5: 3 G2 tuples (cnt~ 4), 2 G3 tuples (cnt~ 2), 1 G1 tuple.
        for b in 0..3u64 {
            idx.insert(1, &[5, b]);
        }
        for b in 0..2u64 {
            idx.insert(2, &[5, b]);
        }
        idx.insert(0, &[5, 0]);
        for root in 0..3 {
            check_tree_counts(&idx, root);
        }
        // Depending on the join-tree shape GYO picked, the root group count
        // is a product of rounded counts along the tree — at least the true
        // join size 6, at most 8*2 = 16 for any shape.
        let ns = idx.state_at(0, 0);
        let cnt = ns
            .group(ns.group_id(fx_hash_one(&Key::EMPTY), &Key::EMPTY).unwrap())
            .cnt;
        assert!((6..=16).contains(&cnt), "cnt={cnt}");
    }

    #[test]
    fn index_snapshot_round_trips_byte_identically() {
        // The durability contract: restoring a snapshot into a freshly
        // built index reproduces the original *physically* — the snapshot
        // re-serializes byte-for-byte, and stays byte-locked under any
        // identical further operation sequence (so positional sampling
        // draws see the very same posting order).
        use rsj_common::rng::RsjRng;
        use rsj_storage::InputTuple;
        for grouping in [false, true] {
            let mut rng = RsjRng::seed_from_u64(0xD1CE);
            let mut idx = line3_index(grouping);
            let mut live: Vec<(usize, Vec<Value>)> = Vec::new();
            // Mixed history: row inserts, deletes, then a columnar batch.
            for _ in 0..250 {
                if !live.is_empty() && rng.unit() < 0.3 {
                    let v = rng.index(live.len());
                    let (rel, t) = live.swap_remove(v);
                    idx.delete(rel, &t);
                } else {
                    let rel = rng.index(3);
                    let t = vec![rng.below_u64(7), rng.below_u64(7)];
                    if idx.insert(rel, &t).is_some() {
                        live.push((rel, t));
                    }
                }
            }
            let batch: Vec<InputTuple> = (0..120)
                .map(|_| InputTuple::new(rng.index(3), vec![rng.below_u64(7), rng.below_u64(7)]))
                .collect();
            idx.insert_columnar(&ColumnarBatch::from_rows(&batch));

            let mut e = Encoder::new();
            idx.snapshot_state_to(&mut e);
            let bytes = e.into_bytes();

            let mut restored = line3_index(grouping);
            let mut d = Decoder::new(&bytes);
            restored.restore_state_from(&mut d).unwrap();
            d.finish().unwrap();

            // Re-serialization is byte-identical...
            let mut e2 = Encoder::new();
            restored.snapshot_state_to(&mut e2);
            assert_eq!(bytes, e2.into_bytes());

            // ...and stays that way after identical further mutations,
            // with return values (tuple ids!) in lockstep.
            let more: Vec<InputTuple> = (0..150)
                .map(|_| InputTuple::new(rng.index(3), vec![rng.below_u64(7), rng.below_u64(7)]))
                .collect();
            assert_eq!(
                idx.insert_columnar(&ColumnarBatch::from_rows(&more)),
                restored.insert_columnar(&ColumnarBatch::from_rows(&more))
            );
            for (rel, t) in live.iter().take(20) {
                assert_eq!(idx.delete(*rel, t), restored.delete(*rel, t));
            }
            let (mut ea, mut eb) = (Encoder::new(), Encoder::new());
            idx.snapshot_state_to(&mut ea);
            restored.snapshot_state_to(&mut eb);
            assert_eq!(ea.into_bytes(), eb.into_bytes());
            for root in 0..3 {
                check_tree_counts(&restored, root);
            }
        }
    }

    #[test]
    fn index_snapshot_rejects_mismatched_topology() {
        let mut idx = line3_index(true);
        idx.insert(0, &[1, 2]);
        idx.insert(1, &[2, 3]);
        let mut e = Encoder::new();
        idx.snapshot_state_to(&mut e);
        let bytes = e.into_bytes();
        // Different query shape (same relation count, wider arities).
        let mut qb = QueryBuilder::new();
        qb.relation("Ra", &["X", "Y", "Z"]);
        qb.relation("Rb", &["Z", "W", "U"]);
        qb.relation("Rc", &["U", "V", "T"]);
        let mut other = DynamicIndex::new(qb.build().unwrap(), IndexOptions::default()).unwrap();
        let mut d = Decoder::new(&bytes);
        assert!(other.restore_state_from(&mut d).is_err());
        // Truncated payload.
        let mut fresh = line3_index(true);
        let mut d = Decoder::new(&bytes[..bytes.len() - 1]);
        assert!(fresh.restore_state_from(&mut d).is_err());
        // And the happy path on the same topology still works.
        let mut ok = line3_index(true);
        let mut d = Decoder::new(&bytes);
        ok.restore_state_from(&mut d).unwrap();
        d.finish().unwrap();
    }
}
