#![warn(missing_docs)]

//! The dynamic sampling index for acyclic joins (paper §4).
//!
//! This crate implements the paper's second technical ingredient: an index
//! that, for an acyclic join `Q` over a streaming database `R`,
//!
//! 1. updates in `O(log N)` amortized time per inserted tuple
//!    (Theorem 4.2(1), Algorithm 7);
//! 2. implicitly defines, for each inserted tuple `t`, an array
//!    `ΔJ ⊇ ΔQ(R, t)` of the new join results plus a bounded fraction of
//!    dummies, supporting `|ΔJ|` in `O(1)` and positional access in
//!    `O(log N)` (Theorem 4.2(2–3), Algorithms 8–9);
//! 3. supports drawing a uniform sample of the *full* current result
//!    `Q(R)` in `O(log N)` expected time ([`sampler`]).
//!
//! The core trick: for every join-tree node `e` and key value `t`, the exact
//! count `cnt[T,e,t]` of (approximate) sub-join results below `e` is bucketed
//! by rounded weight. Parents see only the power-of-two rounding
//! `cnt~ = 2^⌈log2 cnt⌉`, so an update propagates upward only when a count
//! *doubles* — `O(log N)` times per key over the whole stream. The rounding
//! slack materializes as dummy positions, which is exactly what the
//! predicate-aware reservoir in `rsj-stream` tolerates.
//!
//! The grouping optimization of §4.4 (Algorithms 10–11) is integrated: when
//! enabled, an internal non-root node whose schema has attributes outside
//! its join attributes `ē` buckets *group tuples* (distinct `ē`-projections,
//! with multiplicity `feq`) instead of base tuples, shrinking propagation
//! fan-out.

pub mod dynamic;
pub mod retrieve;
pub mod sampler;
pub mod state;

pub use dynamic::{DynamicIndex, IndexOptions, IndexStats};
pub use retrieve::{materialize, materialize_into, DeltaBatch, JoinResult, ProbeBatch};
pub use sampler::FullSampler;
