//! Per-node index state: groups, weight buckets, and item bookkeeping.
//!
//! Within one rooted tree, every join-tree node `e` partitions its *items*
//! (base tuples, or group tuples under the §4.4 grouping optimization) into
//! groups by their `key(e)` value. Within a group, items live in buckets by
//! their *weight level*: item weight is the product of the children's
//! rounded counts (times `feq~` when grouped), always a power of two, so a
//! bucket at level `i` holds items of weight exactly `2^i` — the paper's
//! `Φ_i(t)` with `φ_i(t) = 2^i · |Φ_i(t)|`. A group's `cnt` is the sum of
//! its items' weights, maintained incrementally.
//!
//! Items whose weight is zero (some child key still unmatched) sit in a
//! separate zero list: they contribute nothing to `cnt` and are skipped by
//! retrieval, but must be reachable so a later child insertion can lift
//! them into a real bucket.
//!
//! # Memory layout
//!
//! All per-item storage — bucket membership, zero lists, child-index
//! posting lists, grouped base-tuple lists — lives in one
//! [`PostingArena`] per node ([`NodeState::postings`]). Maps store only a
//! `u32` handle; nothing on the insert path allocates a per-key heap
//! object. The maps themselves are [`KeyMap`]s addressed by precomputed fx
//! hashes, so the caller hashes each projected key exactly once per
//! insert. Arena lists iterate in append order and buckets keep
//! `swap_remove` position semantics, which is why this layout is invisible
//! to the sampling distribution (see `tests/golden_determinism.rs` at the
//! workspace root).

use rsj_common::codec::{CodecError, Decoder, Encoder};
use rsj_common::postings::NO_LIST;
use rsj_common::{HeapSize, Key, KeyMap, ListId, PostingArena};

/// Index of an item within a node: a base [`TupleId`](rsj_common::TupleId)
/// for ungrouped nodes, or a group-tuple id for grouped nodes.
pub type ItemId = u32;

/// Identifier of a group within a node.
pub type GroupId = u32;

/// Where an item currently lives: 12 bytes, read on every propagation
/// loop iteration, so the weight level is packed as a code instead of an
/// 8-byte `Option<u32>`.
#[derive(Clone, Copy, Debug)]
pub struct ItemPos {
    /// Owning group.
    pub group: GroupId,
    /// Position within the bucket / zero list.
    pub pos: u32,
    /// Packed weight level: `0` for the zero list, else `level + 1`.
    level_code: u32,
}

impl ItemPos {
    /// Builds a position from a level (`Some(i)` = bucket `Φ_i`, `None` =
    /// zero list).
    #[inline]
    pub fn new(group: GroupId, level: Option<u32>, pos: u32) -> ItemPos {
        ItemPos {
            group,
            pos,
            level_code: level.map_or(0, |l| l + 1),
        }
    }

    /// Weight level: `Some(i)` for bucket `Φ_i`, `None` for the zero list.
    #[inline]
    pub fn level(&self) -> Option<u32> {
        match self.level_code {
            0 => None,
            c => Some(c - 1),
        }
    }
}

/// One weight bucket `Φ_i`: a level and the arena list holding its items.
#[derive(Clone, Copy, Debug)]
pub struct BucketRef {
    /// The level `i`; items here have weight `2^i`.
    pub level: u32,
    /// The bucket's item list in the node's [`PostingArena`].
    pub list: ListId,
}

/// One key group of a node.
#[derive(Clone, Debug)]
pub struct Group {
    /// The paper's `cnt[T, e, t]`: total weight of all bucketed items.
    pub cnt: u128,
    /// Cached `cnt~` level: `0` for an empty group, else `level + 1`.
    /// Maintained by [`Group::insert_item`] / [`Group::remove_item`], so
    /// the many `tilde_level` probes per insert are a field read instead
    /// of a `u128` bit scan.
    tilde_code: u8,
    /// Non-empty buckets, sorted ascending by level.
    pub buckets: Vec<BucketRef>,
    /// Items of weight zero ([`NO_LIST`] until the first zero item).
    pub zero: ListId,
}

impl Default for Group {
    fn default() -> Self {
        Group {
            cnt: 0,
            tilde_code: 0,
            buckets: Vec::new(),
            zero: NO_LIST,
        }
    }
}

impl Group {
    /// `cnt~`: the rounded count. Zero for an empty group.
    #[inline]
    pub fn cnt_tilde(&self) -> u128 {
        rsj_common::pow2::round_up_pow2(self.cnt)
    }

    /// Level of `cnt~` (`None` when `cnt == 0`).
    #[inline]
    pub fn tilde_level(&self) -> Option<u32> {
        match self.tilde_code {
            0 => None,
            c => Some(c as u32 - 1),
        }
    }

    #[inline]
    fn refresh_tilde(&mut self) {
        self.tilde_code = match rsj_common::pow2::level_of(self.cnt) {
            None => 0,
            Some(l) => l as u8 + 1,
        };
    }

    /// Inserts `item` at `level` (or the zero list), returning its position.
    pub fn insert_item(
        &mut self,
        postings: &mut PostingArena,
        item: ItemId,
        level: Option<u32>,
    ) -> u32 {
        match level {
            None => {
                if self.zero == NO_LIST {
                    self.zero = postings.new_list();
                }
                postings.push(self.zero, item);
                (postings.len(self.zero) - 1) as u32
            }
            Some(l) => {
                self.cnt += 1u128 << l;
                self.refresh_tilde();
                let idx = match self.buckets.binary_search_by_key(&l, |b| b.level) {
                    Ok(i) => i,
                    Err(i) => {
                        let list = postings.new_list();
                        self.buckets.insert(i, BucketRef { level: l, list });
                        i
                    }
                };
                let list = self.buckets[idx].list;
                postings.push(list, item);
                (postings.len(list) - 1) as u32
            }
        }
    }

    /// Removes the item at (`level`, `pos`), returning the id of the item
    /// that was moved into `pos` by the swap-remove (if any). The caller
    /// must update that item's stored position.
    pub fn remove_item(
        &mut self,
        postings: &mut PostingArena,
        level: Option<u32>,
        pos: u32,
    ) -> Option<ItemId> {
        match level {
            None => postings.swap_remove(self.zero, pos),
            Some(l) => {
                self.cnt -= 1u128 << l;
                self.refresh_tilde();
                let idx = self
                    .buckets
                    .binary_search_by_key(&l, |b| b.level)
                    .expect("bucket must exist");
                let list = self.buckets[idx].list;
                let moved = postings.swap_remove(list, pos);
                if postings.is_empty(list) {
                    postings.free_list(list);
                    self.buckets.remove(idx);
                }
                moved
            }
        }
    }

    /// Locates position `z < cnt` inside the bucketed items: returns
    /// `(item, within)` where `within < 2^level(item)` is the offset inside
    /// that item's conceptual sub-batch. This is the bucket scan of
    /// Algorithm 9 lines 15–18 (`O(#buckets + log len) = O(log N)` per
    /// call; the second term is the arena's chunk walk).
    pub fn locate(&self, postings: &PostingArena, z: u128) -> (ItemId, u128) {
        debug_assert!(z < self.cnt, "locate past cnt");
        let mut acc = 0u128;
        for b in &self.buckets {
            let width = (postings.len(b.list) as u128) << b.level;
            if z < acc + width {
                let off = z - acc;
                let j = (off >> b.level) as u32;
                let within = off & ((1u128 << b.level) - 1);
                return (postings.get(b.list, j), within);
            }
            acc += width;
        }
        unreachable!("z < cnt guaranteed a bucket");
    }

    /// Number of bucketed (non-zero-weight) items.
    pub fn bucketed_len(&self, postings: &PostingArena) -> usize {
        self.buckets.iter().map(|b| postings.len(b.list)).sum()
    }

    /// Number of zero-weight items.
    pub fn zero_len(&self, postings: &PostingArena) -> usize {
        if self.zero == NO_LIST {
            0
        } else {
            postings.len(self.zero)
        }
    }
}

impl HeapSize for Group {
    fn heap_size(&self) -> usize {
        // Item storage lives in the node's shared arena, accounted there.
        self.buckets.capacity() * std::mem::size_of::<BucketRef>()
    }
}

/// Grouped-node payload (§4.4): the distinct `ē`-projections with their
/// multiplicities and base-tuple lists.
#[derive(Clone, Debug, Default)]
pub struct GroupedData {
    /// `ē`-projection -> group-tuple id.
    pub map: KeyMap<ItemId>,
    /// Group-tuple `ē` values.
    pub ebar_vals: Vec<Key>,
    /// `feq[gt]`: number of base tuples projecting to this group tuple.
    pub feq: Vec<u64>,
    /// Base tuples per group tuple, in arrival order (positional access for
    /// Algorithm 11 line 22), as lists in the node's arena.
    pub base: Vec<ListId>,
}

impl GroupedData {
    /// Looks up or creates the group tuple for an `ē` projection (hashed by
    /// the caller). Returns `(id, created)`.
    pub fn intern(&mut self, postings: &mut PostingArena, hash: u64, ebar: Key) -> (ItemId, bool) {
        let next = self.ebar_vals.len() as ItemId;
        let (&mut id, created) = self.map.get_or_insert_with(hash, ebar, || next);
        if created {
            self.ebar_vals.push(ebar);
            self.feq.push(0);
            self.base.push(postings.new_list());
        }
        (id, created)
    }
}

impl HeapSize for GroupedData {
    fn heap_size(&self) -> usize {
        self.map.heap_size()
            + self.ebar_vals.heap_size()
            + self.feq.heap_size()
            + self.base.heap_size()
    }
}

/// Full per-node state within one rooted tree.
#[derive(Clone, Debug)]
pub struct NodeState {
    /// `key(e)` value -> group id.
    pub groups: KeyMap<GroupId>,
    /// Group arena.
    pub arena: Vec<Group>,
    /// Per-item location, indexed by [`ItemId`].
    pub item_pos: Vec<ItemPos>,
    /// For each child (by child index): `key(c)` value -> posting list of
    /// items of this node whose projection matches. Drives upward
    /// propagation (Algorithm 7 line 9).
    pub child_indexes: Vec<KeyMap<ListId>>,
    /// Backing storage for every item list of this node: buckets, zero
    /// lists, child-index postings, grouped base lists.
    pub postings: PostingArena,
    /// Whether this node runs the grouping optimization.
    pub grouped: bool,
    /// Grouping payload when `grouped`.
    pub grouped_data: GroupedData,
}

impl NodeState {
    /// Creates empty state for a node with `num_children` children.
    pub fn new(num_children: usize, grouped: bool) -> NodeState {
        NodeState {
            groups: KeyMap::default(),
            arena: Vec::new(),
            item_pos: Vec::new(),
            child_indexes: (0..num_children).map(|_| KeyMap::default()).collect(),
            postings: PostingArena::new(),
            grouped,
            grouped_data: GroupedData::default(),
        }
    }

    /// Group id for a key (hashed by the caller), creating an empty group
    /// when absent.
    pub fn group_for(&mut self, hash: u64, key: Key) -> GroupId {
        let next = self.arena.len() as GroupId;
        let (&mut g, created) = self.groups.get_or_insert_with(hash, key, || next);
        if created {
            self.arena.push(Group::default());
        }
        g
    }

    /// Group id for a key, if present.
    #[inline]
    pub fn group_id(&self, hash: u64, key: &Key) -> Option<GroupId> {
        self.groups.get(hash, key).copied()
    }

    /// The group for an existing id.
    #[inline]
    pub fn group(&self, id: GroupId) -> &Group {
        &self.arena[id as usize]
    }

    /// `cnt~` level of the group at `key` (`None` for missing/empty groups).
    #[inline]
    pub fn tilde_level_of(&self, hash: u64, key: &Key) -> Option<u32> {
        self.group_id(hash, key)
            .and_then(|g| self.arena[g as usize].tilde_level())
    }

    /// Appends `item` to the posting list of `key` in child index `ci`,
    /// creating the list on first use.
    pub fn child_index_push(&mut self, ci: usize, hash: u64, key: Key, item: ItemId) {
        let postings = &mut self.postings;
        let (&mut list, _) =
            self.child_indexes[ci].get_or_insert_with(hash, key, || postings.new_list());
        postings.push(list, item);
    }

    /// Unlinks `item` from the posting list of `key` in child index `ci`
    /// (the removal mirror of [`child_index_push`]). `O(list length)` — the
    /// position is found by scan, which is the deletion path's cost driver.
    /// Emptied lists stay mapped so a re-insert of the key reuses them.
    ///
    /// # Panics
    /// Panics if the item is not listed under the key (an index invariant
    /// violation).
    ///
    /// [`child_index_push`]: NodeState::child_index_push
    pub fn child_index_remove(&mut self, ci: usize, hash: u64, key: &Key, item: ItemId) {
        let &list = self.child_indexes[ci]
            .get(hash, key)
            .expect("deleted item's child key must be indexed");
        let pos = (0..self.postings.len(list) as u32)
            .find(|&i| self.postings.get(list, i) == item)
            .expect("deleted item must appear in its child posting list");
        self.postings.swap_remove(list, pos);
    }

    /// Removes an existing item from its group, fixing the displaced
    /// item's recorded position (the removal mirror of
    /// [`place_new_item`](NodeState::place_new_item)). The item's own
    /// `item_pos` slot goes stale — ids are never reused, so no reader can
    /// reach it afterwards.
    pub fn remove_existing_item(&mut self, item: ItemId) {
        let ip = self.item_pos[item as usize];
        let g = &mut self.arena[ip.group as usize];
        if let Some(moved) = g.remove_item(&mut self.postings, ip.level(), ip.pos) {
            self.item_pos[moved as usize].pos = ip.pos;
        }
    }

    /// Places a brand-new item into its group at `level` and records its
    /// position. `item` must equal `item_pos.len()`.
    pub fn place_new_item(&mut self, item: ItemId, group: GroupId, level: Option<u32>) {
        debug_assert_eq!(item as usize, self.item_pos.len());
        let pos = self.arena[group as usize].insert_item(&mut self.postings, item, level);
        self.item_pos.push(ItemPos::new(group, level, pos));
    }

    /// Serializes the node's complete physical state — group arena, item
    /// positions, bucket lists, child indexes, posting arena, grouping
    /// payload — exactly, so a restored node continues every future
    /// operation (and re-serializes) byte-identically. Physical layout is
    /// sample-relevant here: retrieval is positional within posting lists.
    pub fn snapshot_to(&self, enc: &mut Encoder) {
        self.groups.snapshot_to(enc, |e, g| e.put_u32(*g));
        enc.put_usize(self.arena.len());
        for g in &self.arena {
            enc.put_u128(g.cnt);
            enc.put_u8(g.tilde_code);
            enc.put_usize(g.buckets.len());
            for b in &g.buckets {
                enc.put_u32(b.level);
                enc.put_u32(b.list);
            }
            enc.put_u32(g.zero);
        }
        enc.put_usize(self.item_pos.len());
        for ip in &self.item_pos {
            enc.put_u32(ip.group);
            enc.put_u32(ip.pos);
            enc.put_u32(ip.level_code);
        }
        enc.put_usize(self.child_indexes.len());
        for ci in &self.child_indexes {
            ci.snapshot_to(enc, |e, l| e.put_u32(*l));
        }
        self.postings.snapshot_to(enc);
        enc.put_bool(self.grouped);
        self.grouped_data
            .map
            .snapshot_to(enc, |e, id| e.put_u32(*id));
        enc.put_usize(self.grouped_data.ebar_vals.len());
        for k in &self.grouped_data.ebar_vals {
            k.encode_to(enc);
        }
        enc.put_u64s(&self.grouped_data.feq);
        enc.put_u32s(&self.grouped_data.base);
    }

    /// Reconstructs node state from [`snapshot_to`](NodeState::snapshot_to)
    /// bytes.
    pub fn restore_from(dec: &mut Decoder) -> Result<NodeState, CodecError> {
        let groups = KeyMap::restore_from(dec, |d| d.u32())?;
        let narena = dec.seq_len(18)?;
        let mut arena = Vec::with_capacity(narena);
        for _ in 0..narena {
            let cnt = dec.u128()?;
            let tilde_code = dec.u8()?;
            let nbuckets = dec.seq_len(8)?;
            let mut buckets = Vec::with_capacity(nbuckets);
            let mut prev_level = None;
            for _ in 0..nbuckets {
                let level = dec.u32()?;
                if prev_level.is_some_and(|p| level <= p) {
                    return Err(CodecError::Corrupt("group buckets out of level order"));
                }
                prev_level = Some(level);
                buckets.push(BucketRef {
                    level,
                    list: dec.u32()?,
                });
            }
            arena.push(Group {
                cnt,
                tilde_code,
                buckets,
                zero: dec.u32()?,
            });
        }
        let nitems = dec.seq_len(12)?;
        let mut item_pos = Vec::with_capacity(nitems);
        for _ in 0..nitems {
            let group = dec.u32()?;
            if group as usize >= arena.len() {
                return Err(CodecError::Corrupt("item position group out of range"));
            }
            item_pos.push(ItemPos {
                group,
                pos: dec.u32()?,
                level_code: dec.u32()?,
            });
        }
        let nchildren = dec.seq_len(8)?;
        let child_indexes = (0..nchildren)
            .map(|_| KeyMap::restore_from(dec, |d| d.u32()))
            .collect::<Result<_, _>>()?;
        let postings = PostingArena::restore_from(dec)?;
        let grouped = dec.bool()?;
        let map = KeyMap::restore_from(dec, |d| d.u32())?;
        let nebar = dec.seq_len(9)?;
        let ebar_vals = (0..nebar)
            .map(|_| Key::decode_from(dec))
            .collect::<Result<Vec<_>, _>>()?;
        let feq = dec.u64s()?;
        let base = dec.u32s()?;
        if feq.len() != ebar_vals.len() || base.len() != ebar_vals.len() {
            return Err(CodecError::Corrupt("grouped payload length mismatch"));
        }
        Ok(NodeState {
            groups,
            arena,
            item_pos,
            child_indexes,
            postings,
            grouped,
            grouped_data: GroupedData {
                map,
                ebar_vals,
                feq,
                base,
            },
        })
    }

    /// Moves an existing item to a new level within its group, fixing the
    /// displaced item's position. `cnt` is adjusted internally by
    /// insert/remove (weights are implied by levels).
    pub fn move_item(&mut self, item: ItemId, new_level: Option<u32>) {
        let ip = self.item_pos[item as usize];
        let (group, level, pos) = (ip.group, ip.level(), ip.pos);
        if level == new_level {
            return;
        }
        let g = &mut self.arena[group as usize];
        if let Some(moved) = g.remove_item(&mut self.postings, level, pos) {
            self.item_pos[moved as usize].pos = pos;
        }
        let new_pos = self.arena[group as usize].insert_item(&mut self.postings, item, new_level);
        self.item_pos[item as usize] = ItemPos::new(group, new_level, new_pos);
    }
}

impl HeapSize for NodeState {
    fn heap_size(&self) -> usize {
        self.groups.heap_size()
            + self.arena.capacity() * std::mem::size_of::<Group>()
            + self.arena.iter().map(HeapSize::heap_size).sum::<usize>()
            + self.item_pos.heap_size()
            + self.child_indexes.capacity() * std::mem::size_of::<KeyMap<ListId>>()
            + self
                .child_indexes
                .iter()
                .map(HeapSize::heap_size)
                .sum::<usize>()
            + self.postings.heap_size()
            + self.grouped_data.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero_items(g: &Group, a: &PostingArena) -> Vec<ItemId> {
        if g.zero == NO_LIST {
            Vec::new()
        } else {
            a.iter(g.zero).collect()
        }
    }

    #[test]
    fn group_insert_accumulates_cnt() {
        let mut a = PostingArena::new();
        let mut g = Group::default();
        g.insert_item(&mut a, 0, Some(0)); // weight 1
        g.insert_item(&mut a, 1, Some(2)); // weight 4
        g.insert_item(&mut a, 2, None); // zero
        assert_eq!(g.cnt, 5);
        assert_eq!(g.cnt_tilde(), 8);
        assert_eq!(g.tilde_level(), Some(3));
        assert_eq!(g.bucketed_len(&a), 2);
        assert_eq!(g.zero_len(&a), 1);
    }

    #[test]
    fn buckets_stay_sorted() {
        let mut a = PostingArena::new();
        let mut g = Group::default();
        for (item, level) in [(0u32, 5u32), (1, 1), (2, 3), (3, 1)] {
            g.insert_item(&mut a, item, Some(level));
        }
        let levels: Vec<u32> = g.buckets.iter().map(|b| b.level).collect();
        assert_eq!(levels, vec![1, 3, 5]);
        assert_eq!(g.cnt, 2 + 2 + 8 + 32);
    }

    #[test]
    fn locate_walks_buckets_in_level_order() {
        let mut a = PostingArena::new();
        let mut g = Group::default();
        g.insert_item(&mut a, 10, Some(0)); // 1 slot   [0]
        g.insert_item(&mut a, 11, Some(0)); // 1 slot   [1]
        g.insert_item(&mut a, 12, Some(2)); // 4 slots  [2..6)
        assert_eq!(g.locate(&a, 0), (10, 0));
        assert_eq!(g.locate(&a, 1), (11, 0));
        assert_eq!(g.locate(&a, 2), (12, 0));
        assert_eq!(g.locate(&a, 5), (12, 3));
    }

    #[test]
    fn remove_swaps_and_reports() {
        let mut a = PostingArena::new();
        let mut g = Group::default();
        g.insert_item(&mut a, 0, Some(1));
        g.insert_item(&mut a, 1, Some(1));
        g.insert_item(&mut a, 2, Some(1));
        // Remove position 0: item 2 swaps into it.
        let moved = g.remove_item(&mut a, Some(1), 0);
        assert_eq!(moved, Some(2));
        assert_eq!(g.cnt, 4);
        // Removing the last leaves None.
        let moved = g.remove_item(&mut a, Some(1), 1);
        assert_eq!(moved, None);
    }

    #[test]
    fn empty_bucket_is_dropped() {
        let mut a = PostingArena::new();
        let mut g = Group::default();
        g.insert_item(&mut a, 0, Some(3));
        g.remove_item(&mut a, Some(3), 0);
        assert!(g.buckets.is_empty());
        assert_eq!(g.cnt, 0);
        assert_eq!(g.tilde_level(), None);
    }

    fn hashed(key: Key) -> (u64, Key) {
        (rsj_common::fx_hash_one(&key), key)
    }

    #[test]
    fn node_state_move_item_updates_positions() {
        let mut ns = NodeState::new(0, false);
        let (h, key) = hashed(Key::single(7));
        let g = ns.group_for(h, key);
        ns.place_new_item(0, g, Some(0));
        ns.place_new_item(1, g, Some(0));
        ns.place_new_item(2, g, Some(0));
        assert_eq!(ns.group(g).cnt, 3);
        // Move item 0 to level 2; item 2 swaps into its slot.
        ns.move_item(0, Some(2));
        assert_eq!(ns.group(g).cnt, 2 + 4);
        let p2 = ns.item_pos[2];
        assert_eq!(p2.pos, 0);
        let p0 = ns.item_pos[0];
        assert_eq!(p0.level(), Some(2));
        // Every item findable through its recorded position.
        for item in 0..3u32 {
            let p = ns.item_pos[item as usize];
            let grp = ns.group(p.group);
            let found = match p.level() {
                None => ns.postings.get(grp.zero, p.pos),
                Some(l) => {
                    let b = grp.buckets.iter().find(|b| b.level == l).expect("bucket");
                    ns.postings.get(b.list, p.pos)
                }
            };
            assert_eq!(found, item);
        }
    }

    #[test]
    fn move_to_same_level_is_noop() {
        let mut ns = NodeState::new(0, false);
        let (h, key) = hashed(Key::EMPTY);
        let g = ns.group_for(h, key);
        ns.place_new_item(0, g, Some(1));
        ns.move_item(0, Some(1));
        assert_eq!(ns.group(g).cnt, 2);
        assert_eq!(ns.item_pos[0].pos, 0);
    }

    #[test]
    fn zero_list_transitions() {
        let mut ns = NodeState::new(0, false);
        let (h, key) = hashed(Key::EMPTY);
        let g = ns.group_for(h, key);
        ns.place_new_item(0, g, None);
        assert_eq!(ns.group(g).cnt, 0);
        ns.move_item(0, Some(4));
        assert_eq!(ns.group(g).cnt, 16);
        assert_eq!(ns.group(g).zero_len(&ns.postings), 0);
        ns.move_item(0, None);
        assert_eq!(ns.group(g).cnt, 0);
        assert_eq!(zero_items(ns.group(g), &ns.postings), vec![0]);
    }

    #[test]
    fn remove_existing_item_fixes_displaced_position() {
        let mut ns = NodeState::new(1, false);
        let (h, key) = hashed(Key::single(7));
        let g = ns.group_for(h, key);
        for item in 0..3u32 {
            ns.place_new_item(item, g, Some(1));
            ns.child_index_push(0, h, key, item);
        }
        // Remove the middle item: item 2 swaps into its bucket slot.
        ns.remove_existing_item(1);
        assert_eq!(ns.group(g).cnt, 4);
        assert_eq!(ns.item_pos[2].pos, 1);
        ns.child_index_remove(0, h, &key, 1);
        let left: Vec<ItemId> = ns
            .postings
            .iter(*ns.child_indexes[0].get(h, &key).unwrap())
            .collect();
        assert_eq!(left, vec![0, 2]);
        // Emptied group is reusable: removing the rest leaves cnt 0.
        ns.remove_existing_item(0);
        ns.remove_existing_item(2);
        assert_eq!(ns.group(g).cnt, 0);
        assert_eq!(ns.group(g).tilde_level(), None);
    }

    #[test]
    fn node_snapshot_round_trips_byte_identically() {
        let mut ns = NodeState::new(2, true);
        let (h, key) = hashed(Key::single(7));
        let g = ns.group_for(h, key);
        for item in 0..6u32 {
            ns.place_new_item(item, g, if item == 5 { None } else { Some(item % 3) });
            ns.child_index_push((item % 2) as usize, h, key, item);
        }
        ns.move_item(0, Some(4));
        ns.remove_existing_item(3);
        let (h2, k2) = hashed(Key::single(9));
        let (_, created) = ns.grouped_data.intern(&mut ns.postings, h2, k2);
        assert!(created);
        let snap = |n: &NodeState| {
            let mut e = Encoder::new();
            n.snapshot_to(&mut e);
            e.into_bytes()
        };
        let bytes = snap(&ns);
        let mut dec = Decoder::new(&bytes);
        let mut ns2 = NodeState::restore_from(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(snap(&ns2), bytes, "re-serialization drifted");
        // Identical further mutation keeps the copies in lockstep.
        ns.move_item(1, Some(5));
        ns2.move_item(1, Some(5));
        ns.remove_existing_item(4);
        ns2.remove_existing_item(4);
        assert_eq!(snap(&ns2), snap(&ns));
        assert_eq!(ns2.group(g).cnt, ns.group(g).cnt);
    }

    #[test]
    fn node_snapshot_rejects_out_of_range_group() {
        let mut ns = NodeState::new(0, false);
        let (h, key) = hashed(Key::single(1));
        let g = ns.group_for(h, key);
        ns.place_new_item(0, g, Some(0));
        let mut e = Encoder::new();
        ns.snapshot_to(&mut e);
        let bytes = e.into_bytes();
        // item_pos[0].group sits right after the groups map, the 1-group
        // arena and the item count; easier: scan for the known u32 triple.
        // The group id is 0; corrupt it to 9 by finding the item section.
        // Locate it deterministically by re-encoding with a poisoned group.
        let mut poisoned = NodeState::new(0, false);
        let gp = poisoned.group_for(h, key);
        poisoned.place_new_item(0, gp, Some(0));
        poisoned.item_pos[0].group = 9;
        let mut ep = Encoder::new();
        poisoned.snapshot_to(&mut ep);
        let poisoned_bytes = ep.into_bytes();
        assert_ne!(poisoned_bytes, bytes);
        assert!(NodeState::restore_from(&mut Decoder::new(&poisoned_bytes)).is_err());
    }

    #[test]
    fn grouped_data_interning() {
        let mut a = PostingArena::new();
        let mut gd = GroupedData::default();
        let (h1, k1) = hashed(Key::single(1));
        let (a_id, created) = gd.intern(&mut a, h1, k1);
        assert!(created);
        let (b_id, created) = gd.intern(&mut a, h1, k1);
        assert!(!created);
        assert_eq!(a_id, b_id);
        let (h2, k2) = hashed(Key::single(2));
        let (c_id, _) = gd.intern(&mut a, h2, k2);
        assert_ne!(a_id, c_id);
        assert_eq!(gd.ebar_vals.len(), 2);
    }
}
