//! Per-node index state: groups, weight buckets, and item bookkeeping.
//!
//! Within one rooted tree, every join-tree node `e` partitions its *items*
//! (base tuples, or group tuples under the §4.4 grouping optimization) into
//! groups by their `key(e)` value. Within a group, items live in buckets by
//! their *weight level*: item weight is the product of the children's
//! rounded counts (times `feq~` when grouped), always a power of two, so a
//! bucket at level `i` holds items of weight exactly `2^i` — the paper's
//! `Φ_i(t)` with `φ_i(t) = 2^i · |Φ_i(t)|`. A group's `cnt` is the sum of
//! its items' weights, maintained incrementally.
//!
//! Items whose weight is zero (some child key still unmatched) sit in a
//! separate zero list: they contribute nothing to `cnt` and are skipped by
//! retrieval, but must be reachable so a later child insertion can lift
//! them into a real bucket.

use rsj_common::{FxHashMap, HeapSize, Key, TupleId};

/// Index of an item within a node: a base [`TupleId`] for ungrouped nodes,
/// or a group-tuple id for grouped nodes.
pub type ItemId = u32;

/// Identifier of a group within a node.
pub type GroupId = u32;

/// Where an item currently lives.
#[derive(Clone, Copy, Debug)]
pub struct ItemPos {
    /// Owning group.
    pub group: GroupId,
    /// Weight level: `Some(i)` for bucket `Φ_i`, `None` for the zero list.
    pub level: Option<u32>,
    /// Position within the bucket / zero list.
    pub pos: u32,
}

/// One weight bucket `Φ_i`.
#[derive(Clone, Debug, Default)]
pub struct Bucket {
    /// The level `i`; items here have weight `2^i`.
    pub level: u32,
    /// Item ids, unordered; removal is swap-remove.
    pub items: Vec<ItemId>,
}

/// One key group of a node.
#[derive(Clone, Debug, Default)]
pub struct Group {
    /// The paper's `cnt[T, e, t]`: total weight of all bucketed items.
    pub cnt: u128,
    /// Non-empty buckets, sorted ascending by level.
    pub buckets: Vec<Bucket>,
    /// Items of weight zero.
    pub zero: Vec<ItemId>,
}

impl Group {
    /// `cnt~`: the rounded count. Zero for an empty group.
    #[inline]
    pub fn cnt_tilde(&self) -> u128 {
        rsj_common::pow2::round_up_pow2(self.cnt)
    }

    /// Level of `cnt~` (`None` when `cnt == 0`).
    #[inline]
    pub fn tilde_level(&self) -> Option<u32> {
        rsj_common::pow2::level_of(self.cnt)
    }

    /// Inserts `item` at `level` (or the zero list), returning its position.
    pub fn insert_item(&mut self, item: ItemId, level: Option<u32>) -> u32 {
        match level {
            None => {
                self.zero.push(item);
                (self.zero.len() - 1) as u32
            }
            Some(l) => {
                self.cnt += 1u128 << l;
                let idx = match self.buckets.binary_search_by_key(&l, |b| b.level) {
                    Ok(i) => i,
                    Err(i) => {
                        self.buckets.insert(
                            i,
                            Bucket {
                                level: l,
                                items: Vec::new(),
                            },
                        );
                        i
                    }
                };
                self.buckets[idx].items.push(item);
                (self.buckets[idx].items.len() - 1) as u32
            }
        }
    }

    /// Removes the item at (`level`, `pos`), returning the id of the item
    /// that was moved into `pos` by the swap-remove (if any). The caller
    /// must update that item's stored position.
    pub fn remove_item(&mut self, level: Option<u32>, pos: u32) -> Option<ItemId> {
        match level {
            None => {
                self.zero.swap_remove(pos as usize);
                self.zero.get(pos as usize).copied()
            }
            Some(l) => {
                self.cnt -= 1u128 << l;
                let idx = self
                    .buckets
                    .binary_search_by_key(&l, |b| b.level)
                    .expect("bucket must exist");
                self.buckets[idx].items.swap_remove(pos as usize);
                let moved = self.buckets[idx].items.get(pos as usize).copied();
                if self.buckets[idx].items.is_empty() {
                    self.buckets.remove(idx);
                }
                moved
            }
        }
    }

    /// Locates position `z < cnt` inside the bucketed items: returns
    /// `(item, within)` where `within < 2^level(item)` is the offset inside
    /// that item's conceptual sub-batch. This is the bucket scan of
    /// Algorithm 9 lines 15–18 (`O(#buckets) = O(log N)` per call).
    pub fn locate(&self, z: u128) -> (ItemId, u128) {
        debug_assert!(z < self.cnt, "locate past cnt");
        let mut acc = 0u128;
        for b in &self.buckets {
            let width = (b.items.len() as u128) << b.level;
            if z < acc + width {
                let off = z - acc;
                let j = (off >> b.level) as usize;
                let within = off & ((1u128 << b.level) - 1);
                return (b.items[j], within);
            }
            acc += width;
        }
        unreachable!("z < cnt guaranteed a bucket");
    }

    /// Number of bucketed (non-zero-weight) items.
    pub fn bucketed_len(&self) -> usize {
        self.buckets.iter().map(|b| b.items.len()).sum()
    }
}

impl HeapSize for Group {
    fn heap_size(&self) -> usize {
        self.buckets.capacity() * std::mem::size_of::<Bucket>()
            + self
                .buckets
                .iter()
                .map(|b| b.items.heap_size())
                .sum::<usize>()
            + self.zero.heap_size()
    }
}

/// Grouped-node payload (§4.4): the distinct `ē`-projections with their
/// multiplicities and base-tuple lists.
#[derive(Clone, Debug, Default)]
pub struct GroupedData {
    /// `ē`-projection -> group-tuple id.
    pub map: FxHashMap<Key, ItemId>,
    /// Group-tuple `ē` values.
    pub ebar_vals: Vec<Key>,
    /// `feq[gt]`: number of base tuples projecting to this group tuple.
    pub feq: Vec<u64>,
    /// Base tuples per group tuple, in arrival order (positional access for
    /// Algorithm 11 line 22).
    pub base: Vec<Vec<TupleId>>,
}

impl GroupedData {
    /// Looks up or creates the group tuple for an `ē` projection.
    /// Returns `(id, created)`.
    pub fn intern(&mut self, ebar: Key) -> (ItemId, bool) {
        if let Some(&id) = self.map.get(&ebar) {
            return (id, false);
        }
        let id = self.ebar_vals.len() as ItemId;
        self.map.insert(ebar, id);
        self.ebar_vals.push(ebar);
        self.feq.push(0);
        self.base.push(Vec::new());
        (id, true)
    }
}

impl HeapSize for GroupedData {
    fn heap_size(&self) -> usize {
        self.map.heap_size()
            + self.ebar_vals.heap_size()
            + self.feq.heap_size()
            + self.base.capacity() * std::mem::size_of::<Vec<TupleId>>()
            + self.base.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

/// Full per-node state within one rooted tree.
#[derive(Clone, Debug)]
pub struct NodeState {
    /// `key(e)` value -> group id.
    pub groups: FxHashMap<Key, GroupId>,
    /// Group arena.
    pub arena: Vec<Group>,
    /// Per-item location, indexed by [`ItemId`].
    pub item_pos: Vec<ItemPos>,
    /// For each child (by child index): `key(c)` value -> items of this node
    /// whose projection matches. Drives upward propagation (Algorithm 7
    /// line 9).
    pub child_indexes: Vec<FxHashMap<Key, Vec<ItemId>>>,
    /// Whether this node runs the grouping optimization.
    pub grouped: bool,
    /// Grouping payload when `grouped`.
    pub grouped_data: GroupedData,
}

impl NodeState {
    /// Creates empty state for a node with `num_children` children.
    pub fn new(num_children: usize, grouped: bool) -> NodeState {
        NodeState {
            groups: FxHashMap::default(),
            arena: Vec::new(),
            item_pos: Vec::new(),
            child_indexes: vec![FxHashMap::default(); num_children],
            grouped,
            grouped_data: GroupedData::default(),
        }
    }

    /// Group id for a key, creating an empty group when absent.
    pub fn group_for(&mut self, key: Key) -> GroupId {
        if let Some(&g) = self.groups.get(&key) {
            return g;
        }
        let g = self.arena.len() as GroupId;
        self.groups.insert(key, g);
        self.arena.push(Group::default());
        g
    }

    /// Group id for a key, if present.
    #[inline]
    pub fn group_id(&self, key: &Key) -> Option<GroupId> {
        self.groups.get(key).copied()
    }

    /// The group for an existing id.
    #[inline]
    pub fn group(&self, id: GroupId) -> &Group {
        &self.arena[id as usize]
    }

    /// `cnt~` level of the group at `key` (`None` for missing/empty groups).
    #[inline]
    pub fn tilde_level_of(&self, key: &Key) -> Option<u32> {
        self.group_id(key)
            .and_then(|g| self.arena[g as usize].tilde_level())
    }

    /// Places a brand-new item into its group at `level` and records its
    /// position. `item` must equal `item_pos.len()`.
    pub fn place_new_item(&mut self, item: ItemId, group: GroupId, level: Option<u32>) {
        debug_assert_eq!(item as usize, self.item_pos.len());
        let pos = self.arena[group as usize].insert_item(item, level);
        self.item_pos.push(ItemPos { group, level, pos });
    }

    /// Moves an existing item to a new level within its group, fixing the
    /// displaced item's position. Returns `(old_weight, new_weight)` so the
    /// caller can adjust derived counts... weights are implied by levels;
    /// cnt is adjusted internally by insert/remove.
    pub fn move_item(&mut self, item: ItemId, new_level: Option<u32>) {
        let ItemPos { group, level, pos } = self.item_pos[item as usize];
        if level == new_level {
            return;
        }
        let g = &mut self.arena[group as usize];
        if let Some(moved) = g.remove_item(level, pos) {
            self.item_pos[moved as usize].pos = pos;
        }
        let new_pos = self.arena[group as usize].insert_item(item, new_level);
        self.item_pos[item as usize] = ItemPos {
            group,
            level: new_level,
            pos: new_pos,
        };
    }
}

impl HeapSize for NodeState {
    fn heap_size(&self) -> usize {
        self.groups.heap_size()
            + self.arena.capacity() * std::mem::size_of::<Group>()
            + self.arena.iter().map(HeapSize::heap_size).sum::<usize>()
            + self.item_pos.heap_size()
            + self
                .child_indexes
                .iter()
                .map(|m| m.heap_size() + m.values().map(HeapSize::heap_size).sum::<usize>())
                .sum::<usize>()
            + self.grouped_data.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_insert_accumulates_cnt() {
        let mut g = Group::default();
        g.insert_item(0, Some(0)); // weight 1
        g.insert_item(1, Some(2)); // weight 4
        g.insert_item(2, None); // zero
        assert_eq!(g.cnt, 5);
        assert_eq!(g.cnt_tilde(), 8);
        assert_eq!(g.tilde_level(), Some(3));
        assert_eq!(g.bucketed_len(), 2);
        assert_eq!(g.zero.len(), 1);
    }

    #[test]
    fn buckets_stay_sorted() {
        let mut g = Group::default();
        for (item, level) in [(0u32, 5u32), (1, 1), (2, 3), (3, 1)] {
            g.insert_item(item, Some(level));
        }
        let levels: Vec<u32> = g.buckets.iter().map(|b| b.level).collect();
        assert_eq!(levels, vec![1, 3, 5]);
        assert_eq!(g.cnt, 2 + 2 + 8 + 32);
    }

    #[test]
    fn locate_walks_buckets_in_level_order() {
        let mut g = Group::default();
        g.insert_item(10, Some(0)); // 1 slot   [0]
        g.insert_item(11, Some(0)); // 1 slot   [1]
        g.insert_item(12, Some(2)); // 4 slots  [2..6)
        assert_eq!(g.locate(0), (10, 0));
        assert_eq!(g.locate(1), (11, 0));
        assert_eq!(g.locate(2), (12, 0));
        assert_eq!(g.locate(5), (12, 3));
    }

    #[test]
    fn remove_swaps_and_reports() {
        let mut g = Group::default();
        g.insert_item(0, Some(1));
        g.insert_item(1, Some(1));
        g.insert_item(2, Some(1));
        // Remove position 0: item 2 swaps into it.
        let moved = g.remove_item(Some(1), 0);
        assert_eq!(moved, Some(2));
        assert_eq!(g.cnt, 4);
        // Removing the last leaves None.
        let moved = g.remove_item(Some(1), 1);
        assert_eq!(moved, None);
    }

    #[test]
    fn empty_bucket_is_dropped() {
        let mut g = Group::default();
        g.insert_item(0, Some(3));
        g.remove_item(Some(3), 0);
        assert!(g.buckets.is_empty());
        assert_eq!(g.cnt, 0);
        assert_eq!(g.tilde_level(), None);
    }

    #[test]
    fn node_state_move_item_updates_positions() {
        let mut ns = NodeState::new(0, false);
        let g = ns.group_for(Key::single(7));
        ns.place_new_item(0, g, Some(0));
        ns.place_new_item(1, g, Some(0));
        ns.place_new_item(2, g, Some(0));
        assert_eq!(ns.group(g).cnt, 3);
        // Move item 0 to level 2; item 2 swaps into its slot.
        ns.move_item(0, Some(2));
        assert_eq!(ns.group(g).cnt, 2 + 4);
        let p2 = ns.item_pos[2];
        assert_eq!(p2.pos, 0);
        let p0 = ns.item_pos[0];
        assert_eq!(p0.level, Some(2));
        // Every item findable through its recorded position.
        for item in 0..3u32 {
            let p = ns.item_pos[item as usize];
            let grp = ns.group(p.group);
            let found = match p.level {
                None => grp.zero[p.pos as usize],
                Some(l) => {
                    let b = grp.buckets.iter().find(|b| b.level == l).expect("bucket");
                    b.items[p.pos as usize]
                }
            };
            assert_eq!(found, item);
        }
    }

    #[test]
    fn move_to_same_level_is_noop() {
        let mut ns = NodeState::new(0, false);
        let g = ns.group_for(Key::EMPTY);
        ns.place_new_item(0, g, Some(1));
        ns.move_item(0, Some(1));
        assert_eq!(ns.group(g).cnt, 2);
        assert_eq!(ns.item_pos[0].pos, 0);
    }

    #[test]
    fn zero_list_transitions() {
        let mut ns = NodeState::new(0, false);
        let g = ns.group_for(Key::EMPTY);
        ns.place_new_item(0, g, None);
        assert_eq!(ns.group(g).cnt, 0);
        ns.move_item(0, Some(4));
        assert_eq!(ns.group(g).cnt, 16);
        assert!(ns.group(g).zero.is_empty());
        ns.move_item(0, None);
        assert_eq!(ns.group(g).cnt, 0);
        assert_eq!(ns.group(g).zero, vec![0]);
    }

    #[test]
    fn grouped_data_interning() {
        let mut gd = GroupedData::default();
        let (a, created) = gd.intern(Key::single(1));
        assert!(created);
        let (b, created) = gd.intern(Key::single(1));
        assert!(!created);
        assert_eq!(a, b);
        let (c, _) = gd.intern(Key::single(2));
        assert_ne!(a, c);
        assert_eq!(gd.ebar_vals.len(), 2);
    }
}
